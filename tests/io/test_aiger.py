"""Tests for AIGER reading and writing."""

from __future__ import annotations

import io

import pytest

from repro.aig.aig import Aig
from repro.aig.convert import mig_to_aig
from repro.io.aiger import read_aag, read_aig_binary, write_aag, write_aig_binary


def sample_aig() -> Aig:
    aig = Aig(3)
    a, b, c = aig.pi_signals()
    aig.add_po(aig.xor(aig.and_(a, b), c), "f")
    aig.add_po(aig.or_(a, c), "g")
    return aig


class TestAsciiRoundtrip:
    def test_roundtrip(self):
        aig = sample_aig()
        buf = io.StringIO()
        write_aag(aig, buf)
        buf.seek(0)
        back = read_aag(buf)
        assert back.simulate() == aig.simulate()
        assert back.pi_names == aig.pi_names
        assert back.output_names == aig.output_names

    def test_header_shape(self):
        aig = sample_aig()
        buf = io.StringIO()
        write_aag(aig, buf)
        header = buf.getvalue().splitlines()[0].split()
        assert header[0] == "aag"
        assert int(header[2]) == 3  # inputs
        assert int(header[3]) == 0  # latches
        assert int(header[4]) == 2  # outputs

    def test_mig_converted_roundtrip(self, full_adder):
        aig = mig_to_aig(full_adder)
        buf = io.StringIO()
        write_aag(aig, buf)
        buf.seek(0)
        assert read_aag(buf).simulate() == aig.simulate()

    def test_latches_rejected(self):
        with pytest.raises(ValueError):
            read_aag(io.StringIO("aag 1 0 1 0 0\n2 3\n"))

    def test_bad_header_rejected(self):
        with pytest.raises(ValueError):
            read_aag(io.StringIO("xag 1 1 0 0 0\n"))


class TestBinaryRoundtrip:
    def test_roundtrip(self):
        aig = sample_aig()
        buf = io.BytesIO()
        write_aig_binary(aig, buf)
        buf.seek(0)
        back = read_aig_binary(buf)
        assert back.simulate() == aig.simulate()

    def test_binary_smaller_than_ascii(self):
        from repro.generators import epfl

        aig = mig_to_aig(epfl.adder(16))
        text_buf = io.StringIO()
        write_aag(aig, text_buf)
        bin_buf = io.BytesIO()
        write_aig_binary(aig, bin_buf)
        assert len(bin_buf.getvalue()) < len(text_buf.getvalue().encode())

    def test_truncated_input_rejected(self):
        # Header declares one AND gate but the delta bytes are missing.
        data = b"aig 3 2 0 1 1\n6\n"
        with pytest.raises(ValueError):
            read_aig_binary(io.BytesIO(data))

    def test_large_delta_encoding(self):
        """Deltas above 127 need the multi-byte varint path."""
        aig = Aig(100)
        sigs = aig.pi_signals()
        acc = aig.and_(sigs[0], sigs[99])
        aig.add_po(acc)
        buf = io.BytesIO()
        write_aig_binary(aig, buf)
        buf.seek(0)
        back = read_aig_binary(buf)
        assert back.num_gates == 1
        gate = next(iter(back.gates()))
        assert {s >> 1 for s in back.fanins(gate)} == {1, 100}

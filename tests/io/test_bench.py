"""Tests for ISCAS .bench reading and writing."""

from __future__ import annotations

import io

import pytest

from repro.core.simulate import check_equivalence
from repro.core.truth_table import tt_mask, tt_var
from repro.io.bench import read_bench, write_bench


class TestReader:
    def test_basic_gates(self):
        text = """\
# comment
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
OUTPUT(g)
t1 = AND(a, b)
t2 = NOT(c)
f = OR(t1, t2)
g = XOR(a, b)
"""
        mig = read_bench(io.StringIO(text))
        assert mig.num_pis == 3 and mig.num_pos == 2
        va, vb, vc = (tt_var(3, i) for i in range(3))
        f_tt, g_tt = mig.simulate()
        assert f_tt == (va & vb) | (vc ^ tt_mask(3))
        assert g_tt == va ^ vb

    def test_multi_input_gates(self):
        text = (
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(f)\n"
            "f = NAND(a, b, c, d)\n"
        )
        mig = read_bench(io.StringIO(text))
        expected = tt_mask(4)
        for i in range(4):
            expected &= tt_var(4, i)
        assert mig.simulate()[0] == expected ^ tt_mask(4)

    def test_nor_xnor_buf(self):
        text = (
            "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nOUTPUT(g)\nOUTPUT(h)\n"
            "f = NOR(a, b)\ng = XNOR(a, b)\nh = BUFF(a)\n"
        )
        mig = read_bench(io.StringIO(text))
        va, vb = tt_var(2, 0), tt_var(2, 1)
        f_tt, g_tt, h_tt = mig.simulate()
        assert f_tt == (va | vb) ^ tt_mask(2)
        assert g_tt == (va ^ vb) ^ tt_mask(2)
        assert h_tt == va

    def test_maj_extension(self):
        text = (
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(f)\nf = MAJ(a, b, c)\n"
        )
        mig = read_bench(io.StringIO(text))
        assert mig.num_gates == 1

    def test_undriven_rejected(self):
        with pytest.raises(ValueError):
            read_bench(io.StringIO("INPUT(a)\nOUTPUT(f)\n"))

    def test_unsupported_gate_rejected(self):
        text = "INPUT(a)\nOUTPUT(f)\nf = DFF(a)\n"
        with pytest.raises(ValueError):
            read_bench(io.StringIO(text))


class TestRoundtrip:
    def test_full_adder_roundtrip(self, full_adder):
        buf = io.StringIO()
        write_bench(full_adder, buf)
        buf.seek(0)
        back = read_bench(buf)
        assert back.pi_names == full_adder.pi_names
        assert check_equivalence(full_adder, back)

    def test_suite_roundtrips(self, suite_small):
        for mig in suite_small[:3]:
            buf = io.StringIO()
            write_bench(mig, buf)
            buf.seek(0)
            back = read_bench(buf)
            assert check_equivalence(mig, back), mig.name

    def test_constant_use(self):
        from repro.core.mig import CONST0, Mig

        mig = Mig(2)
        a, b = mig.pi_signals()
        mig.add_po(mig.maj(CONST0, a, b), "f")
        buf = io.StringIO()
        write_bench(mig, buf)
        assert "CONST0()" in buf.getvalue()
        buf.seek(0)
        assert check_equivalence(mig, read_bench(buf))

"""Tests for BLIF reading and writing."""

from __future__ import annotations

import io

import pytest

from repro.core.simulate import check_equivalence
from repro.io.blif import read_blif, write_blif


class TestRoundtrip:
    def test_full_adder(self, full_adder):
        buf = io.StringIO()
        write_blif(full_adder, buf)
        buf.seek(0)
        back = read_blif(buf)
        assert back.pi_names == full_adder.pi_names
        assert back.output_names == full_adder.output_names
        assert check_equivalence(full_adder, back)

    def test_suite_roundtrips(self, suite_small):
        for mig in suite_small[:4]:
            buf = io.StringIO()
            write_blif(mig, buf)
            buf.seek(0)
            back = read_blif(buf)
            assert check_equivalence(mig, back), mig.name

    def test_constant_output(self):
        from repro.core.mig import CONST1, Mig

        mig = Mig(1)
        mig.add_po(CONST1, "one")
        buf = io.StringIO()
        write_blif(mig, buf)
        buf.seek(0)
        back = read_blif(buf)
        assert back.simulate() == mig.simulate()


class TestReader:
    def test_reads_sop_covers(self):
        text = """\
.model test
.inputs a b c
.outputs f
.names a b t
11 1
.names t c f
1- 1
-1 1
.end
"""
        mig = read_blif(io.StringIO(text))
        assert mig.num_pis == 3
        # f = (a & b) | c
        from repro.core.truth_table import tt_var

        expected = (tt_var(3, 0) & tt_var(3, 1)) | tt_var(3, 2)
        assert mig.simulate()[0] == expected

    def test_offset_cover(self):
        text = ".model t\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n"
        mig = read_blif(io.StringIO(text))
        # f = !(a & b)
        from repro.core.truth_table import tt_mask, tt_var

        assert mig.simulate()[0] == (tt_var(2, 0) & tt_var(2, 1)) ^ tt_mask(2)

    def test_comments_and_continuations(self):
        text = (
            ".model t # comment\n.inputs a \\\nb\n.outputs f\n"
            ".names a b f\n11 1\n.end\n"
        )
        mig = read_blif(io.StringIO(text))
        assert mig.num_pis == 2

    def test_undriven_signal_rejected(self):
        text = ".model t\n.inputs a\n.outputs f\n.end\n"
        with pytest.raises(ValueError):
            read_blif(io.StringIO(text))

    def test_unsupported_construct_rejected(self):
        text = ".model t\n.inputs a\n.outputs f\n.latch a f\n.end\n"
        with pytest.raises(ValueError):
            read_blif(io.StringIO(text))

    def test_constant_cover(self):
        text = ".model t\n.inputs a\n.outputs f g\n.names f\n.names g\n1\n.end\n"
        mig = read_blif(io.StringIO(text))
        outs = mig.simulate()
        assert outs[0] == 0
        assert outs[1] == 0b11

"""Tests for the Verilog writer."""

from __future__ import annotations

import io
import re

from repro.io.verilog import write_verilog


class TestVerilogWriter:
    def test_full_adder_structure(self, full_adder):
        buf = io.StringIO()
        write_verilog(full_adder, buf)
        text = buf.getvalue()
        assert text.startswith("module full_adder(")
        assert "endmodule" in text
        assert text.count("assign") == full_adder.num_gates + full_adder.num_pos
        # majority gates appear as sum-of-pairs
        assert re.search(r"\(\S+ & \S+\) \| \(\S+ & \S+\) \| \(\S+ & \S+\)", text)

    def test_ports_declared(self, full_adder):
        buf = io.StringIO()
        write_verilog(full_adder, buf)
        text = buf.getvalue()
        assert re.search(r"input .*x0.*x1.*x2", text)
        assert re.search(r"output .*s.*cout", text)

    def test_custom_module_name(self, full_adder):
        buf = io.StringIO()
        write_verilog(full_adder, buf, module_name="fa1")
        assert buf.getvalue().startswith("module fa1(")

    def test_escaped_names(self):
        from repro.core.mig import Mig

        mig = Mig()
        a = mig.add_pi("a[0]")
        mig.add_po(a, "y[0]")
        buf = io.StringIO()
        write_verilog(mig, buf)
        assert "\\a[0] " in buf.getvalue()

    def test_constant_output(self):
        from repro.core.mig import CONST0, Mig

        mig = Mig(1)
        mig.add_po(CONST0, "zero")
        mig.add_po(1, "one")  # complemented constant
        buf = io.StringIO()
        write_verilog(mig, buf)
        text = buf.getvalue()
        assert "1'b0" in text and "1'b1" in text

"""Canonical structural hashing (Network.structural_hash).

The hash is the serving tier's cache key, so its two safety properties
are drilled hard here:

* **invariance** — representational differences (node insertion order,
  names, dead nodes) must not change the hash, or duplicate requests
  would miss the cache they paid to warm;
* **discrimination** — anything that changes the computed function (or
  how callers address it: output order/polarity, PI count, gate arity)
  must change the hash, or the cache would serve wrong answers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.aig import Aig
from repro.core.kernel import CONST0, make_signal
from repro.core.mig import Mig

from .test_kernel import random_aig, random_mig


def rebuild_permuted(net, rng):
    """Rebuild *net* gate-for-gate in a randomized topological order.

    Node indices end up completely different while the DAG (and the
    function) stays identical — exactly the representational noise the
    hash must be blind to.
    """
    new = type(net).like(net)
    mapping = {0: CONST0}
    for i in range(1, net.num_pis + 1):
        mapping[i] = make_signal(i)
    remaining = set(net.gates())
    while remaining:
        ready = [
            node
            for node in remaining
            if all((s >> 1) in mapping for s in net.fanins(node))
        ]
        node = rng.choice(sorted(ready))
        remaining.discard(node)
        fanin = tuple(mapping[s >> 1] ^ (s & 1) for s in net.fanins(node))
        mapping[node] = new._make_gate(fanin)
    for s, name in zip(net.outputs, net.output_names):
        new.add_po(mapping[s >> 1] ^ (s & 1), name)
    return new


class TestInvariance:
    @settings(max_examples=60, deadline=None)
    @given(random_mig(), st.randoms(use_true_random=False))
    def test_insertion_order_invariance_mig(self, mig, rng):
        assert rebuild_permuted(mig, rng).structural_hash() == mig.structural_hash()

    @settings(max_examples=60, deadline=None)
    @given(random_aig(), st.randoms(use_true_random=False))
    def test_insertion_order_invariance_aig(self, aig, rng):
        assert rebuild_permuted(aig, rng).structural_hash() == aig.structural_hash()

    @settings(max_examples=40, deadline=None)
    @given(random_mig())
    def test_name_invariance(self, mig):
        before = mig.structural_hash()
        mig.name = "renamed"
        mig._pi_names = [f"in{i}" for i in range(mig.num_pis)]
        mig._output_names = [f"out{i}" for i in range(mig.num_pos)]
        assert mig.structural_hash() == before

    @settings(max_examples=40, deadline=None)
    @given(random_mig(), st.randoms(use_true_random=False))
    def test_dead_node_invariance(self, mig, rng):
        before = mig.structural_hash()
        # Grow dead logic: gates reachable from nothing the outputs see.
        signals = [CONST0] + mig.pi_signals()
        for _ in range(3):
            picks = [rng.choice(signals) ^ rng.randint(0, 1) for _ in range(3)]
            signals.append(mig.maj(*picks))
        assert mig.structural_hash() == before
        assert mig.cleanup().structural_hash() == before

    def test_symmetric_operand_order(self):
        hashes = set()
        for order in ((0, 1, 2), (2, 0, 1), (1, 2, 0)):
            mig = Mig(3)
            pis = mig.pi_signals()
            mig.add_po(mig.maj(*[pis[i] for i in order]))
            hashes.add(mig.structural_hash())
        assert len(hashes) == 1


class TestDiscrimination:
    @settings(max_examples=60, deadline=None)
    @given(random_mig(max_pis=4), random_mig(max_pis=4))
    def test_equal_hash_implies_equal_function(self, a, b):
        """The cache-safety direction: a hash collision between
        functionally different networks would serve wrong answers."""
        if a.structural_hash() == b.structural_hash():
            assert a.num_pis == b.num_pis
            assert a.simulate() == b.simulate()

    @settings(max_examples=40, deadline=None)
    @given(random_mig())
    def test_output_polarity_distinguishes(self, mig):
        before = mig.structural_hash()
        mig._outputs[-1] ^= 1
        assert mig.structural_hash() != before

    def test_output_order_distinguishes(self):
        a, b = Mig(2), Mig(2)
        for net in (a, b):
            x, y = net.pi_signals()
            first, second = (x, y) if net is a else (y, x)
            net.add_po(first)
            net.add_po(second)
        assert a.structural_hash() != b.structural_hash()

    def test_pi_count_distinguishes(self):
        a, b = Mig(2), Mig(3)
        for net in (a, b):
            x, y = net.pi_signals()[:2]
            net.add_po(net.maj(x, y, CONST0))
        assert a.structural_hash() != b.structural_hash()

    def test_arity_distinguishes_mig_from_aig(self):
        mig, aig = Mig(2), Aig(2)
        for net in (mig, aig):
            x, y = net.pi_signals()
            net.add_po(x)
            net.add_po(y)
        assert mig.structural_hash() != aig.structural_hash()

    def test_distinct_functions_differ(self):
        and_net, or_net = Mig(2), Mig(2)
        x, y = and_net.pi_signals()
        and_net.add_po(and_net.maj(x, y, CONST0))
        x, y = or_net.pi_signals()
        or_net.add_po(or_net.maj(x, y, CONST0 ^ 1))
        assert and_net.structural_hash() != or_net.structural_hash()


class TestStability:
    def test_hash_is_hex_sha256(self):
        mig = Mig(2)
        x, y = mig.pi_signals()
        mig.add_po(mig.maj(x, y, CONST0))
        digest = mig.structural_hash()
        assert len(digest) == 64
        int(digest, 16)

    def test_repeated_calls_are_deterministic(self):
        from repro.generators.epfl import SUITE_SPECS

        _, generator, _, _ = SUITE_SPECS["adder"]
        a, b = generator(width=4), generator(width=4)
        assert a.structural_hash() == b.structural_hash()
        assert a.structural_hash() == a.structural_hash()

    def test_optimized_network_hashes_differently_when_structure_changes(self):
        # Not a strict requirement (an optimizer could return an identical
        # DAG) but documents the common case the cache relies on: the
        # request key hashes the *input*, not the output.
        mig = Mig(3)
        a, b, c = mig.pi_signals()
        t = mig.maj(a, b, CONST0)
        mig.add_po(mig.maj(t, c, CONST0))
        smaller = Mig(3)
        a, b, c = smaller.pi_signals()
        smaller.add_po(smaller.maj(a, b, c))
        assert mig.structural_hash() != smaller.structural_hash()


@pytest.mark.parametrize("width", [2, 4])
def test_blif_roundtrip_preserves_hash(width, tmp_path):
    """Serialize → parse must be hash-neutral: the daemon hashes what it
    parsed from the upload, the worker re-reads the materialized file."""
    import io

    from repro.generators.epfl import SUITE_SPECS
    from repro.io.blif import read_blif, write_blif

    _, generator, _, _ = SUITE_SPECS["adder"]
    mig = generator(width=width)
    buf = io.StringIO()
    write_blif(mig, buf)
    reread = read_blif(io.StringIO(buf.getvalue()))
    assert reread.structural_hash() == mig.structural_hash()

"""Tests for NPN classification (Sec. II-D of the paper)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.npn import (
    NPNTransform,
    apply_transform,
    compose_transforms,
    enumerate_npn_classes,
    identity_transform,
    invert_transform,
    npn_canonize,
    npn_canonize_batch,
    npn_class_sizes,
    npn_representative,
)
from repro.core.truth_table import tt_mask, tt_not, tt_permute, tt_var

tt4 = st.integers(min_value=0, max_value=0xFFFF)


def random_transform(draw) -> NPNTransform:
    perm = tuple(draw(st.permutations(list(range(4)))))
    flips = draw(st.integers(min_value=0, max_value=15))
    out = draw(st.booleans())
    return NPNTransform(perm, flips, out)


transforms = st.builds(
    NPNTransform,
    st.permutations(list(range(4))).map(tuple),
    st.integers(min_value=0, max_value=15),
    st.booleans(),
)


class TestClassCounts:
    """The paper's class counts: 2, 4, 14, 222 for n = 1..4 (Sec. II-D)."""

    def test_counts_match_paper(self):
        assert len(enumerate_npn_classes(1)) == 2
        assert len(enumerate_npn_classes(2)) == 4
        assert len(enumerate_npn_classes(3)) == 14
        assert len(enumerate_npn_classes(4)) == 222

    def test_five_variables_rejected(self):
        with pytest.raises(ValueError):
            enumerate_npn_classes(5)

    def test_class_sizes_partition_the_space(self):
        for n in (1, 2, 3):
            sizes = npn_class_sizes(n)
            assert sum(sizes.values()) == 1 << (1 << n)

    def test_class_sizes_partition_n4(self):
        sizes = npn_class_sizes(4)
        assert sum(sizes.values()) == 65536
        assert len(sizes) == 222

    def test_representatives_are_minimal(self):
        for rep in enumerate_npn_classes(3):
            assert npn_representative(rep, 3) == rep


class TestCanonize:
    @given(tt4)
    @settings(max_examples=60)
    def test_roundtrip(self, f):
        rep, t = npn_canonize(f, 4)
        assert apply_transform(rep, t, 4) == f

    @given(tt4, transforms)
    @settings(max_examples=60)
    def test_invariance_under_transform(self, f, t):
        g = apply_transform(f, t, 4)
        assert npn_representative(f, 4) == npn_representative(g, 4)

    @given(tt4)
    @settings(max_examples=40)
    def test_representative_is_orbit_minimum(self, f):
        rep, _ = npn_canonize(f, 4)
        assert rep <= f
        assert rep <= (f ^ tt_mask(4))

    def test_complement_same_class(self):
        f = 0x1668
        assert npn_representative(f, 4) == npn_representative(
            tt_not(f, 4), 4
        )

    def test_permutation_same_class(self):
        f = tt_var(4, 0) & tt_var(4, 1) | tt_var(4, 2)
        g = tt_permute(f, (3, 2, 1, 0), 4)
        assert npn_representative(f, 4) == npn_representative(g, 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            npn_canonize(0x10000, 4)


class TestTransformAlgebra:
    @given(tt4, transforms)
    @settings(max_examples=60)
    def test_inverse(self, f, t):
        assert apply_transform(apply_transform(f, t, 4), invert_transform(t), 4) == f

    @given(tt4, transforms, transforms)
    @settings(max_examples=60)
    def test_composition(self, f, outer, inner):
        composed = compose_transforms(outer, inner)
        assert apply_transform(f, composed, 4) == apply_transform(
            apply_transform(f, inner, 4), outer, 4
        )

    @given(tt4)
    def test_identity(self, f):
        assert apply_transform(f, identity_transform(4), 4) == f


class TestBatchCanonize:
    """npn_canonize_batch must be bit-identical to the scalar path —
    representative AND transform, including the first-wins tie-break and
    the phase pre-filter's extra output flip."""

    @pytest.mark.parametrize("num_vars", [0, 1, 2, 3])
    def test_exhaustive_small(self, num_vars):
        fs = list(range(1 << (1 << num_vars)))
        batch = npn_canonize_batch(fs, num_vars)
        for f, got in zip(fs, batch):
            assert got == npn_canonize(f, num_vars)

    @given(st.lists(tt4, min_size=0, max_size=64))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_n4(self, fs):
        batch = npn_canonize_batch(fs, 4)
        assert batch == [npn_canonize(f, 4) for f in fs]

    def test_edge_tables(self):
        # Constants, single minterms, balanced and self-dual functions —
        # the tie-break-sensitive corners.
        edges = [0, 0xFFFF, 0x8000, 0x0001, 0xAAAA, 0x5555, 0x6996, 0xE8E8, 0xCAFE]
        batch = npn_canonize_batch(edges, 4)
        for f, (rep, t) in zip(edges, batch):
            assert (rep, t) == npn_canonize(f, 4)
            assert apply_transform(rep, t, 4) == f

    def test_chunking_is_invisible(self):
        fs = [((37 * i) ^ (i << 7)) & 0xFFFF for i in range(300)]
        assert npn_canonize_batch(fs, 4, chunk=16) == npn_canonize_batch(fs, 4)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            npn_canonize_batch([0x10000], 4)
        with pytest.raises(ValueError):
            npn_canonize_batch([[1, 2]], 4)

    def test_matches_scalar_n5(self):
        rng = random.Random(61)
        fs = [rng.getrandbits(32) for _ in range(24)]
        fs += [0, 0xFFFFFFFF, 0x80000000, 0x1, 0xAAAAAAAA, 0x96696996]
        batch = npn_canonize_batch(fs, 5)
        for f, (rep, t) in zip(fs, batch):
            assert (rep, t) == npn_canonize(f, 5)
            assert apply_transform(rep, t, 5) == f

    def test_matches_scalar_n6(self):
        # The scalar 6-var canonizer walks all 46080 transforms per call
        # (~0.2 s each), so this differential stays deliberately tiny.
        rng = random.Random(67)
        fs = [rng.getrandbits(64) for _ in range(4)] + [0, (1 << 64) - 1]
        batch = npn_canonize_batch(fs, 6)
        for f, (rep, t) in zip(fs, batch):
            assert (rep, t) == npn_canonize(f, 6)
            assert apply_transform(rep, t, 6) == f

    def test_chunking_is_invisible_n5(self):
        # The wide-arity path sizes its transform blocks from the chunk
        # width; an odd chunk must not change a single result.
        fs = [((2654435761 * i) ^ (i << 19)) & 0xFFFFFFFF for i in range(90)]
        assert npn_canonize_batch(fs, 5, chunk=7) == npn_canonize_batch(fs, 5)

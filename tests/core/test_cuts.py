"""Tests for k-feasible cut enumeration (Sec. II-C of the paper)."""

from __future__ import annotations

import pytest

from repro.core.cuts import cut_cone, enumerate_cuts, mffc_nodes, mffc_size
from repro.core.mig import CONST0, Mig, signal_not
from repro.generators import epfl


def build_chain(length: int = 5) -> Mig:
    mig = Mig(length + 2)
    sigs = mig.pi_signals()
    acc = mig.maj(CONST0, sigs[0], sigs[1])
    for i in range(2, length + 2):
        acc = mig.maj(CONST0, acc, sigs[i])
    mig.add_po(acc)
    return mig


class TestEnumeration:
    def test_terminal_cuts(self, full_adder):
        cuts = enumerate_cuts(full_adder, 4)
        assert cuts[0] == [()]
        for pi in (1, 2, 3):
            assert cuts[pi] == [(pi,)]

    def test_trivial_cut_present(self, full_adder):
        cuts = enumerate_cuts(full_adder, 4)
        for node in full_adder.gates():
            assert (node,) in cuts[node]

    def test_full_adder_cut_counts(self, full_adder):
        cuts = enumerate_cuts(full_adder, 4)
        first_gate = next(iter(full_adder.gates()))
        # <abc> has the PI cut and the trivial cut.
        assert set(cuts[first_gate]) == {(1, 2, 3), (first_gate,)}

    def test_cut_validity(self, suite_small):
        """Every enumerated cut must be a real cut: cones bounded by leaves."""
        mig = suite_small[1]  # multiplier(4)
        cuts = enumerate_cuts(mig, 4, cut_limit=10)
        for node in mig.gates():
            for leaves in cuts[node]:
                if leaves == (node,):
                    continue
                cone = cut_cone(mig, node, leaves)  # raises if invalid
                assert node in cone
                assert len(leaves) <= 4

    def test_k_bound_respected(self, suite_small):
        mig = suite_small[0]
        for k in (2, 3, 4, 5):
            cuts = enumerate_cuts(mig, k, cut_limit=20)
            for node in mig.gates():
                for leaves in cuts[node]:
                    assert len(leaves) <= k

    def test_cut_limit(self, suite_small):
        mig = suite_small[1]
        cuts = enumerate_cuts(mig, 4, cut_limit=5)
        for node in mig.gates():
            # limit + possibly the trivial cut
            assert len(cuts[node]) <= 6

    def test_no_dominated_cuts(self, full_adder):
        cuts = enumerate_cuts(full_adder, 4)
        for node in full_adder.gates():
            entries = [set(c) for c in cuts[node] if c != (node,)]
            for i, a in enumerate(entries):
                for j, b in enumerate(entries):
                    if i != j:
                        assert not (a < b and len(a) < len(b)) or a == b

    def test_rejects_bad_k(self, full_adder):
        with pytest.raises(ValueError):
            enumerate_cuts(full_adder, 0)

    def test_cut_functions_consistent(self, full_adder):
        """Cut functions evaluate consistently with global simulation."""
        cuts = enumerate_cuts(full_adder, 4)
        out_node = full_adder.outputs[0] >> 1
        for leaves in cuts[out_node]:
            if leaves == (out_node,):
                continue
            tt = full_adder.cut_function(out_node, leaves)
            assert 0 <= tt <= (1 << (1 << len(leaves))) - 1


class TestCutCone:
    def test_chain_cone(self):
        mig = build_chain(4)
        last = mig.num_nodes - 1
        leaves = tuple(range(1, mig.num_pis + 1))
        cone = cut_cone(mig, last, leaves)
        assert len(cone) == mig.num_gates
        assert cone[-1] == last  # topological order, root last

    def test_invalid_leaves_raise(self):
        mig = build_chain(3)
        last = mig.num_nodes - 1
        with pytest.raises(ValueError):
            cut_cone(mig, last, (1,))


class TestMffc:
    def test_chain_mffc_is_whole_chain(self):
        mig = build_chain(4)
        last = mig.num_nodes - 1
        assert mffc_size(mig, last) == mig.num_gates

    def test_shared_node_not_in_mffc(self, full_adder):
        # cout (first gate) is shared: feeds the sum cone AND is an output.
        gates = list(full_adder.gates())
        sum_root = full_adder.outputs[0] >> 1
        cone = mffc_nodes(full_adder, sum_root)
        first_gate = gates[0]
        assert first_gate not in cone

    def test_mffc_of_multiplier_bounded(self, suite_small):
        mig = suite_small[1]
        fanout = mig.fanout_counts()
        for node in list(mig.gates())[:50]:
            size = mffc_size(mig, node, fanout)
            assert 1 <= size <= mig.num_gates


class TestCutOrdering:
    """Cut lists are sorted by leaf count — smallest (cheapest) first.

    The seed appended the trivial cut unconditionally, which broke the
    ordering invariant whenever a gate also had 2- or 3-leaf cuts after
    it in the priority list; the trivial cut is now inserted in sorted
    position.
    """

    def test_sorted_by_leaf_count(self, suite_small):
        for mig in suite_small:
            cuts = enumerate_cuts(mig, 4, cut_limit=8)
            for node in mig.gates():
                lengths = [len(leaves) for leaves in cuts[node]]
                assert lengths == sorted(lengths), (mig.name, node)

    def test_trivial_cut_in_sorted_position(self, suite_small):
        mig = suite_small[6]  # sine(6): plenty of multi-cut gates
        cuts = enumerate_cuts(mig, 4, cut_limit=8)
        checked = 0
        for node in mig.gates():
            entries = cuts[node]
            if (node,) not in entries:
                continue
            pos = entries.index((node,))
            # Every cut before the trivial one must be a singleton too.
            assert all(len(leaves) == 1 for leaves in entries[:pos])
            checked += 1
        assert checked > 0

    def test_ordering_survives_cut_limit(self, suite_small):
        mig = suite_small[1]
        for limit in (1, 2, 5):
            cuts = enumerate_cuts(mig, 4, cut_limit=limit)
            for node in mig.gates():
                lengths = [len(leaves) for leaves in cuts[node]]
                assert lengths == sorted(lengths)


class TestCutSet:
    """Incremental cut functions and exact cone sizes (docs/PERFORMANCE.md)."""

    def test_functions_match_cone_simulation(self, suite_small):
        from repro.core.cuts import enumerate_cut_set

        mig = suite_small[5]  # square_root(4)
        cuts = enumerate_cut_set(mig, k=4, cut_limit=8)
        for node in mig.gates():
            for leaves in cuts[node]:
                if leaves == (node,) or node in leaves:
                    continue
                assert cuts.function(node, leaves) == mig.cut_function(node, leaves)

    def test_function_memoized(self, full_adder):
        from repro.core.cuts import enumerate_cut_set
        from repro.runtime.metrics import PassMetrics

        metrics = PassMetrics()
        cuts = enumerate_cut_set(full_adder, k=4, metrics=metrics)
        node = full_adder.outputs[0] >> 1
        leaves = next(c for c in cuts[node] if c != (node,))
        first = cuts.function(node, leaves)
        computed = metrics.cut_functions_computed
        assert cuts.function(node, leaves) == first  # second query: memo hit
        assert metrics.cut_functions_computed == computed
        assert metrics.cut_function_cache_hits >= 1

    def test_restricted_cone_sizes_exact(self, suite_small):
        from repro.core.cuts import cut_cone_nodes, enumerate_cut_set

        mig = suite_small[7]  # log2(6)
        fanout = mig.fanout_counts()
        cuts = enumerate_cut_set(mig, k=4, cut_limit=8, ffr_fanout=fanout)
        checked = 0
        for node in mig.gates():
            for leaves in cuts[node]:
                if leaves == (node,) or node in leaves:
                    continue
                size = cuts.cone_size(node, leaves)
                internal = cut_cone_nodes(mig, node, leaves, fanout)
                assert isinstance(internal, set), "restricted cut not fanout-free"
                assert size == len(internal)
                checked += 1
        assert checked > 0

    def test_restricted_is_subset_of_unrestricted(self, suite_small):
        mig = suite_small[3]  # max4(4)
        fanout = mig.fanout_counts()
        free = enumerate_cuts(mig, 4, cut_limit=25)
        from repro.core.cuts import enumerate_cut_set

        restricted = enumerate_cut_set(mig, k=4, cut_limit=25, ffr_fanout=fanout)
        for node in mig.gates():
            assert set(restricted[node]) <= set(free[node])

"""Tests for k-feasible cut enumeration (Sec. II-C of the paper)."""

from __future__ import annotations

import pytest

from repro.core.cuts import cut_cone, enumerate_cuts, mffc_nodes, mffc_size
from repro.core.mig import CONST0, Mig, signal_not
from repro.generators import epfl


def build_chain(length: int = 5) -> Mig:
    mig = Mig(length + 2)
    sigs = mig.pi_signals()
    acc = mig.maj(CONST0, sigs[0], sigs[1])
    for i in range(2, length + 2):
        acc = mig.maj(CONST0, acc, sigs[i])
    mig.add_po(acc)
    return mig


class TestEnumeration:
    def test_terminal_cuts(self, full_adder):
        cuts = enumerate_cuts(full_adder, 4)
        assert cuts[0] == [()]
        for pi in (1, 2, 3):
            assert cuts[pi] == [(pi,)]

    def test_trivial_cut_present(self, full_adder):
        cuts = enumerate_cuts(full_adder, 4)
        for node in full_adder.gates():
            assert (node,) in cuts[node]

    def test_full_adder_cut_counts(self, full_adder):
        cuts = enumerate_cuts(full_adder, 4)
        first_gate = next(iter(full_adder.gates()))
        # <abc> has the PI cut and the trivial cut.
        assert set(cuts[first_gate]) == {(1, 2, 3), (first_gate,)}

    def test_cut_validity(self, suite_small):
        """Every enumerated cut must be a real cut: cones bounded by leaves."""
        mig = suite_small[1]  # multiplier(4)
        cuts = enumerate_cuts(mig, 4, cut_limit=10)
        for node in mig.gates():
            for leaves in cuts[node]:
                if leaves == (node,):
                    continue
                cone = cut_cone(mig, node, leaves)  # raises if invalid
                assert node in cone
                assert len(leaves) <= 4

    def test_k_bound_respected(self, suite_small):
        mig = suite_small[0]
        for k in (2, 3, 4, 5):
            cuts = enumerate_cuts(mig, k, cut_limit=20)
            for node in mig.gates():
                for leaves in cuts[node]:
                    assert len(leaves) <= k

    def test_cut_limit(self, suite_small):
        mig = suite_small[1]
        cuts = enumerate_cuts(mig, 4, cut_limit=5)
        for node in mig.gates():
            # limit + possibly the trivial cut
            assert len(cuts[node]) <= 6

    def test_no_dominated_cuts(self, full_adder):
        cuts = enumerate_cuts(full_adder, 4)
        for node in full_adder.gates():
            entries = [set(c) for c in cuts[node] if c != (node,)]
            for i, a in enumerate(entries):
                for j, b in enumerate(entries):
                    if i != j:
                        assert not (a < b and len(a) < len(b)) or a == b

    def test_rejects_bad_k(self, full_adder):
        with pytest.raises(ValueError):
            enumerate_cuts(full_adder, 0)

    def test_cut_functions_consistent(self, full_adder):
        """Cut functions evaluate consistently with global simulation."""
        cuts = enumerate_cuts(full_adder, 4)
        out_node = full_adder.outputs[0] >> 1
        for leaves in cuts[out_node]:
            if leaves == (out_node,):
                continue
            tt = full_adder.cut_function(out_node, leaves)
            assert 0 <= tt <= (1 << (1 << len(leaves))) - 1


class TestCutCone:
    def test_chain_cone(self):
        mig = build_chain(4)
        last = mig.num_nodes - 1
        leaves = tuple(range(1, mig.num_pis + 1))
        cone = cut_cone(mig, last, leaves)
        assert len(cone) == mig.num_gates
        assert cone[-1] == last  # topological order, root last

    def test_invalid_leaves_raise(self):
        mig = build_chain(3)
        last = mig.num_nodes - 1
        with pytest.raises(ValueError):
            cut_cone(mig, last, (1,))


class TestMffc:
    def test_chain_mffc_is_whole_chain(self):
        mig = build_chain(4)
        last = mig.num_nodes - 1
        assert mffc_size(mig, last) == mig.num_gates

    def test_shared_node_not_in_mffc(self, full_adder):
        # cout (first gate) is shared: feeds the sum cone AND is an output.
        gates = list(full_adder.gates())
        sum_root = full_adder.outputs[0] >> 1
        cone = mffc_nodes(full_adder, sum_root)
        first_gate = gates[0]
        assert first_gate not in cone

    def test_mffc_of_multiplier_bounded(self, suite_small):
        mig = suite_small[1]
        fanout = mig.fanout_counts()
        for node in list(mig.gates())[:50]:
            size = mffc_size(mig, node, fanout)
            assert 1 <= size <= mig.num_gates

"""Tests for MIG pretty-printing and miscellaneous core helpers."""

from __future__ import annotations

from repro.core.mig import CONST0, CONST1, Mig, signal_not
from repro.core.truth_table import tt_ite, tt_mask, tt_var


class TestExpressions:
    def test_signal_names(self, full_adder):
        assert full_adder.signal_name(0) == "0"
        assert full_adder.signal_name(1) == "!0"
        assert full_adder.signal_name(2) == "x0"
        assert full_adder.signal_name(3) == "!x0"
        gate = next(iter(full_adder.gates()))
        assert full_adder.signal_name(gate << 1) == f"n{gate}"

    def test_custom_pi_names(self):
        mig = Mig()
        a = mig.add_pi("alpha")
        assert mig.signal_name(a) == "alpha"
        assert mig.signal_name(signal_not(a)) == "!alpha"

    def test_expression_nesting(self):
        mig = Mig(3)
        a, b, c = mig.pi_signals()
        inner = mig.maj(CONST0, a, b)
        outer = mig.maj(inner, c, CONST1)
        expr = mig.to_expression(outer)
        assert expr.count("<") == 2
        assert "x0" in expr and "x2" in expr

    def test_expression_of_terminal(self, full_adder):
        assert full_adder.to_expression(2) == "x0"
        assert full_adder.to_expression(3) == "!x0"

    def test_complemented_expression_prefix(self):
        mig = Mig(3)
        a, b, c = mig.pi_signals()
        g = mig.maj(a, b, c)
        assert mig.to_expression(signal_not(g)).startswith("!<")


class TestTtIte:
    def test_ite_semantics(self):
        c, t, e = tt_var(3, 0), tt_var(3, 1), tt_var(3, 2)
        got = tt_ite(c, t, e, 3)
        expected = (c & t) | ((c ^ tt_mask(3)) & e)
        assert got == expected

    def test_ite_constants(self):
        t, e = tt_var(2, 0), tt_var(2, 1)
        assert tt_ite(tt_mask(2), t, e, 2) == t
        assert tt_ite(0, t, e, 2) == e


class TestConstSignals:
    def test_maj_with_both_constants(self):
        mig = Mig(1)
        (a,) = mig.pi_signals()
        # <0 1 a> = a  (constants are complements of each other)
        assert mig.maj(CONST0, CONST1, a) == a

    def test_po_to_constant(self):
        mig = Mig(1)
        mig.add_po(CONST1, "one")
        assert mig.simulate() == [tt_mask(1)]

    def test_empty_network_depth(self):
        mig = Mig(2)
        assert mig.depth() == 0
        mig.add_po(CONST0)
        assert mig.depth() == 0

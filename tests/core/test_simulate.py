"""Tests for equivalence-checking helpers."""

from __future__ import annotations

import pytest

from repro.core.mig import CONST0, Mig, signal_not
from repro.core.simulate import (
    check_equivalence,
    equivalent_exhaustive,
    equivalent_random,
)


def two_xor_forms() -> tuple[Mig, Mig]:
    m1 = Mig(2)
    a, b = m1.pi_signals()
    m1.add_po(m1.xor(a, b))
    m2 = Mig(2)
    a, b = m2.pi_signals()
    # a xor b = (a | b) & !(a & b) built differently: !(a&b) & (a|b)
    m2.add_po(m2.and_(signal_not(m2.and_(a, b)), m2.or_(a, b)))
    return m1, m2


class TestExhaustive:
    def test_equivalent_forms(self):
        m1, m2 = two_xor_forms()
        assert equivalent_exhaustive(m1, m2)

    def test_detects_difference(self):
        m1, _ = two_xor_forms()
        m3 = Mig(2)
        a, b = m3.pi_signals()
        m3.add_po(m3.and_(a, b))
        assert not equivalent_exhaustive(m1, m3)

    def test_interface_mismatch(self):
        m1, _ = two_xor_forms()
        m3 = Mig(3)
        m3.add_po(CONST0)
        with pytest.raises(ValueError):
            equivalent_exhaustive(m1, m3)


class TestRandom:
    def test_equivalent_not_refuted(self):
        m1, m2 = two_xor_forms()
        assert equivalent_random(m1, m2)

    def test_refutes_difference(self):
        m1, _ = two_xor_forms()
        m3 = Mig(2)
        a, b = m3.pi_signals()
        m3.add_po(m3.or_(a, b))
        assert not equivalent_random(m1, m3)


class TestDispatch:
    def test_small_uses_exhaustive(self):
        m1, m2 = two_xor_forms()
        assert check_equivalence(m1, m2)

    def test_wide_network_uses_random(self):
        m1 = Mig(20)
        sigs = m1.pi_signals()
        acc = sigs[0]
        for s in sigs[1:]:
            acc = m1.and_(acc, s)
        m1.add_po(acc)
        m2 = Mig(20)
        sigs = m2.pi_signals()
        acc = sigs[-1]
        for s in reversed(sigs[:-1]):
            acc = m2.and_(acc, s)
        m2.add_po(acc)
        assert check_equivalence(m1, m2)

"""Tests for repro.core.truth_table."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.truth_table import (
    TruthTable,
    tt_and,
    tt_cofactor0,
    tt_cofactor1,
    tt_count_ones,
    tt_depends_on,
    tt_evaluate,
    tt_extend,
    tt_flip_input,
    tt_from_hex,
    tt_is_const,
    tt_maj,
    tt_mask,
    tt_not,
    tt_or,
    tt_permute,
    tt_shrink_to_support,
    tt_support,
    tt_swap_adjacent,
    tt_to_hex,
    tt_var,
    tt_xor,
)

tt4 = st.integers(min_value=0, max_value=0xFFFF)
var4 = st.integers(min_value=0, max_value=3)


class TestBasics:
    def test_mask_sizes(self):
        assert tt_mask(0) == 1
        assert tt_mask(1) == 0b11
        assert tt_mask(2) == 0xF
        assert tt_mask(4) == 0xFFFF

    def test_mask_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            tt_mask(-1)
        with pytest.raises(ValueError):
            tt_mask(17)

    def test_var_patterns(self):
        assert tt_var(2, 0) == 0b1010
        assert tt_var(2, 1) == 0b1100
        assert tt_var(3, 2) == 0xF0

    def test_var_rejects_bad_index(self):
        with pytest.raises(ValueError):
            tt_var(3, 3)

    def test_ops_on_projections(self):
        a, b = tt_var(2, 0), tt_var(2, 1)
        assert tt_and(a, b) == 0b1000
        assert tt_or(a, b) == 0b1110
        assert tt_xor(a, b) == 0b0110
        assert tt_not(a, 2) == 0b0101

    def test_maj_definition(self):
        a, b, c = tt_var(3, 0), tt_var(3, 1), tt_var(3, 2)
        maj = tt_maj(a, b, c)
        for m in range(8):
            bits = sum((m >> i) & 1 for i in range(3))
            assert tt_evaluate(maj, m) == (bits >= 2)

    def test_maj_with_constants_gives_and_or(self):
        a, b = tt_var(2, 0), tt_var(2, 1)
        assert tt_maj(0, a, b) == tt_and(a, b)
        assert tt_maj(tt_mask(2), a, b) == tt_or(a, b)

    def test_hex_roundtrip(self):
        assert tt_to_hex(0x1668, 4) == "1668"
        assert tt_from_hex("1668", 4) == 0x1668
        with pytest.raises(ValueError):
            tt_from_hex("1FFFF", 4)


class TestCofactors:
    @given(tt4, var4)
    def test_cofactors_remove_dependence(self, f, i):
        assert not tt_depends_on(tt_cofactor0(f, i, 4), i, 4)
        assert not tt_depends_on(tt_cofactor1(f, i, 4), i, 4)

    @given(tt4, var4)
    def test_shannon_expansion(self, f, i):
        var = tt_var(4, i)
        f0 = tt_cofactor0(f, i, 4)
        f1 = tt_cofactor1(f, i, 4)
        assert (var & f1) | (~var & tt_mask(4) & f0) == f

    @given(tt4, var4)
    def test_flip_input_involution(self, f, i):
        assert tt_flip_input(tt_flip_input(f, i, 4), i, 4) == f

    def test_support(self):
        assert tt_support(tt_var(4, 2), 4) == (2,)
        assert tt_support(0, 4) == ()
        a, c = tt_var(4, 0), tt_var(4, 2)
        assert tt_support(a & c, 4) == (0, 2)


class TestExtendShrink:
    @given(st.integers(min_value=0, max_value=0xF))
    def test_extend_preserves_semantics(self, f):
        g = tt_extend(f, 2, 4)
        for m in range(16):
            assert tt_evaluate(g, m) == tt_evaluate(f, m & 0b11)

    @given(tt4)
    def test_shrink_then_extend(self, f):
        g, support = tt_shrink_to_support(f, 4)
        assert len(support) == len(tt_support(f, 4))
        # Re-evaluating g on projected assignments reproduces f.
        for m in range(16):
            mm = 0
            for j, v in enumerate(support):
                mm |= ((m >> v) & 1) << j
            assert tt_evaluate(f, m) == tt_evaluate(g, mm)


class TestPermute:
    @given(tt4)
    def test_identity_permutation(self, f):
        assert tt_permute(f, (0, 1, 2, 3), 4) == f

    @given(tt4, st.permutations(list(range(4))))
    def test_permute_semantics(self, f, perm):
        g = tt_permute(f, perm, 4)
        for m in range(16):
            mp = 0
            for j in range(4):
                mp |= ((m >> perm[j]) & 1) << j
            assert tt_evaluate(g, m) == tt_evaluate(f, mp)

    def test_permute_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            tt_permute(0x1234, (0, 0, 1, 2), 4)

    @given(tt4, st.integers(min_value=0, max_value=2))
    def test_swap_adjacent_is_transposition(self, f, i):
        perm = list(range(4))
        perm[i], perm[i + 1] = perm[i + 1], perm[i]
        assert tt_swap_adjacent(f, i, 4) == tt_permute(f, perm, 4)


class TestTruthTableClass:
    def test_constructors(self):
        assert TruthTable.const0(3).bits == 0
        assert TruthTable.const1(3).bits == 0xFF
        assert TruthTable.var(2, 1).bits == 0b1100
        assert TruthTable.from_hex("8", 2).bits == 0x8

    def test_from_values(self):
        tt = TruthTable.from_values([0, 1, 1, 0])
        assert tt.num_vars == 2
        assert tt.bits == 0b0110

    def test_from_values_rejects_bad_length(self):
        with pytest.raises(ValueError):
            TruthTable.from_values([0, 1, 1])

    def test_operators(self):
        a, b = TruthTable.var(2, 0), TruthTable.var(2, 1)
        assert (a & b).bits == 0b1000
        assert (a | b).bits == 0b1110
        assert (a ^ b).bits == 0b0110
        assert (~a).bits == 0b0101
        assert TruthTable.maj(a, b, ~a).bits == b.bits  # <a b a'> = b

    def test_mixed_arity_rejected(self):
        with pytest.raises(ValueError):
            TruthTable.var(2, 0) & TruthTable.var(3, 0)

    def test_queries(self):
        a, b = TruthTable.var(2, 0), TruthTable.var(2, 1)
        f = a & b
        assert f.support() == (0, 1)
        assert f.count_ones() == 1
        assert not f.is_const()
        assert f.evaluate(3) and not f.evaluate(1)
        assert f.cofactor(0, 1).bits == b.bits
        assert str(f) == "0x8"

    def test_iteration(self):
        assert list(TruthTable.var(1, 0)) == [False, True]

    def test_out_of_range_bits(self):
        with pytest.raises(ValueError):
            TruthTable(2, 0x10)

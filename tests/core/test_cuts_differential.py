"""Differential tests: the arity-generic cut enumerator vs the frozen
pre-refactor enumerators.

Two oracles are embedded below, copied from the tree as it stood before
the kernel refactor unified ``core/cuts.py`` and ``aig/cuts.py``:

* ``oracle_mig_cuts`` — the MIG ``_enumerate``/``_merge3`` core.  The
  generic enumerator must reproduce its per-node cut **lists exactly**
  (same cuts, same order), in plain and FFR-restricted mode.
* ``oracle_aig_cuts`` — the deleted ``aig/cuts.py`` enumerator.  It
  appended the trivial cut while the generic enumerator insorts it by
  leaf count, so per-node comparison is by **set**; with pruning
  disabled by a large ``cut_limit`` the sets must be identical.

Do not "fix" the oracles — they are the spec.
"""

from __future__ import annotations

from bisect import insort

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.aig import Aig
from repro.aig.cuts import aig_cut_function, enumerate_aig_cuts
from repro.core.cuts import enumerate_cut_set, enumerate_cuts
from repro.core.mig import Mig
from repro.core.simengine import cone_function
from repro.core.truth_table import tt_extend, tt_mask

# ---------------------------------------------------------------------------
# frozen pre-refactor MIG enumerator
# ---------------------------------------------------------------------------


def _signature(leaves):
    sig = 0
    for leaf in leaves:
        sig |= 1 << (leaf & 63)
    return sig


def _oracle_merge3(set1, set2, set3, k):
    result = {}
    for leaves1, sig1, size1 in set1:
        base1 = set(leaves1)
        for leaves2, sig2, size2 in set2:
            sig12 = sig1 | sig2
            if sig12.bit_count() > k:
                continue
            union12 = base1.union(leaves2)
            if len(union12) > k:
                continue
            size12 = 1 + size1 + size2
            for leaves3, sig3, size3 in set3:
                sig = sig12 | sig3
                if sig.bit_count() > k:
                    continue
                union = union12.union(leaves3)
                if len(union) > k:
                    continue
                leaves = tuple(sorted(union))
                if leaves not in result:
                    result[leaves] = (sig, size12 + size3)
    return _oracle_prune(
        [(leaves, sig, size) for leaves, (sig, size) in result.items()]
    )


def _oracle_prune(cuts):
    cuts.sort(key=lambda item: len(item[0]))
    kept = []
    for entry in cuts:
        leaves, sig = entry[0], entry[1]
        leaf_set = None
        dominated = False
        for other in kept:
            if other[1] & ~sig or len(other[0]) >= len(leaves):
                continue
            if leaf_set is None:
                leaf_set = set(leaves)
            if leaf_set.issuperset(other[0]):
                dominated = True
                break
        if not dominated:
            kept.append(entry)
    return kept


def oracle_mig_cuts(mig, k=4, cut_limit=25, include_trivial=True, ffr_fanout=None):
    num_nodes = mig.num_nodes
    work = [[] for _ in range(num_nodes)]
    work[0] = [((), 0, 0)]
    for node in range(1, mig.num_pis + 1):
        leaves = (node,)
        work[node] = [(leaves, _signature(leaves), 0)]
    num_pis = mig.num_pis
    for node in mig.gates():
        sources = []
        for s in mig.fanins(node):
            child = s >> 1
            if ffr_fanout is not None and child > num_pis and ffr_fanout[child] != 1:
                trivial = (child,)
                sources.append([(trivial, _signature(trivial), 0)])
            else:
                sources.append(work[child])
        merged = _oracle_merge3(sources[0], sources[1], sources[2], k)
        if len(merged) > cut_limit:
            merged = merged[:cut_limit]
        entries = list(merged)
        if include_trivial:
            trivial = (node,)
            insort(entries, (trivial, _signature(trivial), 0), key=lambda e: len(e[0]))
        work[node] = entries
    return [[leaves for leaves, _, _ in cuts] for cuts in work]


# ---------------------------------------------------------------------------
# frozen pre-refactor AIG enumerator (the deleted aig/cuts.py core)
# ---------------------------------------------------------------------------


def oracle_aig_cuts(aig, k=4, cut_limit=12):
    num_nodes = aig.num_pis + 1 + aig.num_gates
    work = [[] for _ in range(num_nodes)]
    work[0] = [((), 0)]
    for node in range(1, aig.num_pis + 1):
        work[node] = [((node,), _signature((node,)))]
    for node in aig.gates():
        a, b = aig.fanins(node)
        merged = {}
        for leaves1, sig1 in work[a >> 1]:
            for leaves2, sig2 in work[b >> 1]:
                sig = sig1 | sig2
                if sig.bit_count() > k:
                    continue
                union = set(leaves1)
                union.update(leaves2)
                if len(union) > k:
                    continue
                leaves = tuple(sorted(union))
                merged[leaves] = _signature(leaves)
        items = sorted(merged.items(), key=lambda item: len(item[0]))
        kept = []
        for leaves, sig in items:
            leaf_set = set(leaves)
            if not any(
                len(other) < len(leaves) and leaf_set.issuperset(other)
                for other, _ in kept
            ):
                kept.append((leaves, sig))
        if len(kept) > cut_limit:
            kept = kept[:cut_limit]
        kept.append(((node,), _signature((node,))))
        work[node] = kept
    return [[leaves for leaves, _ in cuts] for cuts in work]


# ---------------------------------------------------------------------------
# random-network strategies
# ---------------------------------------------------------------------------


@st.composite
def random_mig(draw, min_pis=2, max_pis=6, max_gates=20):
    mig = Mig(draw(st.integers(min_value=min_pis, max_value=max_pis)))
    signals = [0] + mig.pi_signals()
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        picks = draw(
            st.lists(
                st.tuples(st.integers(0, len(signals) - 1), st.booleans()),
                min_size=3,
                max_size=3,
            )
        )
        signals.append(mig.maj(*[signals[i] ^ int(c) for i, c in picks]))
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        mig.add_po(signals[draw(st.integers(0, len(signals) - 1))])
    return mig


@st.composite
def random_aig(draw, min_pis=2, max_pis=6, max_gates=20):
    aig = Aig(draw(st.integers(min_value=min_pis, max_value=max_pis)))
    signals = [0] + aig.pi_signals()
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        picks = draw(
            st.lists(
                st.tuples(st.integers(0, len(signals) - 1), st.booleans()),
                min_size=2,
                max_size=2,
            )
        )
        signals.append(aig.and_(*[signals[i] ^ int(c) for i, c in picks]))
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        aig.add_po(signals[draw(st.integers(0, len(signals) - 1))])
    return aig


# ---------------------------------------------------------------------------
# the differentials
# ---------------------------------------------------------------------------


class TestMigDifferential:
    @given(random_mig(), st.integers(min_value=2, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_cut_lists_identical(self, mig, k):
        assert enumerate_cuts(mig, k=k) == oracle_mig_cuts(mig, k=k)

    @given(random_mig())
    @settings(max_examples=20, deadline=None)
    def test_without_trivial_cuts(self, mig):
        assert enumerate_cuts(mig, include_trivial=False) == oracle_mig_cuts(
            mig, include_trivial=False
        )

    @given(random_mig(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_priority_cut_truncation_identical(self, mig, cut_limit):
        assert enumerate_cuts(mig, cut_limit=cut_limit) == oracle_mig_cuts(
            mig, cut_limit=cut_limit
        )

    @given(random_mig())
    @settings(max_examples=20, deadline=None)
    def test_ffr_restricted_mode_identical(self, mig):
        fanout = mig.fanout_counts()
        got = enumerate_cut_set(mig, ffr_fanout=fanout)
        expected = oracle_mig_cuts(mig, ffr_fanout=fanout)
        assert [got[node] for node in mig.nodes()] == expected


class TestAigDifferential:
    # cut_limit large enough that truncation never engages: the old
    # enumerator appended the trivial cut (the generic one insorts it),
    # so under truncation the two may legitimately keep different
    # priority subsets.  Untruncated, the cut sets must be identical.
    UNLIMITED = 10_000

    @given(random_aig(), st.integers(min_value=2, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_cut_sets_identical(self, aig, k):
        got = enumerate_cuts(aig, k=k, cut_limit=self.UNLIMITED)
        expected = oracle_aig_cuts(aig, k=k, cut_limit=self.UNLIMITED)
        assert len(got) == len(expected)
        for node, (g, e) in enumerate(zip(got, expected)):
            assert set(g) == set(e), f"node {node}"

    @given(random_aig())
    @settings(max_examples=20, deadline=None)
    def test_cut_lists_sorted_by_leaf_count(self, aig):
        # The documented ordering contract of the generic enumerator.
        # (Exact tie order differs from the old enumerator because the
        # trivial cut now sits insorted in the *source* lists, shifting
        # merge-dict insertion order at the parent.)
        got = enumerate_cuts(aig, cut_limit=self.UNLIMITED)
        for node in aig.gates():
            lengths = [len(c) for c in got[node]]
            assert lengths == sorted(lengths), f"node {node}"

    @given(random_aig())
    @settings(max_examples=20, deadline=None)
    def test_shim_preserves_the_historical_entry_point(self, aig):
        got = enumerate_aig_cuts(aig, k=4, cut_limit=self.UNLIMITED)
        expected = oracle_aig_cuts(aig, k=4, cut_limit=self.UNLIMITED)
        for g, e in zip(got, expected):
            assert set(g) == set(e)


class TestCutFunctions:
    @given(random_aig())
    @settings(max_examples=20, deadline=None)
    def test_incremental_aig_cut_functions_match_cone_simulation(self, aig):
        # The generalized CutSet.function (2-ary combine) against both
        # the engine's cone evaluation and the old recursive oracle.
        cs = enumerate_cut_set(aig, cut_limit=8)
        for node in aig.gates():
            for leaves in cs[node]:
                got = cs.function(node, leaves)
                assert got == cone_function(aig, node, leaves)
                assert got == aig_cut_function(aig, node, leaves) & tt_mask(
                    len(leaves)
                )

    @given(random_mig())
    @settings(max_examples=20, deadline=None)
    def test_incremental_mig_cut_functions_match_cone_simulation(self, mig):
        cs = enumerate_cut_set(mig, cut_limit=8)
        for node in mig.gates():
            for leaves in cs[node]:
                assert cs.function(node, leaves) == cone_function(mig, node, leaves)


class TestWideCutFunctions:
    """k=5/6 cuts through every evaluation path — lazy scalar, compiled
    batch, slot tables, and the deduplicated batch_tt4s sweep — all
    against cone simulation.  This is the arithmetic the large-cut
    rewriters stand on."""

    @given(random_mig(), st.integers(min_value=5, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_wide_scalar_functions_match_cone_simulation(self, mig, k):
        cs = enumerate_cut_set(mig, k=k, cut_limit=8)
        for node in mig.gates():
            for leaves in cs[node]:
                assert cs.function(node, leaves) == cone_function(mig, node, leaves)

    @given(random_mig(), st.integers(min_value=5, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_compiled_batch_matches_scalar(self, mig, k):
        lazy = enumerate_cut_set(mig, k=k, cut_limit=8)
        compiled = enumerate_cut_set(
            mig, k=k, cut_limit=8, compile_functions=True
        )
        computed = compiled.compute_functions()
        assert computed is not None  # wide cuts must not bail to scalar
        tables = compiled.slot_tables(k)
        assert tables is not None
        for node in mig.gates():
            for entry in compiled.entries[node]:
                leaves, slot = entry[0], entry[3]
                expected = lazy.function(node, leaves)
                assert compiled.function(node, leaves) == expected
                assert tables[slot] == tt_extend(expected, len(leaves), k)

    @given(random_mig(), st.integers(min_value=5, max_value=6))
    @settings(max_examples=15, deadline=None)
    def test_batch_tt4s_equals_scalar_collection(self, mig, k):
        compiled = enumerate_cut_set(
            mig, k=k, cut_limit=8, compile_functions=True
        )
        assert compiled.compute_functions() is not None
        got = [int(v) for v in compiled.batch_tt4s(k)]
        expected = set()
        scalar = enumerate_cut_set(mig, k=k, cut_limit=8)
        for node in mig.gates():
            for leaves in scalar[node]:
                if leaves == (node,):
                    continue
                expected.add(
                    tt_extend(scalar.function(node, leaves), len(leaves), k)
                )
        assert got == sorted(expected)

"""Tests for the MIG data structure (Sec. II-B of the paper)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mig import (
    CONST0,
    CONST1,
    Mig,
    make_signal,
    signal_is_complemented,
    signal_node,
    signal_not,
)
from repro.core.truth_table import tt_maj, tt_mask, tt_var


class TestSignals:
    def test_encoding(self):
        assert make_signal(5) == 10
        assert make_signal(5, True) == 11
        assert signal_node(11) == 5
        assert signal_is_complemented(11)
        assert not signal_is_complemented(10)
        assert signal_not(10) == 11
        assert signal_not(signal_not(10)) == 10

    def test_constants(self):
        assert CONST0 == 0
        assert CONST1 == 1
        assert signal_not(CONST0) == CONST1


class TestConstruction:
    def test_pis_before_gates(self):
        mig = Mig(2)
        a, b = mig.pi_signals()
        mig.maj(CONST0, a, b)
        with pytest.raises(ValueError):
            mig.add_pi()

    def test_unit_rules(self):
        mig = Mig(2)
        a, b = mig.pi_signals()
        assert mig.maj(a, a, b) == a  # <aab> = a
        assert mig.maj(a, signal_not(a), b) == b  # <aa'b> = b
        assert mig.maj(b, a, signal_not(b)) == a
        assert mig.num_gates == 0

    def test_structural_hashing(self):
        mig = Mig(3)
        a, b, c = mig.pi_signals()
        g1 = mig.maj(a, b, c)
        g2 = mig.maj(c, a, b)  # commutative reuse
        assert g1 == g2
        assert mig.num_gates == 1

    def test_self_duality_normalization(self):
        """<a'b'c'> should be stored as the complement of <abc>."""
        mig = Mig(3)
        a, b, c = mig.pi_signals()
        g = mig.maj(a, b, c)
        gn = mig.maj(signal_not(a), signal_not(b), signal_not(c))
        assert gn == signal_not(g)
        assert mig.num_gates == 1

    def test_two_complement_normalization(self):
        mig = Mig(3)
        a, b, c = mig.pi_signals()
        g = mig.maj(signal_not(a), signal_not(b), c)
        # Stored gate must have at most one complemented fanin.
        node = signal_node(g)
        fanins = mig.fanins(node)
        assert sum(s & 1 for s in fanins) <= 1

    def test_and_or_via_constants(self):
        mig = Mig(2)
        a, b = mig.pi_signals()
        mig.add_po(mig.and_(a, b), "and")
        mig.add_po(mig.or_(a, b), "or")
        and_tt, or_tt = mig.simulate()
        assert and_tt == tt_var(2, 0) & tt_var(2, 1)
        assert or_tt == tt_var(2, 0) | tt_var(2, 1)

    def test_xor_and_ite(self):
        mig = Mig(3)
        a, b, c = mig.pi_signals()
        mig.add_po(mig.xor(a, b), "xor")
        mig.add_po(mig.ite(c, a, b), "mux")
        va, vb, vc = (tt_var(3, i) for i in range(3))
        xor_tt, mux_tt = mig.simulate()
        assert xor_tt == va ^ vb
        assert mux_tt == (vc & va) | (~vc & tt_mask(3) & vb)

    def test_unknown_signal_rejected(self):
        mig = Mig(1)
        with pytest.raises(ValueError):
            mig.maj(0, 2, 99)
        with pytest.raises(ValueError):
            mig.add_po(99)


class TestFullAdder:
    """Fig. 1 of the paper: size 3, depth 2."""

    def test_size_and_depth(self, full_adder):
        assert full_adder.num_gates == 3
        assert full_adder.depth() == 2

    def test_function(self, full_adder):
        s, cout = full_adder.simulate()
        a, b, c = (tt_var(3, i) for i in range(3))
        assert s == a ^ b ^ c
        assert cout == tt_maj(a, b, c)


class TestQueries:
    def test_node_classification(self, full_adder):
        assert full_adder.is_constant(0)
        assert full_adder.is_pi(1) and full_adder.is_pi(3)
        assert not full_adder.is_pi(4)
        assert full_adder.is_gate(4)
        assert not full_adder.is_gate(0)

    def test_fanout_counts(self, full_adder):
        counts = full_adder.fanout_counts()
        # every PI feeds two gates in the FA structure
        assert counts[1] == 2 and counts[2] == 2
        # cin feeds two gates and... check total edges + outputs
        assert sum(counts) == 3 * full_adder.num_gates + full_adder.num_pos

    def test_levels(self, full_adder):
        levels = full_adder.levels()
        assert levels[0] == 0
        assert max(levels) == 2

    def test_terminal_fanins_rejected(self, full_adder):
        with pytest.raises(ValueError):
            full_adder.fanins(1)

    def test_repr(self, full_adder):
        text = repr(full_adder)
        assert "pis=3" in text and "gates=3" in text


class TestCutFunction:
    def test_direct_cut(self, full_adder):
        gate = next(iter(full_adder.gates()))
        tt = full_adder.cut_function(gate, [1, 2, 3])
        assert tt == tt_maj(tt_var(3, 0), tt_var(3, 1), tt_var(3, 2))

    def test_invalid_cut_raises(self, full_adder):
        last = full_adder.num_nodes - 1
        with pytest.raises(ValueError):
            full_adder.cut_function(last, [1])  # doesn't cover the cone


class TestRebuilds:
    def test_cleanup_removes_dead_gates(self):
        mig = Mig(3)
        a, b, c = mig.pi_signals()
        keep = mig.maj(a, b, c)
        mig.maj(CONST0, a, b)  # dead
        mig.add_po(keep)
        clean = mig.cleanup()
        assert clean.num_gates == 1
        assert clean.simulate() == mig.simulate()

    def test_cleanup_preserves_names(self):
        mig = Mig(0)
        x = mig.add_pi("alpha")
        mig.add_po(signal_not(x), "omega")
        clean = mig.cleanup()
        assert clean.pi_names == ("alpha",)
        assert clean.output_names == ("omega",)

    def test_clone_independent(self, full_adder):
        copy = full_adder.clone()
        a, b, _ = copy.pi_signals()
        copy.maj(CONST0, a, b)
        assert copy.num_gates == full_adder.num_gates + 1

    def test_rebuild_default_is_identity_function(self, full_adder):
        rebuilt = full_adder.rebuild()
        assert rebuilt.simulate() == full_adder.simulate()

    def test_like_copies_interface(self, full_adder):
        empty = Mig.like(full_adder)
        assert empty.num_pis == 3
        assert empty.num_gates == 0
        assert empty.pi_names == full_adder.pi_names


class TestSimulatePatterns:
    def test_pattern_simulation_matches_exhaustive(self, full_adder):
        tts = full_adder.simulate()
        patterns = [tt_var(3, i) for i in range(3)]
        assert full_adder.simulate_patterns(patterns, 8) == tts

    def test_wrong_pattern_count(self, full_adder):
        with pytest.raises(ValueError):
            full_adder.simulate_patterns([0, 1], 8)


@st.composite
def random_mig(draw, num_pis=4, max_gates=12):
    mig = Mig(num_pis)
    signals = [CONST0] + mig.pi_signals()
    num_gates = draw(st.integers(min_value=1, max_value=max_gates))
    for _ in range(num_gates):
        picks = draw(
            st.lists(
                st.tuples(
                    st.integers(0, len(signals) - 1), st.booleans()
                ),
                min_size=3,
                max_size=3,
            )
        )
        ops = [signals[i] ^ int(c) for i, c in picks]
        signals.append(mig.maj(*ops))
    mig.add_po(signals[-1])
    return mig


class TestRandomizedInvariants:
    @given(random_mig())
    @settings(max_examples=40, deadline=None)
    def test_cleanup_preserves_function(self, mig):
        assert mig.cleanup().simulate() == mig.simulate()

    @given(random_mig())
    @settings(max_examples=40, deadline=None)
    def test_gates_are_topological(self, mig):
        for node in mig.gates():
            for s in mig.fanins(node):
                assert signal_node(s) < node

    @given(random_mig())
    @settings(max_examples=40, deadline=None)
    def test_maj_simulation_invariant(self, mig):
        """Every gate's value is the majority of its fanin values."""
        n = mig.num_pis
        values = [0] * mig.num_nodes
        for i in range(n):
            values[1 + i] = tt_var(n, i)
        mask = tt_mask(n)
        for node in mig.gates():
            a, b, c = mig.fanins(node)
            va = values[a >> 1] ^ (mask if a & 1 else 0)
            vb = values[b >> 1] ^ (mask if b & 1 else 0)
            vc = values[c >> 1] ^ (mask if c & 1 else 0)
            values[node] = tt_maj(va, vb, vc)
        # spot check against simulate()
        out = mig.simulate()[0]
        s = mig.outputs[0]
        assert out == values[s >> 1] ^ (mask if s & 1 else 0)


class TestCheck:
    """The structural validator guards everything ``maj()`` guarantees."""

    @staticmethod
    def _mig_with_gates() -> Mig:
        mig = Mig(3)
        a, b, c = mig.pi_signals()
        g1 = mig.maj(a, b, c)
        g2 = mig.maj(a, signal_not(b), g1)
        mig.add_po(g2)
        return mig

    def test_valid_networks_pass(self, full_adder):
        full_adder.check()
        self._mig_with_gates().check()
        Mig(2).check()  # no gates, no outputs

    def test_corrupt_constant_terminal(self):
        mig = self._mig_with_gates()
        mig._fanins[0] = (2, 4, 6)
        with pytest.raises(ValueError, match="constant-0"):
            mig.check()

    def test_pi_with_fanins(self):
        mig = self._mig_with_gates()
        mig._fanins[1] = (0, 4, 6)
        with pytest.raises(ValueError, match="PI node 1"):
            mig.check()

    def test_gate_missing_fanins(self):
        mig = self._mig_with_gates()
        mig._fanins[4] = None
        with pytest.raises(ValueError, match="no fanins"):
            mig.check()

    def test_gate_wrong_arity(self):
        mig = self._mig_with_gates()
        mig._fanins[4] = mig._fanins[4][:2]
        with pytest.raises(ValueError, match="2 fanins"):
            mig.check()

    def test_dangling_fanin(self):
        mig = self._mig_with_gates()
        fanin = mig._fanins[4]
        mig._fanins[4] = (fanin[0], fanin[1], make_signal(999))
        with pytest.raises(ValueError, match="dangling"):
            mig.check()

    def test_topological_order_broken(self):
        mig = self._mig_with_gates()
        # Gate 4 referencing gate 5 is a forward reference (cycle seed).
        mig._fanins[4] = (2, 4, make_signal(5))
        with pytest.raises(ValueError, match="topological"):
            mig.check()

    def test_unsorted_fanin_triple(self):
        mig = self._mig_with_gates()
        mig._fanins[4] = tuple(reversed(mig._fanins[4]))
        with pytest.raises(ValueError, match="unsorted"):
            mig.check()

    def test_repeated_fanin_node(self):
        mig = self._mig_with_gates()
        mig._fanins[4] = (2, 2, 4)
        with pytest.raises(ValueError, match="repeats"):
            mig.check()

    def test_two_complemented_fanins(self):
        mig = self._mig_with_gates()
        mig._fanins[4] = (3, 5, 6)
        with pytest.raises(ValueError, match="inverter"):
            mig.check()

    def test_strash_disagreement(self):
        mig = self._mig_with_gates()
        mig._strash[(2, 4, 8)] = 999
        with pytest.raises(ValueError, match="strash"):
            mig.check()

    def test_dangling_output(self):
        mig = self._mig_with_gates()
        mig._outputs[0] = make_signal(999)
        with pytest.raises(ValueError, match="output 0"):
            mig.check()

    def test_name_list_mismatch(self):
        mig = self._mig_with_gates()
        mig._output_names.append("extra")
        with pytest.raises(ValueError, match="mismatch"):
            mig.check()

    @given(random_mig())
    @settings(max_examples=40, deadline=None)
    def test_maj_built_networks_always_validate(self, mig):
        mig.check()
        mig.cleanup().check()

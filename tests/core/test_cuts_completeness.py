"""Cut-enumeration completeness: cross-check against brute force.

The recursive ⊗k enumeration with domination pruning must find every
*irredundant* k-feasible cut (no cut that is a superset of another).  We
verify this on small random MIGs by enumerating all candidate leaf sets
exhaustively and checking the cut definition from Sec. II-C directly.
"""

from __future__ import annotations

from itertools import combinations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cuts import enumerate_cuts
from repro.core.mig import CONST0, Mig


@st.composite
def small_mig(draw):
    mig = Mig(3)
    signals = [CONST0] + mig.pi_signals()
    for _ in range(draw(st.integers(min_value=1, max_value=6))):
        picks = draw(
            st.lists(
                st.tuples(st.integers(0, len(signals) - 1), st.booleans()),
                min_size=3,
                max_size=3,
            )
        )
        ops = [signals[i] ^ int(c) for i, c in picks]
        signals.append(mig.maj(*ops))
    mig.add_po(signals[-1])
    return mig


def is_cut(mig: Mig, root: int, leaves: set[int]) -> bool:
    """Direct check of the Sec. II-C cut definition."""
    # 1. every path from root to a terminal passes through a leaf
    #    (paths to the constant node exempt).
    visited_leaves: set[int] = set()

    def covered(node: int) -> bool:
        if node in leaves:
            visited_leaves.add(node)
            return True
        if node == 0:
            return True  # constant exemption
        if not mig.is_gate(node):
            return False  # reached a non-leaf terminal
        return all(covered(s >> 1) for s in mig.fanins(node))

    if root in leaves:
        return leaves == {root}
    if not mig.is_gate(root):
        return False
    if not covered(root):
        return False
    # 2. every leaf lies on some root-terminal path (was actually reached).
    return visited_leaves == leaves


def brute_force_cuts(mig: Mig, root: int, k: int) -> set[frozenset[int]]:
    """All irredundant k-feasible cuts of *root*, by exhaustive search."""
    candidates = [n for n in range(1, mig.num_nodes)]
    cuts: set[frozenset[int]] = set()
    for size in range(1, k + 1):
        for leaves in combinations(candidates, size):
            leaf_set = set(leaves)
            if is_cut(mig, root, leaf_set):
                cuts.add(frozenset(leaf_set))
    # Remove dominated cuts (proper supersets of another cut).
    return {
        cut
        for cut in cuts
        if not any(other < cut for other in cuts)
    }


class TestCompleteness:
    @given(small_mig(), st.integers(min_value=2, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_enumeration_matches_brute_force(self, mig, k):
        cuts = enumerate_cuts(mig, k, cut_limit=1000)
        for node in mig.gates():
            enumerated = {
                frozenset(c) for c in cuts[node]
            }
            expected = brute_force_cuts(mig, node, k)
            # Every irredundant cut must be enumerated...
            missing = expected - enumerated
            assert not missing, (node, missing)
            # ...and everything enumerated must be a real cut.
            for leaves in cuts[node]:
                assert is_cut(mig, node, set(leaves)), (node, leaves)

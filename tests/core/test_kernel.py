"""The shared network substrate (repro.core.kernel) under both facades."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.aig import Aig
from repro.core.kernel import (
    CONST0,
    CONST1,
    Network,
    make_signal,
    signal_is_complemented,
    signal_node,
    signal_not,
)
from repro.core.mig import Mig


@st.composite
def random_mig(draw, min_pis=2, max_pis=6, max_gates=16):
    mig = Mig(draw(st.integers(min_value=min_pis, max_value=max_pis)))
    signals = [CONST0] + mig.pi_signals()
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        picks = draw(
            st.lists(
                st.tuples(st.integers(0, len(signals) - 1), st.booleans()),
                min_size=3,
                max_size=3,
            )
        )
        signals.append(mig.maj(*[signals[i] ^ int(c) for i, c in picks]))
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        mig.add_po(signals[draw(st.integers(0, len(signals) - 1))])
    return mig


@st.composite
def random_aig(draw, min_pis=2, max_pis=6, max_gates=16):
    aig = Aig(draw(st.integers(min_value=min_pis, max_value=max_pis)))
    signals = [CONST0] + aig.pi_signals()
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        picks = draw(
            st.lists(
                st.tuples(st.integers(0, len(signals) - 1), st.booleans()),
                min_size=2,
                max_size=2,
            )
        )
        signals.append(aig.and_(*[signals[i] ^ int(c) for i, c in picks]))
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        aig.add_po(signals[draw(st.integers(0, len(signals) - 1))])
    return aig


class TestSignals:
    def test_roundtrip(self):
        s = make_signal(7, True)
        assert signal_node(s) == 7
        assert signal_is_complemented(s)
        assert signal_not(s) == make_signal(7, False)
        assert CONST1 == signal_not(CONST0)


class TestSharedSubstrate:
    def test_facades_share_the_kernel(self):
        assert issubclass(Mig, Network) and issubclass(Aig, Network)
        assert Mig.ARITY == 3 and Aig.ARITY == 2

    def test_generic_queries_work_on_both(self):
        for net in (Mig(3), Aig(3)):
            a, b, c = net.pi_signals()
            g = net.maj(a, b, c) if isinstance(net, Mig) else net.and_(a, b)
            net.add_po(g)
            assert net.num_pis == 3 and net.num_pos == 1 and net.num_gates == 1
            assert net.is_gate(signal_node(g))
            assert list(net.gates()) == [4]
            assert net.depth() == 1
            net.check()

    def test_aig_gained_check_and_fanout(self):
        aig = Aig(2)
        a, b = aig.pi_signals()
        g = aig.and_(a, b)
        aig.add_po(aig.and_(g, a))
        aig.check()
        counts = aig.fanout_counts()
        assert counts[signal_node(a)] == 2  # feeds both gates
        assert counts[signal_node(g)] == 1

    def test_aig_check_catches_unsorted_pair(self):
        aig = Aig(2)
        a, b = aig.pi_signals()
        aig.add_po(aig.and_(a, b))
        aig._fanins[3] = (b, a)
        with pytest.raises(ValueError, match="unsorted"):
            aig.check()

    def test_pi_after_gate_rejected(self):
        for net in (Mig(1), Aig(1)):
            (a,) = net.pi_signals()
            if isinstance(net, Mig):
                net.maj(CONST0, CONST1, a)
            else:
                net.and_(a, a ^ 1)  # unit rule, no gate -> still allowed
                net.and_(net.add_pi(), a)
        mig = Mig(2)
        a, b = mig.pi_signals()
        mig.maj(CONST0, a, b)
        with pytest.raises(ValueError, match="before the first gate"):
            mig.add_pi()


class TestCounters:
    def test_strash_hits_and_unit_rules(self):
        mig = Mig(3)
        a, b, c = mig.pi_signals()
        assert mig.strash_hits == 0 and mig.unit_rules == 0
        mig.maj(a, b, c)
        mig.maj(c, a, b)  # same gate, different order -> strash hit
        assert mig.strash_hits == 1
        mig.maj(a, a, b)  # unit rule <aab> = a
        assert mig.unit_rules == 1

    def test_aig_counters(self):
        aig = Aig(2)
        a, b = aig.pi_signals()
        aig.and_(a, b)
        aig.and_(b, a)
        assert aig.strash_hits == 1
        aig.and_(a, CONST1)
        assert aig.unit_rules == 1

    def test_sim_words_accumulate(self, full_adder):
        assert full_adder.sim_words == 0
        full_adder.simulate()
        assert full_adder.sim_words == full_adder.num_gates  # 8 bits -> 1 word


class TestArrays:
    @given(random_mig())
    @settings(max_examples=20, deadline=None)
    def test_arrays_mirror_the_fanin_lists(self, mig):
        arr = mig.arrays()
        assert arr.num_gates == mig.num_gates
        for node in mig.gates():
            row = node - arr.first_gate
            for pos, s in enumerate(mig.fanins(node)):
                assert arr.fan_node[row, pos] == s >> 1
                expected = 0xFFFFFFFFFFFFFFFF if s & 1 else 0
                assert int(arr.fan_comp[row, pos]) == expected
        assert arr.levels.tolist() == mig.levels()
        assert [s >> 1 for s in mig.outputs] == arr.out_node.tolist()

    @given(random_mig())
    @settings(max_examples=20, deadline=None)
    def test_level_groups_are_a_topological_batching(self, mig):
        arr = mig.arrays()
        gates = np.concatenate(arr.level_groups) if arr.level_groups else np.array([])
        assert sorted(gates.tolist()) == list(mig.gates())
        levels = mig.levels()
        seen_levels = [levels[int(g)] for group in arr.level_groups for g in group[:1]]
        assert seen_levels == sorted(seen_levels)
        for group in arr.level_groups:
            group_levels = {levels[int(g)] for g in group}
            assert len(group_levels) == 1

    def test_cache_invalidation_on_growth(self):
        mig = Mig(2)
        a, b = mig.pi_signals()
        mig.add_po(mig.maj(CONST0, a, b))
        first = mig.arrays()
        assert mig.arrays() is first  # cached
        mig.add_po(mig.maj(CONST1, a, b))
        assert mig.arrays() is not first  # node/output count changed
        mig.invalidate_arrays()
        again = mig.arrays()
        assert again.num_gates == 2

    def test_in_place_mutation_mid_enumeration_rebuilds_view(self):
        # Satellite regression: a count-preserving in-place rewire is
        # invisible to the (num_nodes, num_outputs) part of the cache
        # key, so the view MUST be re-keyed on arrays_version — a stale
        # view here means simulating the pre-mutation structure.
        mig = Mig(3)
        a, b, c = mig.pi_signals()
        g1 = mig.maj(a, b, c)
        mig.add_po(mig.maj(g1, a, b))
        view = mig.arrays()
        assert mig.arrays() is view
        node = signal_node(mig.outputs[0])
        # Mid-"enumeration" mutation: rewire the root gate in place
        # (same node count, same output count).
        mig._fanins[node] = (a, signal_not(b), c)
        mig.invalidate_arrays()
        assert mig.arrays_version == view.version + 1
        fresh = mig.arrays()
        assert fresh is not view
        assert fresh.version == mig.arrays_version
        row = node - fresh.first_gate
        assert fresh.fan_node[row].tolist() == [a >> 1, b >> 1, c >> 1]
        assert int(fresh.fan_comp[row, 1]) == 0xFFFFFFFFFFFFFFFF
        # The stale view still advertises its build version, so holders
        # can detect it without re-deriving anything.
        assert view.version != mig.arrays_version

    @given(random_aig())
    @settings(max_examples=20, deadline=None)
    def test_fanout_counts_match_reference(self, aig):
        reference = [0] * aig.num_nodes
        for node in aig.gates():
            for s in aig.fanins(node):
                reference[s >> 1] += 1
        for s in aig.outputs:
            reference[s >> 1] += 1
        assert aig.fanout_counts() == reference


class TestGenericTransforms:
    @given(random_aig())
    @settings(max_examples=20, deadline=None)
    def test_cleanup_preserves_function(self, aig):
        clean = aig.cleanup()
        clean.check()
        assert clean.simulate() == aig.simulate()
        assert clean.num_gates <= aig.num_gates

    def test_clone_is_deep_for_aigs(self):
        aig = Aig(2)
        a, b = aig.pi_signals()
        aig.add_po(aig.and_(a, b))
        copy = aig.clone()
        copy.and_(a, b ^ 1)
        assert copy.num_gates == aig.num_gates + 1

    def test_like_copies_interface(self):
        aig = Aig(0)
        aig.add_pi("alpha")
        empty = Aig.like(aig)
        assert empty.pi_names == ("alpha",)
        assert empty.num_gates == 0

"""Differential tests: the simulation engine vs the pre-kernel simulators.

The oracles below are frozen copies of the big-int loops that lived in
``Mig._simulate_words`` / ``Mig.simulate`` and the AIG's simulator before
the kernel refactor.  Both simengine backends (``bigint`` and ``numpy``)
must reproduce them bit for bit on random networks, random patterns and
widths straddling the 64-bit column boundary.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.aig import Aig
from repro.core.mig import Mig
from repro.core.simengine import (
    column_mask,
    cone_function,
    num_columns,
    pack_ints,
    projection_columns,
    projection_int,
    simulate_all_nodes,
    simulate_network,
    unpack_ints,
)
from repro.core.truth_table import tt_var

# ---------------------------------------------------------------------------
# frozen pre-refactor oracles (do not "fix" these — they ARE the spec)
# ---------------------------------------------------------------------------


def oracle_simulate_words_mig(mig, values, mask):
    """The historical ``Mig._simulate_words`` loop, verbatim."""
    for node in range(mig.num_pis + 1, mig.num_nodes):
        a, b, c = mig.fanins(node)
        va = values[a >> 1] ^ (mask if a & 1 else 0)
        vb = values[b >> 1] ^ (mask if b & 1 else 0)
        vc = values[c >> 1] ^ (mask if c & 1 else 0)
        values[node] = (va & vb) | (va & vc) | (vb & vc)
    return [values[s >> 1] ^ (mask if s & 1 else 0) for s in mig.outputs]


def oracle_simulate_words_aig(aig, values, mask):
    """The historical AIG pattern-simulation loop, verbatim."""
    for node in range(aig.num_pis + 1, aig.num_nodes):
        a, b = aig.fanins(node)
        va = values[a >> 1] ^ (mask if a & 1 else 0)
        vb = values[b >> 1] ^ (mask if b & 1 else 0)
        values[node] = va & vb
    return [values[s >> 1] ^ (mask if s & 1 else 0) for s in aig.outputs]


def oracle_exhaustive(net):
    """The historical exhaustive ``simulate``: project PIs, run the loop."""
    n = net.num_pis
    mask = (1 << (1 << n)) - 1
    values = [0] * net.num_nodes
    for i in range(n):
        values[1 + i] = tt_var(n, i)
    oracle = (
        oracle_simulate_words_mig if net.arity == 3 else oracle_simulate_words_aig
    )
    return oracle(net, values, mask)


# ---------------------------------------------------------------------------
# random-network strategies
# ---------------------------------------------------------------------------


@st.composite
def random_mig(draw, min_pis=2, max_pis=7, max_gates=24):
    mig = Mig(draw(st.integers(min_value=min_pis, max_value=max_pis)))
    signals = [0] + mig.pi_signals()
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        picks = draw(
            st.lists(
                st.tuples(st.integers(0, len(signals) - 1), st.booleans()),
                min_size=3,
                max_size=3,
            )
        )
        signals.append(mig.maj(*[signals[i] ^ int(c) for i, c in picks]))
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        mig.add_po(signals[draw(st.integers(0, len(signals) - 1))])
    return mig


@st.composite
def random_aig(draw, min_pis=2, max_pis=7, max_gates=24):
    aig = Aig(draw(st.integers(min_value=min_pis, max_value=max_pis)))
    signals = [0] + aig.pi_signals()
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        picks = draw(
            st.lists(
                st.tuples(st.integers(0, len(signals) - 1), st.booleans()),
                min_size=2,
                max_size=2,
            )
        )
        signals.append(aig.and_(*[signals[i] ^ int(c) for i, c in picks]))
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        aig.add_po(signals[draw(st.integers(0, len(signals) - 1))])
    return aig


def random_network(draw_mig):
    return random_mig() if draw_mig else random_aig()


# ---------------------------------------------------------------------------
# packing
# ---------------------------------------------------------------------------


class TestPacking:
    @given(
        st.lists(st.integers(min_value=0, max_value=(1 << 200) - 1), min_size=1, max_size=8),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip(self, words, columns):
        mask = (1 << (columns * 64)) - 1
        words = [w & mask for w in words]
        assert unpack_ints(pack_ints(words, columns)) == words

    def test_bit_convention(self):
        # Bit k of the int = bit k % 64 of column k // 64.
        word = (1 << 0) | (1 << 63) | (1 << 64) | (1 << 130)
        m = pack_ints([word], 3)
        assert int(m[0, 0]) == (1 << 0) | (1 << 63)
        assert int(m[0, 1]) == 1
        assert int(m[0, 2]) == 1 << 2

    def test_num_columns_and_mask(self):
        assert num_columns(1) == 1
        assert num_columns(64) == 1
        assert num_columns(65) == 2
        assert num_columns(128) == 2
        mask = column_mask(70)
        assert int(mask[0]) == 0xFFFFFFFFFFFFFFFF
        assert int(mask[1]) == (1 << 6) - 1


class TestProjections:
    @pytest.mark.parametrize("num_vars", range(0, 11))
    def test_projection_int_matches_tt_var(self, num_vars):
        for i in range(num_vars):
            assert projection_int(num_vars, i) == tt_var(num_vars, i)

    @pytest.mark.parametrize("num_vars", range(1, 11))
    def test_projection_columns_match_packed_tt_var(self, num_vars):
        cols = projection_columns(num_vars)
        expected = pack_ints(
            [tt_var(num_vars, i) for i in range(num_vars)],
            num_columns(1 << num_vars),
        )
        assert np.array_equal(cols, expected)

    def test_range_checks(self):
        with pytest.raises(ValueError, match="num_vars"):
            projection_int(17, 0)
        with pytest.raises(ValueError, match="out of range"):
            projection_int(4, 4)


# ---------------------------------------------------------------------------
# the differential core: both backends vs the frozen oracles
# ---------------------------------------------------------------------------


class TestPatternSimulation:
    @given(random_mig(), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_mig_both_backends_match_the_oracle(self, mig, seed):
        rng = random.Random(seed)
        for width in (1, 7, 64, 65, 128, 200):
            mask = (1 << width) - 1
            patterns = [rng.getrandbits(width) for _ in range(mig.num_pis)]
            values = [0] * mig.num_nodes
            for i, w in enumerate(patterns):
                values[1 + i] = w & mask
            expected = oracle_simulate_words_mig(mig, values, mask)
            got_big = simulate_network(mig, patterns, width, backend="bigint")
            got_np = simulate_network(mig, patterns, width, backend="numpy")
            assert got_big == expected
            assert got_np == expected

    @given(random_aig(), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_aig_both_backends_match_the_oracle(self, aig, seed):
        rng = random.Random(seed)
        for width in (1, 7, 64, 65, 128, 200):
            mask = (1 << width) - 1
            patterns = [rng.getrandbits(width) for _ in range(aig.num_pis)]
            values = [0] * aig.num_nodes
            for i, w in enumerate(patterns):
                values[1 + i] = w & mask
            expected = oracle_simulate_words_aig(aig, values, mask)
            got_big = simulate_network(aig, patterns, width, backend="bigint")
            got_np = simulate_network(aig, patterns, width, backend="numpy")
            assert got_big == expected
            assert got_np == expected

    @given(random_mig())
    @settings(max_examples=40, deadline=None)
    def test_exhaustive_simulate_matches_the_oracle(self, mig):
        expected = oracle_exhaustive(mig)
        assert mig.simulate(backend="bigint") == expected
        assert mig.simulate(backend="numpy") == expected
        assert mig.simulate() == expected  # auto

    @given(random_aig())
    @settings(max_examples=40, deadline=None)
    def test_aig_exhaustive_matches_the_oracle(self, aig):
        expected = oracle_exhaustive(aig)
        assert aig.simulate(backend="bigint") == expected
        assert aig.simulate(backend="numpy") == expected

    @given(random_mig(), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_all_nodes_agrees_with_the_oracle_values(self, mig, seed):
        rng = random.Random(seed)
        width = 96
        mask = (1 << width) - 1
        patterns = [rng.getrandbits(width) for _ in range(mig.num_pis)]
        values = [0] * mig.num_nodes
        for i, w in enumerate(patterns):
            values[1 + i] = w & mask
        oracle_simulate_words_mig(mig, values, mask)
        for backend in ("bigint", "numpy"):
            got = simulate_all_nodes(mig, patterns, width, backend=backend)
            assert got == values

    def test_pattern_count_is_validated(self, full_adder):
        with pytest.raises(ValueError, match="expected 3 pattern words, got 2"):
            simulate_network(full_adder, [1, 2], 8)

    def test_too_many_inputs_for_exhaustive(self):
        mig = Mig(17)
        with pytest.raises(ValueError, match="limited to 16 inputs"):
            mig.simulate()


class TestConeFunction:
    @given(random_mig())
    @settings(max_examples=25, deadline=None)
    def test_cone_over_all_pis_equals_exhaustive(self, mig):
        leaves = list(range(1, mig.num_pis + 1))
        tables = oracle_exhaustive(mig)
        for s, expected in zip(mig.outputs, tables):
            node = s >> 1
            if node == 0:
                continue
            got = cone_function(mig, node, leaves)
            mask = (1 << (1 << len(leaves))) - 1
            assert got ^ (mask if s & 1 else 0) == expected

    def test_uncovered_cone_raises(self, full_adder):
        gate = next(iter(full_adder.gates()))
        with pytest.raises(ValueError, match="not a cut leaf"):
            cone_function(full_adder, gate, [1])  # PI 2/3 unreachable as leaves

    def test_deep_chain_does_not_recurse(self):
        # 5000-gate chain: the explicit stack must not hit the recursion limit.
        mig = Mig(2)
        a, b = mig.pi_signals()
        s = mig.maj(0, a, b)
        for _ in range(5000):
            s = mig.maj(1, s ^ 1, a)
        mig.add_po(s)
        got = cone_function(mig, s >> 1, [1, 2])
        assert 0 <= got < 16

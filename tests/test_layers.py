"""The import-layering lint (tools/check_layers.py) and its rules."""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "tools"))

import check_layers  # noqa: E402


class TestRepoIsClean:
    def test_lint_passes_on_the_tree(self):
        proc = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_layers.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "passed" in proc.stdout

    def test_every_source_file_is_visited(self):
        # The ruleset only matters if the walker actually sees the files
        # it governs.
        seen = {check_layers.module_name(p) for p in check_layers.SRC.rglob("*.py")}
        for module in ("repro.core.kernel", "repro.core.simengine",
                      "repro.core.mig", "repro.aig.aig", "repro.core.cuts"):
            assert module in seen


class TestResolution:
    def test_absolute_import(self):
        import ast

        node = ast.parse("import repro.opt.fraig").body[0]
        assert check_layers.resolve_import("repro.core.mig", node) == [
            "repro.opt.fraig"
        ]

    def test_relative_import_from_module(self):
        import ast

        # `from ..runtime.metrics import PassMetrics` inside repro.core.cuts
        node = ast.parse("from ..runtime.metrics import PassMetrics").body[0]
        assert check_layers.resolve_import("repro.core.cuts", node) == [
            "repro.runtime.metrics"
        ]

    def test_relative_import_single_dot(self):
        import ast

        node = ast.parse("from .kernel import Network").body[0]
        assert check_layers.resolve_import("repro.core.simengine", node) == [
            "repro.core.kernel"
        ]


class TestRules:
    def _violations(self, module, source, tmp_path):
        path = tmp_path / "mod.py"
        path.write_text(source)
        import ast

        tree = ast.parse(source)
        # Drive the rule logic directly: emulate check_file with a fake
        # module name so we can feed synthetic sources.
        violations = []
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for target in check_layers.resolve_import(module, node):
                if not check_layers.in_package(target, "repro"):
                    continue
                if module in check_layers.KERNEL_LAYER:
                    allowed = (
                        {"repro.core.kernel"}
                        if module == "repro.core.simengine"
                        else set()
                    )
                    if target not in allowed:
                        violations.append((module, target, "kernel"))
                    continue
                if module in check_layers.FACADES:
                    if target not in check_layers.KERNEL_LAYER:
                        violations.append((module, target, "facade"))
                    continue
                if check_layers.in_package(module, "repro.core"):
                    for forbidden in check_layers.CORE_FORBIDDEN:
                        if check_layers.in_package(target, forbidden):
                            violations.append((module, target, "core"))
        return violations

    def test_kernel_may_not_import_repro(self, tmp_path):
        v = self._violations(
            "repro.core.kernel", "from repro.core.truth_table import tt_var", tmp_path
        )
        assert v and v[0][2] == "kernel"

    def test_simengine_may_import_kernel_only(self, tmp_path):
        assert not self._violations(
            "repro.core.simengine", "from repro.core.kernel import Network", tmp_path
        )
        v = self._violations(
            "repro.core.simengine", "import repro.opt.fraig", tmp_path
        )
        assert v and v[0][2] == "kernel"

    def test_facade_may_not_import_above_kernel(self, tmp_path):
        v = self._violations(
            "repro.core.mig", "from repro.core.truth_table import tt_maj", tmp_path
        )
        assert v and v[0][2] == "facade"
        assert not self._violations(
            "repro.core.mig", "from repro.core.simengine import SimulationMixin", tmp_path
        )

    def test_core_may_not_import_consumers(self, tmp_path):
        v = self._violations(
            "repro.core.cuts", "from repro.aig.aig import Aig", tmp_path
        )
        assert v and v[0][2] == "core"
        assert not self._violations(
            "repro.core.cuts", "from repro.runtime.metrics import PassMetrics", tmp_path
        )


class TestNumpyFree:
    """Rule 4: rewriting may use core.simengine but never numpy directly."""

    def test_rewriting_may_not_import_numpy(self):
        assert check_layers.numpy_free_violation("repro.rewriting.batch", "numpy")
        assert check_layers.numpy_free_violation(
            "repro.rewriting.bottom_up", "numpy.linalg"
        )

    def test_rewriting_may_import_simengine(self):
        assert not check_layers.numpy_free_violation(
            "repro.rewriting.batch", "repro.core.simengine"
        )

    def test_rule_scoped_to_rewriting(self):
        # The kernel layer is numpy's home; rule 4 must not fire there.
        assert not check_layers.numpy_free_violation("repro.core.simengine", "numpy")
        assert not check_layers.numpy_free_violation("repro.core.cuts", "numpy")

    def test_rewriting_tree_is_numpy_free_today(self):
        rewriting = check_layers.SRC / "repro" / "rewriting"
        for path in sorted(rewriting.rglob("*.py")):
            source = path.read_text()
            assert "import numpy" not in source, path

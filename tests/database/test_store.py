"""Tests for the persistent NPN-5/6 store (crash safety + monotonicity).

The drills here mirror the claims in ``src/repro/database/store.py``'s
docstring one by one: fsynced appends survive reopen, a torn tail is
truncated away without losing earlier records, deeper corruption
quarantines the file instead of serving guesses, compaction is atomic,
and ``put``/``improve_store`` can only ever shrink or prove entries.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.core.npn import npn_canonize
from repro.database.npn_db import DbEntry, entry_to_json
from repro.database.store import NpnStore, StoreCorrupt, _accepts, improve_store
from repro.exact.heuristic import heuristic_mig


def _entry(rep: int, num_vars: int = 5, proven: bool = False) -> DbEntry:
    return DbEntry.from_mig(rep, heuristic_mig(rep, num_vars), proven=proven)


def _some_reps(n: int, num_vars: int = 5, seed: int = 7) -> list[int]:
    rng = random.Random(seed)
    reps = set()
    while len(reps) < n:
        tt = rng.getrandbits(1 << num_vars)
        reps.add(npn_canonize(tt, num_vars)[0])
    return sorted(reps)


class TestBasics:
    def test_open_creates_log_with_header(self, tmp_path):
        path = tmp_path / "s.npn5"
        store = NpnStore.open(path, num_vars=5)
        store.close()
        first = path.read_text().splitlines()[0]
        header = json.loads(first)
        assert header == {"format": "npn-store-v1", "num_vars": 5}

    def test_put_get_len_contains(self, tmp_path):
        store = NpnStore.open(tmp_path / "s.npn5", num_vars=5)
        reps = _some_reps(5)
        for rep in reps:
            assert store.put(_entry(rep))
        assert len(store) == 5
        for rep in reps:
            assert rep in store
            assert store.get(rep).rep == rep
        assert store.get(reps[0] ^ 1) is None or (reps[0] ^ 1) in store

    def test_reopen_replays_every_acknowledged_entry(self, tmp_path):
        path = tmp_path / "s.npn5"
        store = NpnStore.open(path, num_vars=5)
        reps = _some_reps(8)
        for rep in reps:
            store.put(_entry(rep))
        # No close(): model a hard crash right after the last fsynced put.
        again = NpnStore.open(path, num_vars=5)
        assert sorted(again.index) == reps
        assert again.torn_records == 0 and not again.recovered
        for rep in reps:
            assert again.get(rep).to_mig().simulate()[0] == rep

    def test_arity_bounds_and_mismatched_entry(self, tmp_path):
        with pytest.raises(ValueError):
            NpnStore.open(tmp_path / "bad", num_vars=3)
        with pytest.raises(ValueError):
            NpnStore.open(tmp_path / "bad", num_vars=7)
        store = NpnStore.open(tmp_path / "s.npn5", num_vars=5)
        with pytest.raises(ValueError):
            store.put(_entry(0x6, num_vars=4))


class TestMonotoneUpgrades:
    def test_accepts_rule(self):
        small = DbEntry.from_mig(0, heuristic_mig(0, 5), proven=False)
        assert _accepts(None, small)

    def test_put_rejects_regressions(self, tmp_path):
        store = NpnStore.open(tmp_path / "s.npn5", num_vars=5)
        rep = _some_reps(1)[0]
        entry = _entry(rep)
        assert store.put(entry)
        # Same size, still unproven: rejected, counters tell the story.
        assert not store.put(_entry(rep, proven=False))
        assert store.rejected == 1
        # Same size but newly proven: accepted.
        assert store.put(_entry(rep, proven=True))
        # Proven cannot be un-proven by an equal-size unproven witness.
        assert not store.put(_entry(rep, proven=False))
        assert store.get(rep).proven

    def test_replay_applies_the_same_rule(self, tmp_path):
        path = tmp_path / "s.npn5"
        store = NpnStore.open(path, num_vars=5)
        rep = _some_reps(1)[0]
        store.put(_entry(rep, proven=False))
        store.put(_entry(rep, proven=True))
        # Both generations are in the log; replay must converge to best.
        again = NpnStore.open(path, num_vars=5)
        assert len(again) == 1 and again.get(rep).proven


class TestCrashSafety:
    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        path = tmp_path / "s.npn5"
        store = NpnStore.open(path, num_vars=5)
        reps = _some_reps(4)
        for rep in reps:
            store.put(_entry(rep))
        store.close()
        good_size = path.stat().st_size
        # A crash mid-append leaves a prefix of the record, no newline.
        with open(path, "ab") as fp:
            fp.write(entry_to_json(_entry(reps[0])).encode()[:17])
        again = NpnStore.open(path, num_vars=5)
        assert again.torn_records == 1 and not again.recovered
        assert sorted(again.index) == reps  # nothing acknowledged was lost
        assert path.stat().st_size == good_size  # tail truncated in place
        # The next append starts at a record boundary.
        extra = [r for r in _some_reps(6) if r not in again.index][0]
        assert again.put(_entry(extra))
        final = NpnStore.open(path, num_vars=5)
        assert final.torn_records == 0 and sorted(final.index) == sorted(
            reps + [extra]
        )

    def test_mid_file_garbage_quarantines(self, tmp_path):
        path = tmp_path / "s.npn5"
        store = NpnStore.open(path, num_vars=5)
        for rep in _some_reps(3):
            store.put(_entry(rep))
        store.close()
        lines = path.read_bytes().split(b"\n")
        lines[2] = b"GARBAGE NOT JSON"
        path.write_bytes(b"\n".join(lines))
        again = NpnStore.open(path, num_vars=5)
        assert again.recovered and len(again) == 0
        assert (tmp_path / "s.npn5.corrupt").exists()  # evidence survives

    def test_bad_header_quarantines(self, tmp_path):
        path = tmp_path / "s.npn5"
        path.write_text('{"format": "not-a-store"}\n')
        store = NpnStore.open(path, num_vars=5)
        assert store.recovered and len(store) == 0
        assert (tmp_path / "s.npn5.corrupt").exists()

    def test_arity_mismatch_quarantines(self, tmp_path):
        path = tmp_path / "s.npn"
        NpnStore.open(path, num_vars=5).close()
        store = NpnStore.open(path, num_vars=6)
        assert store.recovered and len(store) == 0

    def test_replay_raises_internally_on_garbage(self, tmp_path):
        path = tmp_path / "s.npn5"
        path.write_text("not json at all\n")
        with pytest.raises(StoreCorrupt):
            NpnStore._replay(path, 5)

    def test_quarantined_store_resynthesizes(self, tmp_path):
        """The acceptance drill: corrupt store -> restart empty -> a
        re-run re-populates the lost classes with correct entries."""
        from repro.rewriting.dynamic_db import DynamicDatabase

        path = tmp_path / "s.npn5"
        db = DynamicDatabase(num_vars=5, store=NpnStore.open(path, 5))
        tts = [random.Random(3).getrandbits(32) for _ in range(6)]
        sizes = {tt: db.size_of(tt) for tt in tts}
        db.store.close()
        path.write_text("ruined\n")
        db2 = DynamicDatabase(num_vars=5, store=NpnStore.open(path, 5))
        assert db2.store.recovered
        for tt in tts:
            assert db2.size_of(tt) == sizes[tt]
        assert len(db2.store) > 0


class TestCompaction:
    def test_compact_is_one_line_per_class(self, tmp_path):
        path = tmp_path / "s.npn5"
        store = NpnStore.open(path, num_vars=5)
        rep = _some_reps(1)[0]
        store.put(_entry(rep, proven=False))
        store.put(_entry(rep, proven=True))
        others = [r for r in _some_reps(4, seed=11) if r != rep]
        for r in others:
            store.put(_entry(r))
        survivors = store.compact()
        assert survivors == len(store) == 1 + len(others)
        lines = [ln for ln in path.read_text().splitlines() if ln]
        assert len(lines) == 1 + survivors  # header + one per class
        # Appends keep working on the compacted log.
        extra = [r for r in _some_reps(9, seed=13) if r not in store.index][0]
        assert store.put(_entry(extra))
        again = NpnStore.open(path, num_vars=5)
        assert len(again) == survivors + 1
        assert again.get(rep).proven


#: cheap improvement subjects — 3-var functions replicated to 5 vars, so
#: heuristic entries are small and exact proofs need few conflicts
#: (random 5-var classes make these tests minutes-slow for no coverage)
_EASY_TTS = (0x96969696, 0xE8E8E8E8, 0xCACACACA, 0x28282828)


def _easy_reps() -> list[int]:
    return sorted({npn_canonize(tt, 5)[0] for tt in _EASY_TTS})


class TestImproveStore:
    def test_serial_improvement_is_monotone(self, tmp_path):
        store = NpnStore.open(tmp_path / "s.npn5", num_vars=5)
        for rep in _easy_reps():
            store.put(_entry(rep))
        before = {rep: (e.size, e.proven) for rep, e in store.index.items()}
        summary = improve_store(store, budget=5000)
        assert summary["attempted"] == len(
            [1 for size, proven in before.values() if not proven]
        )
        for rep, (size, proven) in before.items():
            after = store.get(rep)
            assert after.size <= size  # never grows
            assert after.proven or not proven  # never un-proves
            assert after.to_mig().simulate()[0] == rep
        assert summary["improved"] + summary["rejected"] <= summary["attempted"]

    def test_limit_bounds_the_work(self, tmp_path):
        store = NpnStore.open(tmp_path / "s.npn5", num_vars=5)
        for rep in _easy_reps():
            store.put(_entry(rep))
        unproven_before = len(store.unproven())
        summary = improve_store(store, budget=2000, limit=1)
        assert summary["attempted"] == 1
        assert len(store.unproven()) >= unproven_before - 1

    def test_nothing_to_do(self, tmp_path):
        store = NpnStore.open(tmp_path / "s.npn5", num_vars=5)
        rep = _some_reps(1)[0]
        store.put(_entry(rep, proven=True))
        summary = improve_store(store, budget=1000)
        assert summary == {
            "attempted": 0, "improved": 0, "proven": 0,
            "conflicts": 0, "rejected": 0,
        }

    @pytest.mark.slow
    def test_parallel_matches_serial(self, tmp_path):
        serial = NpnStore.open(tmp_path / "serial.npn5", num_vars=5)
        parallel = NpnStore.open(tmp_path / "parallel.npn5", num_vars=5)
        reps = _easy_reps()
        for rep in reps:
            serial.put(_entry(rep))
            parallel.put(_entry(rep))
        improve_store(serial, budget=3000)
        improve_store(
            parallel, budget=3000, jobs=2, workdir=tmp_path / "batch"
        )
        assert set(serial.index) == set(parallel.index)
        for rep in reps:
            a, b = serial.get(rep), parallel.get(rep)
            assert (a.size, a.proven) == (b.size, b.proven)

"""Tests for the NPN-4 minimum-MIG database."""

from __future__ import annotations

import io
import random

import pytest

from repro.core.mig import CONST0, Mig
from repro.core.npn import enumerate_npn_classes
from repro.core.truth_table import tt_mask
from repro.database.npn_db import (
    DbEntry,
    NpnDatabase,
    entry_from_json,
    entry_to_json,
)


class TestLoadedDatabase:
    def test_complete(self, db):
        assert len(db) == 222
        assert db.complete
        assert set(db.entries) == set(enumerate_npn_classes(4))

    def test_every_entry_verifies(self, db):
        db.verify()  # raises on any functional mismatch

    def test_size_histogram_shape(self, db):
        hist = db.size_histogram()
        assert sum(hist.values()) == 222
        assert hist[0] == 2  # constants + projections
        assert hist[1] == 2  # AND/OR-like + MAJ-like (Table I)
        assert hist[2] == 5
        assert hist[3] == 18
        assert max(hist) <= 9

    def test_lookup_arbitrary_function(self, db):
        entry, t = db.lookup(0xCAFE)
        assert entry.rep == db.lookup(0xCAFE)[0].rep
        from repro.core.npn import apply_transform

        assert apply_transform(entry.rep, t, 4) == 0xCAFE

    def test_size_of_trivial(self, db):
        assert db.size_of(0) == 0
        assert db.size_of(tt_mask(4)) == 0
        assert db.size_of(0xAAAA) == 0  # projection x0


class TestRebuild:
    def test_rebuild_matches_function(self, db):
        rng = random.Random(17)
        for _ in range(80):
            tt = rng.getrandbits(16)
            mig = Mig(4)
            leaves = mig.pi_signals()
            signal = db.rebuild(mig, tt, leaves)
            mig.add_po(signal)
            assert mig.simulate()[0] == tt, hex(tt)

    def test_rebuild_with_shuffled_leaves(self, db):
        mig = Mig(4)
        a, b, c, d = mig.pi_signals()
        tt = 0x8000  # a & b & c & d
        signal = db.rebuild(mig, tt, [d, c, b, a])
        mig.add_po(signal)
        assert mig.simulate()[0] == tt

    def test_rebuild_with_constant_leaf(self, db):
        mig = Mig(4)
        a, b, c, _ = mig.pi_signals()
        tt = 0x0888  # some function
        signal = db.rebuild(mig, tt, [a, b, c, CONST0])
        mig.add_po(signal)
        # evaluate expected: tt with x3 = 0
        expected = 0
        for m in range(16):
            if m & 0b1000:
                continue
            if (tt >> m) & 1:
                expected |= 1 << m
                expected |= 1 << (m | 0b1000)
        assert mig.simulate()[0] == expected

    def test_rebuild_wrong_leaf_count(self, db):
        mig = Mig(4)
        with pytest.raises(ValueError):
            db.rebuild(mig, 0x1234, mig.pi_signals()[:3])


class TestPinDepths:
    def test_trivial_entry_depths(self, db):
        entry, _ = db.lookup(0xAAAA)  # projection class (rep is a literal)
        pins = entry.pin_depths()
        assert sorted(pins) == [-1, -1, -1, 0]

    def test_instantiated_depth_upper_bounds_reality(self, db):
        rng = random.Random(23)
        for _ in range(40):
            tt = rng.getrandbits(16)
            est = db.instantiated_depth(tt, [0, 0, 0, 0])
            mig = Mig(4)
            signal = db.rebuild(mig, tt, mig.pi_signals())
            mig.add_po(signal)
            # strashing can only shrink depth vs the stored structure
            assert mig.depth() <= est


class TestSerialization:
    def test_json_roundtrip(self, db):
        entry = db.entries[sorted(db.entries)[50]]
        line = entry_to_json(entry)
        back = entry_from_json(line)
        assert back == entry or (
            back.rep == entry.rep
            and back.gates == entry.gates
            and back.output == entry.output
        )

    def test_save_load_roundtrip(self, db, tmp_path):
        path = tmp_path / "db.jsonl"
        db.save(path)
        loaded = NpnDatabase.load(path)
        assert len(loaded) == len(db)
        for rep, entry in db.entries.items():
            assert loaded.entries[rep].gates == entry.gates

    def test_from_jsonl_skips_blank_lines(self, db):
        entry = next(iter(db.entries.values()))
        text = entry_to_json(entry) + "\n\n"
        loaded = NpnDatabase.from_jsonl(io.StringIO(text))
        assert len(loaded) == 1

    def test_missing_entry_raises(self):
        empty = NpnDatabase([], 4)
        with pytest.raises(KeyError):
            empty.lookup(0x1234)
        assert not empty.complete


class TestMalformedJsonl:
    """Interrupted appends and bit-rot must not abort a load mid-file."""

    def test_truncated_last_line_skipped(self, db):
        reps = sorted(db.entries)[:3]
        lines = [entry_to_json(db.entries[r]) for r in reps]
        text = "\n".join(lines[:2]) + "\n" + lines[2][: len(lines[2]) // 2]
        with pytest.warns(UserWarning, match="malformed line 3"):
            loaded = NpnDatabase.from_jsonl(io.StringIO(text))
        assert len(loaded) == 2
        assert loaded.skipped_lines == 1

    def test_garbage_lines_skipped(self, db):
        entry = next(iter(db.entries.values()))
        text = "not json at all\n" + entry_to_json(entry) + "\n{\"rep\": \"0x0\"}\n"
        with pytest.warns(UserWarning):
            loaded = NpnDatabase.from_jsonl(io.StringIO(text))
        assert len(loaded) == 1
        assert loaded.skipped_lines == 2

    def test_clean_file_reports_zero_skips(self, db, tmp_path):
        path = tmp_path / "db.jsonl"
        db.save(path)
        loaded = NpnDatabase.load(path)
        assert loaded.skipped_lines == 0

    def test_atomic_save_leaves_no_temp_files(self, db, tmp_path):
        path = tmp_path / "db.jsonl"
        db.save(path)
        db.save(path)
        assert [p.name for p in tmp_path.iterdir()] == ["db.jsonl"]


class TestDbEntry:
    def test_from_mig_requires_single_output(self, full_adder):
        with pytest.raises(ValueError):
            DbEntry.from_mig(0, full_adder, proven=False)

    def test_to_mig_roundtrip(self, db):
        for rep in list(db.entries)[:30]:
            mig = db.entries[rep].to_mig()
            assert mig.simulate()[0] == rep

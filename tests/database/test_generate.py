"""Tests for database generation (tree phase + SAT improvement)."""

from __future__ import annotations

import pytest

from repro.core.npn import enumerate_npn_classes
from repro.database.generate import generate_tree_database, improve_with_sat
from repro.database.npn_db import NpnDatabase


@pytest.fixture(scope="module")
def tree_db3() -> NpnDatabase:
    return generate_tree_database(num_vars=3)


class TestTreePhase:
    def test_complete_and_verified(self, tree_db3):
        assert len(tree_db3) == 14
        tree_db3.verify()

    def test_trivial_entries_proven(self, tree_db3):
        for rep, entry in tree_db3.entries.items():
            if entry.size <= 1:
                assert entry.proven

    def test_sizes_bounded_by_length(self, tree_db3):
        from repro.exact.complexity import cached_length_table

        table = cached_length_table(3)
        for rep, entry in tree_db3.entries.items():
            assert entry.size <= int(table[rep])


class TestSatPhase:
    def test_improvement_reaches_exact_3var_distribution(self, tree_db3):
        db = NpnDatabase(list(tree_db3.entries.values()), 3)
        stats = improve_with_sat(db, budget=300000)
        assert stats["visited"] > 0
        db.verify()
        # With generous budget, every 3-var class is provable.
        assert all(entry.proven for entry in db.entries.values())
        assert db.size_histogram() == {0: 2, 1: 2, 2: 2, 3: 4, 4: 4}

    def test_time_limit_checkpoints(self, tree_db3, tmp_path):
        db = NpnDatabase(list(tree_db3.entries.values()), 3)
        out = tmp_path / "partial.jsonl"
        improve_with_sat(db, budget=50000, time_limit=0.5, out_path=out)
        # Whatever happened, the checkpoint file must load and verify.
        if out.exists():
            loaded = NpnDatabase.load(out, num_vars=3)
            loaded.verify()

    def test_idempotent_on_proven(self, tree_db3):
        db = NpnDatabase(list(tree_db3.entries.values()), 3)
        improve_with_sat(db, budget=300000)
        before = {rep: e.size for rep, e in db.entries.items()}
        stats = improve_with_sat(db, budget=1000)
        assert stats["visited"] == 0  # everything already proven
        assert {rep: e.size for rep, e in db.entries.items()} == before


class TestShippedDatabaseProvenance:
    def test_shipped_entries_within_length_bound(self, db):
        from repro.exact.complexity import cached_length_table

        table = cached_length_table(4)
        for rep, entry in db.entries.items():
            assert entry.size <= int(table[rep]), hex(rep)

    def test_shipped_proven_rows_match_paper_low_sizes(self, db):
        """Sizes 0-3 are cheap to prove; the shipped db must have them."""
        for rep, entry in db.entries.items():
            if entry.size <= 1:
                assert entry.proven, hex(rep)

    def test_covers_all_classes(self, db):
        assert set(db.entries) == set(enumerate_npn_classes(4))

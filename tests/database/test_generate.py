"""Tests for database generation (tree phase + SAT improvement)."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time
from dataclasses import replace

import pytest

from repro.core.npn import enumerate_npn_classes
from repro.database.generate import (
    generate_tree_database,
    improve_with_sat,
    improve_with_sat_parallel,
)
from repro.database.npn_db import NpnDatabase


@pytest.fixture(scope="module")
def tree_db3() -> NpnDatabase:
    return generate_tree_database(num_vars=3)


class TestTreePhase:
    def test_complete_and_verified(self, tree_db3):
        assert len(tree_db3) == 14
        tree_db3.verify()

    def test_trivial_entries_proven(self, tree_db3):
        for rep, entry in tree_db3.entries.items():
            if entry.size <= 1:
                assert entry.proven

    def test_sizes_bounded_by_length(self, tree_db3):
        from repro.exact.complexity import cached_length_table

        table = cached_length_table(3)
        for rep, entry in tree_db3.entries.items():
            assert entry.size <= int(table[rep])


class TestSatPhase:
    def test_improvement_reaches_exact_3var_distribution(self, tree_db3):
        db = NpnDatabase(list(tree_db3.entries.values()), 3)
        stats = improve_with_sat(db, budget=300000)
        assert stats["visited"] > 0
        db.verify()
        # With generous budget, every 3-var class is provable.
        assert all(entry.proven for entry in db.entries.values())
        assert db.size_histogram() == {0: 2, 1: 2, 2: 2, 3: 4, 4: 4}

    def test_time_limit_checkpoints(self, tree_db3, tmp_path):
        db = NpnDatabase(list(tree_db3.entries.values()), 3)
        out = tmp_path / "partial.jsonl"
        improve_with_sat(db, budget=50000, time_limit=0.5, out_path=out)
        # Whatever happened, the checkpoint file must load and verify.
        if out.exists():
            loaded = NpnDatabase.load(out, num_vars=3)
            loaded.verify()

    def test_idempotent_on_proven(self, tree_db3):
        db = NpnDatabase(list(tree_db3.entries.values()), 3)
        improve_with_sat(db, budget=300000)
        before = {rep: e.size for rep, e in db.entries.items()}
        stats = improve_with_sat(db, budget=1000)
        assert stats["visited"] == 0  # everything already proven
        assert {rep: e.size for rep, e in db.entries.items()} == before


class TestCrashSafeGeneration:
    """Killed generation runs must leave loadable, resumable artifacts."""

    def test_interrupted_tree_phase_resumes(self, tmp_path, monkeypatch):
        import repro.database.generate as gen

        out = tmp_path / "npn3.jsonl"

        class Killed(Exception):
            pass

        real = gen.TreeSynthesizer
        state = {"n": 0}

        class Killer(real):
            def synthesize(self, rep):
                if state["n"] >= 6:
                    raise Killed()
                state["n"] += 1
                return super().synthesize(rep)

        monkeypatch.setattr(gen, "TreeSynthesizer", Killer)
        with pytest.raises(Killed):
            gen.generate_tree_database(3, out_path=out, checkpoint_every=2)
        monkeypatch.setattr(gen, "TreeSynthesizer", real)

        # The checkpoint loads cleanly and holds only verified classes.
        partial = NpnDatabase.load(out, num_vars=3)
        partial.verify()
        assert 0 < len(partial) < 14

        # Resuming fills in exactly the missing classes.
        db = generate_tree_database(3, out_path=out, resume=partial)
        assert len(db) == 14
        db.verify()
        reloaded = NpnDatabase.load(out, num_vars=3)
        assert len(reloaded) == 14
        reloaded.verify()

    def test_resume_after_truncated_append(self, tmp_path):
        out = tmp_path / "npn3.jsonl"
        generate_tree_database(3, out_path=out)
        # Simulate a kill mid-append: chop the last line in half.
        text = out.read_text()
        out.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        with pytest.warns(UserWarning):
            partial = NpnDatabase.load(out, num_vars=3)
        assert partial.skipped_lines == 1
        assert len(partial) == 13
        db = generate_tree_database(3, out_path=out, resume=partial)
        assert len(db) == 14
        db.verify()

    def test_sigkilled_subprocess_leaves_loadable_artifact(self, tmp_path):
        """Acceptance criterion: SIGKILL mid-run, artifact loads, resume works."""
        out = tmp_path / "npn4.jsonl"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.database.generate",
             "--out", str(out), "--sat-seconds", "60", "--budget", "500", "--quiet"],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait for the first checkpoint, then kill hard mid-run.
            deadline = time.time() + 60
            while time.time() < deadline and not out.exists():
                time.sleep(0.1)
            assert out.exists(), "generation produced no checkpoint within 60s"
            time.sleep(0.5)
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=30)

        # Atomic checkpointing: whatever instant the kill hit, the file is
        # complete JSONL of verified entries.
        partial = NpnDatabase.load(out, num_vars=4)
        assert partial.skipped_lines == 0
        assert len(partial) > 0
        partial.verify()

        # Resume completes the tree phase from the checkpoint.
        db = generate_tree_database(4, out_path=out, resume=partial)
        assert len(db) == 222
        NpnDatabase.load(out, num_vars=4).verify()


def _normalized_lines(db: NpnDatabase, path) -> str:
    """Serialize *db* with wall-clock fields zeroed, return file bytes.

    ``generation_time`` is the one field that legitimately differs
    between a serial and a parallel run (it is measured wall time);
    everything else — gates, sizes, proven flags, conflicts — must be
    byte-identical because both paths run the same deterministic
    ``improve_class``.
    """
    from repro.database.npn_db import NpnDatabase as Db

    stripped = Db(
        [replace(e, generation_time=0.0) for e in db.entries.values()],
        db.num_vars,
    )
    stripped.save(path)
    return path.read_text()


class TestDbImproveWorkerJob:
    """The ``db-improve`` job mode, run in-process via `run_job`."""

    def _spec(self, tree_db3, rep, **overrides):
        from repro.database.npn_db import entry_to_json
        from repro.runtime.jobs import JobSpec

        fields = dict(
            job_id=f"db-0x{rep:04x}",
            network={},
            mode="db-improve",
            verify="sim",
            conflict_limit=300000,
            payload={
                "rep": rep,
                "num_vars": 3,
                "budget": 300000,
                "entry": entry_to_json(tree_db3.entries[rep]),
            },
        )
        fields.update(overrides)
        return JobSpec(**fields)

    def test_improves_and_returns_entry(self, tree_db3):
        from repro.database.npn_db import entry_from_json
        from repro.runtime.worker import run_job

        rep = max(tree_db3.entries, key=lambda r: tree_db3.entries[r].size)
        result = run_job(self._spec(tree_db3, rep))
        assert result["status"] == "ok" and result["rep"] == rep
        new_entry = entry_from_json(result["entry"])
        assert new_entry.to_mig().simulate()[0] == rep
        assert new_entry.proven
        assert result["size_after"] <= result["size_before"]

    def test_budget_comes_from_conflict_limit(self, tree_db3):
        """The degradation ladder shrinks conflict_limit; it must bind."""
        from repro.database.npn_db import entry_from_json
        from repro.runtime.worker import run_job

        rep = max(tree_db3.entries, key=lambda r: tree_db3.entries[r].size)
        result = run_job(self._spec(tree_db3, rep, conflict_limit=1))
        assert entry_from_json(result["entry"]).conflicts <= 2

    def test_malformed_payload_rejected(self, tree_db3):
        from repro.runtime.worker import run_job

        rep = next(iter(tree_db3.entries))
        spec = self._spec(tree_db3, rep, payload={"rep": rep})
        with pytest.raises(ValueError, match="malformed db-improve payload"):
            run_job(spec)


class TestParallelSatPhase:
    """`improve_with_sat_parallel` must be a drop-in for the serial loop."""

    BUDGET = 300000

    def test_parallel_output_is_byte_identical_to_serial(self, tree_db3, tmp_path):
        serial_db = NpnDatabase(list(tree_db3.entries.values()), 3)
        improve_with_sat(serial_db, budget=self.BUDGET)

        par_db = NpnDatabase(list(tree_db3.entries.values()), 3)
        out = tmp_path / "npn3-par.jsonl"
        stats = improve_with_sat_parallel(
            par_db,
            budget=self.BUDGET,
            out_path=out,
            jobs=2,
            workdir=tmp_path / "jobs",
        )
        assert stats["failed_jobs"] == 0
        assert stats["visited"] == sum(
            1 for e in tree_db3.entries.values() if not e.proven
        )
        par_db.verify()
        assert _normalized_lines(serial_db, tmp_path / "ser-norm.jsonl") == (
            _normalized_lines(par_db, tmp_path / "par-norm.jsonl")
        )

    def test_sigkilled_parallel_run_resumes_without_redoing_done_jobs(self, tmp_path):
        """Kill `db generate --jobs` mid-SAT-phase; resume adopts done classes."""
        out = tmp_path / "npn3.jsonl"
        workdir = tmp_path / "jobs"
        driver = tmp_path / "driver.py"
        driver.write_text(
            "import sys\n"
            "from repro.database.generate import (\n"
            "    generate_tree_database, improve_with_sat_parallel)\n"
            "db = generate_tree_database(num_vars=3)\n"
            "improve_with_sat_parallel(db, budget=%d, out_path=sys.argv[1],\n"
            "                          jobs=1, workdir=sys.argv[2])\n" % self.BUDGET
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        results = workdir / "results"
        journal = workdir / "journal.jsonl"

        def _done_jobs() -> list[str]:
            from repro.runtime.jobs import JobJournal

            if not journal.exists():
                return []
            replay = JobJournal.replay(journal)
            return [record.spec.job_id for record in replay.by_state("done")]

        proc = subprocess.Popen(
            [sys.executable, str(driver), str(out), str(workdir)],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until the journal records at least two completed class
            # jobs, then SIGKILL the supervisor mid-run.
            deadline = time.time() + 120
            while time.time() < deadline and proc.poll() is None:
                if len(_done_jobs()) >= 2:
                    break
                time.sleep(0.05)
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
        assert journal.exists()
        # Artifacts of journal-done jobs must survive the resumed batch
        # untouched (recovery re-journals them, it never re-runs them).
        done_before = {
            job_id: (results / f"{job_id}.json").stat().st_mtime_ns
            for job_id in _done_jobs()
        }
        assert done_before, "no class job completed before the kill"

        # Resume with the same workdir: completed jobs are adopted from
        # their artifacts, the rest run, and the result matches serial.
        par_db = generate_tree_database(num_vars=3)
        stats = improve_with_sat_parallel(
            par_db, budget=self.BUDGET, out_path=out, jobs=2, workdir=workdir
        )
        assert stats["failed_jobs"] == 0
        par_db.verify()
        assert all(e.proven for e in par_db.entries.values())
        assert par_db.size_histogram() == {0: 2, 1: 2, 2: 2, 3: 4, 4: 4}
        # Adopted artifacts were not rewritten by the resumed batch.
        for job_id, mtime in done_before.items():
            assert (results / f"{job_id}.json").stat().st_mtime_ns == mtime, job_id


class TestShippedDatabaseProvenance:
    def test_shipped_entries_within_length_bound(self, db):
        from repro.exact.complexity import cached_length_table

        table = cached_length_table(4)
        for rep, entry in db.entries.items():
            assert entry.size <= int(table[rep]), hex(rep)

    def test_shipped_proven_rows_match_paper_low_sizes(self, db):
        """Sizes 0-3 are cheap to prove; the shipped db must have them."""
        for rep, entry in db.entries.items():
            if entry.size <= 1:
                assert entry.proven, hex(rep)

    def test_covers_all_classes(self, db):
        assert set(db.entries) == set(enumerate_npn_classes(4))

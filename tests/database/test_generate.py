"""Tests for database generation (tree phase + SAT improvement)."""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.npn import enumerate_npn_classes
from repro.database.generate import generate_tree_database, improve_with_sat
from repro.database.npn_db import NpnDatabase


@pytest.fixture(scope="module")
def tree_db3() -> NpnDatabase:
    return generate_tree_database(num_vars=3)


class TestTreePhase:
    def test_complete_and_verified(self, tree_db3):
        assert len(tree_db3) == 14
        tree_db3.verify()

    def test_trivial_entries_proven(self, tree_db3):
        for rep, entry in tree_db3.entries.items():
            if entry.size <= 1:
                assert entry.proven

    def test_sizes_bounded_by_length(self, tree_db3):
        from repro.exact.complexity import cached_length_table

        table = cached_length_table(3)
        for rep, entry in tree_db3.entries.items():
            assert entry.size <= int(table[rep])


class TestSatPhase:
    def test_improvement_reaches_exact_3var_distribution(self, tree_db3):
        db = NpnDatabase(list(tree_db3.entries.values()), 3)
        stats = improve_with_sat(db, budget=300000)
        assert stats["visited"] > 0
        db.verify()
        # With generous budget, every 3-var class is provable.
        assert all(entry.proven for entry in db.entries.values())
        assert db.size_histogram() == {0: 2, 1: 2, 2: 2, 3: 4, 4: 4}

    def test_time_limit_checkpoints(self, tree_db3, tmp_path):
        db = NpnDatabase(list(tree_db3.entries.values()), 3)
        out = tmp_path / "partial.jsonl"
        improve_with_sat(db, budget=50000, time_limit=0.5, out_path=out)
        # Whatever happened, the checkpoint file must load and verify.
        if out.exists():
            loaded = NpnDatabase.load(out, num_vars=3)
            loaded.verify()

    def test_idempotent_on_proven(self, tree_db3):
        db = NpnDatabase(list(tree_db3.entries.values()), 3)
        improve_with_sat(db, budget=300000)
        before = {rep: e.size for rep, e in db.entries.items()}
        stats = improve_with_sat(db, budget=1000)
        assert stats["visited"] == 0  # everything already proven
        assert {rep: e.size for rep, e in db.entries.items()} == before


class TestCrashSafeGeneration:
    """Killed generation runs must leave loadable, resumable artifacts."""

    def test_interrupted_tree_phase_resumes(self, tmp_path, monkeypatch):
        import repro.database.generate as gen

        out = tmp_path / "npn3.jsonl"

        class Killed(Exception):
            pass

        real = gen.TreeSynthesizer
        state = {"n": 0}

        class Killer(real):
            def synthesize(self, rep):
                if state["n"] >= 6:
                    raise Killed()
                state["n"] += 1
                return super().synthesize(rep)

        monkeypatch.setattr(gen, "TreeSynthesizer", Killer)
        with pytest.raises(Killed):
            gen.generate_tree_database(3, out_path=out, checkpoint_every=2)
        monkeypatch.setattr(gen, "TreeSynthesizer", real)

        # The checkpoint loads cleanly and holds only verified classes.
        partial = NpnDatabase.load(out, num_vars=3)
        partial.verify()
        assert 0 < len(partial) < 14

        # Resuming fills in exactly the missing classes.
        db = generate_tree_database(3, out_path=out, resume=partial)
        assert len(db) == 14
        db.verify()
        reloaded = NpnDatabase.load(out, num_vars=3)
        assert len(reloaded) == 14
        reloaded.verify()

    def test_resume_after_truncated_append(self, tmp_path):
        out = tmp_path / "npn3.jsonl"
        generate_tree_database(3, out_path=out)
        # Simulate a kill mid-append: chop the last line in half.
        text = out.read_text()
        out.write_text(text[: len(text) - len(text.splitlines()[-1]) // 2 - 1])
        with pytest.warns(UserWarning):
            partial = NpnDatabase.load(out, num_vars=3)
        assert partial.skipped_lines == 1
        assert len(partial) == 13
        db = generate_tree_database(3, out_path=out, resume=partial)
        assert len(db) == 14
        db.verify()

    def test_sigkilled_subprocess_leaves_loadable_artifact(self, tmp_path):
        """Acceptance criterion: SIGKILL mid-run, artifact loads, resume works."""
        out = tmp_path / "npn4.jsonl"
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.database.generate",
             "--out", str(out), "--sat-seconds", "60", "--budget", "500", "--quiet"],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait for the first checkpoint, then kill hard mid-run.
            deadline = time.time() + 60
            while time.time() < deadline and not out.exists():
                time.sleep(0.1)
            assert out.exists(), "generation produced no checkpoint within 60s"
            time.sleep(0.5)
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait(timeout=30)

        # Atomic checkpointing: whatever instant the kill hit, the file is
        # complete JSONL of verified entries.
        partial = NpnDatabase.load(out, num_vars=4)
        assert partial.skipped_lines == 0
        assert len(partial) > 0
        partial.verify()

        # Resume completes the tree phase from the checkpoint.
        db = generate_tree_database(4, out_path=out, resume=partial)
        assert len(db) == 222
        NpnDatabase.load(out, num_vars=4).verify()


class TestShippedDatabaseProvenance:
    def test_shipped_entries_within_length_bound(self, db):
        from repro.exact.complexity import cached_length_table

        table = cached_length_table(4)
        for rep, entry in db.entries.items():
            assert entry.size <= int(table[rep]), hex(rep)

    def test_shipped_proven_rows_match_paper_low_sizes(self, db):
        """Sizes 0-3 are cheap to prove; the shipped db must have them."""
        for rep, entry in db.entries.items():
            if entry.size <= 1:
                assert entry.proven, hex(rep)

    def test_covers_all_classes(self, db):
        assert set(db.entries) == set(enumerate_npn_classes(4))

"""Differential testing of the functional-hashing variants.

The variants (top-down vs bottom-up traversal, global vs FFR-local
scope, with and without depth preservation) are different *strategies*
over the same rewriting engine, so they form natural cross-checks: on
any input, every variant must produce a network exhaustively equivalent
to it — and therefore to every other variant's output.  A bug in shared
machinery (cut enumeration, NPN matching, reconstruction) that slips
past one traversal order tends to miscompute under another, which is
what this differential harness is designed to catch.

All networks stay at <= 10 inputs so equivalence is settled by exhaustive
simulation, not sampling.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig import aig_to_mig
from repro.aig.aig import Aig
from repro.core.mig import CONST0, CONST1, Mig
from repro.rewriting.engine import functional_hashing

from ._frozen_scalar import frozen_functional_hashing

#: every traversal/scope/depth combination the engine offers
ALL_VARIANTS = ("T", "TF", "TD", "TFD", "B", "BF", "BD", "BFD")


@st.composite
def random_mig(draw, min_pis=3, max_pis=7, max_gates=20, max_pos=3):
    """Random multi-output MIG, small enough for exhaustive simulation."""
    num_pis = draw(st.integers(min_value=min_pis, max_value=max_pis))
    mig = Mig(num_pis)
    signals = [CONST0] + mig.pi_signals()
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        picks = draw(
            st.lists(
                st.tuples(st.integers(0, len(signals) - 1), st.booleans()),
                min_size=3,
                max_size=3,
            )
        )
        ops = [signals[i] ^ int(c) for i, c in picks]
        signals.append(mig.maj(*ops))
    for _ in range(draw(st.integers(min_value=1, max_value=max_pos))):
        idx = draw(st.integers(0, len(signals) - 1))
        mig.add_po(signals[idx] ^ int(draw(st.booleans())))
    return mig


@st.composite
def random_aig(draw, min_pis=3, max_pis=6, max_gates=20, max_pos=3):
    """Random multi-output AIG; converted to a MIG before rewriting."""
    num_pis = draw(st.integers(min_value=min_pis, max_value=max_pis))
    aig = Aig(num_pis)
    signals = [CONST0] + aig.pi_signals()
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        picks = draw(
            st.lists(
                st.tuples(st.integers(0, len(signals) - 1), st.booleans()),
                min_size=2,
                max_size=2,
            )
        )
        signals.append(aig.and_(*[signals[i] ^ int(c) for i, c in picks]))
    for _ in range(draw(st.integers(min_value=1, max_value=max_pos))):
        idx = draw(st.integers(0, len(signals) - 1))
        aig.add_po(signals[idx] ^ int(draw(st.booleans())))
    return aig


def _edge_case_migs() -> list[tuple[str, Mig]]:
    """Degenerate inputs the batched pipeline must survive verbatim:
    nothing to batch (no gates, no outputs), a single node, outputs that
    never reach a gate (PIs, constants)."""
    cases: list[tuple[str, Mig]] = []
    cases.append(("no-outputs", Mig(2)))
    m = Mig(2)
    a, b = m.pi_signals()
    m.add_po(a)
    m.add_po(b ^ 1)
    cases.append(("all-pi-outputs", m))
    m = Mig(1)
    m.add_po(CONST0)
    m.add_po(CONST1)
    cases.append(("const-outputs", m))
    m = Mig(3)
    a, b, c = m.pi_signals()
    m.add_po(m.maj(a, b, c))
    cases.append(("single-gate", m))
    m = Mig(2)
    a, b = m.pi_signals()
    chain = m.maj(a, b, CONST0)
    for _ in range(5):  # pure chain: every level holds exactly one gate
        chain = m.maj(chain, a ^ 1, CONST1)
    m.add_po(chain)
    cases.append(("single-gate-levels", m))
    m = Mig(0)
    m.add_po(CONST1)
    cases.append(("no-pis", m))
    return cases


class TestBatchedPipelineOracle:
    """The array-native pipeline must pick byte-identical rewrites to the
    frozen scalar snapshot in tests/rewriting/_frozen_scalar.py — under
    every batch setting, on every variant."""

    @given(random_mig(max_gates=18))
    @settings(max_examples=12, deadline=None)
    def test_batched_matches_frozen_scalar_on_migs(self, db, mig):
        for variant in ALL_VARIANTS:
            oracle = frozen_functional_hashing(mig, db, variant)
            for batch in (False, "auto", "full"):
                out = functional_hashing(mig, db, variant, batch=batch)
                assert out.structural_hash() == oracle.structural_hash(), (
                    f"variant {variant}, batch={batch!r} diverged from the "
                    "frozen scalar oracle"
                )

    @given(random_aig(max_gates=16))
    @settings(max_examples=8, deadline=None)
    def test_batched_matches_frozen_scalar_on_converted_aigs(self, db, aig):
        mig = aig_to_mig(aig)
        for variant in ALL_VARIANTS:
            oracle = frozen_functional_hashing(mig, db, variant)
            for batch in (False, "full"):
                out = functional_hashing(mig, db, variant, batch=batch)
                assert out.structural_hash() == oracle.structural_hash(), (
                    f"variant {variant}, batch={batch!r} diverged from the "
                    "frozen scalar oracle"
                )

    @pytest.mark.parametrize("name,mig", _edge_case_migs(), ids=lambda v: v if isinstance(v, str) else "")
    @pytest.mark.parametrize("batch", [False, "full"])
    def test_edge_cases_match_oracle(self, db, name, mig, batch):
        spec = mig.simulate()
        for variant in ALL_VARIANTS:
            oracle = frozen_functional_hashing(mig, db, variant)
            out = functional_hashing(mig, db, variant, batch=batch)
            out.check()
            assert out.simulate() == spec
            assert out.structural_hash() == oracle.structural_hash()


class TestDifferential:
    @given(random_mig())
    @settings(max_examples=25, deadline=None)
    def test_every_variant_matches_the_input_exactly(self, db, mig):
        """All eight variants agree with the input — hence each other."""
        assert mig.num_pis <= 10
        spec = mig.simulate()
        for variant in ALL_VARIANTS:
            out = functional_hashing(mig, db, variant)
            out.check()
            assert out.num_pis == mig.num_pis
            assert out.num_pos == mig.num_pos
            assert out.simulate() == spec, f"variant {variant} diverged"

    @given(random_mig(max_gates=15))
    @settings(max_examples=20, deadline=None)
    def test_variants_compose(self, db, mig):
        """Chaining differently-shaped variants still preserves function."""
        spec = mig.simulate()
        current = mig
        for variant in ("BF", "T", "TFD"):
            current = functional_hashing(current, db, variant)
            current.check()
        assert current.simulate() == spec

    @given(random_mig())
    @settings(max_examples=20, deadline=None)
    def test_depth_variants_never_beat_their_base_on_size_growth(self, db, mig):
        """Depth preservation only restricts rewrites; fanout-free depth
        variants inherit the no-growth guarantee of their base."""
        for variant in ("TFD", "BFD"):
            out = functional_hashing(mig, db, variant)
            assert out.num_gates <= mig.num_gates

"""Differential testing of the functional-hashing variants.

The variants (top-down vs bottom-up traversal, global vs FFR-local
scope, with and without depth preservation) are different *strategies*
over the same rewriting engine, so they form natural cross-checks: on
any input, every variant must produce a network exhaustively equivalent
to it — and therefore to every other variant's output.  A bug in shared
machinery (cut enumeration, NPN matching, reconstruction) that slips
past one traversal order tends to miscompute under another, which is
what this differential harness is designed to catch.

All networks stay at <= 10 inputs so equivalence is settled by exhaustive
simulation, not sampling.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mig import CONST0, Mig
from repro.rewriting.engine import functional_hashing

#: every traversal/scope/depth combination the engine offers
ALL_VARIANTS = ("T", "TF", "TD", "TFD", "B", "BF", "BD", "BFD")


@st.composite
def random_mig(draw, min_pis=3, max_pis=7, max_gates=20, max_pos=3):
    """Random multi-output MIG, small enough for exhaustive simulation."""
    num_pis = draw(st.integers(min_value=min_pis, max_value=max_pis))
    mig = Mig(num_pis)
    signals = [CONST0] + mig.pi_signals()
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        picks = draw(
            st.lists(
                st.tuples(st.integers(0, len(signals) - 1), st.booleans()),
                min_size=3,
                max_size=3,
            )
        )
        ops = [signals[i] ^ int(c) for i, c in picks]
        signals.append(mig.maj(*ops))
    for _ in range(draw(st.integers(min_value=1, max_value=max_pos))):
        idx = draw(st.integers(0, len(signals) - 1))
        mig.add_po(signals[idx] ^ int(draw(st.booleans())))
    return mig


class TestDifferential:
    @given(random_mig())
    @settings(max_examples=25, deadline=None)
    def test_every_variant_matches_the_input_exactly(self, db, mig):
        """All eight variants agree with the input — hence each other."""
        assert mig.num_pis <= 10
        spec = mig.simulate()
        for variant in ALL_VARIANTS:
            out = functional_hashing(mig, db, variant)
            out.check()
            assert out.num_pis == mig.num_pis
            assert out.num_pos == mig.num_pos
            assert out.simulate() == spec, f"variant {variant} diverged"

    @given(random_mig(max_gates=15))
    @settings(max_examples=20, deadline=None)
    def test_variants_compose(self, db, mig):
        """Chaining differently-shaped variants still preserves function."""
        spec = mig.simulate()
        current = mig
        for variant in ("BF", "T", "TFD"):
            current = functional_hashing(current, db, variant)
            current.check()
        assert current.simulate() == spec

    @given(random_mig())
    @settings(max_examples=20, deadline=None)
    def test_depth_variants_never_beat_their_base_on_size_growth(self, db, mig):
        """Depth preservation only restricts rewrites; fanout-free depth
        variants inherit the no-growth guarantee of their base."""
        for variant in ("TFD", "BFD"):
            out = functional_hashing(mig, db, variant)
            assert out.num_gates <= mig.num_gates

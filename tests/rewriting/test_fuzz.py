"""Property-based fuzzing of the rewriting engine on random MIGs.

The suite-based tests exercise realistic arithmetic structure; these
hypothesis tests cover the long tail — arbitrary random DAGs with
degenerate cuts, constant cones, duplicate subfunctions, multi-fanout
tangles — and assert the invariants every variant must keep:
function preservation, interface preservation, and no size increase for
the fanout-free variants.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mig import CONST0, Mig
from repro.core.simulate import equivalent_exhaustive
from repro.opt.fraig import fraig
from repro.opt.size_opt import functional_reduce
from repro.rewriting.engine import functional_hashing


@st.composite
def random_mig(draw, num_pis=5, max_gates=20, num_pos=3):
    mig = Mig(num_pis)
    signals = [CONST0] + mig.pi_signals()
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        picks = draw(
            st.lists(
                st.tuples(st.integers(0, len(signals) - 1), st.booleans()),
                min_size=3,
                max_size=3,
            )
        )
        ops = [signals[i] ^ int(c) for i, c in picks]
        signals.append(mig.maj(*ops))
    for _ in range(num_pos):
        idx = draw(st.integers(0, len(signals) - 1))
        mig.add_po(signals[idx] ^ int(draw(st.booleans())))
    return mig


class TestRewritingFuzz:
    @given(random_mig(), st.sampled_from(["T", "TF", "TD", "TFD"]))
    @settings(max_examples=60, deadline=None)
    def test_top_down_preserves_function(self, db, mig, variant):
        out = functional_hashing(mig, db, variant)
        assert equivalent_exhaustive(mig, out)
        assert out.pi_names == mig.pi_names

    @given(random_mig(), st.sampled_from(["B", "BF", "BD", "BFD"]))
    @settings(max_examples=60, deadline=None)
    def test_bottom_up_preserves_function(self, db, mig, variant):
        out = functional_hashing(mig, db, variant)
        assert equivalent_exhaustive(mig, out)

    @given(random_mig())
    @settings(max_examples=40, deadline=None)
    def test_fanout_free_never_grows(self, db, mig):
        for variant in ("TF", "BF"):
            out = functional_hashing(mig, db, variant)
            assert out.num_gates <= mig.num_gates

    @given(random_mig())
    @settings(max_examples=30, deadline=None)
    def test_fraig_agrees_with_functional_reduce(self, mig):
        """Both reducers preserve function; fraig is at least as thorough."""
        reduced = functional_reduce(mig)
        swept = fraig(mig, conflict_budget=5000)
        assert equivalent_exhaustive(mig, reduced)
        assert equivalent_exhaustive(mig, swept)

    @given(random_mig(num_pis=4, max_gates=10, num_pos=1))
    @settings(max_examples=30, deadline=None)
    def test_single_output_rewrite_bounded_by_database(self, db, mig):
        """A single-output 4-PI MIG can always shrink to the db optimum."""
        out = functional_hashing(mig, db, "TF")
        spec = mig.simulate()[0]
        assert out.num_gates <= max(mig.num_gates, db.size_of(spec))

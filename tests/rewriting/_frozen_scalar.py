"""Frozen scalar reference for the rewriting differential oracle.

This module is a deliberate, self-contained snapshot of the *scalar*
functional-hashing decision pipeline — cut walk, per-cut truth table via
the lazy memo, one scalar NPN canonization per lookup, scalar rebuild —
taken at the point the array-native batch pipeline was introduced.  It
bypasses every batch entry point (``CutSet.compute_functions``,
``NpnDatabase.lookup_batch``, ``npn_canonize_batch``) and the database's
instrumented ``lookup`` (fault hooks, counters), so it cannot drift when
those are optimized.

**Do not refactor this file alongside src/** — its value is that it
stays behind as the oracle: the production pipeline under any ``batch``
setting must keep choosing byte-identical rewrites
(tests/rewriting/test_differential.py).
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass
from itertools import product

from repro.core.cuts import cut_cone_nodes, enumerate_cut_set
from repro.core.mig import CONST0, Mig, make_signal, signal_not
from repro.core.npn import npn_canonize
from repro.core.truth_table import tt_extend

__all__ = ["frozen_functional_hashing"]


def _lookup(db, tt):
    """Scalar database consult: one npn_canonize, no counters, no faults."""
    rep, transform = npn_canonize(tt, db.num_vars)
    entry = db.entries.get(rep)
    if entry is None:
        raise KeyError(f"no database entry for NPN class 0x{rep:x}")
    return entry, transform


def _rebuild(db, mig, entry, t, leaf_signals):
    input_signals = []
    for j in range(db.num_vars):
        s = leaf_signals[t.perm[j]]
        if (t.flips >> j) & 1:
            s = signal_not(s)
        input_signals.append(s)
    signals = [0] + input_signals
    for a, b, c in entry.gates:
        mapped = tuple(signals[s >> 1] ^ (s & 1) for s in (a, b, c))
        signals.append(mig.maj(*mapped))
    out = signals[entry.output >> 1] ^ (entry.output & 1)
    if t.output_flip:
        out = signal_not(out)
    return out


def _instantiated_depth(db, entry, t, leaf_levels):
    pins = entry.pin_depths()
    depth = 0
    for j in range(db.num_vars):
        if pins[j] < 0:
            continue
        depth = max(depth, leaf_levels[t.perm[j]] + pins[j])
    return depth


@dataclass(frozen=True)
class _Candidate:
    signal: int
    size: int
    depth: int


def _insert(candidates, new, limit):
    dup = None
    for i, existing in enumerate(candidates):
        if existing.signal == new.signal:
            if (new.size, new.depth) >= (existing.size, existing.depth):
                return candidates
            dup = i
            break
    if any(
        existing.size <= new.size
        and existing.depth <= new.depth
        and (existing.size, existing.depth) != (new.size, new.depth)
        for existing in candidates
    ):
        return candidates
    if dup is not None:
        del candidates[dup]
    candidates[:] = [
        existing
        for existing in candidates
        if not (
            new.size <= existing.size
            and new.depth <= existing.depth
            and (new.size, new.depth) != (existing.size, existing.depth)
        )
    ]
    if len(candidates) >= limit:
        worst = candidates[-1]
        if (new.size, new.depth) >= (worst.size, worst.depth):
            return candidates
    insort(candidates, new, key=lambda cand: (cand.size, cand.depth))
    del candidates[limit:]
    return candidates


def _bottom_up(
    mig,
    db,
    depth_preserving,
    fanout_free,
    cut_size=4,
    cut_limit=8,
    candidate_limit=3,
    combination_limit=16,
):
    fanout = mig.fanout_counts()
    cuts = enumerate_cut_set(
        mig,
        k=cut_size,
        cut_limit=cut_limit,
        ffr_fanout=fanout if fanout_free else None,
    )
    levels = mig.levels()
    new = Mig.like(mig)
    cand = {0: [_Candidate(CONST0, 0, 0)]}
    for i in range(1, mig.num_pis + 1):
        cand[i] = [_Candidate(make_signal(i), 0, 0)]
    num_vars = db.num_vars
    for node in mig.gates():
        entries = []
        a, b, c = mig.fanins(node)
        best_a, best_b, best_c = (cand[a >> 1][0], cand[b >> 1][0], cand[c >> 1][0])
        baseline = _Candidate(
            new.maj(
                best_a.signal ^ (a & 1),
                best_b.signal ^ (b & 1),
                best_c.signal ^ (c & 1),
            ),
            1 + best_a.size + best_b.size + best_c.size,
            1 + max(best_a.depth, best_b.depth, best_c.depth),
        )
        entries = _insert(entries, baseline, candidate_limit)
        for leaves in cuts[node]:
            if leaves == (node,) or node in leaves:
                continue
            if fanout_free:
                cone_gates = cuts.cone_size(node, leaves)
                if cone_gates is None:
                    continue
            else:
                internal = cut_cone_nodes(mig, node, leaves, None)
                if internal is None:
                    continue
                cone_gates = len(internal)
            tt = cuts.function(node, leaves)
            tt4 = tt_extend(tt, len(leaves), num_vars)
            try:
                entry, transform = _lookup(db, tt4)
            except KeyError:
                continue
            gain = cone_gates - entry.size
            if gain < 0 or (gain == 0 and not depth_preserving):
                continue
            leaf_options = [cand[leaf][:2] for leaf in leaves]
            combos = 0
            for combo in product(*leaf_options):
                combos += 1
                if combos > combination_limit:
                    break
                leaf_signals = [cnd.signal for cnd in combo]
                leaf_signals += [CONST0] * (num_vars - len(leaves))
                leaf_depths = [cnd.depth for cnd in combo]
                leaf_depths += [0] * (num_vars - len(leaves))
                depth = _instantiated_depth(db, entry, transform, leaf_depths)
                if depth_preserving and depth > levels[node]:
                    continue
                if gain == 0 and depth >= levels[node]:
                    continue
                size = entry.size + sum(cnd.size for cnd in combo)
                signal = _rebuild(db, new, entry, transform, leaf_signals)
                entries = _insert(
                    entries, _Candidate(signal, size, depth), candidate_limit
                )
        cand[node] = entries
    for s, name in zip(mig.outputs, mig.output_names):
        best = cand[s >> 1][0]
        new.add_po(best.signal ^ (s & 1), name)
    return new.cleanup()


def _top_down(
    mig,
    db,
    depth_preserving,
    fanout_free,
    cut_size=4,
    cut_limit=12,
):
    fanout = mig.fanout_counts()
    cuts = enumerate_cut_set(
        mig,
        k=cut_size,
        cut_limit=cut_limit,
        ffr_fanout=fanout if fanout_free else None,
    )
    levels = mig.levels()
    new = Mig.like(mig)
    memo = {0: 0}
    for i in range(1, mig.num_pis + 1):
        memo[i] = make_signal(i)

    def best_cut(node):
        best = None
        for leaves in cuts[node]:
            if leaves == (node,) or node in leaves:
                continue
            if fanout_free:
                cone_gates = cuts.cone_size(node, leaves)
                if cone_gates is None:
                    continue
            else:
                internal = cut_cone_nodes(mig, node, leaves, None)
                if internal is None:
                    continue
                cone_gates = len(internal)
            tt = cuts.function(node, leaves)
            tt4 = tt_extend(tt, len(leaves), db.num_vars)
            try:
                entry, transform = _lookup(db, tt4)
            except KeyError:
                continue
            gain = cone_gates - entry.size
            if gain <= 0:
                continue
            if depth_preserving:
                leaf_levels = [levels[leaf] for leaf in leaves]
                leaf_levels += [0] * (db.num_vars - len(leaves))
                new_level = _instantiated_depth(db, entry, transform, leaf_levels)
                if new_level > levels[node]:
                    continue
            if best is None or gain > best[0]:
                best = (gain, leaves, entry, transform)
        if best is None:
            return None
        return best[1], best[2], best[3]

    choice_cache = {}

    def opt(root):
        stack = [root]
        while stack:
            node = stack[-1]
            if node in memo:
                stack.pop()
                continue
            if node not in choice_cache:
                choice_cache[node] = best_cut(node)
            choice = choice_cache[node]
            if choice is not None:
                deps = list(choice[0])
            else:
                deps = [s >> 1 for s in mig.fanins(node)]
            missing = [d for d in deps if d not in memo]
            if missing:
                stack.extend(missing)
                continue
            if choice is not None:
                leaves, entry, transform = choice
                leaf_signals = [memo[leaf] for leaf in leaves]
                leaf_signals += [CONST0] * (db.num_vars - len(leaves))
                signal = _rebuild(db, new, entry, transform, leaf_signals)
            else:
                a, b, c = mig.fanins(node)
                signal = new.maj(
                    memo[a >> 1] ^ (a & 1),
                    memo[b >> 1] ^ (b & 1),
                    memo[c >> 1] ^ (c & 1),
                )
            memo[node] = signal
            stack.pop()
        return memo[root]

    for s, name in zip(mig.outputs, mig.output_names):
        new.add_po(opt(s >> 1) ^ (s & 1), name)
    return new.cleanup()


def frozen_functional_hashing(mig, db, variant, cut_size=4, cut_limit=8):
    """Scalar oracle for one engine pass of the given paper variant.

    Defaults mirror :func:`repro.rewriting.engine.functional_hashing`
    (which hands ``cut_limit=8`` to both traversals).
    """
    name = variant.upper()
    top_down = name.startswith("T")
    fanout_free = "F" in name
    depth_preserving = name.endswith("D")
    if top_down:
        return _top_down(
            mig, db, depth_preserving, fanout_free, cut_size, cut_limit
        )
    return _bottom_up(
        mig, db, depth_preserving, fanout_free, cut_size, cut_limit
    )

"""Functional-hashing variant tests (Algorithms 1 and 2, Sec. V-C).

Every variant must preserve functionality on every benchmark; the
fanout-free variants must never increase size; depth-preserving FFR
variants must hold depth.
"""

from __future__ import annotations

import pytest

from repro.core.simulate import check_equivalence
from repro.rewriting.bottom_up import rewrite_bottom_up
from repro.rewriting.engine import VARIANTS, functional_hashing, _parse_variant
from repro.rewriting.top_down import rewrite_top_down


class TestVariantParsing:
    def test_all_acronyms(self):
        assert _parse_variant("T") == (True, False, False)
        assert _parse_variant("TD") == (True, False, True)
        assert _parse_variant("TF") == (True, True, False)
        assert _parse_variant("TFD") == (True, True, True)
        assert _parse_variant("B") == (False, False, False)
        assert _parse_variant("BF") == (False, True, False)
        assert _parse_variant("BFD") == (False, True, True)

    def test_lowercase_accepted(self):
        assert _parse_variant("bf") == (False, True, False)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            _parse_variant("XY")


@pytest.mark.parametrize("variant", VARIANTS)
class TestFunctionPreservation:
    def test_equivalence_on_suite(self, db, suite_small, variant):
        for mig in suite_small:
            optimized = functional_hashing(mig, db, variant)
            assert check_equivalence(mig, optimized), (mig.name, variant)

    def test_interface_preserved(self, db, suite_small, variant):
        mig = suite_small[0]
        optimized = functional_hashing(mig, db, variant)
        assert optimized.num_pis == mig.num_pis
        assert optimized.num_pos == mig.num_pos
        assert optimized.pi_names == mig.pi_names
        assert optimized.output_names == mig.output_names


@pytest.mark.parametrize("variant", ["TF", "TFD", "BF", "BFD"])
class TestFanoutFreeNeverGrows:
    def test_size_never_increases(self, db, suite_small, variant):
        for mig in suite_small:
            optimized = functional_hashing(mig, db, variant)
            assert optimized.num_gates <= mig.num_gates, (mig.name, variant)


@pytest.mark.parametrize("variant", ["TFD", "BFD"])
class TestDepthPreserving:
    def test_depth_never_increases_in_ffr_mode(self, db, suite_small, variant):
        for mig in suite_small:
            optimized = functional_hashing(mig, db, variant)
            assert optimized.depth() <= mig.depth(), (mig.name, variant)


class TestTopDown:
    def test_finds_reductions_on_redundant_logic(self, db):
        """A wasteful xor chain must shrink towards the database optimum."""
        from repro.core.mig import Mig

        mig = Mig(4)
        a, b, c, d = mig.pi_signals()
        # xor built wastefully: 3 gates per xor, no sharing across stages.
        x1 = mig.xor(a, b)
        x2 = mig.xor(x1, c)
        x3 = mig.xor(x2, d)
        mig.add_po(x3)
        out = rewrite_top_down(mig, db)
        assert check_equivalence(mig, out)
        assert out.num_gates <= mig.num_gates

    def test_cut_size_above_db_rejected(self, db, full_adder):
        with pytest.raises(ValueError):
            rewrite_top_down(full_adder, db, cut_size=5)


class TestBottomUp:
    def test_candidate_limit_respected(self, db, suite_small):
        mig = suite_small[5]
        out1 = rewrite_bottom_up(mig, db, candidate_limit=1)
        out3 = rewrite_bottom_up(mig, db, candidate_limit=3)
        assert check_equivalence(mig, out1)
        assert check_equivalence(mig, out3)

    def test_cut_size_above_db_rejected(self, db, full_adder):
        with pytest.raises(ValueError):
            rewrite_bottom_up(full_adder, db, cut_size=6)


class TestIdempotentOnOptimal:
    def test_full_adder_untouched(self, db, full_adder):
        """The Fig. 1 full adder is already minimal — no variant may grow it."""
        for variant in ("TF", "BF", "TFD"):
            out = functional_hashing(full_adder, db, variant)
            assert out.num_gates <= 3
            assert check_equivalence(full_adder, out)


class TestRepeatedApplication:
    def test_second_pass_converges(self, db, suite_small):
        """Applying BF twice: second pass must not undo the first."""
        mig = suite_small[5]
        once = functional_hashing(mig, db, "BF")
        twice = functional_hashing(once, db, "BF")
        assert twice.num_gates <= once.num_gates
        assert check_equivalence(mig, twice)

"""Tests for fanout-free region partitioning (Sec. IV-C)."""

from __future__ import annotations

from repro.core.mig import CONST0, Mig
from repro.rewriting.ffr import (
    cut_is_fanout_free,
    ffr_of_node,
    ffr_partition,
    ffr_roots,
)


def shared_diamond() -> Mig:
    """g3 and g4 both use g1 (shared): g1 is its own FFR root."""
    mig = Mig(3)
    a, b, c = mig.pi_signals()
    g1 = mig.and_(a, b)
    g3 = mig.and_(g1, c)
    g4 = mig.or_(g1, c)
    mig.add_po(g3)
    mig.add_po(g4)
    return mig


class TestRoots:
    def test_output_gates_are_roots(self, full_adder):
        roots = ffr_roots(full_adder)
        for s in full_adder.outputs:
            assert (s >> 1) in roots

    def test_shared_gate_is_root(self):
        mig = shared_diamond()
        roots = ffr_roots(mig)
        g1 = next(iter(mig.gates()))
        assert g1 in roots
        assert len(roots) == 3

    def test_chain_has_single_root(self):
        mig = Mig(4)
        sigs = mig.pi_signals()
        acc = mig.and_(sigs[0], sigs[1])
        acc = mig.and_(acc, sigs[2])
        acc = mig.and_(acc, sigs[3])
        mig.add_po(acc)
        assert len(ffr_roots(mig)) == 1


class TestPartition:
    def test_partition_covers_all_gates(self, suite_small):
        mig = suite_small[0]
        partition = ffr_partition(mig)
        covered = set()
        for members in partition.values():
            covered.update(members)
        reachable = set()
        stack = [s >> 1 for s in mig.outputs]
        while stack:
            node = stack.pop()
            if node in reachable or not mig.is_gate(node):
                continue
            reachable.add(node)
            stack.extend(s >> 1 for s in mig.fanins(node))
        assert reachable <= covered

    def test_internal_members_have_single_fanout(self):
        mig = shared_diamond()
        fanout = mig.fanout_counts()
        for root, members in ffr_partition(mig).items():
            for member in members:
                if member != root:
                    assert fanout[member] == 1

    def test_ffr_of_node_contains_root(self, full_adder):
        for root in ffr_roots(full_adder):
            assert root in ffr_of_node(full_adder, root)


class TestCutAdmissibility:
    def test_fanout_free_cut_accepted(self):
        mig = Mig(4)
        a, b, c, d = mig.pi_signals()
        inner = mig.and_(a, b)
        root = mig.and_(inner, c)
        mig.add_po(root)
        fanout = mig.fanout_counts()
        assert cut_is_fanout_free(mig, root >> 1, (1, 2, 3), fanout)

    def test_shared_internal_node_rejected(self):
        mig = shared_diamond()
        fanout = mig.fanout_counts()
        gates = list(mig.gates())
        g3 = gates[1]
        # cut of g3 with PI leaves crosses shared g1
        assert not cut_is_fanout_free(mig, g3, (1, 2, 3), fanout)

    def test_root_fanout_is_irrelevant(self):
        mig = shared_diamond()
        fanout = mig.fanout_counts()
        g1 = next(iter(mig.gates()))
        # g1 itself has fanout 2, but as cut ROOT that is fine.
        assert cut_is_fanout_free(mig, g1, (1, 2), fanout)

"""Property tests for the bottom-up candidate list (bottom_up._insert).

Satellite regression for the dominance-ordering bug: the insort key is
(size, depth), so an equal-size candidate that is strictly worse on
depth — or a repeat of an already-stored signal with a worse estimate —
could shadow a strictly better entry.  The invariants pinned here:

* the list stays sorted by (size, depth) and within the limit;
* every signal appears at most once, carrying its best-seen estimate;
* no stored candidate strictly dominates another (<= on both axes,
  strictly better on at least one);
* the best (size, depth) pair ever inserted is always retained at the
  head — it can be neither dominated nor evicted.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rewriting.bottom_up import _Candidate, _insert

candidate = st.builds(
    _Candidate,
    signal=st.integers(min_value=2, max_value=20),
    size=st.integers(min_value=0, max_value=6),
    depth=st.integers(min_value=0, max_value=6),
)


def _strictly_dominates(a: _Candidate, b: _Candidate) -> bool:
    return (
        a.size <= b.size
        and a.depth <= b.depth
        and (a.size, a.depth) != (b.size, b.depth)
    )


class TestInsertProperties:
    @given(st.lists(candidate, min_size=1, max_size=40), st.integers(1, 5))
    @settings(max_examples=300, deadline=None)
    def test_invariants(self, inserts, limit):
        stored: list[_Candidate] = []
        for new in inserts:
            stored = _insert(stored, new, limit)
        keys = [(c.size, c.depth) for c in stored]
        assert keys == sorted(keys)
        assert 1 <= len(stored) <= limit
        signals = [c.signal for c in stored]
        assert len(signals) == len(set(signals))
        for a in stored:
            for b in stored:
                if a is not b:
                    assert not _strictly_dominates(a, b), (a, b, stored)
        best = min((c.size, c.depth) for c in inserts)
        assert (stored[0].size, stored[0].depth) == best

    @given(st.lists(candidate, min_size=1, max_size=40))
    @settings(max_examples=200, deadline=None)
    def test_stored_estimates_are_achievable(self, inserts):
        """Every stored entry is one that was actually inserted — the
        list never fabricates or mixes (signal, size, depth) tuples.
        (A signal may legitimately retain a non-minimal estimate when its
        better one arrived while strictly dominated by another entry.)"""
        stored: list[_Candidate] = []
        for new in inserts:
            stored = _insert(stored, new, limit=10)
        inserted = {(c.signal, c.size, c.depth) for c in inserts}
        for c in stored:
            assert (c.signal, c.size, c.depth) in inserted

    def test_duplicate_signal_upgrade_regression(self):
        """The original bug: a second, better estimate for an existing
        signal was silently dropped, keeping the stale worse entry."""
        stored = _insert([], _Candidate(8, size=5, depth=4), limit=3)
        stored = _insert(stored, _Candidate(8, size=2, depth=1), limit=3)
        assert stored == [_Candidate(8, size=2, depth=1)]

    def test_equal_size_worse_depth_rejected(self):
        """Equal-size, strictly-worse-depth candidates used to occupy a
        slot ahead of genuinely incomparable alternatives."""
        stored = _insert([], _Candidate(8, size=3, depth=2), limit=3)
        stored = _insert(stored, _Candidate(10, size=3, depth=5), limit=3)
        assert stored == [_Candidate(8, size=3, depth=2)]
        # An incomparable candidate still gets the slot.
        stored = _insert(stored, _Candidate(12, size=4, depth=1), limit=3)
        assert _Candidate(12, size=4, depth=1) in stored

    def test_new_dominator_sweeps_stale_entries(self):
        stored = [
            _Candidate(8, size=3, depth=3),
            _Candidate(10, size=4, depth=4),
        ]
        stored = _insert(stored, _Candidate(12, size=2, depth=2), limit=3)
        assert stored == [_Candidate(12, size=2, depth=2)]

    def test_exact_ties_between_signals_are_kept(self):
        stored = _insert([], _Candidate(8, size=3, depth=2), limit=3)
        stored = _insert(stored, _Candidate(10, size=3, depth=2), limit=3)
        assert len(stored) == 2

"""Tests for the on-demand 5/6-input database (ref. [9] extension)."""

from __future__ import annotations

import random

import pytest

from repro.core.mig import Mig
from repro.core.simulate import check_equivalence
from repro.generators import epfl
from repro.rewriting import functional_hashing
from repro.rewriting.dynamic_db import DynamicDatabase


class TestDynamicLookup:
    def test_rebuild_matches_function(self):
        db5 = DynamicDatabase(num_vars=5)
        rng = random.Random(31)
        for _ in range(15):
            tt = rng.getrandbits(32)
            mig = Mig(5)
            mig.add_po(db5.rebuild(mig, tt, mig.pi_signals()))
            assert mig.simulate()[0] == tt, hex(tt)

    def test_cache_hits_on_npn_equivalent_functions(self):
        db5 = DynamicDatabase(num_vars=5)
        from repro.core.truth_table import tt_not, tt_permute

        f = random.Random(1).getrandbits(32)
        db5.size_of(f)
        misses = db5.misses
        db5.size_of(tt_not(f, 5))                        # complement
        db5.size_of(tt_permute(f, (4, 3, 2, 1, 0), 5))   # permutation
        assert db5.misses == misses  # same class: no new synthesis
        assert db5.hits >= 2

    def test_lru_eviction(self):
        db5 = DynamicDatabase(num_vars=5, max_entries=4)
        rng = random.Random(9)
        for _ in range(12):
            db5.size_of(rng.getrandbits(32))
        assert len(db5._lru) <= 4

    def test_never_complete(self):
        assert not DynamicDatabase(num_vars=5).complete

    def test_arity_bounds(self):
        with pytest.raises(ValueError):
            DynamicDatabase(num_vars=3)
        with pytest.raises(ValueError):
            DynamicDatabase(num_vars=7)

    def test_improve_budget_tightens_or_matches(self):
        plain = DynamicDatabase(num_vars=5)
        improved = DynamicDatabase(num_vars=5, improve_budget=5000)
        f = 0x96696996  # some 5-var parity-flavored function
        assert improved.size_of(f) <= plain.size_of(f)


class TestFiveInputRewriting:
    def test_rewrites_with_5_cuts(self):
        db5 = DynamicDatabase(num_vars=5)
        mig = epfl.square_root(6)
        out = functional_hashing(mig, db5, "TF", cut_size=5)
        assert check_equivalence(mig, out)
        assert out.num_gates <= mig.num_gates

    def test_bottom_up_with_5_cuts(self):
        db5 = DynamicDatabase(num_vars=5)
        mig = epfl.sine(6)
        out = functional_hashing(mig, db5, "BF", cut_size=5)
        assert check_equivalence(mig, out)
        assert out.num_gates <= mig.num_gates

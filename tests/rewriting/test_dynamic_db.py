"""Tests for the on-demand 5/6-input database (ref. [9] extension)."""

from __future__ import annotations

import random

import pytest

from repro.core.mig import Mig
from repro.core.simulate import check_equivalence
from repro.generators import epfl
from repro.rewriting import functional_hashing
from repro.rewriting.dynamic_db import DynamicDatabase


class TestDynamicLookup:
    def test_rebuild_matches_function(self):
        db5 = DynamicDatabase(num_vars=5)
        rng = random.Random(31)
        for _ in range(15):
            tt = rng.getrandbits(32)
            mig = Mig(5)
            mig.add_po(db5.rebuild(mig, tt, mig.pi_signals()))
            assert mig.simulate()[0] == tt, hex(tt)

    def test_cache_hits_on_npn_equivalent_functions(self):
        db5 = DynamicDatabase(num_vars=5)
        from repro.core.truth_table import tt_not, tt_permute

        f = random.Random(1).getrandbits(32)
        db5.size_of(f)
        misses = db5.misses
        db5.size_of(tt_not(f, 5))                        # complement
        db5.size_of(tt_permute(f, (4, 3, 2, 1, 0), 5))   # permutation
        assert db5.misses == misses  # same class: no new synthesis
        assert db5.hits >= 2

    def test_lru_eviction(self):
        db5 = DynamicDatabase(num_vars=5, max_entries=4)
        rng = random.Random(9)
        for _ in range(12):
            db5.size_of(rng.getrandbits(32))
        assert len(db5._lru) <= 4

    def test_never_complete(self):
        assert not DynamicDatabase(num_vars=5).complete

    def test_arity_bounds(self):
        with pytest.raises(ValueError):
            DynamicDatabase(num_vars=3)
        with pytest.raises(ValueError):
            DynamicDatabase(num_vars=7)

    def test_improve_budget_tightens_or_matches(self):
        plain = DynamicDatabase(num_vars=5)
        improved = DynamicDatabase(num_vars=5, improve_budget=5000)
        f = 0x96696996  # some 5-var parity-flavored function
        assert improved.size_of(f) <= plain.size_of(f)


class TestProvenFlags:
    """Regression tests for ``_synthesize_entry``'s proven semantics."""

    def test_projection_is_proven_at_zero_gates(self):
        db5 = DynamicDatabase(num_vars=5)
        entry, _ = db5.lookup(0xAAAAAAAA)  # x0
        assert entry.size == 0 and entry.proven

    def test_single_gate_is_proven_by_construction(self):
        db5 = DynamicDatabase(num_vars=5)
        entry, _ = db5.lookup(0x88888888)  # x0 AND x1 == maj(x0, x1, 0)
        assert entry.size == 1 and entry.proven

    def test_no_budget_ships_multi_gate_entries_unproven(self):
        db5 = DynamicDatabase(num_vars=5)
        entry, _ = db5.lookup(0x96969696)  # xor3: no 1-gate MIG
        assert entry.size >= 2 and not entry.proven

    def test_budget_proves_or_stays_unproven_never_regresses(self):
        plain = DynamicDatabase(num_vars=5)
        improved = DynamicDatabase(num_vars=5, improve_budget=20000)
        for tt in (0x96969696, 0xE8E8E8E8, 0xCACACACA):
            upper, _ = plain.lookup(tt)
            entry, _ = improved.lookup(tt)
            assert entry.size <= upper.size
            assert entry.to_mig().simulate()[0] == entry.rep
            if entry.size == upper.size:
                # All smaller sizes refuted (proven) or budget ran dry
                # (unproven) — either way the witness is the upper bound.
                assert isinstance(entry.proven, bool)

    def test_xor3_with_budget_is_proven_minimal(self):
        # XOR3 needs 3 MIG gates; refuting sizes 1-2 is a cheap UNSAT,
        # so a modest budget must end with a *proven* size-3 entry.
        db5 = DynamicDatabase(num_vars=5, improve_budget=50000)
        entry, _ = db5.lookup(0x96969696)
        assert entry.size == 3 and entry.proven


class TestBatchedLookup:
    def test_lookup_batch_synthesizes_on_miss(self):
        """The batched pipeline must populate a fresh dynamic database
        (the inert base-class ``lookup_batch`` maps misses to None)."""
        db5 = DynamicDatabase(num_vars=5)
        rng = random.Random(17)
        tts = [rng.getrandbits(32) for _ in range(8)]
        table = db5.lookup_batch(tts)
        assert db5.misses > 0
        for tt in tts:
            entry, transform = table[tt]
            assert entry is not None
            # lookup_in never raises for an in-table function.
            got, _ = db5.lookup_in(tt, table)
            assert got is entry

    def test_batch_matches_scalar_resolution(self):
        rng = random.Random(23)
        tts = [rng.getrandbits(32) for _ in range(12)]
        scalar = DynamicDatabase(num_vars=5)
        batched = DynamicDatabase(num_vars=5)
        table = batched.lookup_batch(tts)
        for tt in tts:
            entry_s, transform_s = scalar.lookup(tt)
            entry_b, transform_b = table[tt]
            assert transform_s == transform_b
            assert entry_s.rep == entry_b.rep
            assert entry_s.size == entry_b.size


class TestMetricsDrain:
    def test_drain_folds_and_zeroes(self):
        from repro.runtime.metrics import PassMetrics

        db5 = DynamicDatabase(num_vars=5, max_entries=4)
        rng = random.Random(5)
        for _ in range(10):
            db5.size_of(rng.getrandbits(32))
        synth, evicted = db5.misses, db5.evictions
        assert synth > 0 and evicted > 0
        metrics = PassMetrics()
        db5.drain_metrics(metrics)
        assert metrics.store_synth == synth
        assert metrics.store_evictions == evicted
        assert db5.misses == db5.hits == db5.store_hits == db5.evictions == 0
        # Draining twice must not double-count.
        db5.drain_metrics(metrics)
        assert metrics.store_synth == synth
        payload = metrics.to_dict()
        assert payload["store_synth"] == synth
        assert "store_hit_rate" in payload


class TestPersistentTier:
    def test_warm_reopen_hits_disk_not_synthesis(self, tmp_path):
        from repro.database.store import NpnStore

        path = tmp_path / "tier.npn5"
        rng = random.Random(41)
        tts = [rng.getrandbits(32) for _ in range(6)]
        cold = DynamicDatabase(num_vars=5, store=NpnStore.open(path, 5))
        sizes = {tt: cold.size_of(tt) for tt in tts}
        assert cold.misses > 0
        cold.store.close()
        warm = DynamicDatabase(num_vars=5, store=NpnStore.open(path, 5))
        for tt in tts:
            assert warm.size_of(tt) == sizes[tt]
        assert warm.misses == 0 and warm.store_hits > 0

    def test_store_arity_mismatch_rejected(self, tmp_path):
        from repro.database.store import NpnStore

        store = NpnStore.open(tmp_path / "s.npn5", num_vars=5)
        with pytest.raises(ValueError):
            DynamicDatabase(num_vars=6, store=store)

    def test_store_accepts_path_argument(self, tmp_path):
        db5 = DynamicDatabase(num_vars=5, store=tmp_path / "p.npn5")
        db5.size_of(0x96969696)
        assert len(db5.store) > 0


class TestLookupProperty:
    """Property drill: for random 5-input functions, the returned entry
    rebuilds to the exact function under the returned transform — under
    LRU eviction pressure, so the store/synthesis tiers churn."""

    def test_lookup_correct_under_eviction_pressure(self, tmp_path):
        hypothesis = pytest.importorskip("hypothesis")
        given, settings, st = (
            hypothesis.given, hypothesis.settings, hypothesis.strategies,
        )
        from repro.core.npn import npn_canonize
        from repro.database.store import NpnStore

        store = NpnStore.open(tmp_path / "prop.npn5", num_vars=5)
        db5 = DynamicDatabase(num_vars=5, max_entries=4, store=store)

        @given(st.lists(st.integers(0, (1 << 32) - 1), min_size=1, max_size=8))
        @settings(max_examples=50, deadline=None)
        def drill(tts):
            for tt in tts:
                entry, transform = db5.lookup(tt)
                rep, expected = npn_canonize(tt, 5)
                assert entry.rep == rep
                assert transform == expected
                # The entry's MIG computes the class representative...
                assert entry.to_mig().simulate()[0] == rep
                # ...and rebuilding through the transform yields tt.
                mig = Mig(5)
                mig.add_po(db5.rebuild(mig, tt, mig.pi_signals()))
                assert mig.simulate()[0] == tt
            assert len(db5._lru) <= 4

        drill()


class TestFiveInputRewriting:
    def test_rewrites_with_5_cuts(self):
        db5 = DynamicDatabase(num_vars=5)
        mig = epfl.square_root(6)
        out = functional_hashing(mig, db5, "TF", cut_size=5)
        assert check_equivalence(mig, out)
        assert out.num_gates <= mig.num_gates

    def test_bottom_up_with_5_cuts(self):
        db5 = DynamicDatabase(num_vars=5)
        mig = epfl.sine(6)
        out = functional_hashing(mig, db5, "BF", cut_size=5)
        assert check_equivalence(mig, out)
        assert out.num_gates <= mig.num_gates

    def test_six_input_rewriting(self):
        db6 = DynamicDatabase(num_vars=6)
        mig = epfl.sine(6)
        out = functional_hashing(mig, db6, "BF", cut_size=6)
        assert check_equivalence(mig, out)
        assert out.num_gates <= mig.num_gates

    def test_batch_and_scalar_pick_identical_rewrites(self):
        mig = epfl.sine(6)
        out_batch = functional_hashing(
            mig, DynamicDatabase(num_vars=5), "BF", cut_size=5, batch="full"
        )
        out_scalar = functional_hashing(
            mig, DynamicDatabase(num_vars=5), "BF", cut_size=5, batch=False
        )
        assert out_batch.num_gates == out_scalar.num_gates
        assert check_equivalence(out_batch, out_scalar)

    def test_cut_size_above_db_arity_rejected(self):
        db5 = DynamicDatabase(num_vars=5)
        with pytest.raises(ValueError):
            functional_hashing(epfl.adder(4), db5, "BF", cut_size=6)

    def test_store_backed_rewrite_round_trip(self, tmp_path):
        from repro.database.store import NpnStore

        mig = epfl.sine(6)
        path = tmp_path / "rw.npn5"
        db_cold = DynamicDatabase(num_vars=5, store=NpnStore.open(path, 5))
        cold = functional_hashing(mig, db_cold, "BF", cut_size=5)
        db_cold.store.close()
        db_warm = DynamicDatabase(num_vars=5, store=NpnStore.open(path, 5))
        warm = functional_hashing(mig, db_warm, "BF", cut_size=5)
        assert warm.num_gates == cold.num_gates
        assert check_equivalence(cold, warm)
        assert db_warm.misses == 0  # every class came from the disk tier

"""Deep-network scalability: passes must not depend on Python recursion.

The seed implementation raised ``sys.setrecursionlimit`` before walking
the network, which both mutated global interpreter state and still
crashed on networks deeper than the chosen limit.  All traversals on the
rewriting hot path (cut cones, cut functions, the top-down opt walk,
levels/depth/cleanup) now use explicit stacks, so a 50k-deep chain MIG —
fifty times the default recursion limit — optimizes fine.
"""

from __future__ import annotations

import sys

from repro.core.mig import Mig
from repro.rewriting import functional_hashing

CHAIN_GATES = 50_000


def build_chain_mig(length: int) -> Mig:
    """A maximally deep MIG: one gate per level, depth == *length*."""
    mig = Mig(3)
    a, b, c = mig.pi_signals()
    acc = mig.maj(a, b, c)
    for i in range(length - 1):
        acc = mig.maj(acc, b if i % 2 else a, c)
    mig.add_po(acc)
    assert mig.num_gates == length
    return mig


def test_no_recursion_limit_tampering():
    """The rewriting modules must not touch the interpreter's limit."""
    import repro.rewriting.bottom_up as bottom_up
    import repro.rewriting.top_down as top_down

    for module in (top_down, bottom_up):
        source = open(module.__file__).read()
        assert "setrecursionlimit(" not in source


def test_deep_chain_pass_completes(db):
    limit_before = sys.getrecursionlimit()
    mig = build_chain_mig(CHAIN_GATES)
    assert mig.depth() == CHAIN_GATES  # depth() itself must be iterative

    result = functional_hashing(mig, db, "TF")

    # The alternating chain is heavily redundant; the pass must both
    # complete (no RecursionError) and leave the limit untouched.
    assert result.num_gates < mig.num_gates
    assert sys.getrecursionlimit() == limit_before


def test_deep_chain_top_down_unrestricted(db):
    """Variant T rebuilds through shared logic — deepest code path."""
    mig = build_chain_mig(10_000)
    result = functional_hashing(mig, db, "T")
    assert result.num_gates < mig.num_gates

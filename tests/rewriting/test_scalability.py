"""Scalability: deep networks must not hit Python recursion, and wide
million-gate networks must finish a full pass within the nightly budget.

The seed implementation raised ``sys.setrecursionlimit`` before walking
the network, which both mutated global interpreter state and still
crashed on networks deeper than the chosen limit.  All traversals on the
rewriting hot path (cut cones, cut functions, the top-down opt walk,
levels/depth/cleanup) now use explicit stacks, so a 50k-deep chain MIG —
fifty times the default recursion limit — optimizes fine.

The million-gate test exercises the other axis: a *wide* generated
instance (``repro.generators.random_layered``) through one full B pass
under the runtime's budget machinery — the array-native cut pipeline
(docs/PERFORMANCE.md) is what makes this complete in minutes instead of
tripping the budget.  It is slow-marked; CI runs it in the nightly job.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro.core.mig import Mig
from repro.generators.random_layered import layered_mig
from repro.opt.flow import run_flow
from repro.rewriting import functional_hashing
from repro.runtime.budget import Budget

CHAIN_GATES = 50_000
MILLION = 1_000_000
#: Default wall-clock budget for the million-gate nightly case.  The pass
#: itself takes well under half of this on a developer machine; the
#: headroom absorbs slow shared CI runners without masking a real
#: regression back to the scalar per-cut loop (which blows far past it).
MILLION_GATE_BUDGET_SECONDS = 900.0


def build_chain_mig(length: int) -> Mig:
    """A maximally deep MIG: one gate per level, depth == *length*."""
    mig = Mig(3)
    a, b, c = mig.pi_signals()
    acc = mig.maj(a, b, c)
    for i in range(length - 1):
        acc = mig.maj(acc, b if i % 2 else a, c)
    mig.add_po(acc)
    assert mig.num_gates == length
    return mig


def test_no_recursion_limit_tampering():
    """The rewriting modules must not touch the interpreter's limit."""
    import repro.rewriting.bottom_up as bottom_up
    import repro.rewriting.top_down as top_down

    for module in (top_down, bottom_up):
        source = open(module.__file__).read()
        assert "setrecursionlimit(" not in source


def test_deep_chain_pass_completes(db):
    limit_before = sys.getrecursionlimit()
    mig = build_chain_mig(CHAIN_GATES)
    assert mig.depth() == CHAIN_GATES  # depth() itself must be iterative

    result = functional_hashing(mig, db, "TF")

    # The alternating chain is heavily redundant; the pass must both
    # complete (no RecursionError) and leave the limit untouched.
    assert result.num_gates < mig.num_gates
    assert sys.getrecursionlimit() == limit_before


def test_deep_chain_top_down_unrestricted(db):
    """Variant T rebuilds through shared logic — deepest code path."""
    mig = build_chain_mig(10_000)
    result = functional_hashing(mig, db, "T")
    assert result.num_gates < mig.num_gates


@pytest.mark.slow
@pytest.mark.skipif(
    not os.environ.get("REPRO_SCALE_NIGHTLY"),
    reason="minutes-long million-gate case; the nightly CI job sets "
    "REPRO_SCALE_NIGHTLY=1",
)
def test_million_gate_bottom_up_within_budget(db):
    """One full B pass over a 1M-gate instance inside the default budget.

    Runs through :func:`run_flow` so the pass sits under the same budget
    machinery the batch/serve tiers use: an expired budget would record
    the step as ``timeout`` instead of ``ok``, which is exactly the
    regression this test pins.
    """
    mig = layered_mig(MILLION, seed=7)
    assert mig.num_gates == MILLION

    budget = Budget.from_limits(time_limit=MILLION_GATE_BUDGET_SECONDS)
    result, history = run_flow(mig, db, ["B"], budget=budget)

    assert [step.status for step in history] == ["ok"]
    assert not budget.expired()
    # The layered generator leaves real local redundancy; a full pass
    # that "completes" by rewriting nothing would also be a regression.
    assert result.num_gates < mig.num_gates
    result.check()

"""Tests for the EPFL random/control benchmark generators."""

from __future__ import annotations

import random

import pytest

from repro.generators import epfl_control
from repro.generators import GENERATORS, resolve_generator


class TestPaperSignatures:
    """The full-size instances must have the paper's exact I/O signatures."""

    @pytest.mark.parametrize(
        "name", ["arbiter", "dec", "int2float", "priority", "router", "voter"]
    )
    def test_io_signature(self, name):
        (pis, pos), generator, full_kwargs, _ = epfl_control.CONTROL_SPECS[name]
        mig = generator(**full_kwargs)
        assert mig.num_pis == pis, name
        assert mig.num_pos == pos, name
        mig.check()

    def test_scaled_suite_generates(self):
        suite = epfl_control.control_suite(full_size=False)
        assert len(suite) == 6
        for name, mig in suite.items():
            assert mig.num_gates > 0, name
            mig.check()


class TestResolveGenerator:
    def test_both_halves_are_registered(self):
        assert set(GENERATORS) >= {
            "adder", "divisor", "log2", "max", "multiplier", "sine",
            "square-root", "square",
            "arbiter", "dec", "int2float", "priority", "router", "voter",
        }

    def test_width_maps_to_the_right_kwarg(self):
        assert resolve_generator("adder", width=8).num_pis == 16
        assert resolve_generator("priority", width=16).num_pis == 16
        # voter's size parameter is a count, not a width
        assert resolve_generator("voter", width=9).num_pis == 9

    def test_router_refuses_width(self):
        with pytest.raises(ValueError):
            resolve_generator("router", width=12)
        assert resolve_generator("router", full_size=True).num_pis == 60

    def test_unknown_name_lists_the_suite(self):
        with pytest.raises(ValueError, match="voter"):
            resolve_generator("nonesuch")


class TestFunctionalCorrectness:
    def _assign(self, mig, values):
        patterns = [values[name] for name in mig.pi_names]
        return mig.simulate_patterns(patterns, 1)

    def test_arbiter_grants(self):
        width = 8
        mig = epfl_control.arbiter(width)
        rng = random.Random(11)
        for _ in range(30):
            req = rng.getrandbits(width)
            mask = rng.getrandbits(width)
            values = {f"r[{i}]": (req >> i) & 1 for i in range(width)}
            values.update({f"m[{i}]": (mask >> i) & 1 for i in range(width)})
            outs = self._assign(mig, values)
            grants, valid = outs[:width], outs[width]
            assert valid == (1 if req else 0)
            assert sum(grants) == (1 if req else 0)
            if req:
                eligible = req & mask
                pool = eligible if eligible else req
                winner = (pool & -pool).bit_length() - 1  # lowest set bit
                assert grants[winner] == 1

    def test_dec_is_one_hot(self):
        width = 4
        mig = epfl_control.dec(width)
        for addr in range(1 << width):
            values = {f"a[{i}]": (addr >> i) & 1 for i in range(width)}
            outs = self._assign(mig, values)
            assert sum(outs) == 1
            assert outs[addr] == 1

    def test_priority_encodes_the_lowest_index(self):
        width = 16
        mig = epfl_control.priority(width)
        rng = random.Random(12)
        for req in [0, 1, 1 << 15] + [rng.getrandbits(width) for _ in range(30)]:
            values = {f"r[{i}]": (req >> i) & 1 for i in range(width)}
            outs = self._assign(mig, values)
            index = sum(bit << b for b, bit in enumerate(outs[:-1]))
            valid = outs[-1]
            if req == 0:
                assert valid == 0
                assert index == 0
            else:
                assert valid == 1
                assert index == (req & -req).bit_length() - 1

    def test_int2float_fields(self):
        width, exp_bits, man_bits = 8, 3, 3
        mig = epfl_control.int2float(width, exp_bits, man_bits)
        rng = random.Random(13)
        for x in [0, 1, -1, 127, -128] + [
            rng.randint(-128, 127) for _ in range(30)
        ]:
            raw = x & ((1 << width) - 1)
            values = {f"x[{i}]": (raw >> i) & 1 for i in range(width)}
            outs = self._assign(mig, values)
            sign, rest = outs[0], outs[1:]
            exponent = sum(bit << b for b, bit in enumerate(rest[:exp_bits]))
            mantissa = sum(bit << j for j, bit in enumerate(rest[exp_bits:]))
            assert sign == (1 if x < 0 else 0)
            mag = abs(x)
            if mag == 0:
                assert exponent == 0 and mantissa == 0
                continue
            pos = mag.bit_length() - 1
            assert exponent == min(pos, (1 << exp_bits) - 1)
            expected_man = 0
            for j in range(man_bits):
                src = pos - (man_bits - j)
                if src >= 0 and (mag >> src) & 1:
                    expected_man |= 1 << j
            assert mantissa == expected_man

    def test_router_allocates_separably(self):
        rows, cols = 3, 3
        mig = epfl_control.router(rows, cols)
        rng = random.Random(14)
        for _ in range(30):
            req = rng.getrandbits(rows * cols)
            mask = rng.getrandbits(rows * cols)
            values = {f"q[{i}]": (req >> i) & 1 for i in range(rows * cols)}
            values.update(
                {f"m[{i}]": (mask >> i) & 1 for i in range(rows * cols)}
            )
            outs = self._assign(mig, values)
            # POs are emitted column-outer; index grants by name instead.
            by_name = dict(zip(mig.output_names, outs))
            grid = [
                [by_name[f"g[{i * cols + j}]"] for j in range(cols)]
                for i in range(rows)
            ]
            for i in range(rows):
                assert sum(grid[i]) <= 1, "an input feeds at most one output"
            for j in range(cols):
                column = [grid[i][j] for i in range(rows)]
                assert sum(column) <= 1, "an output takes at most one input"
            for i in range(rows):
                for j in range(cols):
                    if grid[i][j]:
                        assert (req >> (i * cols + j)) & 1, "grant needs a request"

    def test_voter_majority(self):
        count = 9
        mig = epfl_control.voter(count)
        rng = random.Random(15)
        for votes in [0, (1 << count) - 1] + [
            rng.getrandbits(count) for _ in range(30)
        ]:
            values = {f"v[{i}]": (votes >> i) & 1 for i in range(count)}
            (out,) = self._assign(mig, values)
            assert out == (1 if bin(votes).count("1") > count // 2 else 0)

    def test_voter_requires_odd_count(self):
        with pytest.raises(ValueError):
            epfl_control.voter(10)

"""Tests for the EPFL arithmetic benchmark generators."""

from __future__ import annotations

import math
import random

import pytest

from repro.generators import epfl


class TestPaperSignatures:
    """The full-size instances must have the paper's exact I/O signatures."""

    @pytest.mark.parametrize(
        "name",
        ["adder", "divisor", "log2", "max", "multiplier", "sine", "square-root", "square"],
    )
    def test_io_signature(self, name):
        (pis, pos), generator, full_kwargs, _ = epfl.SUITE_SPECS[name]
        mig = generator(**full_kwargs)
        assert mig.num_pis == pis, name
        assert mig.num_pos == pos, name

    def test_scaled_suite_generates(self):
        suite = epfl.arithmetic_suite(full_size=False)
        assert len(suite) == 8
        for name, mig in suite.items():
            assert mig.num_gates > 0, name


class TestFunctionalCorrectness:
    def _word(self, outs, lo, hi):
        return sum(bit << i for i, bit in enumerate(outs[lo:hi]))

    def _assign(self, mig, values):
        patterns = [values[name] for name in mig.pi_names]
        return mig.simulate_patterns(patterns, 1)

    def test_adder(self):
        mig = epfl.adder(7)
        rng = random.Random(1)
        for _ in range(20):
            a, b = rng.getrandbits(7), rng.getrandbits(7)
            values = {f"a[{i}]": (a >> i) & 1 for i in range(7)}
            values.update({f"b[{i}]": (b >> i) & 1 for i in range(7)})
            outs = self._assign(mig, values)
            assert self._word(outs, 0, 8) == a + b

    def test_divisor(self):
        mig = epfl.divisor(5)
        rng = random.Random(2)
        for _ in range(20):
            n, d = rng.getrandbits(5), rng.randint(1, 31)
            values = {f"n[{i}]": (n >> i) & 1 for i in range(5)}
            values.update({f"d[{i}]": (d >> i) & 1 for i in range(5)})
            outs = self._assign(mig, values)
            assert self._word(outs, 0, 5) == n // d
            assert self._word(outs, 5, 10) == n % d

    def test_multiplier(self):
        mig = epfl.multiplier(5)
        rng = random.Random(3)
        for _ in range(20):
            a, b = rng.getrandbits(5), rng.getrandbits(5)
            values = {f"a[{i}]": (a >> i) & 1 for i in range(5)}
            values.update({f"b[{i}]": (b >> i) & 1 for i in range(5)})
            assert self._word(self._assign(mig, values), 0, 10) == a * b

    def test_square(self):
        mig = epfl.square(5)
        for a in (0, 1, 7, 21, 31):
            values = {f"a[{i}]": (a >> i) & 1 for i in range(5)}
            assert self._word(self._assign(mig, values), 0, 10) == a * a

    def test_square_root(self):
        mig = epfl.square_root(5)
        rng = random.Random(4)
        for _ in range(20):
            x = rng.getrandbits(10)
            values = {f"x[{i}]": (x >> i) & 1 for i in range(10)}
            assert self._word(self._assign(mig, values), 0, 5) == math.isqrt(x)

    def test_max4(self):
        mig = epfl.max4(5)
        rng = random.Random(5)
        for _ in range(20):
            ws = [rng.getrandbits(5) for _ in range(4)]
            values = {}
            for w, c in zip(ws, "abcd"):
                values.update({f"{c}[{i}]": (w >> i) & 1 for i in range(5)})
            outs = self._assign(mig, values)
            assert self._word(outs, 0, 5) == max(ws)
            idx = outs[5] | (outs[6] << 1)
            assert ws[idx] == max(ws)

    def test_log2_accuracy(self):
        mig = epfl.log2(10)
        frac_bits = 10 - 4
        rng = random.Random(6)
        for _ in range(10):
            x = rng.randint(1, 1023)
            values = {f"x[{i}]": (x >> i) & 1 for i in range(10)}
            outs = self._assign(mig, values)
            approx = self._word(outs, 0, 10) / (1 << frac_bits)
            assert abs(approx - math.log2(x)) < 0.05

    def test_sine_accuracy(self):
        mig = epfl.sine(10)
        rng = random.Random(7)
        for _ in range(10):
            a = rng.getrandbits(10)
            theta = a * (math.pi / 2) / 1024
            values = {f"a[{i}]": (a >> i) & 1 for i in range(10)}
            outs = self._assign(mig, values)
            got = sum(bit << i for i, bit in enumerate(outs[:11])) / (1 << 9)
            assert abs(got - math.sin(theta)) < 0.02


class TestStructuralShape:
    def test_depth_grows_with_width(self):
        shallow = epfl.adder(8)
        deep = epfl.adder(16)
        assert deep.depth() > shallow.depth()

    def test_divisor_is_quadratic_ish(self):
        small = epfl.divisor(4)
        large = epfl.divisor(8)
        assert large.num_gates > 3 * small.num_gates

    def test_names_are_distinct(self):
        suite = epfl.arithmetic_suite(full_size=False)
        names = [m.name for m in suite.values()]
        assert len(set(names)) == 8

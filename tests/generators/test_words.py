"""Property-based tests for the word-level circuit builders."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mig import Mig
from repro.generators.words import WordBuilder

WIDTH = 6
MASK = (1 << WIDTH) - 1


def evaluate(mig: Mig, assignment: dict[str, int]) -> list[int]:
    patterns = [assignment[name] for name in mig.pi_names]
    return mig.simulate_patterns(patterns, 1)


def word_value(bits: list[int]) -> int:
    return sum(bit << i for i, bit in enumerate(bits))


def bits_of(value: int, width: int) -> dict[str, int]:
    return {i: (value >> i) & 1 for i in range(width)}


def make_two_input_circuit(op):
    mig = Mig()
    words = WordBuilder(mig)
    a = words.input_word(WIDTH, "a")
    b = words.input_word(WIDTH, "b")
    op(mig, words, a, b)
    return mig


values = st.integers(min_value=0, max_value=MASK)


class TestAddSub:
    @given(values, values)
    @settings(max_examples=40, deadline=None)
    def test_add(self, va, vb):
        def build(mig, words, a, b):
            total, carry = words.add(a, b)
            for s in total:
                mig.add_po(s)
            mig.add_po(carry)

        mig = make_two_input_circuit(build)
        assignment = {f"a[{i}]": (va >> i) & 1 for i in range(WIDTH)}
        assignment.update({f"b[{i}]": (vb >> i) & 1 for i in range(WIDTH)})
        outs = evaluate(mig, assignment)
        assert word_value(outs) == va + vb

    @given(values, values)
    @settings(max_examples=40, deadline=None)
    def test_sub_and_geq(self, va, vb):
        def build(mig, words, a, b):
            diff, no_borrow = words.sub(a, b)
            for s in diff:
                mig.add_po(s)
            mig.add_po(no_borrow)
            mig.add_po(words.geq(a, b))

        mig = make_two_input_circuit(build)
        assignment = {f"a[{i}]": (va >> i) & 1 for i in range(WIDTH)}
        assignment.update({f"b[{i}]": (vb >> i) & 1 for i in range(WIDTH)})
        outs = evaluate(mig, assignment)
        assert word_value(outs[:WIDTH]) == (va - vb) & MASK
        assert outs[WIDTH] == (1 if va >= vb else 0)
        assert outs[WIDTH + 1] == (1 if va >= vb else 0)

    @given(values, values, st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_add_sub_conditional(self, va, vb, subtract):
        mig = Mig()
        words = WordBuilder(mig)
        a = words.input_word(WIDTH, "a")
        b = words.input_word(WIDTH, "b")
        sel = mig.add_pi("sel")
        out, _ = words.add_sub(a, b, sel)
        for s in out:
            mig.add_po(s)
        assignment = {f"a[{i}]": (va >> i) & 1 for i in range(WIDTH)}
        assignment.update({f"b[{i}]": (vb >> i) & 1 for i in range(WIDTH)})
        assignment["sel"] = int(subtract)
        outs = evaluate(mig, assignment)
        expected = (va - vb) & MASK if subtract else (va + vb) & MASK
        assert word_value(outs) == expected


class TestMultiplyDivide:
    @given(values, values)
    @settings(max_examples=30, deadline=None)
    def test_multiply(self, va, vb):
        def build(mig, words, a, b):
            for s in words.multiply(a, b):
                mig.add_po(s)

        mig = make_two_input_circuit(build)
        assignment = {f"a[{i}]": (va >> i) & 1 for i in range(WIDTH)}
        assignment.update({f"b[{i}]": (vb >> i) & 1 for i in range(WIDTH)})
        assert word_value(evaluate(mig, assignment)) == va * vb

    @given(values)
    @settings(max_examples=30, deadline=None)
    def test_square(self, va):
        mig = Mig()
        words = WordBuilder(mig)
        a = words.input_word(WIDTH, "a")
        for s in words.square(a):
            mig.add_po(s)
        assignment = {f"a[{i}]": (va >> i) & 1 for i in range(WIDTH)}
        assert word_value(evaluate(mig, assignment)) == va * va

    @given(values, st.integers(min_value=1, max_value=MASK))
    @settings(max_examples=30, deadline=None)
    def test_divide(self, vn, vd):
        def build(mig, words, a, b):
            q, r = words.divide(a, b)
            for s in q + r:
                mig.add_po(s)

        mig = make_two_input_circuit(build)
        assignment = {f"a[{i}]": (vn >> i) & 1 for i in range(WIDTH)}
        assignment.update({f"b[{i}]": (vd >> i) & 1 for i in range(WIDTH)})
        outs = evaluate(mig, assignment)
        assert word_value(outs[:WIDTH]) == vn // vd
        assert word_value(outs[WIDTH:]) == vn % vd

    @given(st.integers(min_value=0, max_value=(1 << (2 * WIDTH)) - 1))
    @settings(max_examples=30, deadline=None)
    def test_isqrt(self, vx):
        mig = Mig()
        words = WordBuilder(mig)
        x = words.input_word(2 * WIDTH, "x")
        for s in words.isqrt(x):
            mig.add_po(s)
        assignment = {f"x[{i}]": (vx >> i) & 1 for i in range(2 * WIDTH)}
        assert word_value(evaluate(mig, assignment)) == math.isqrt(vx)

    def test_isqrt_rejects_odd_width(self):
        mig = Mig()
        words = WordBuilder(mig)
        x = words.input_word(5, "x")
        with pytest.raises(ValueError):
            words.isqrt(x)


class TestSelection:
    @given(values, values)
    @settings(max_examples=30, deadline=None)
    def test_max_word(self, va, vb):
        def build(mig, words, a, b):
            best, a_wins = words.max_word(a, b)
            for s in best:
                mig.add_po(s)
            mig.add_po(a_wins)

        mig = make_two_input_circuit(build)
        assignment = {f"a[{i}]": (va >> i) & 1 for i in range(WIDTH)}
        assignment.update({f"b[{i}]": (vb >> i) & 1 for i in range(WIDTH)})
        outs = evaluate(mig, assignment)
        assert word_value(outs[:WIDTH]) == max(va, vb)
        assert outs[WIDTH] == (1 if va >= vb else 0)

    @given(values, values)
    @settings(max_examples=20, deadline=None)
    def test_equal(self, va, vb):
        def build(mig, words, a, b):
            mig.add_po(words.equal(a, b))

        mig = make_two_input_circuit(build)
        assignment = {f"a[{i}]": (va >> i) & 1 for i in range(WIDTH)}
        assignment.update({f"b[{i}]": (vb >> i) & 1 for i in range(WIDTH)})
        assert evaluate(mig, assignment)[0] == (1 if va == vb else 0)


class TestShifts:
    def test_constant_shifts(self):
        mig = Mig()
        words = WordBuilder(mig)
        a = words.input_word(WIDTH, "a")
        left = words.shift_left_const(a, 2)
        right = words.shift_right_const(a, 2)
        for s in left + right:
            mig.add_po(s)
        value = 0b101101 & MASK
        assignment = {f"a[{i}]": (value >> i) & 1 for i in range(WIDTH)}
        outs = evaluate(mig, assignment)
        assert word_value(outs[:WIDTH]) == (value << 2) & MASK
        assert word_value(outs[WIDTH:]) == value >> 2

    def test_constant_word(self):
        mig = Mig()
        words = WordBuilder(mig)
        assert word_value([b & 1 for b in words.constant_word(37, 8)]) == 37

    def test_width_mismatch_rejected(self):
        mig = Mig()
        words = WordBuilder(mig)
        a = words.input_word(4, "a")
        b = words.input_word(5, "b")
        with pytest.raises(ValueError):
            words.add(a, b)
        with pytest.raises(ValueError):
            words.geq(a, b)

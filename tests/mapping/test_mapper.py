"""Tests for cut-based technology mapping (Table IV substrate)."""

from __future__ import annotations

import pytest

from repro.core.mig import Mig
from repro.core.truth_table import tt_extend
from repro.mapping.library import default_library
from repro.mapping.mapper import map_mig


class TestMapping:
    def test_full_adder_maps(self, full_adder):
        result = map_mig(full_adder)
        assert result.area > 0
        assert result.depth >= 1
        assert result.num_cells >= 2  # sum + carry

    def test_suite_maps(self, suite_small):
        for mig in suite_small:
            result = map_mig(mig)
            assert result.num_cells > 0, mig.name
            assert result.depth <= mig.depth() + 1

    def test_cover_is_consistent(self, full_adder):
        """Every cover entry's cut function must match its cell's class."""
        from repro.core.npn import npn_representative

        lib = default_library()
        result = map_mig(full_adder, lib)
        for node, (cell, leaves) in result.cover.items():
            tt = full_adder.cut_function(node, leaves)
            tt4 = tt_extend(tt, len(leaves), 4)
            matched = lib.match(tt4)
            assert matched is not None
            assert npn_representative(tt_extend(cell.function, cell.num_inputs, 4), 4) == \
                npn_representative(tt4, 4)

    def test_outputs_covered(self, suite_small):
        mig = suite_small[0]
        result = map_mig(mig)
        for s in mig.outputs:
            node = s >> 1
            if mig.is_gate(node):
                assert node in result.cover

    def test_maj_direct_cut_guarantees_coverage(self):
        """Any MIG maps because MAJ3 is in the library."""
        mig = Mig(3)
        a, b, c = mig.pi_signals()
        mig.add_po(mig.maj(a, b, c))
        result = map_mig(mig)
        assert result.num_cells == 1

    def test_area_improves_with_optimization(self, db, suite_small):
        """Mapping an optimized network should not cost more area (usually)."""
        from repro.rewriting import functional_hashing

        mig = suite_small[5]  # sqrt: large gains available
        before = map_mig(mig)
        optimized = functional_hashing(mig, db, "BF")
        after = map_mig(optimized)
        assert after.area <= before.area

    def test_str_result(self, full_adder):
        text = str(map_mig(full_adder))
        assert "area=" in text and "depth=" in text

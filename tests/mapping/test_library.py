"""Tests for the standard-cell library and NPN matching."""

from __future__ import annotations

from repro.core.truth_table import tt_extend, tt_maj, tt_not, tt_var
from repro.mapping.library import Cell, CellLibrary, default_library


class TestDefaultLibrary:
    def test_nonempty(self):
        lib = default_library()
        assert len(lib) >= 15

    def test_matches_basic_functions(self):
        lib = default_library()
        a, b = tt_var(4, 0), tt_var(4, 1)
        c = tt_var(4, 2)
        assert lib.match(tt_extend(a & b, 4, 4)) is not None  # AND via nand2 class
        assert lib.match(a | b) is not None
        assert lib.match(a ^ b) is not None
        assert lib.match(tt_maj(a, b, c)) is not None

    def test_inverter_free_matching(self):
        """NPN matching folds input/output inverters into the class."""
        lib = default_library()
        a, b = tt_var(4, 0), tt_var(4, 1)
        nand = tt_not(a & b, 4)
        cell_and = lib.match(a & b)
        cell_nand = lib.match(nand)
        assert cell_and is not None and cell_nand is not None
        assert cell_and.name == cell_nand.name  # same NPN class

    def test_no_match_for_hard_function(self):
        lib = default_library()
        # 0x1668 is not in the small library's class set.
        assert lib.match(0x1668) is None or lib.match(0x1668).num_inputs == 4


class TestCustomLibrary:
    def test_cheapest_cell_wins_class(self):
        a, b = tt_var(2, 0), tt_var(2, 1)
        lib = CellLibrary(
            [
                Cell("big_and", 2, a & b, 5.0),
                Cell("small_and", 2, a & b, 2.0),
            ],
            match_vars=2,
        )
        cell = lib.match(a & b)
        assert cell is not None and cell.name == "small_and"

"""Tests for mapped-netlist materialization — the mapper's functional proof."""

from __future__ import annotations

import pytest

from repro.generators import epfl
from repro.mapping.mapper import map_mig
from repro.mapping.netlist import materialize


class TestMaterialization:
    def test_full_adder_netlist_verifies(self, full_adder):
        result = map_mig(full_adder)
        netlist = materialize(full_adder, result)
        assert netlist.verify()
        assert netlist.num_cells == result.num_cells
        assert netlist.area == pytest.approx(result.area)

    def test_suite_netlists_verify(self, suite_small):
        for mig in suite_small:
            if mig.num_pis > 14:
                continue
            result = map_mig(mig)
            netlist = materialize(mig, result)
            assert netlist.verify(), mig.name

    def test_depth_matches_mapper(self, full_adder):
        result = map_mig(full_adder)
        netlist = materialize(full_adder, result)
        assert netlist.depth() == result.depth

    def test_cell_usage_accounts_for_everything(self):
        mig = epfl.multiplier(4)
        result = map_mig(mig)
        netlist = materialize(mig, result)
        assert sum(netlist.cell_usage().values()) == netlist.num_cells
        assert all(count > 0 for count in netlist.cell_usage().values())

    def test_optimized_netlist_verifies(self, db):
        from repro.rewriting import functional_hashing

        mig = epfl.square_root(5)
        optimized = functional_hashing(mig, db, "BF")
        result = map_mig(optimized)
        netlist = materialize(optimized, result)
        assert netlist.verify()

    def test_wide_simulation_rejected(self):
        mig = epfl.max4(4)  # 16 PIs
        result = map_mig(mig)
        netlist = materialize(mig, result)
        with pytest.raises(ValueError):
            netlist.simulate()

    def test_corrupted_cover_rejected(self, full_adder):
        from repro.mapping.library import Cell
        from repro.core.truth_table import tt_var

        result = map_mig(full_adder)
        node = next(iter(result.cover))
        _, leaves = result.cover[node]
        # Bind a cell from the wrong NPN class.
        wrong = Cell("bogus_xor", 2, tt_var(2, 0) ^ tt_var(2, 1), 1.0)
        result.cover[node] = (wrong, leaves)
        with pytest.raises(ValueError):
            materialize(full_adder, result)

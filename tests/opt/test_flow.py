"""Tests for scripted optimization flows."""

from __future__ import annotations

import time

import pytest

from repro.core.simulate import check_equivalence
from repro.generators import epfl
from repro.opt.flow import optimize_until_convergence, run_flow
from repro.runtime import faults
from repro.runtime.budget import Budget
from repro.runtime.errors import VerificationFailed


class TestRunFlow:
    def test_basic_script(self, db):
        mig = epfl.square_root(6)
        result, history = run_flow(mig, db, ["depth", "BF", "TFD"])
        assert check_equivalence(mig, result)
        assert len(history) == 3
        assert history[0].step == "depth"
        assert history[-1].size_after == result.num_gates

    def test_history_chains(self, db):
        mig = epfl.multiplier(4)
        _, history = run_flow(mig, db, ["strash", "TF", "strash"])
        for prev, nxt in zip(history, history[1:]):
            assert prev.size_after == nxt.size_before
            assert prev.depth_after == nxt.depth_before

    def test_variant_step_without_db_rejected(self):
        mig = epfl.adder(4)
        with pytest.raises(ValueError):
            run_flow(mig, None, ["BF"])

    def test_unknown_step_rejected(self, db):
        mig = epfl.adder(4)
        with pytest.raises(ValueError):
            run_flow(mig, db, ["resyn2"])

    def test_depth_fast_is_size_neutral_or_better(self, db):
        mig = epfl.adder(12)
        result, _ = run_flow(mig, db, ["depth-fast"])
        assert check_equivalence(mig, result)
        assert result.num_gates <= mig.num_gates + 2

    def test_fraig_step(self, db):
        mig = epfl.sine(6)
        result, _ = run_flow(mig, db, ["fraig"])
        assert check_equivalence(mig, result)

    def test_case_insensitive_variants(self, db):
        mig = epfl.square(4)
        result, _ = run_flow(mig, db, ["bf"])
        assert check_equivalence(mig, result)


class TestRollback:
    """Fault injection: a miscompiling pass is detected and rolled back."""

    def teardown_method(self):
        faults.reset()

    def test_wrong_rewrite_rolled_back(self, db):
        mig = epfl.square_root(6)
        with faults.inject("flow.wrong-rewrite", times=1):
            result, history = run_flow(
                mig, db, ["depth", "BF"], verify="sim", on_error="rollback"
            )
        # The corrupted step was caught; the flow continued and the final
        # network is still equivalent to the input.
        statuses = [s.status for s in history]
        assert statuses == ["rolled-back", "ok"]
        assert history[0].error is not None
        assert check_equivalence(mig, result)

    def test_wrong_rewrite_raises_by_default(self, db):
        mig = epfl.square_root(6)
        with faults.inject("flow.wrong-rewrite", times=1):
            with pytest.raises(VerificationFailed):
                run_flow(mig, db, ["BF"], verify="sim")

    def test_rolled_back_step_keeps_pre_step_sizes(self, db):
        mig = epfl.adder(6)
        with faults.inject("flow.wrong-rewrite", times=1):
            _, history = run_flow(
                mig, db, ["BF"], verify="sim", on_error="rollback"
            )
        assert history[0].status == "rolled-back"
        assert history[0].size_after == mig.num_gates
        assert history[0].depth_after == mig.depth()

    def test_corrupt_db_entry_caught(self, db):
        """A corrupt database row reaching the rewriter is a miscompile."""
        mig = epfl.multiplier(4)
        with faults.inject("db.corrupt-entry"):
            result, history = run_flow(
                mig, db, ["BF"], verify="sim", on_error="rollback"
            )
        assert history[0].status == "rolled-back"
        assert check_equivalence(mig, result)

    def test_verification_off_misses_fault(self, db):
        """Control: without verification the corrupted result sails through."""
        mig = epfl.adder(6)
        with faults.inject("flow.wrong-rewrite", times=1):
            result, history = run_flow(
                mig, db, ["BF"], verify="off", on_error="rollback"
            )
        assert history[0].status == "ok"
        assert not check_equivalence(mig, result)


class TestBudgetedFlow:
    def test_expired_budget_skips_steps(self, db):
        mig = epfl.adder(8)
        budget = Budget.from_limits(time_limit=0.0)
        result, history = run_flow(mig, db, ["depth", "BF"], budget=budget)
        assert [s.status for s in history] == ["timeout", "timeout"]
        assert result.num_gates == mig.num_gates

    def test_two_second_budget_returns_in_time(self, db):
        """Acceptance criterion: partial results within the wall budget."""
        mig = epfl.log2(8)
        budget = Budget.from_limits(time_limit=2.0)
        start = time.monotonic()
        result, history = run_flow(
            mig, db, ["depth", "BF", "TFD", "fraig", "BF", "TFD", "BF", "TFD"],
            budget=budget, verify="sim", on_error="rollback",
        )
        elapsed = time.monotonic() - start
        # Steps checked between passes + deadline-aware SAT calls: allow
        # one slow step of slack but nowhere near the unbudgeted runtime.
        assert elapsed < 8.0
        assert len(history) == 8
        assert any(s.status == "ok" for s in history) or all(
            s.status == "timeout" for s in history
        )
        assert check_equivalence(mig, result)

    def test_statuses_default_ok(self, db):
        mig = epfl.adder(4)
        _, history = run_flow(mig, db, ["strash"])
        assert history[0].status == "ok"
        assert history[0].verified == "off"

    def test_bad_policy_rejected(self, db):
        with pytest.raises(ValueError):
            run_flow(epfl.adder(4), db, ["strash"], on_error="ignore")


class TestConvergence:
    def test_converges_and_never_grows(self, db):
        mig = epfl.log2(7)
        converged, passes = optimize_until_convergence(mig, db, "BF", max_passes=5)
        assert check_equivalence(mig, converged)
        assert converged.num_gates <= mig.num_gates
        assert 0 <= passes <= 5

    def test_additional_pass_after_convergence_is_idle(self, db):
        mig = epfl.square_root(6)
        converged, _ = optimize_until_convergence(mig, db, "TF", max_passes=6)
        from repro.rewriting import functional_hashing

        again = functional_hashing(converged, db, "TF")
        assert again.num_gates >= converged.num_gates


class TestConvergenceRuntime:
    """optimize_until_convergence under the fault-tolerant runtime."""

    def teardown_method(self):
        faults.reset()

    def test_expired_budget_returns_input(self, db):
        mig = epfl.square_root(6)
        budget = Budget.from_limits(time_limit=0.0)
        result, passes = optimize_until_convergence(mig, db, "BF", budget=budget)
        assert passes == 0
        assert result.num_gates == mig.num_gates

    def test_budget_keeps_partial_progress(self, db):
        """A budget expiring mid-iteration keeps completed passes."""
        mig = epfl.log2(7)
        # Generous enough for at least the first pass, far below full
        # convergence on this instance.
        budget = Budget.from_limits(time_limit=30.0)
        result, passes = optimize_until_convergence(
            mig, db, "BF", max_passes=5, budget=budget
        )
        assert check_equivalence(mig, result)
        assert result.num_gates <= mig.num_gates

    def test_miscompile_raises_by_default(self, db):
        mig = epfl.square_root(6)
        with faults.inject("flow.wrong-rewrite", times=1):
            with pytest.raises(VerificationFailed):
                optimize_until_convergence(mig, db, "BF", verify="sim")

    def test_miscompile_rolls_back_to_last_good(self, db):
        mig = epfl.square_root(6)
        # Second pass miscompiles: the first pass's result must survive.
        with faults.inject("flow.wrong-rewrite", times=1, skip=1):
            result, passes = optimize_until_convergence(
                mig, db, "BF", verify="sim", on_error="rollback"
            )
        assert check_equivalence(mig, result)
        assert result.num_gates < mig.num_gates  # pass 1 kept
        assert passes == 1

    def test_bad_policy_rejected(self, db):
        with pytest.raises(ValueError):
            optimize_until_convergence(epfl.adder(4), db, "BF", on_error="ignore")

    def test_metrics_accumulate_across_passes(self, db):
        from repro.runtime.metrics import PassMetrics

        mig = epfl.square_root(6)
        metrics = PassMetrics()
        _, passes = optimize_until_convergence(
            mig, db, "BF", max_passes=4, metrics=metrics
        )
        assert metrics.variant == "BF"
        # One enumeration per executed pass (converged passes included).
        assert metrics.nodes_visited >= mig.num_gates
        assert metrics.db_hits > 0
        assert metrics.cuts_considered >= metrics.cuts_admitted


class TestFlowMetrics:
    def test_variant_steps_carry_metrics(self, db):
        mig = epfl.square_root(6)
        _, history = run_flow(mig, db, ["strash", "BF"])
        assert history[0].metrics is None  # strash: no hot-path counters
        assert history[1].metrics is not None
        assert history[1].metrics.variant == "BF"
        assert history[1].metrics.nodes_visited > 0

    def test_rolled_back_step_keeps_metrics(self, db):
        mig = epfl.adder(6)
        with faults.inject("flow.wrong-rewrite", times=1):
            _, history = run_flow(
                mig, db, ["BF"], verify="sim", on_error="rollback"
            )
        faults.reset()
        assert history[0].status == "rolled-back"
        assert history[0].metrics is not None
        assert history[0].metrics.nodes_visited > 0


class TestStructuralCheck:
    """Satellite: ``Mig.check()`` runs after every pass under verify."""

    def test_corrupt_structure_rolls_back(self, db):
        mig = epfl.adder(6)
        with faults.inject("flow.corrupt-structure", times=1):
            result, history = run_flow(
                mig, db, ["BF"], verify="sim", on_error="rollback"
            )
        faults.reset()
        assert history[0].status == "rolled-back"
        assert "structural invariant" in history[0].error
        # The corrupted candidate was discarded: the input survives intact.
        assert check_equivalence(mig, result)
        result.check()

    def test_corrupt_structure_raises_on_strict_policy(self, db):
        mig = epfl.adder(6)
        with faults.inject("flow.corrupt-structure", times=1):
            with pytest.raises(VerificationFailed) as exc:
                run_flow(mig, db, ["BF"], verify="sim", on_error="raise")
        faults.reset()
        assert exc.value.method == "structural"

    def test_verify_off_skips_the_structural_check(self, db):
        """check() is a verification feature, gated like verify_rewrite."""
        mig = epfl.adder(6)
        with faults.inject("flow.corrupt-structure", times=1):
            result, history = run_flow(
                mig, db, ["BF"], verify="off", on_error="rollback"
            )
        faults.reset()
        assert history[0].status == "ok"
        with pytest.raises(ValueError):
            result.check()

    def test_corrupt_structure_stops_convergence(self, db):
        mig = epfl.square_root(6)
        with faults.inject("flow.corrupt-structure", times=1, skip=1):
            result, passes = optimize_until_convergence(
                mig, db, "BF", verify="sim", on_error="rollback"
            )
        faults.reset()
        assert passes == 1  # pass 2's corrupt result was rolled back
        assert check_equivalence(mig, result)
        result.check()


class TestCutLimit:
    def test_cut_limit_plumbs_through_run_flow(self, db):
        mig = epfl.square_root(6)
        wide, history_wide = run_flow(mig, db, ["BF"])
        narrow, history_narrow = run_flow(mig, db, ["BF"], cut_limit=2)
        assert check_equivalence(mig, narrow)
        # A tighter cap admits at most as many cuts per node.
        assert (
            history_narrow[0].metrics.cuts_admitted
            <= history_wide[0].metrics.cuts_admitted
        )

    def test_cut_limit_plumbs_through_convergence(self, db):
        mig = epfl.adder(6)
        result, passes = optimize_until_convergence(
            mig, db, "BF", max_passes=2, cut_limit=2
        )
        assert check_equivalence(mig, result)

"""Tests for scripted optimization flows."""

from __future__ import annotations

import pytest

from repro.core.simulate import check_equivalence
from repro.generators import epfl
from repro.opt.flow import optimize_until_convergence, run_flow


class TestRunFlow:
    def test_basic_script(self, db):
        mig = epfl.square_root(6)
        result, history = run_flow(mig, db, ["depth", "BF", "TFD"])
        assert check_equivalence(mig, result)
        assert len(history) == 3
        assert history[0].step == "depth"
        assert history[-1].size_after == result.num_gates

    def test_history_chains(self, db):
        mig = epfl.multiplier(4)
        _, history = run_flow(mig, db, ["strash", "TF", "strash"])
        for prev, nxt in zip(history, history[1:]):
            assert prev.size_after == nxt.size_before
            assert prev.depth_after == nxt.depth_before

    def test_variant_step_without_db_rejected(self):
        mig = epfl.adder(4)
        with pytest.raises(ValueError):
            run_flow(mig, None, ["BF"])

    def test_unknown_step_rejected(self, db):
        mig = epfl.adder(4)
        with pytest.raises(ValueError):
            run_flow(mig, db, ["resyn2"])

    def test_depth_fast_is_size_neutral_or_better(self, db):
        mig = epfl.adder(12)
        result, _ = run_flow(mig, db, ["depth-fast"])
        assert check_equivalence(mig, result)
        assert result.num_gates <= mig.num_gates + 2

    def test_fraig_step(self, db):
        mig = epfl.sine(6)
        result, _ = run_flow(mig, db, ["fraig"])
        assert check_equivalence(mig, result)

    def test_case_insensitive_variants(self, db):
        mig = epfl.square(4)
        result, _ = run_flow(mig, db, ["bf"])
        assert check_equivalence(mig, result)


class TestConvergence:
    def test_converges_and_never_grows(self, db):
        mig = epfl.log2(7)
        converged, passes = optimize_until_convergence(mig, db, "BF", max_passes=5)
        assert check_equivalence(mig, converged)
        assert converged.num_gates <= mig.num_gates
        assert 0 <= passes <= 5

    def test_additional_pass_after_convergence_is_idle(self, db):
        mig = epfl.square_root(6)
        converged, _ = optimize_until_convergence(mig, db, "TF", max_passes=6)
        from repro.rewriting import functional_hashing

        again = functional_hashing(converged, db, "TF")
        assert again.num_gates >= converged.num_gates

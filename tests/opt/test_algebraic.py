"""Brute-force verification of the Ω axioms and the depth-aware builder."""

from __future__ import annotations

from itertools import product

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mig import CONST0, Mig, signal_not
from repro.opt.algebraic import LevelBuilder, depth_aware_maj


def maj(x: int, y: int, z: int) -> int:
    return (x & y) | (x & z) | (y & z)


class TestAxiomsByBruteForce:
    """Verify the identities used by the optimizer over all assignments."""

    def test_associativity(self):
        # <x u <y u z>> = <z u <y u x>>
        for x, u, y, z in product((0, 1), repeat=4):
            lhs = maj(x, u, maj(y, u, z))
            rhs = maj(z, u, maj(y, u, x))
            assert lhs == rhs

    def test_complementary_associativity(self):
        # <x u <y u' z>> = <x u <y x z>>
        for x, u, y, z in product((0, 1), repeat=4):
            lhs = maj(x, u, maj(y, 1 - u, z))
            rhs = maj(x, u, maj(y, x, z))
            assert lhs == rhs

    def test_distributivity(self):
        # <x y <u v z>> = <<x y u> <x y v> z>
        for x, y, u, v, z in product((0, 1), repeat=5):
            lhs = maj(x, y, maj(u, v, z))
            rhs = maj(maj(x, y, u), maj(x, y, v), z)
            assert lhs == rhs

    def test_majority_rules(self):
        for x, y in product((0, 1), repeat=2):
            assert maj(x, x, y) == x
            assert maj(x, 1 - x, y) == y

    def test_self_duality(self):
        for x, y, z in product((0, 1), repeat=3):
            assert maj(1 - x, 1 - y, 1 - z) == 1 - maj(x, y, z)


@st.composite
def mig_with_signals(draw):
    mig = Mig(4)
    builder = LevelBuilder(mig)
    signals = [CONST0] + mig.pi_signals()
    for _ in range(draw(st.integers(1, 8))):
        picks = draw(
            st.lists(
                st.tuples(st.integers(0, len(signals) - 1), st.booleans()),
                min_size=3,
                max_size=3,
            )
        )
        ops = [signals[i] ^ int(c) for i, c in picks]
        signals.append(builder.maj(*ops))
    triple = draw(
        st.lists(
            st.tuples(st.integers(0, len(signals) - 1), st.booleans()),
            min_size=3,
            max_size=3,
        )
    )
    ops = [signals[i] ^ int(c) for i, c in triple]
    return mig, builder, ops


class TestDepthAwareMaj:
    @given(mig_with_signals())
    @settings(max_examples=80, deadline=None)
    def test_transformed_construction_is_equivalent(self, data):
        mig, builder, (a, b, c) = data
        reference = Mig(4)
        ref_builder = LevelBuilder(reference)
        # Mirror the gate structure into the reference network plainly.
        mapping = {0: 0}
        for i in range(1, 5):
            mapping[i] = 2 * i
        for node in mig.gates():
            fa, fb, fc = mig.fanins(node)
            mapping[node] = reference.maj(
                mapping[fa >> 1] ^ (fa & 1),
                mapping[fb >> 1] ^ (fb & 1),
                mapping[fc >> 1] ^ (fc & 1),
            )

        def remap(s: int) -> int:
            return mapping[s >> 1] ^ (s & 1)

        plain = reference.maj(remap(a), remap(b), remap(c))
        clever = depth_aware_maj(builder, a, b, c)
        reference.add_po(plain)
        mig.add_po(clever)
        assert mig.simulate() == reference.simulate()

    @given(mig_with_signals())
    @settings(max_examples=40, deadline=None)
    def test_level_estimates_never_worse_than_plain(self, data):
        mig, builder, (a, b, c) = data
        lv = builder.level_of
        plain_level = 1 + max(lv(a), lv(b), lv(c))
        result = depth_aware_maj(builder, a, b, c)
        assert builder.level_of(result) <= plain_level


class TestLevelBuilder:
    def test_levels_track_construction(self):
        mig = Mig(2)
        builder = LevelBuilder(mig)
        a, b = mig.pi_signals()
        g1 = builder.maj(CONST0, a, b)
        g2 = builder.maj(g1, a, signal_not(b))
        assert builder.level_of(a) == 0
        assert builder.level_of(g1) == 1
        assert builder.level_of(g2) == 2

    def test_prebuilt_gates_initialized(self, full_adder):
        builder = LevelBuilder(full_adder)
        assert builder.level_of(full_adder.outputs[0]) == 2

"""Tests for the ``remap`` step (mapped-then-reoptimized round trips)."""

from __future__ import annotations

import pytest

from repro.core.simulate import check_equivalence, equivalent_random
from repro.generators import epfl
from repro.opt.flow import run_flow
from repro.opt.remap import remap_resynth


class TestRemapResynth:
    @pytest.mark.parametrize("name,width", [("adder", 6), ("max", 6)])
    def test_round_trip_is_equivalent(self, db, name, width):
        generator = {"adder": epfl.adder, "max": epfl.max4}[name]
        mig = generator(width)
        rebuilt = remap_resynth(mig, db)
        rebuilt.check()
        assert rebuilt.num_pis == mig.num_pis
        assert rebuilt.num_pos == mig.num_pos
        assert rebuilt.pi_names == mig.pi_names
        assert rebuilt.output_names == mig.output_names
        assert check_equivalence(mig, rebuilt)

    def test_constant_and_pi_outputs_survive(self, db):
        from repro.core.mig import CONST0, Mig, signal_not

        mig = Mig(name="edge")
        a = mig.add_pi("a")
        mig.add_po(CONST0, "zero")
        mig.add_po(signal_not(CONST0), "one")
        mig.add_po(a, "ident")
        mig.add_po(signal_not(a), "inv")
        rebuilt = remap_resynth(mig, db)
        assert check_equivalence(mig, rebuilt)


class TestRemapFlowStep:
    def test_remap_script_round_trip(self, db):
        mig = epfl.square(5)
        result, history = run_flow(mig, db, ["BF", "remap", "BF"])
        assert equivalent_random(mig, result, num_rounds=4)
        assert [entry.step for entry in history] == ["BF", "remap", "BF"]
        # The remap step hands the next pass fresh cut boundaries; the
        # final network must not balloon past the remapped intermediate.
        assert history[2].size_after <= history[1].size_after

    def test_remap_requires_db(self):
        mig = epfl.adder(4)
        with pytest.raises(ValueError):
            run_flow(mig, None, ["remap"])

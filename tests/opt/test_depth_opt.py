"""Tests for algebraic depth optimization (the refs [3]/[4] baseline flow)."""

from __future__ import annotations

from repro.core.simulate import check_equivalence
from repro.generators import epfl
from repro.opt.depth_opt import optimize_depth


class TestDepthOptimization:
    def test_preserves_function_on_suite(self, suite_small):
        for mig in suite_small[:5]:
            optimized = optimize_depth(mig)
            assert check_equivalence(mig, optimized), mig.name

    def test_reduces_ripple_adder_depth(self):
        """The classic MIG result: carry chains flatten substantially."""
        mig = epfl.adder(16)
        optimized = optimize_depth(mig)
        assert check_equivalence(mig, optimized)
        assert optimized.depth() < mig.depth()

    def test_depth_never_increases(self, suite_small):
        for mig in suite_small[:5]:
            optimized = optimize_depth(mig)
            assert optimized.depth() <= mig.depth(), mig.name

    def test_size_neutral_mode(self):
        mig = epfl.adder(12)
        optimized = optimize_depth(mig, allow_size_increase=False)
        assert check_equivalence(mig, optimized)
        assert optimized.depth() <= mig.depth()

    def test_rounds_zero_is_identity(self):
        mig = epfl.adder(8)
        assert optimize_depth(mig, rounds=0) is mig

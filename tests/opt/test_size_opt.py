"""Tests for size-cleanup passes (strash rebuild, functional reduction)."""

from __future__ import annotations

import pytest

from repro.core.mig import CONST0, Mig, signal_not
from repro.core.simulate import check_equivalence
from repro.opt.size_opt import functional_reduce, strash_rebuild


def network_with_functional_duplicates() -> Mig:
    """Two structurally different, functionally identical xor cones."""
    mig = Mig(3)
    a, b, c = mig.pi_signals()
    # xor as (a|b) & !(a&b) — the Mig.xor construction.
    x1 = mig.xor(a, b)
    # xor as (a & !b) | (!a & b) — structurally disjoint decomposition.
    x2 = mig.or_(
        mig.and_(a, signal_not(b)), mig.and_(signal_not(a), b)
    )
    mig.add_po(mig.and_(x1, c))
    mig.add_po(mig.or_(x2, c))
    return mig


class TestStrashRebuild:
    def test_removes_dead_gates(self):
        mig = Mig(2)
        a, b = mig.pi_signals()
        keep = mig.and_(a, b)
        mig.or_(a, b)  # dead
        mig.add_po(keep)
        rebuilt = strash_rebuild(mig)
        assert rebuilt.num_gates == 1
        assert check_equivalence(mig, rebuilt)


class TestFunctionalReduce:
    def test_merges_equivalent_cones(self):
        mig = network_with_functional_duplicates()
        reduced = functional_reduce(mig)
        assert check_equivalence(mig, reduced)
        assert reduced.num_gates < mig.num_gates

    def test_merges_antivalent_cones(self):
        mig = Mig(2)
        a, b = mig.pi_signals()
        f = mig.and_(a, b)
        g = mig.or_(signal_not(a), signal_not(b))  # = !(a & b)
        mig.add_po(f)
        mig.add_po(g)
        reduced = functional_reduce(mig)
        assert check_equivalence(mig, reduced)
        assert reduced.num_gates == 1

    def test_detects_constant_cones(self):
        mig = Mig(2)
        a, b = mig.pi_signals()
        tautology = mig.or_(mig.or_(a, b), mig.and_(signal_not(a), signal_not(b)))
        mig.add_po(tautology)
        reduced = functional_reduce(mig)
        assert check_equivalence(mig, reduced)

    def test_preserves_function_on_suite(self, suite_small):
        for mig in suite_small:
            if mig.num_pis > 14:
                continue  # exhaustive simulation limit
            reduced = functional_reduce(mig)
            assert check_equivalence(mig, reduced), mig.name
            assert reduced.num_gates <= mig.num_gates

    def test_wide_networks_rejected(self):
        mig = Mig(15)
        mig.add_po(CONST0)
        with pytest.raises(ValueError):
            functional_reduce(mig)

"""Tests for SAT sweeping (fraig)."""

from __future__ import annotations

from repro.core.mig import Mig, signal_not
from repro.core.simulate import check_equivalence
from repro.opt.fraig import fraig


def duplicated_logic_network(width: int = 16) -> Mig:
    """A wide network computing the same AND-tree twice, differently."""
    mig = Mig(width)
    sigs = mig.pi_signals()
    left = sigs[0]
    for s in sigs[1:]:
        left = mig.and_(left, s)
    # Same conjunction via De Morgan on OR of complements.
    right = sigs[-1]
    for s in reversed(sigs[:-1]):
        right = mig.or_(signal_not(right), signal_not(s))
        right = signal_not(right)
    mig.add_po(left, "f")
    mig.add_po(right, "g")
    return mig


class TestFraig:
    def test_merges_duplicated_wide_logic(self):
        mig = duplicated_logic_network(16)
        swept = fraig(mig)
        assert check_equivalence(mig, swept)
        assert swept.num_gates < mig.num_gates
        # Both outputs should now share one cone.
        assert swept.outputs[0] >> 1 == swept.outputs[1] >> 1

    def test_merges_complemented_equivalences(self):
        mig = Mig(8)
        sigs = mig.pi_signals()
        f = mig.and_(sigs[0], sigs[1])
        g = mig.or_(signal_not(sigs[0]), signal_not(sigs[1]))  # = !f
        mig.add_po(f)
        mig.add_po(g)
        swept = fraig(mig)
        assert check_equivalence(mig, swept)
        assert swept.num_gates == 1

    def test_no_false_merges_on_suite(self, suite_small):
        for mig in suite_small[:5]:
            swept = fraig(mig)
            assert check_equivalence(mig, swept), mig.name
            assert swept.num_gates <= mig.num_gates

    def test_budget_zero_is_safe(self):
        mig = duplicated_logic_network(8)
        swept = fraig(mig, conflict_budget=1)
        assert check_equivalence(mig, swept)

    def test_interface_preserved(self):
        mig = duplicated_logic_network(8)
        swept = fraig(mig)
        assert swept.pi_names == mig.pi_names
        assert swept.output_names == mig.output_names

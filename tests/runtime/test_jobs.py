"""Unit tests for batch job specs, the degradation ladder, and the journal."""

from __future__ import annotations

import json

import pytest

from repro.runtime.jobs import (
    BatchReport,
    JobJournal,
    JobSpec,
    degraded,
    load_result_artifact,
)


def make_spec(job_id="job-1", **overrides) -> JobSpec:
    defaults = dict(
        job_id=job_id,
        network={"generate": "adder", "width": 6},
        script=("BF",),
        verify="cec",
        time_limit=5.0,
        conflict_limit=10_000,
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


class TestJobSpec:
    def test_roundtrip(self):
        spec = make_spec(cut_limit=6, mem_limit_mb=512, output="/tmp/x.blif")
        again = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec

    def test_defaults_roundtrip(self):
        spec = JobSpec(job_id="j", network={"blif": "/a.blif"})
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_large_cut_fields_roundtrip(self):
        spec = make_spec(cut_size=5, npn_store="/tmp/flows.npn5")
        again = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert again == spec
        assert again.cut_size == 5 and again.npn_store == "/tmp/flows.npn5"

    def test_pre_large_cut_dicts_still_parse(self):
        # Dicts journaled before the fields existed must load with both
        # defaults — replaying an old journal is a supported restart.
        data = make_spec().to_dict()
        del data["cut_size"], data["npn_store"]
        spec = JobSpec.from_dict(data)
        assert spec.cut_size is None and spec.npn_store is None


class TestDegradation:
    def test_first_rung_weakens_verify_and_budgets(self):
        spec = make_spec()
        down, notes = degraded(spec)
        assert down.verify == "sim"
        assert down.conflict_limit == 5_000
        assert down.cut_limit == 4  # engine default 8, halved
        assert "verify:cec->sim" in notes

    def test_never_degrades_below_sim(self):
        spec = make_spec(verify="sim")
        down, _ = degraded(spec)
        assert down.verify == "sim"

    def test_ladder_has_a_floor(self):
        spec = make_spec()
        for _ in range(12):
            spec, _ = degraded(spec)
        assert spec.conflict_limit == 100
        assert spec.cut_limit == 2
        assert spec.verify == "sim"
        # At the floor the ladder is a fixed point.
        again, notes = degraded(spec)
        assert again == spec and notes == []

    def test_same_job_same_id(self):
        spec = make_spec()
        down, _ = degraded(spec)
        assert down.job_id == spec.job_id
        assert down.network == spec.network

    def test_large_cut_drops_to_the_precomputed_tier(self):
        # On-demand synthesis is on the hot path at cut_size > 4; a
        # struggling job retries at the precomputed NPN-4 tier first.
        spec = make_spec(cut_size=5, npn_store="/tmp/flows.npn5")
        down, notes = degraded(spec)
        assert down.cut_size == 4
        assert "cut_size:5->4" in notes
        # The rung is sticky: further degradation keeps NPN-4.
        again, notes2 = degraded(down)
        assert again.cut_size == 4
        assert not any(n.startswith("cut_size") for n in notes2)

    def test_default_cut_size_has_no_rung(self):
        _, notes = degraded(make_spec(cut_size=4))
        assert not any(n.startswith("cut_size") for n in notes)


class TestJournalReplay:
    def test_submit_start_done(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        spec = make_spec()
        with JobJournal(path) as journal:
            journal.submit(spec)
            journal.start("job-1", attempt=1, pid=123, spec=spec)
            journal.done("job-1", {"size_after": 10})
        replay = JobJournal.replay(path)
        record = replay.records["job-1"]
        assert record.state == "done"
        assert record.attempts == 1
        assert record.result == {"size_after": 10}
        assert replay.order == ["job-1"]

    def test_orphaned_running_state(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        spec = make_spec()
        with JobJournal(path) as journal:
            journal.submit(spec)
            journal.start("job-1", attempt=1, pid=123, spec=spec)
        record = JobJournal.replay(path).records["job-1"]
        assert record.state == "running"
        assert record.pid == 123

    def test_failed_requeued_quarantined(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        spec = make_spec()
        with JobJournal(path) as journal:
            journal.submit(spec)
            journal.start("job-1", 1, 10, spec)
            journal.failed("job-1", 1, "boom", traceback="tb")
            journal.requeued("job-1", ["cut_limit:8->4"])
            journal.start("job-1", 2, 11, spec)
            journal.failed("job-1", 2, "boom again")
            journal.quarantined("job-1", "boom again", traceback="tb2")
        record = JobJournal.replay(path).records["job-1"]
        assert record.state == "quarantined"
        assert record.attempts == 2
        assert record.last_error == "boom again"
        assert record.degradations == ["cut_limit:8->4"]

    def test_terminal_states_are_immutable(self, tmp_path):
        """Duplicate post-terminal events must not double-count a job."""
        path = tmp_path / "journal.jsonl"
        spec = make_spec()
        with JobJournal(path) as journal:
            journal.submit(spec)
            journal.start("job-1", 1, 10, spec)
            journal.done("job-1", {"size_after": 3})
            # Stale events from a pre-crash attempt replayed afterwards:
            journal.failed("job-1", 1, "late failure")
            journal.done("job-1", {"size_after": 99})
        record = JobJournal.replay(path).records["job-1"]
        assert record.state == "done"
        assert record.result == {"size_after": 3}

    def test_resume_interrupted_reruns_same_attempt(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        spec = make_spec()
        with JobJournal(path) as journal:
            journal.submit(spec)
            journal.start("job-1", 1, 10, spec)
            journal.requeued("job-1", ["resume:interrupted"])
        record = JobJournal.replay(path).records["job-1"]
        assert record.state == "pending"
        assert record.attempts == 0  # next start is attempt 1 again

    def test_torn_final_line_is_discarded(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        spec = make_spec()
        with JobJournal(path) as journal:
            journal.submit(spec)
            journal.start("job-1", 1, 10, spec)
        with open(path, "ab") as fp:
            fp.write(b'{"event": "done", "job": "job-1", "resu')  # crash mid-append
        replay = JobJournal.replay(path)
        assert replay.records["job-1"].state == "running"
        assert replay.skipped_lines == 1

    def test_mid_file_garbage_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        spec = make_spec()
        with JobJournal(path) as journal:
            journal.submit(spec)
        with open(path, "ab") as fp:
            fp.write(b"not json at all\n")
        with JobJournal(path) as journal:
            journal.done("job-1", {})
        replay = JobJournal.replay(path)
        assert replay.records["job-1"].state == "done"
        assert replay.skipped_lines == 1

    def test_duplicate_submit_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with JobJournal(path) as journal:
            journal.submit(make_spec())
            journal.submit(make_spec(time_limit=99.0))
        replay = JobJournal.replay(path)
        assert len(replay.order) == 1
        assert replay.records["job-1"].spec.time_limit == 5.0

    def test_missing_file_replays_empty(self, tmp_path):
        replay = JobJournal.replay(tmp_path / "nope.jsonl")
        assert replay.records == {} and replay.order == []


class TestResultArtifact:
    def test_valid_artifact(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps({"job_id": "j", "status": "ok"}))
        assert load_result_artifact(path, "j")["status"] == "ok"

    def test_missing_returns_none(self, tmp_path):
        assert load_result_artifact(tmp_path / "r.json", "j") is None

    def test_corrupt_is_quarantined(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text("{ torn")
        assert load_result_artifact(path, "j") is None
        assert not path.exists()
        assert (tmp_path / "r.json.corrupt").exists()

    def test_wrong_job_id_is_quarantined(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps({"job_id": "other", "status": "ok"}))
        assert load_result_artifact(path, "j") is None
        assert not path.exists()

    def test_missing_keys_is_quarantined(self, tmp_path):
        path = tmp_path / "r.json"
        path.write_text(json.dumps({"job_id": "j"}))
        assert load_result_artifact(path, "j") is None


class TestBatchReport:
    def test_workers_used_counts_nonempty_slots(self):
        report = BatchReport(jobs_per_slot={0: 3, 1: 1, 2: 0})
        assert report.workers_used == 2

    def test_to_dict_is_json_serializable(self):
        report = BatchReport(total=2, done=2, jobs_per_slot={0: 2})
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["workers_used"] == 1
        assert payload["jobs_per_slot"] == {"0": 2}


class TestFaultEnvHandshake:
    def test_env_spec_roundtrip(self):
        from repro.runtime import faults

        faults.reset()
        try:
            with faults.inject("a.b", times=3, skip=1):
                with faults.inject("c.d"):
                    spec = faults.env_spec()
                    assert "a.b:times=3:skip=1" in spec
                    assert "c.d" in spec
                    faults.reset()
                    faults.arm_from_spec(spec)
                    assert faults.armed_names() == ["a.b", "c.d"]
                    # skip honored: the first probe passes unharmed
                    assert not faults.fault_active("a.b")
                    assert faults.fault_active("a.b")
        finally:
            faults.reset()

    def test_exclude_prefix(self):
        from repro.runtime import faults

        faults.reset()
        try:
            with faults.inject("worker.crash", times=1), faults.inject("x.y"):
                spec = faults.env_spec(exclude_prefix="worker.")
                assert "worker.crash" not in spec
                assert "x.y" in spec
        finally:
            faults.reset()

    def test_arm_from_env(self, monkeypatch):
        from repro.runtime import faults

        faults.reset()
        try:
            monkeypatch.setenv(faults.FAULTS_ENV_VAR, "p.q:times=2")
            faults.arm_from_env()
            assert faults.fault_active("p.q")
            assert faults.fault_active("p.q")
            assert not faults.fault_active("p.q")
        finally:
            faults.reset()

    def test_malformed_entries_ignored(self):
        from repro.runtime import faults

        faults.reset()
        try:
            faults.arm_from_spec("good.one,bad:times=notanint,:,other:weird=1")
            assert faults.armed_names() == ["good.one"]
        finally:
            faults.reset()

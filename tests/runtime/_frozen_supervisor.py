"""FROZEN copy of the pre-executor-refactor Supervisor (PR 3..9 behavior).

This is the differential-test oracle for the executor-layer refactor:
``tests/runtime/test_executor_differential.py`` runs the same fixed
batch through this frozen scheduler-and-pool monolith and through the
refactored ``Supervisor`` + ``LocalExecutor`` pair, and asserts the
journals and ``BatchReport`` are equivalent modulo pids, timestamps,
and rusage.  Do not modify this file except to keep it importable.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, replace
from pathlib import Path

from repro.runtime import faults
from repro.runtime.artifacts import atomic_write_text
from repro.runtime.jobs import (
    BatchReport,
    JobJournal,
    JobRecord,
    JobSpec,
    degraded,
    load_result_artifact,
)
from repro.runtime.metrics import PassMetrics

__all__ = ["Supervisor", "run_batch", "spec_for_attempt"]

#: scheduler tick — how often running workers are polled
_POLL_INTERVAL = 0.02


def spec_for_attempt(base: JobSpec, attempt: int) -> tuple[JobSpec, list[str]]:
    """The (possibly degraded) spec used by attempt *attempt* (1-based).

    Attempt 1 runs the base spec; each further attempt descends one rung
    of the degradation ladder.  Computed, not stored, so a resumed
    supervisor reconstructs the identical spec from the attempt number
    alone.  Returns the spec and the notes for the *last* rung applied.
    """
    spec = base
    notes: list[str] = []
    for _ in range(max(0, attempt - 1)):
        spec, notes = degraded(spec)
    return spec, notes


@dataclass
class _Running:
    """Supervisor-side state of one live worker."""

    job_id: str
    proc: subprocess.Popen
    slot: int
    attempt: int
    started: float
    result_path: Path
    #: SIGTERM instant (None = no wall-clock watchdog for this job)
    term_at: float | None
    #: SIGKILL instant
    kill_at: float | None
    termed: bool = False
    killed: bool = False


class Supervisor:
    """Schedules jobs from the journal across a pool of worker processes.

    *workdir* holds everything the batch persists::

        workdir/
          journal.jsonl     the crash-safe event log
          specs/<job>.json  the spec each worker reads (per attempt)
          results/<job>.json  the artifact each worker writes
          report.json       the final merged BatchReport

    *grace* is the SIGTERM→SIGKILL escalation window;
    *startup_margin* pads the watchdog for interpreter start-up so a
    healthy worker that honors its in-process budget is never killed;
    *backoff_base* seconds doubles per failed attempt (kept small in
    tests); *default_time_limit* applies to specs without their own.
    """

    def __init__(
        self,
        workdir: str | Path,
        num_workers: int = 1,
        grace: float = 2.0,
        max_attempts: int = 3,
        backoff_base: float = 0.5,
        default_time_limit: float | None = None,
        startup_margin: float = 1.0,
        verbose: bool = False,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if max_attempts <= 0:
            raise ValueError("max_attempts must be positive")
        self.workdir = Path(workdir)
        self.num_workers = num_workers
        self.grace = grace
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.default_time_limit = default_time_limit
        self.startup_margin = startup_margin
        self.verbose = verbose
        self.specs_dir = self.workdir / "specs"
        self.results_dir = self.workdir / "results"
        self._shutdown = threading.Event()

    def request_shutdown(self) -> None:
        """Ask a running batch to drain and return early (signal-safe).

        The scheduling loop stops launching new attempts, SIGTERMs every
        live worker (SIGKILL after the grace window), journals each
        unfinished job as interrupted — re-runnable at the same attempt
        number — and returns a report flagged ``interrupted``.  The
        journal is left in exactly the state ``resume=True`` expects, so
        a Ctrl-C'd batch loses no completed work and orphans no worker.
        """
        self._shutdown.set()

    @property
    def shutdown_requested(self) -> bool:
        return self._shutdown.is_set()

    # -- paths ------------------------------------------------------------

    @property
    def journal_path(self) -> Path:
        return self.workdir / "journal.jsonl"

    @property
    def report_path(self) -> Path:
        return self.workdir / "report.json"

    def _spec_path(self, job_id: str) -> Path:
        return self.specs_dir / f"{job_id}.json"

    def _result_path(self, job_id: str) -> Path:
        return self.results_dir / f"{job_id}.json"

    # -- batch entry ------------------------------------------------------

    def run(self, specs: list[JobSpec], resume: bool = False) -> BatchReport:
        """Run (or resume) a batch; returns the merged report.

        Without *resume* an existing journal is an error — accidentally
        pointing two different batches at one workdir must not silently
        merge them.  With *resume*, *specs* may be empty (the journal
        already knows the jobs) or repeat the original submission
        (idempotent: known job ids are not re-submitted).
        """
        if self.journal_path.exists() and not resume:
            raise FileExistsError(
                f"{self.journal_path} already exists; pass resume=True "
                "(or --resume) to continue it, or use a fresh workdir"
            )
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.specs_dir.mkdir(parents=True, exist_ok=True)
        self.results_dir.mkdir(parents=True, exist_ok=True)

        replay = JobJournal.replay(self.journal_path)
        started = time.monotonic()
        with JobJournal(self.journal_path) as journal:
            records = replay.records
            order = replay.order
            for spec in specs:
                if spec.job_id in records:
                    continue
                journal.submit(spec)
                records[spec.job_id] = JobRecord(spec=spec)
                order.append(spec.job_id)

            ready, delayed = self._recover(journal, records, order)
            report = self._loop(journal, records, order, ready, delayed)

        report.wall_seconds = time.monotonic() - started
        report.total = len(order)
        for job_id in order:
            record = records[job_id]
            summary = {
                "job_id": job_id,
                "state": record.state,
                "attempts": record.attempts,
            }
            if record.adopted:
                summary["adopted"] = True
            if record.degradations:
                summary["degradations"] = list(record.degradations)
            if record.result is not None:
                for key in ("size_before", "size_after", "depth_before",
                            "depth_after", "runtime", "verify", "output",
                            "metrics", "steps"):
                    if key in record.result:
                        summary[key] = record.result[key]
            if record.last_error is not None:
                summary["error"] = record.last_error
            report.jobs.append(summary)
        atomic_write_text(
            self.report_path, json.dumps(report.to_dict(), sort_keys=True) + "\n"
        )
        return report

    # -- recovery ---------------------------------------------------------

    def _recover(
        self,
        journal: JobJournal,
        records: dict[str, JobRecord],
        order: list[str],
    ) -> tuple[list[str], dict[str, float]]:
        """Re-queue interrupted jobs; returns (ready ids, delayed id->eligible_at).

        ``running`` records belong to a supervisor that died: their
        orphaned workers are killed, and each job either adopts an
        already-complete valid result artifact (exactly-once: no re-run)
        or is re-queued at the same attempt number.  ``failed`` records
        (a crash between the failure and its requeue/quarantine decision)
        go back through the retry policy.
        """
        ready: list[str] = []
        delayed: dict[str, float] = {}
        for job_id in order:
            record = records[job_id]
            if record.state == "running":
                self._kill_orphan(record.pid)
                payload = load_result_artifact(self._result_path(job_id), job_id)
                if payload is not None and payload.get("status") == "ok":
                    journal.done(job_id, self._result_summary(payload), adopted=True)
                    record.state = "done"
                    record.result = self._result_summary(payload)
                    record.adopted = True
                    continue
                # Re-run the same attempt; the journal records the requeue
                # so a replay after *another* crash stays consistent.
                journal.requeued(job_id, ["resume:interrupted"])
                record.state = "pending"
                record.attempts = max(0, record.attempts - 1)
                ready.append(job_id)
            elif record.state == "failed":
                self._retry_or_quarantine(
                    journal, record, job_id,
                    error=record.last_error or "unknown failure",
                    traceback=record.traceback,
                    rusage=record.rusage,
                    delayed=delayed,
                    ready=ready,
                    report=None,
                )
            elif record.state == "pending":
                ready.append(job_id)
        return ready, delayed

    @staticmethod
    def _kill_orphan(pid: int | None) -> None:
        """Kill a worker left over from a dead supervisor (Linux-only check).

        The pid is only signalled when ``/proc`` shows it still runs our
        worker module — a recycled pid must never be shot.
        """
        if pid is None:
            return
        try:
            cmdline = Path(f"/proc/{pid}/cmdline").read_bytes()
        except OSError:
            return
        if b"repro.runtime.worker" not in cmdline:
            return
        try:
            os.kill(pid, signal.SIGKILL)
        except OSError:
            pass

    # -- scheduling loop --------------------------------------------------

    def _loop(
        self,
        journal: JobJournal,
        records: dict[str, JobRecord],
        order: list[str],
        ready: list[str],
        delayed: dict[str, float],
    ) -> BatchReport:
        report = BatchReport()
        for record in records.values():
            if record.state == "done":
                report.done += 1
                if record.adopted:
                    report.adopted += 1
                self._merge_metrics(report, record.result)
            elif record.state == "quarantined":
                report.quarantined += 1
        running: dict[int, _Running] = {}
        free_slots = list(range(self.num_workers))

        while ready or delayed or running:
            if self._shutdown.is_set():
                self._drain(journal, records, running, report)
                break
            now = time.monotonic()
            progressed = False

            # Promote delayed retries whose backoff elapsed.
            for job_id in [j for j, at in delayed.items() if at <= now]:
                del delayed[job_id]
                ready.append(job_id)
                progressed = True

            # Fill free worker slots.
            while ready and free_slots:
                job_id = ready.pop(0)
                slot = free_slots.pop(0)
                running[slot] = self._spawn(journal, records[job_id], job_id, slot)
                report.max_concurrent = max(report.max_concurrent, len(running))
                progressed = True

            # Poll workers; escalate the watchdog on overdue ones.
            for slot in list(running):
                worker = running[slot]
                rc = worker.proc.poll()
                if rc is not None:
                    del running[slot]
                    free_slots.append(slot)
                    free_slots.sort()
                    self._finish(
                        journal, records[worker.job_id], worker, rc,
                        report, ready, delayed,
                    )
                    progressed = True
                    continue
                now = time.monotonic()
                if worker.kill_at is not None and now >= worker.kill_at and not worker.killed:
                    worker.proc.kill()
                    worker.killed = True
                elif worker.term_at is not None and now >= worker.term_at and not worker.termed:
                    worker.proc.terminate()
                    worker.termed = True

            if not progressed:
                # Nothing to do but wait: sleep until the next deadline of
                # interest (retry eligibility or watchdog escalation).
                time.sleep(_POLL_INTERVAL)
        return report

    def _drain(
        self,
        journal: JobJournal,
        records: dict[str, JobRecord],
        running: dict[int, _Running],
        report: BatchReport,
    ) -> None:
        """Stop the batch cleanly: no orphans, journal fully resumable.

        Every live worker is SIGTERMed at once; one that ignores it (the
        ``worker.hang`` fault models exactly this) is SIGKILLed after the
        grace window.  A worker that managed to complete its result
        artifact before dying is journaled ``done`` — its work is kept —
        while every other interrupted job is journaled ``requeued`` with
        the ``resume:interrupted`` note, which replay treats as "the
        attempt never concluded": a later ``--resume`` re-runs it under
        the same attempt number, preserving exactly-once semantics.
        """
        report.interrupted = True
        for worker in running.values():
            if not worker.termed:
                worker.proc.terminate()
                worker.termed = True
        kill_deadline = time.monotonic() + self.grace
        while running:
            now = time.monotonic()
            for slot in list(running):
                worker = running[slot]
                rc = worker.proc.poll()
                if rc is None:
                    if now >= kill_deadline and not worker.killed:
                        worker.proc.kill()
                        worker.killed = True
                    continue
                del running[slot]
                record = records[worker.job_id]
                payload = load_result_artifact(worker.result_path, worker.job_id)
                if payload is not None and payload.get("status") == "ok":
                    summary = self._result_summary(payload)
                    journal.done(worker.job_id, summary)
                    record.state = "done"
                    record.result = summary
                    report.done += 1
                    report.jobs_per_slot[worker.slot] = (
                        report.jobs_per_slot.get(worker.slot, 0) + 1
                    )
                    self._merge_metrics(report, payload)
                else:
                    journal.requeued(worker.job_id, ["resume:interrupted"])
                    record.state = "pending"
                    record.attempts = max(0, record.attempts - 1)
                if self.verbose:
                    print(f"[supervisor] drained {worker.job_id} ({record.state})")
            if running:
                time.sleep(_POLL_INTERVAL)

    def _spawn(
        self, journal: JobJournal, record: JobRecord, job_id: str, slot: int
    ) -> _Running:
        attempt = record.attempts + 1
        spec, notes = spec_for_attempt(record.spec, attempt)
        if spec.time_limit is None and self.default_time_limit is not None:
            spec = replace(spec, time_limit=self.default_time_limit)
        record.attempt_spec = spec
        if notes:
            for note in notes:
                if note not in record.degradations:
                    record.degradations.append(note)

        spec_path = self._spec_path(job_id)
        result_path = self._result_path(job_id)
        # A stale artifact from a previous attempt must not be mistaken
        # for this attempt's result.
        try:
            os.unlink(result_path)
        except OSError:
            pass
        atomic_write_text(spec_path, json.dumps(spec.to_dict(), sort_keys=True) + "\n")

        log_path = self.workdir / "logs" / f"{job_id}.log"
        log_path.parent.mkdir(parents=True, exist_ok=True)
        with open(log_path, "ab") as log_fp:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.runtime.worker",
                 str(spec_path), str(result_path)],
                env=self._child_env(),
                stdout=subprocess.DEVNULL,
                stderr=log_fp,
                cwd=str(self.workdir),
            )
        journal.start(job_id, attempt, proc.pid, spec)
        record.state = "running"
        record.attempts = attempt
        record.pid = proc.pid
        if self.verbose:
            print(f"[supervisor] start {job_id} attempt {attempt} pid {proc.pid}"
                  + (f" degraded {notes}" if notes else ""))

        started = time.monotonic()
        term_at = kill_at = None
        if spec.time_limit is not None:
            term_at = started + spec.time_limit + self.startup_margin
            kill_at = term_at + self.grace
        return _Running(
            job_id=job_id, proc=proc, slot=slot, attempt=attempt,
            started=started, result_path=result_path,
            term_at=term_at, kill_at=kill_at,
        )

    def _child_env(self) -> dict[str, str]:
        """Environment for a worker: import path + fault handshake.

        Armed non-``worker.*`` faults are copied into ``REPRO_FAULTS`` so
        in-worker fault points fire end-to-end.  The ``worker.*`` family
        is instead *consumed here*, one probe per spawn: a firing probe
        dooms exactly the worker being spawned, which keeps ``times=N``
        accounting in one process even across retries.
        """
        env = dict(os.environ)
        # the frozen copy lives under tests/, so derive the import
        # root from the real package, not from __file__
        package_root = str(Path(faults.__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )
        entries = []
        passthrough = faults.env_spec(exclude_prefix="worker.")
        if passthrough:
            entries.append(passthrough)
        for name in faults.armed_names(prefix="worker."):
            if faults.fault_active(name):
                entries.append(f"{name}:times=1")
        if entries:
            env[faults.FAULTS_ENV_VAR] = ",".join(entries)
        else:
            env.pop(faults.FAULTS_ENV_VAR, None)
        return env

    # -- completion -------------------------------------------------------

    def _finish(
        self,
        journal: JobJournal,
        record: JobRecord,
        worker: _Running,
        returncode: int,
        report: BatchReport,
        ready: list[str],
        delayed: dict[str, float],
    ) -> None:
        job_id = worker.job_id
        payload = load_result_artifact(worker.result_path, job_id)
        if payload is not None and payload.get("status") == "ok":
            summary = self._result_summary(payload)
            journal.done(job_id, summary)
            record.state = "done"
            record.result = summary
            report.done += 1
            report.jobs_per_slot[worker.slot] = (
                report.jobs_per_slot.get(worker.slot, 0) + 1
            )
            self._merge_metrics(report, payload)
            if self.verbose:
                print(f"[supervisor] done {job_id} "
                      f"({summary.get('size_before')}->{summary.get('size_after')})")
            return

        traceback = rusage = None
        if payload is not None:  # controlled in-worker failure
            error = str(payload.get("error", "worker reported failure"))
            traceback = payload.get("traceback")
            rusage = payload.get("rusage")
        elif worker.killed:
            error = (
                f"SIGKILLed by watchdog after "
                f"{time.monotonic() - worker.started:.1f}s "
                f"(limit {record.effective_spec.time_limit}s + grace {self.grace}s)"
            )
        elif worker.termed:
            error = (
                f"SIGTERMed by watchdog after "
                f"{time.monotonic() - worker.started:.1f}s "
                f"(limit {record.effective_spec.time_limit}s)"
            )
        elif returncode < 0:
            error = f"worker died on signal {-returncode}"
        else:
            error = f"worker exited with code {returncode} and no result artifact"
        report.failed_attempts += 1
        journal.failed(job_id, worker.attempt, error, traceback, rusage)
        record.state = "failed"
        record.last_error = error
        record.traceback = traceback
        record.rusage = rusage
        if self.verbose:
            print(f"[supervisor] failed {job_id} attempt {worker.attempt}: {error}")
        self._retry_or_quarantine(
            journal, record, job_id, error, traceback, rusage,
            delayed, ready, report,
        )

    def _retry_or_quarantine(
        self,
        journal: JobJournal,
        record: JobRecord,
        job_id: str,
        error: str,
        traceback: str | None,
        rusage: dict | None,
        delayed: dict[str, float],
        ready: list[str],
        report: BatchReport | None,
    ) -> None:
        if record.attempts >= self.max_attempts:
            journal.quarantined(job_id, error, traceback, rusage)
            record.state = "quarantined"
            if report is not None:
                report.quarantined += 1
            if self.verbose:
                print(f"[supervisor] quarantined {job_id}: {error}")
            return
        _, notes = spec_for_attempt(record.spec, record.attempts + 1)
        journal.requeued(job_id, notes)
        record.state = "pending"
        if report is not None:
            report.retries += 1
        backoff = self.backoff_base * (2 ** max(0, record.attempts - 1))
        if backoff > 0:
            delayed[job_id] = time.monotonic() + backoff
        else:
            ready.append(job_id)

    @staticmethod
    def _result_summary(payload: dict) -> dict:
        """The journal-worthy slice of a worker result (drop bulky fields)."""
        summary = {
            key: payload[key]
            for key in (
                "size_before", "size_after", "depth_before", "depth_after",
                "runtime", "verify", "output", "pid", "metrics",
            )
            if key in payload
        }
        summary["steps"] = [
            {k: s.get(k) for k in ("step", "status", "verified", "runtime") if k in s}
            for s in payload.get("steps", [])
        ]
        return summary

    @staticmethod
    def _merge_metrics(report: BatchReport, payload: dict | None) -> None:
        if not payload:
            return
        metrics = payload.get("metrics")
        if isinstance(metrics, dict):
            report.metrics.merge(PassMetrics.from_dict(metrics))


def run_batch(
    specs: list[JobSpec],
    workdir: str | Path,
    num_workers: int = 1,
    resume: bool = False,
    **kwargs,
) -> BatchReport:
    """Run *specs* under a :class:`Supervisor` in *workdir*; see class docs."""
    supervisor = Supervisor(workdir, num_workers=num_workers, **kwargs)
    return supervisor.run(specs, resume=resume)

"""Unit tests for the pluggable executor layer.

These drive :class:`LocalExecutor` and :class:`ShardExecutor` with plain
shell-level subprocesses (``sleep``, ``true``), independent of the
optimization worker — the executor contract (slot accounting, watchdog
escalation, drain, host pinning) must hold for any process-shaped task.
"""

from __future__ import annotations

import sys
import time

import pytest

from repro.runtime.executors import (
    Executor,
    ExecutorTask,
    HostSpec,
    LocalExecutor,
    ShardExecutor,
    TaskExit,
    parse_hosts,
)

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="executor process-group and watchdog semantics assume POSIX",
)


def wait_exits(executor, count: int, timeout: float = 30.0) -> list[TaskExit]:
    exits: list[TaskExit] = []
    deadline = time.monotonic() + timeout
    while len(exits) < count and time.monotonic() < deadline:
        exits.extend(executor.poll())
        time.sleep(0.01)
    assert len(exits) == count, f"expected {count} exits, saw {exits}"
    return exits


def sleeper(task_id: str, seconds: float, **kwargs) -> ExecutorTask:
    return ExecutorTask(
        task_id=task_id,
        argv=(sys.executable, "-c", f"import time; time.sleep({seconds})"),
        **kwargs,
    )


class TestLocalExecutor:
    def test_protocol_conformance(self):
        assert isinstance(LocalExecutor(1), Executor)
        assert isinstance(ShardExecutor(parse_hosts(default_shards=1)), Executor)

    def test_capacity_and_slot_reuse(self, tmp_path):
        executor = LocalExecutor(num_workers=2)
        try:
            a = executor.submit(sleeper("a", 0))
            b = executor.submit(sleeper("b", 0))
            # Historic fork-pool discipline: lowest free slot first.
            assert (a.slot, b.slot) == (0, 1)
            assert not executor.has_capacity(sleeper("c", 0))
            exits = wait_exits(executor, 2)
            assert {e.task_id for e in exits} == {"a", "b"}
            assert all(e.returncode == 0 for e in exits)
            # Freed slots are handed out lowest-first again.
            c = executor.submit(sleeper("c", 0))
            assert c.slot == 0
            wait_exits(executor, 1)
        finally:
            executor.close()

    def test_watchdog_escalates_overrunning_tasks(self):
        executor = LocalExecutor(num_workers=1, grace=0.5, startup_margin=0.0)
        try:
            executor.submit(sleeper("hog", 60, time_limit=0.2))
            (task_exit,) = wait_exits(executor, 1, timeout=20.0)
            assert task_exit.task_id == "hog"
            assert task_exit.termed
            assert task_exit.returncode != 0
        finally:
            executor.close()

    def test_drain_reaps_everything(self):
        executor = LocalExecutor(num_workers=2, grace=0.5)
        try:
            executor.submit(sleeper("x", 60))
            executor.submit(sleeper("y", 60))
            exits = executor.drain()
            assert {e.task_id for e in exits} == {"x", "y"}
            assert all(e.termed for e in exits)
            assert executor.running_count == 0
            # The pool is reusable after a drain.
            executor.submit(sleeper("z", 0))
            wait_exits(executor, 1)
        finally:
            executor.close()

    def test_task_log_is_captured(self, tmp_path):
        log = tmp_path / "task.log"
        executor = LocalExecutor(num_workers=1)
        try:
            executor.submit(ExecutorTask(
                task_id="echo",
                argv=(sys.executable, "-c",
                      "import sys; print('hello from task', file=sys.stderr)"),
                log_path=str(log),
            ))
            wait_exits(executor, 1)
        finally:
            executor.close()
        assert "hello from task" in log.read_text(encoding="utf-8")

    def test_cancel(self):
        executor = LocalExecutor(num_workers=1, grace=0.5)
        try:
            executor.submit(sleeper("victim", 60))
            executor.cancel("victim")
            (task_exit,) = wait_exits(executor, 1, timeout=20.0)
            assert task_exit.task_id == "victim"
            assert task_exit.returncode != 0
        finally:
            executor.close()


class TestHostParsing:
    def test_default_pseudo_hosts(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_HOSTS", raising=False)
        hosts = parse_hosts(default_shards=3)
        assert [h.name for h in hosts] == ["h0", "h1", "h2"]
        assert all(h.template is None for h in hosts)

    def test_env_overrides(self, monkeypatch):
        monkeypatch.setenv(
            "REPRO_SWEEP_HOSTS",
            "local; remote=ssh buildbox {cmd}",
        )
        hosts = parse_hosts(default_shards=1)
        assert [h.name for h in hosts] == ["local", "remote"]
        assert hosts[0].template is None
        assert hosts[1].wrap(["migopt", "batch"]) == [
            "ssh", "buildbox", "migopt", "batch",
        ]

    def test_rejects_duplicate_and_unsafe_names(self):
        with pytest.raises(ValueError):
            parse_hosts("a;a")
        with pytest.raises(ValueError):
            parse_hosts("../evil")

    def test_template_without_cmd_token_appends(self):
        host = HostSpec("h", template=("nice", "-n", "10"))
        assert host.wrap(["echo", "hi"]) == ["nice", "-n", "10", "echo", "hi"]


class TestShardExecutor:
    def test_host_pinning(self):
        hosts = parse_hosts("h0;h1")
        executor = ShardExecutor(hosts)
        try:
            pinned = sleeper("s1", 0, host="h1")
            assert executor.has_capacity(pinned)
            handle = executor.submit(pinned)
            assert handle.slot == "h1"
            # h1 is busy: another h1-pinned task must wait, h0 is free.
            assert not executor.has_capacity(sleeper("s2", 0, host="h1"))
            assert executor.has_capacity(sleeper("s3", 0, host="h0"))
            (task_exit,) = wait_exits(executor, 1)
            assert task_exit.slot == "h1"
        finally:
            executor.close()

    def test_unknown_host_is_rejected(self):
        executor = ShardExecutor(parse_hosts("h0"))
        try:
            # An unknown host never has capacity, so submit refuses it.
            assert not executor.has_capacity(sleeper("bad", 0, host="h9"))
            with pytest.raises((ValueError, RuntimeError)):
                executor.submit(sleeper("bad", 0, host="h9"))
        finally:
            executor.close()

    def test_template_wraps_the_command(self, tmp_path):
        marker = tmp_path / "wrapped"
        # A template that records its invocation proves the argv splice.
        hosts = [HostSpec("h0", template=(
            sys.executable, "-c",
            "import subprocess, sys, pathlib; "
            f"pathlib.Path({str(marker)!r}).write_text('ran'); "
            "sys.exit(subprocess.call(sys.argv[1:]))",
            "{cmd}",
        ))]
        executor = ShardExecutor(hosts)
        try:
            executor.submit(ExecutorTask(
                task_id="t",
                argv=(sys.executable, "-c", "pass"),
                host="h0",
            ))
            (task_exit,) = wait_exits(executor, 1)
            assert task_exit.returncode == 0
        finally:
            executor.close()
        assert marker.read_text(encoding="utf-8") == "ran"


class TestSupervisorIntegration:
    def test_supervisor_accepts_an_injected_executor(self, tmp_path):
        """An explicitly owned executor is reused and left open."""
        from repro.runtime.jobs import JobSpec
        from repro.runtime.supervisor import Supervisor

        executor = LocalExecutor(num_workers=1)
        try:
            supervisor = Supervisor(
                tmp_path / "batch", num_workers=1, backoff_base=0.05,
                executor=executor,
            )
            spec = JobSpec(
                job_id="fa",
                network={"generate": "adder", "width": 6},
                script=("BF",),
                verify="sim",
                time_limit=60.0,
            )
            report = supervisor.run([spec])
            assert report.done == 1
            # Still usable: the supervisor must not have closed it.
            executor.submit(sleeper("post", 0))
            wait_exits(executor, 1)
        finally:
            executor.close()

"""Tests for the hot-path pass counters (repro.runtime.metrics)."""

from __future__ import annotations

import json

import pytest

from repro.core.mig import Mig, signal_not
from repro.rewriting.bottom_up import rewrite_bottom_up
from repro.rewriting.engine import functional_hashing
from repro.rewriting.top_down import rewrite_top_down
from repro.runtime.metrics import REJECT_REASONS, PassMetrics


def build_counters_mig() -> Mig:
    """Deterministic 10-gate, 4-PI MIG with hand-checked cut structure.

    Every gate has fanout two (except the two output gates), so the
    fanout-free-restricted enumeration keeps exactly the trivial cut and
    the fanin cut of each gate, while unrestricted enumeration finds one
    extra cut per inner gate.
    """
    mig = Mig(4, name="counters")
    x1, x2, x3, x4 = mig.pi_signals()
    g5 = mig.maj(x1, x2, x3)
    g6 = mig.maj(x2, x3, x4)
    g7 = mig.maj(g5, g6, x1)
    g8 = mig.maj(g5, signal_not(g6), x4)
    g9 = mig.maj(g7, g8, x2)
    g10 = mig.maj(g7, signal_not(g8), x3)
    g11 = mig.maj(g9, g10, g5)
    g12 = mig.maj(g9, signal_not(g10), g6)
    g13 = mig.maj(g11, g12, x1)
    g14 = mig.maj(g11, signal_not(g12), x4)
    mig.add_po(g13, "f0")
    mig.add_po(g14, "f1")
    assert mig.num_gates == 10
    return mig


class TestExactCounters:
    """The counters must be exact, not approximate: same MIG, same numbers."""

    def test_bottom_up_unrestricted(self, db):
        mig = build_counters_mig()
        metrics = PassMetrics()
        rewrite_bottom_up(mig, db, metrics=metrics)
        assert metrics.nodes_visited == 10
        assert metrics.cuts_enumerated == 30
        assert metrics.cuts_considered == 20
        assert metrics.cuts_admitted == 7
        assert metrics.cuts_rejected == {"trivial": 10, "no-gain": 13}
        assert metrics.db_hits == 20
        assert metrics.db_misses == 0
        assert metrics.nodes_rebuilt == 7
        # Incremental cut functions: 20 computed, 20 child sub-lookups
        # answered from the per-pass memo.
        assert metrics.cut_functions_computed == 20
        assert metrics.cut_function_cache_hits == 20

    def test_bottom_up_fanout_free(self, db):
        mig = build_counters_mig()
        metrics = PassMetrics()
        rewrite_bottom_up(mig, db, fanout_free=True, metrics=metrics)
        # Restricted enumeration: only the trivial and the fanin cut
        # survive at every gate (all internal fanouts are shared).
        assert metrics.cuts_enumerated == 20
        assert metrics.cuts_considered == 10
        assert metrics.cuts_admitted == 0
        assert metrics.cuts_rejected == {"trivial": 10, "no-gain": 10}
        assert metrics.db_hits == 10
        assert metrics.nodes_rebuilt == 0

    def test_top_down_matches_bottom_up_enumeration(self, db):
        mig = build_counters_mig()
        bu, td = PassMetrics(), PassMetrics()
        rewrite_bottom_up(mig, db, fanout_free=True, metrics=bu)
        rewrite_top_down(mig, db, fanout_free=True, metrics=td)
        assert td.cuts_enumerated == bu.cuts_enumerated == 20
        assert td.cuts_considered == bu.cuts_considered == 10
        assert td.db_hits == bu.db_hits == 10

    def test_accounting_identities(self, db):
        """considered == admitted + non-trivial rejects; lookups add up."""
        from repro.generators import epfl

        mig = epfl.square_root(6)
        metrics = PassMetrics()
        rewrite_bottom_up(mig, db, fanout_free=True, metrics=metrics)
        non_trivial_rejects = sum(
            count
            for reason, count in metrics.cuts_rejected.items()
            if reason != "trivial"
        )
        assert metrics.cuts_considered == metrics.cuts_admitted + non_trivial_rejects
        assert metrics.cuts_considered == metrics.db_hits + metrics.db_misses
        assert set(metrics.cuts_rejected) <= set(REJECT_REASONS)

    def test_phases_recorded(self, db):
        mig = build_counters_mig()
        metrics = PassMetrics()
        rewrite_bottom_up(mig, db, metrics=metrics)
        assert set(metrics.phase_seconds) == {
            "enumerate",
            "batch",
            "rewrite",
            "cleanup",
        }
        assert all(t >= 0.0 for t in metrics.phase_seconds.values())
        assert metrics.total_seconds == pytest.approx(
            sum(metrics.phase_seconds.values())
        )

    def test_engine_fills_variant_and_npn_counters(self, db):
        mig = build_counters_mig()
        metrics = PassMetrics()
        functional_hashing(mig, db, "BF", metrics=metrics)
        assert metrics.variant == "BF"
        # Every db lookup canonizes once; the global memo answers repeats.
        assert metrics.npn_cache_hits + metrics.npn_cache_misses == (
            metrics.db_hits + metrics.db_misses
        )

    def test_return_stats_carries_metrics(self, db):
        mig = build_counters_mig()
        result, stats = functional_hashing(mig, db, "B", return_stats=True)
        assert stats.variant == "B"
        assert stats.size_before == 10
        assert stats.size_after == result.num_gates
        assert stats.runtime > 0.0
        assert stats.metrics.nodes_visited == 10
        assert stats.metrics.cuts_considered == 20


class TestPassMetricsObject:
    def test_reject_helper(self):
        m = PassMetrics()
        m.reject("no-gain")
        m.reject("no-gain")
        m.reject("trivial")
        assert m.cuts_rejected == {"no-gain": 2, "trivial": 1}

    def test_phase_accumulates(self):
        m = PassMetrics()
        with m.phase("rewrite"):
            pass
        first = m.phase_seconds["rewrite"]
        with m.phase("rewrite"):
            pass
        assert m.phase_seconds["rewrite"] >= first

    def test_rates_zero_safe(self):
        m = PassMetrics()
        assert m.db_hit_rate == 0.0
        assert m.npn_cache_hit_rate == 0.0
        assert m.cut_function_hit_rate == 0.0

    def test_rates(self):
        m = PassMetrics(db_hits=3, db_misses=1)
        m.npn_cache_hits, m.npn_cache_misses = 9, 1
        m.cut_function_cache_hits, m.cut_functions_computed = 1, 3
        assert m.db_hit_rate == pytest.approx(0.75)
        assert m.npn_cache_hit_rate == pytest.approx(0.9)
        assert m.cut_function_hit_rate == pytest.approx(0.25)

    def test_merge(self):
        a = PassMetrics(variant="BF", nodes_visited=5, db_hits=2)
        a.cuts_rejected = {"no-gain": 1}
        a.phase_seconds = {"rewrite": 0.5}
        b = PassMetrics(nodes_visited=3, db_hits=4, db_misses=1)
        b.cuts_rejected = {"no-gain": 2, "trivial": 1}
        b.phase_seconds = {"rewrite": 0.25, "enumerate": 0.1}
        a.merge(b)
        assert a.nodes_visited == 8
        assert a.db_hits == 6
        assert a.db_misses == 1
        assert a.cuts_rejected == {"no-gain": 3, "trivial": 1}
        assert a.phase_seconds == {"rewrite": 0.75, "enumerate": 0.1}

    def test_merge_empty_into_nonempty_and_back(self):
        """Satellite regression: merging must sum the raw counters (batch
        counters included) and leave derived rates to recompute — an empty
        merge partner must be a strict no-op in both directions."""
        full = PassMetrics(variant="B", db_hits=3, db_misses=1)
        full.batch_cut_functions = 40
        full.batch_levels = 6
        full.batch_npn_lookups = 17
        full.cut_functions_computed = 50
        before = full.to_dict()
        full.merge(PassMetrics())  # empty into nonempty: no-op
        assert full.to_dict() == before
        empty = PassMetrics()
        empty.merge(full)  # nonempty into empty: copies every raw counter
        assert empty.batch_cut_functions == 40
        assert empty.batch_levels == 6
        assert empty.batch_npn_lookups == 17
        assert empty.db_hit_rate == pytest.approx(0.75)
        assert empty.batch_function_fraction == pytest.approx(0.8)
        # Double merge doubles raw counters but the rates are recomputed,
        # not summed — the classic merged-rate bug this test pins down.
        empty.merge(full)
        assert empty.batch_cut_functions == 80
        assert empty.db_hit_rate == pytest.approx(0.75)
        assert empty.batch_function_fraction == pytest.approx(0.8)

    def test_batch_function_fraction_zero_safe(self):
        assert PassMetrics().batch_function_fraction == 0.0

    def test_json_round_trip(self, db):
        mig = build_counters_mig()
        metrics = PassMetrics()
        functional_hashing(mig, db, "BF", metrics=metrics)
        restored = PassMetrics.from_json(metrics.to_json())
        assert restored.to_dict() == metrics.to_dict()

    def test_to_dict_is_json_serializable(self):
        m = PassMetrics(variant="TFD", nodes_visited=7)
        m.reject("db-miss")
        with m.phase("enumerate"):
            pass
        payload = json.loads(json.dumps(m.to_dict()))
        assert payload["variant"] == "TFD"
        assert payload["nodes_visited"] == 7
        assert payload["cuts_rejected"] == {"db-miss": 1}

    def test_from_dict_ignores_derived_keys(self):
        m = PassMetrics(db_hits=1, db_misses=1)
        data = m.to_dict()
        data["db_hit_rate"] = 0.999  # stale derived value must be recomputed
        restored = PassMetrics.from_dict(data)
        assert restored.db_hit_rate == pytest.approx(0.5)

"""Integration tests for the supervised parallel batch runtime.

These tests spawn real worker subprocesses: process isolation, the
SIGTERM→SIGKILL watchdog, retry-with-degradation, and crash-recoverable
resume are exercised against live processes, not mocks.  The chaos test
additionally ``kill -9``s the *supervisor* mid-batch and proves the
resumed run completes every job exactly once.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.simulate import equivalent_random
from repro.io.blif import read_blif, write_blif
from repro.runtime import faults
from repro.runtime.jobs import JobJournal, JobSpec
from repro.runtime.supervisor import Supervisor, run_batch, spec_for_attempt
from repro.runtime.worker import _load_network

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="the supervisor's orphan check and watchdog tests assume /proc",
)

#: generous bound for one tiny optimization job, interpreter start included
JOB_TIME = 60.0


def tiny_spec(job_id: str, workdir: Path, name: str = "adder", width: int = 6,
              **overrides) -> JobSpec:
    defaults = dict(
        job_id=job_id,
        network={"generate": name, "width": width},
        script=("BF",),
        verify="sim",
        time_limit=JOB_TIME,
        output=str(workdir / "outputs" / f"{job_id}.blif"),
    )
    defaults.update(overrides)
    return JobSpec(**defaults)


def journal_events(path: Path) -> list[dict]:
    events = []
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            events.append(json.loads(line))
        except ValueError:
            pass
    return events


def assert_output_valid(output: Path, reference_network: dict) -> None:
    """The surviving output must parse, validate, and stay equivalent."""
    with open(output, encoding="utf-8") as fp:
        optimized = read_blif(fp)
    optimized.check()
    original = _load_network(reference_network)
    assert equivalent_random(original, optimized, num_rounds=4)


class TestSpecForAttempt:
    def test_attempt_one_is_the_base(self):
        base = JobSpec(job_id="j", network={"blif": "x"}, verify="cec",
                       conflict_limit=1000)
        spec, notes = spec_for_attempt(base, 1)
        assert spec == base and notes == []

    def test_later_attempts_descend_deterministically(self):
        base = JobSpec(job_id="j", network={"blif": "x"}, verify="cec",
                       conflict_limit=1000)
        spec3a, _ = spec_for_attempt(base, 3)
        spec3b, _ = spec_for_attempt(base, 3)
        assert spec3a == spec3b
        assert spec3a.verify == "sim"
        assert spec3a.conflict_limit == 250
        assert spec3a.cut_limit == 2


class TestBatch:
    def test_batch_completes_and_uses_the_pool(self, tmp_path, full_adder):
        blif_path = tmp_path / "full_adder.blif"
        with open(blif_path, "w", encoding="utf-8") as fp:
            write_blif(full_adder, fp)
        specs = [
            tiny_spec("adder-a", tmp_path),
            tiny_spec("sine-a", tmp_path, name="sine"),
            tiny_spec("fa", tmp_path, network={"blif": str(blif_path)}),
            tiny_spec("adder-b", tmp_path, width=7),
        ]
        report = run_batch(specs, tmp_path / "batch", num_workers=2,
                           backoff_base=0.05)

        assert report.total == 4
        assert report.done == 4
        assert report.quarantined == 0
        # Acceptance criterion: --jobs N really spreads the batch.
        assert report.max_concurrent == 2
        assert report.workers_used > 1
        assert sum(report.jobs_per_slot.values()) == 4
        for spec in specs:
            assert_output_valid(Path(spec.output), spec.network)
        # Worker results carry merged pass counters back to the batch.
        assert report.metrics.cuts_enumerated > 0

        report_path = tmp_path / "batch" / "report.json"
        persisted = json.loads(report_path.read_text(encoding="utf-8"))
        assert persisted["done"] == 4
        assert persisted["workers_used"] == report.workers_used

    def test_existing_journal_requires_resume(self, tmp_path):
        workdir = tmp_path / "batch"
        workdir.mkdir()
        (workdir / "journal.jsonl").write_text("")
        with pytest.raises(FileExistsError):
            run_batch([tiny_spec("j", tmp_path)], workdir)

    def test_invalid_worker_counts_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            Supervisor(tmp_path, num_workers=0)
        with pytest.raises(ValueError):
            Supervisor(tmp_path, max_attempts=0)


class TestFailureHandling:
    def test_worker_crash_is_retried_with_degradation(self, tmp_path):
        faults.reset()
        try:
            with faults.inject("worker.crash", times=1):
                report = run_batch(
                    [tiny_spec("j", tmp_path, verify="cec")],
                    tmp_path / "batch", backoff_base=0.05,
                )
        finally:
            faults.reset()
        assert report.done == 1
        assert report.failed_attempts == 1
        assert report.retries == 1
        job = report.jobs[0]
        assert job["attempts"] == 2
        assert "verify:cec->sim" in job["degradations"]
        events = journal_events(tmp_path / "batch" / "journal.jsonl")
        crash = [e for e in events if e["event"] == "failed"]
        assert len(crash) == 1
        assert "exited with code 77" in crash[0]["error"]
        # The degraded retry really ran with the weaker spec.
        starts = [e for e in events if e["event"] == "start"]
        assert starts[0]["spec"]["verify"] == "cec"
        assert starts[1]["spec"]["verify"] == "sim"
        assert_output_valid(Path(report.jobs[0]["output"]),
                            {"generate": "adder", "width": 6})

    def test_hanging_worker_is_hard_killed_within_grace(self, tmp_path):
        """A busy-looping worker that ignores SIGTERM only dies to SIGKILL."""
        faults.reset()
        started = time.monotonic()
        try:
            with faults.inject("worker.hang", times=1):
                report = run_batch(
                    [tiny_spec("j", tmp_path, time_limit=1.0)],
                    tmp_path / "batch",
                    grace=1.0,
                    startup_margin=0.5,
                    backoff_base=0.05,
                )
        finally:
            faults.reset()
        elapsed = time.monotonic() - started
        assert report.done == 1
        assert report.failed_attempts == 1
        events = journal_events(tmp_path / "batch" / "journal.jsonl")
        hang = [e for e in events if e["event"] == "failed"]
        assert len(hang) == 1
        assert "SIGKILL" in hang[0]["error"]
        # Deadline math: the hung attempt is dead by limit+margin+grace
        # (2.5s); everything else is one healthy retry.  A generous bound
        # still proves the batch did not wait on the hung worker.
        assert elapsed < 2.5 + JOB_TIME

    def test_poison_job_is_quarantined_with_evidence(self, tmp_path):
        spec = tiny_spec("poison", tmp_path,
                         network={"blif": str(tmp_path / "missing.blif")})
        report = run_batch([spec], tmp_path / "batch", max_attempts=2,
                           backoff_base=0.02)
        assert report.done == 0
        assert report.quarantined == 1
        assert report.failed_attempts == 2
        job = report.jobs[0]
        assert job["state"] == "quarantined"
        assert "FileNotFoundError" in job["error"]
        events = journal_events(tmp_path / "batch" / "journal.jsonl")
        quarantine = [e for e in events if e["event"] == "quarantined"]
        assert len(quarantine) == 1
        assert "missing.blif" in quarantine[0]["traceback"]
        assert quarantine[0]["rusage"] is not None

    def test_in_worker_fault_arrives_via_env_handshake(self, tmp_path):
        """A fault injected in this process fires inside the worker."""
        faults.reset()
        try:
            with faults.inject("flow.corrupt-structure", times=1):
                report = run_batch([tiny_spec("j", tmp_path)],
                                   tmp_path / "batch", backoff_base=0.05)
        finally:
            faults.reset()
        # The worker's structural check caught the corruption and rolled
        # the step back; the job still completes with a valid result.
        assert report.done == 1
        statuses = [s["status"] for s in report.jobs[0]["steps"]]
        assert "rolled-back" in statuses
        assert_output_valid(Path(report.jobs[0]["output"]),
                            {"generate": "adder", "width": 6})


class TestResume:
    def test_resume_adopts_completed_result_without_rerun(self, tmp_path):
        workdir = tmp_path / "batch"
        # The spec points at a nonexistent input: if the resumed run tried
        # to re-execute the job it would fail, so success proves adoption.
        spec = tiny_spec("j", tmp_path,
                         network={"blif": str(tmp_path / "gone.blif")})
        (workdir / "results").mkdir(parents=True)
        with JobJournal(workdir / "journal.jsonl") as journal:
            journal.submit(spec)
            journal.start("j", attempt=1, pid=2 ** 22 + 12345, spec=spec)
        (workdir / "results" / "j.json").write_text(json.dumps(
            {"job_id": "j", "status": "ok", "size_before": 9, "size_after": 5}
        ))
        report = run_batch([], workdir, resume=True)
        assert report.done == 1
        assert report.adopted == 1
        job = report.jobs[0]
        assert job["adopted"] is True
        assert job["size_after"] == 5
        events = journal_events(workdir / "journal.jsonl")
        assert [e["event"] for e in events] == ["submit", "start", "done"]
        assert events[-1]["adopted"] is True

    def test_resume_of_finished_batch_is_a_noop(self, tmp_path):
        specs = [tiny_spec("j", tmp_path)]
        workdir = tmp_path / "batch"
        first = run_batch(specs, workdir)
        assert first.done == 1
        starts_before = len(
            [e for e in journal_events(workdir / "journal.jsonl")
             if e["event"] == "start"]
        )
        second = run_batch(specs, workdir, resume=True)
        assert second.done == 1
        assert second.total == 1
        starts_after = len(
            [e for e in journal_events(workdir / "journal.jsonl")
             if e["event"] == "start"]
        )
        assert starts_after == starts_before

    def test_resume_requeues_interrupted_job(self, tmp_path):
        """A job left 'running' by a dead supervisor is re-run, once."""
        workdir = tmp_path / "batch"
        spec = tiny_spec("j", tmp_path)
        workdir.mkdir(parents=True)
        with JobJournal(workdir / "journal.jsonl") as journal:
            journal.submit(spec)
            journal.start("j", attempt=1, pid=2 ** 22 + 4242, spec=spec)
        report = run_batch([], workdir, resume=True)
        assert report.done == 1
        assert report.adopted == 0
        job = report.jobs[0]
        assert job["attempts"] == 1  # same attempt number, not a retry
        assert_output_valid(Path(job["output"]), spec.network)


def _cli_batch_argv(workdir: Path, poison: Path) -> list[str]:
    return [
        sys.executable, "-c",
        "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
        "batch",
        "--generate", "adder,sine,max",
        "--width", "6",
        "--blif", str(poison),
        "--script", "BF",
        "--jobs", "2",
        "--time-limit", "30",
        "--grace", "1",
        "--max-attempts", "2",
        "--backoff", "0.05",
        "--workdir", str(workdir),
    ]


class TestChaos:
    def test_kill_supervisor_midbatch_then_resume_completes_exactly_once(
        self, tmp_path
    ):
        """The acceptance chaos run: worker crash + hang faults armed, the
        supervisor SIGKILLed mid-batch, then ``--resume`` finishes every
        job exactly once, quarantining only the poison job."""
        workdir = tmp_path / "batch"
        poison = tmp_path / "poison.blif"  # never created: fails every try
        journal = workdir / "journal.jsonl"

        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        # skip=1 staggers the hang onto the second spawn so both faults
        # materialize (a worker doomed to hang never reaches the crash).
        env["REPRO_FAULTS"] = "worker.crash:times=1,worker.hang:times=1:skip=1"

        proc = subprocess.Popen(
            _cli_batch_argv(workdir, poison), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Let real work land first: wait for one completed job.
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break  # batch finished before we could kill it
                if journal.exists() and any(
                    e["event"] == "done" for e in journal_events(journal)
                ):
                    break
                time.sleep(0.05)
            else:
                pytest.fail("no job completed within 120s")
            if proc.poll() is None:
                proc.send_signal(signal.SIGKILL)
                proc.wait(timeout=30)
                assert proc.returncode == -signal.SIGKILL
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        report = run_batch([], workdir, resume=True, num_workers=2,
                           grace=1.0, max_attempts=2, backoff_base=0.05)

        assert report.total == 4
        assert report.done == 3
        assert report.quarantined == 1
        by_id = {job["job_id"]: job for job in report.jobs}
        assert by_id["poison"]["state"] == "quarantined"

        # Exactly once: every surviving job has exactly one done event
        # across both runs; the poison job has none.
        events = journal_events(journal)
        done_counts: dict[str, int] = {}
        for event in events:
            if event["event"] == "done":
                done_counts[event["job"]] = done_counts.get(event["job"], 0) + 1
        assert done_counts == {
            "adder-w6": 1, "sine-w6": 1, "max-w6": 1,
        }

        # Surviving outputs verify and validate structurally.
        for name in ("adder", "sine", "max"):
            assert_output_valid(
                workdir / "outputs" / f"{name}-w6.blif",
                {"generate": name, "width": 6},
            )

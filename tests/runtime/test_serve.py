"""The optimization-as-a-service daemon (repro.runtime.serve).

Fast tests drive :class:`OptimizationService` directly (``num_workers=0``
gives a deterministic queue that never drains); the lifecycle tests run
real supervised optimizations of tiny adders; the chaos drills launch
the actual ``migopt serve`` CLI in a subprocess and kill it.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.runtime.faults import inject
from repro.runtime.serve import (
    CRASH_EXIT_CODE,
    OptimizationService,
    ServeDaemon,
)

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")

ADDER4 = {"network": {"generate": "adder", "width": 4}, "script": ["BF"],
          "verify": "sim"}


def _request(base, method, path, body=None, timeout=10):
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _wait_terminal(poll, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = poll()
        if status["status"] in ("done", "failed", "timeout"):
            return status
        time.sleep(0.2)
    raise AssertionError(f"job did not finish in {timeout}s: {status}")


@pytest.fixture
def idle_service(tmp_path):
    """A service whose queue never drains — deterministic admission tests."""
    service = OptimizationService(tmp_path / "serve", num_workers=0, queue_limit=2)
    service.start()
    yield service
    service.close()


class TestValidation:
    def test_missing_network(self, idle_service):
        code, payload = idle_service.submit({"script": ["BF"]})
        assert code == 400 and payload["error"] == "bad-request"

    def test_ambiguous_network(self, idle_service):
        code, _ = idle_service.submit(
            {"network": {"generate": "adder", "blif": "..."}}
        )
        assert code == 400

    def test_unknown_generator(self, idle_service):
        code, payload = idle_service.submit({"network": {"generate": "nonesuch"}})
        assert code == 400 and "nonesuch" in payload["detail"]

    def test_unparsable_upload(self, idle_service):
        code, payload = idle_service.submit({"network": {"blif": "not a circuit"}})
        assert code == 400 and "could not parse" in payload["detail"]

    def test_unknown_flow_step(self, idle_service):
        code, payload = idle_service.submit(
            {"network": {"generate": "adder", "width": 4}, "script": ["ZZ"]}
        )
        assert code == 400 and "ZZ" in payload["detail"]

    def test_bad_verify(self, idle_service):
        code, _ = idle_service.submit(
            {"network": {"generate": "adder", "width": 4}, "verify": "maybe"}
        )
        assert code == 400

    def test_non_object_body(self, idle_service):
        code, _ = idle_service.submit([1, 2, 3])
        assert code == 400

    def test_unknown_job_is_404(self, idle_service):
        code, _ = idle_service.job_status("no-such-job")
        assert code == 404

    def test_bad_cut_size(self, idle_service):
        code, payload = idle_service.submit(dict(ADDER4, cut_size=7))
        assert code == 400 and "cut_size" in payload["detail"]


class TestLargeCutConfig:
    @pytest.fixture
    def store_service(self, tmp_path):
        """Daemon configured for large-cut hashing against its own store."""
        service = OptimizationService(
            tmp_path / "serve", num_workers=0, queue_limit=4,
            default_cut_size=5, npn_store=tmp_path / "flows.npn5",
        )
        service.start()
        yield service
        service.close()

    def _spec_of(self, service, code_payload):
        code, payload = code_payload
        assert code == 202
        return service.jobs[payload["job_id"]].spec

    def test_daemon_default_applies(self, store_service):
        spec = self._spec_of(store_service, store_service.submit(dict(ADDER4)))
        assert spec.cut_size == 5
        assert spec.npn_store == store_service.npn_store

    def test_request_may_opt_back_to_npn4(self, store_service):
        spec = self._spec_of(
            store_service, store_service.submit(dict(ADDER4, cut_size=4))
        )
        assert spec.cut_size == 4
        assert spec.npn_store is None  # no store at the precomputed tier

    def test_store_path_is_never_client_input(self, store_service):
        """A request must not point workers at arbitrary filesystem
        paths — the store is daemon configuration only."""
        spec = self._spec_of(
            store_service,
            store_service.submit(
                dict(ADDER4, cut_size=5, npn_store="/etc/passwd")
            ),
        )
        assert spec.npn_store == store_service.npn_store

    def test_cut_size_without_store_is_allowed(self, idle_service):
        # Plain daemon, client asks for 5-input cuts: the worker builds
        # a memory-only DynamicDatabase; there is just no persistence.
        code, payload = idle_service.submit(dict(ADDER4, cut_size=5))
        assert code == 202
        spec = idle_service.jobs[payload["job_id"]].spec
        assert spec.cut_size == 5 and spec.npn_store is None

    def test_stats_exposes_store_section(self, store_service):
        section = store_service.stats()["npn_store"]
        assert section["path"] == store_service.npn_store
        for key in ("store_hits", "store_disk_hits", "store_synth",
                    "store_evictions"):
            assert section[key] == 0

    def test_bad_daemon_cut_size_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            OptimizationService(tmp_path / "s", default_cut_size=3)


class TestAdmission:
    def test_queue_full_gives_429(self, idle_service):
        for width in (3, 4):
            code, _ = idle_service.submit(
                {"network": {"generate": "adder", "width": width}}
            )
            assert code == 202
        code, payload = idle_service.submit(
            {"network": {"generate": "adder", "width": 5}}
        )
        assert code == 429 and payload["error"] == "queue-full"
        assert idle_service.stats()["jobs"]["rejected"] == 1

    def test_identical_inflight_requests_coalesce(self, idle_service):
        code1, first = idle_service.submit(dict(ADDER4))
        code2, second = idle_service.submit(dict(ADDER4))
        assert (code1, code2) == (202, 202)
        assert second["coalesced"] is True
        assert second["job_id"] == first["job_id"]
        assert idle_service.stats()["jobs"]["coalesced"] == 1
        # Coalescing kept a queue slot free: a distinct request still fits.
        code3, _ = idle_service.submit(
            {"network": {"generate": "adder", "width": 6}}
        )
        assert code3 == 202

    def test_draining_gives_503(self, idle_service):
        idle_service.initiate_drain()
        code, payload = idle_service.submit(dict(ADDER4))
        assert code == 503 and payload["error"] == "draining"

    def test_queued_deadline_expiry_is_a_typed_timeout(self, idle_service):
        request = dict(ADDER4)
        request["deadline"] = 0.05
        code, payload = idle_service.submit(request)
        assert code == 202
        time.sleep(0.1)
        code, status = idle_service.job_status(payload["job_id"])
        assert code == 200
        assert status["status"] == "timeout"
        assert "deadline" in status["error"]
        assert idle_service.stats()["jobs"]["timeout"] == 1

    def test_request_persisted_before_acknowledgement(self, idle_service):
        code, payload = idle_service.submit(dict(ADDER4))
        assert code == 202
        request_file = (
            idle_service.jobs_dir / payload["job_id"] / "request.json"
        )
        persisted = json.loads(request_file.read_text())
        assert persisted["job_id"] == payload["job_id"]
        assert persisted["key"] == payload["cache_key"]


class TestLifecycle:
    def test_submit_optimize_resubmit_cache_hit(self, tmp_path):
        """The headline acceptance path: second submission of the same
        network + flow returns the byte-identical result from the cache
        without re-optimizing."""
        service = OptimizationService(tmp_path / "serve", num_workers=1)
        service.start()
        try:
            code, payload = service.submit(dict(ADDER4))
            assert code == 202
            job_id = payload["job_id"]
            status = _wait_terminal(lambda: service.job_status(job_id)[1])
            assert status["status"] == "done", status
            result = status["result"]
            assert result["size_after"] <= result["size_before"]
            assert result["blif"].startswith(".model")
            assert any(e.get("event") == "step" for e in status["progress"])

            code2, hit = service.submit(dict(ADDER4))
            assert code2 == 200 and hit["cached"] is True
            assert json.dumps(hit["result"], sort_keys=True) == json.dumps(
                result, sort_keys=True
            )
            stats = service.stats()
            assert stats["jobs"]["cache_hits"] == 1
            assert stats["jobs"]["completed"] == 1  # optimized exactly once
            assert stats["cache"]["entries"] == 1
        finally:
            assert service.drain(timeout=30.0) is True
            service.close()
        assert json.loads((tmp_path / "serve" / "stats.json").read_text())

    def test_corrupt_cache_entry_reoptimizes_once_then_hits(self, tmp_path):
        """The cache-corruption drill: bad bytes under a live key are
        quarantined on read, the duplicate pays one re-optimization, and
        the third submission hits the repaired entry."""
        service = OptimizationService(tmp_path / "serve", num_workers=1)
        service.start()
        try:
            with inject("cache.corrupt"):
                code, payload = service.submit(dict(ADDER4))
                assert code == 202
                status = _wait_terminal(
                    lambda: service.job_status(payload["job_id"])[1]
                )
                assert status["status"] == "done"
            # The entry on disk is garbage; the resubmission must detect
            # it, quarantine it, and re-optimize — not crash, not serve it.
            code2, second = service.submit(dict(ADDER4))
            assert code2 == 202, second
            status2 = _wait_terminal(
                lambda: service.job_status(second["job_id"])[1]
            )
            assert status2["status"] == "done"
            assert service.cache.stats()["corrupt"] == 1
            assert list(service.cache.objects_dir.glob("*.corrupt*"))
            code3, third = service.submit(dict(ADDER4))
            assert code3 == 200 and third["cached"] is True
            assert json.dumps(third["result"], sort_keys=True) == json.dumps(
                status2["result"], sort_keys=True
            )
        finally:
            service.drain(timeout=30.0)
            service.close()

    def test_accepted_job_survives_a_dead_daemon(self, tmp_path):
        """Exactly-once recovery: a request accepted (persisted) but never
        run because the daemon died is picked up by the next start."""
        workdir = tmp_path / "serve"
        first = OptimizationService(workdir, num_workers=0)
        first.start()
        code, payload = first.submit(dict(ADDER4))
        assert code == 202
        job_id = payload["job_id"]
        first.close()  # dies with the job still queued

        second = OptimizationService(workdir, num_workers=1)
        second.start()
        try:
            assert second.stats()["jobs"]["recovered"] == 1
            status = _wait_terminal(lambda: second.job_status(job_id)[1])
            assert status["status"] == "done"
            assert second.stats()["jobs"]["completed"] == 1
            code2, hit = second.submit(dict(ADDER4))
            assert code2 == 200 and hit["cached"] is True
        finally:
            second.drain(timeout=30.0)
            second.close()

    def test_finished_job_is_adopted_not_rerun_on_restart(self, tmp_path):
        """A job whose supervisor journal already says done is reinstated
        from the journal on restart — never re-optimized."""
        workdir = tmp_path / "serve"
        first = OptimizationService(workdir, num_workers=1)
        first.start()
        code, payload = first.submit(dict(ADDER4))
        assert code == 202
        job_id = payload["job_id"]
        status = _wait_terminal(lambda: first.job_status(job_id)[1])
        assert status["status"] == "done"
        first.drain(timeout=30.0)
        first.close()
        # Wipe the cache so adoption (not a cache hit) must answer.
        for entry in (workdir / "cache" / "objects").glob("*.json"):
            entry.unlink()

        second = OptimizationService(workdir, num_workers=1)
        second.start()
        try:
            code, recovered = second.job_status(job_id)
            assert code == 200
            assert recovered["status"] == "done"
            assert second.stats()["jobs"]["adopted"] == 1
            # Adoption also re-warmed the cache from the journal.
            code2, hit = second.submit(dict(ADDER4))
            assert code2 == 200 and hit["cached"] is True
        finally:
            second.drain(timeout=5.0)
            second.close()


class TestHttpLayer:
    @pytest.fixture
    def daemon(self, tmp_path):
        service = OptimizationService(
            tmp_path / "serve", num_workers=0, queue_limit=1
        )
        daemon = ServeDaemon(service, port=0)
        daemon.start()
        yield daemon, f"http://127.0.0.1:{daemon.port}"
        daemon.httpd.shutdown()
        daemon.httpd.server_close()
        service.close()

    def test_health_and_readiness(self, daemon):
        _, base = daemon
        assert _request(base, "GET", "/healthz")[0] == 200
        assert _request(base, "GET", "/readyz")[0] == 200

    def test_readyz_flips_on_drain_healthz_does_not(self, daemon):
        served, base = daemon
        served.service.initiate_drain()
        assert _request(base, "GET", "/readyz")[0] == 503
        assert _request(base, "GET", "/healthz")[0] == 200

    def test_stats_endpoint(self, daemon):
        _, base = daemon
        code, stats = _request(base, "GET", "/stats")
        assert code == 200
        assert "cache" in stats and "jobs" in stats
        assert stats["cache"]["evictions"] == 0

    def test_submit_and_poll_roundtrip(self, daemon):
        _, base = daemon
        code, payload = _request(base, "POST", "/jobs", dict(ADDER4))
        assert code == 202 and payload["status"] == "queued"
        code, status = _request(base, "GET", payload["poll"])
        assert code == 200 and status["job_id"] == payload["job_id"]

    def test_queue_full_sets_retry_after(self, daemon):
        _, base = daemon
        assert _request(base, "POST", "/jobs", dict(ADDER4))[0] == 202
        req = urllib.request.Request(
            base + "/jobs",
            data=json.dumps(
                {"network": {"generate": "adder", "width": 6}}
            ).encode(),
            method="POST",
        )
        try:
            urllib.request.urlopen(req, timeout=10)
            raise AssertionError("expected HTTP 429")
        except urllib.error.HTTPError as exc:
            assert exc.code == 429
            assert exc.headers.get("Retry-After") == "1"

    def test_malformed_json_body(self, daemon):
        _, base = daemon
        req = urllib.request.Request(
            base + "/jobs", data=b"{not json", method="POST"
        )
        try:
            urllib.request.urlopen(req, timeout=10)
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400

    def test_unknown_routes_are_404(self, daemon):
        _, base = daemon
        assert _request(base, "GET", "/nope")[0] == 404
        assert _request(base, "POST", "/nope")[0] == 404
        assert _request(base, "GET", "/jobs/unknown")[0] == 404


def _spawn_serve(workdir, extra_env=None, extra_args=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra_env or {})
    proc = subprocess.Popen(
        [
            sys.executable, "-c",
            "from repro.cli import main; raise SystemExit(main())",
            "serve", "--workdir", str(workdir), "--port", "0",
            "--jobs", "1", "--grace", "1.0", "--drain-grace", "20",
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    # First line announces the bound address.
    line = proc.stdout.readline()
    assert "listening on http://" in line, line
    port = int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
    return proc, f"http://127.0.0.1:{port}"


@pytest.mark.slow
class TestDaemonChaos:
    def test_sigterm_drains_cleanly(self, tmp_path):
        proc, base = _spawn_serve(tmp_path / "serve")
        try:
            assert _request(base, "GET", "/healthz")[0] == 200
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
        assert (tmp_path / "serve" / "stats.json").exists()

    def test_crash_after_accept_recovers_exactly_once(self, tmp_path):
        """The serve.crash drill end-to-end: the daemon dies the instant
        after persisting an accepted request; a restart (no faults) runs
        the job exactly once and the resubmission hits the cache."""
        workdir = tmp_path / "serve"
        proc, base = _spawn_serve(
            workdir, extra_env={"REPRO_FAULTS": "serve.crash:times=1"}
        )
        try:
            with pytest.raises((urllib.error.URLError, ConnectionError)):
                _request(base, "POST", "/jobs", dict(ADDER4))
            assert proc.wait(timeout=30) == CRASH_EXIT_CODE
        finally:
            if proc.poll() is None:
                proc.kill()

        # The request was persisted before the crash.
        requests = list(workdir.glob("jobs/*/request.json"))
        assert len(requests) == 1
        job_id = json.loads(requests[0].read_text())["job_id"]

        proc, base = _spawn_serve(workdir)
        try:
            status = _wait_terminal(
                lambda: _request(base, "GET", f"/jobs/{job_id}")[1]
            )
            assert status["status"] == "done", status
            code, hit = _request(base, "POST", "/jobs", dict(ADDER4))
            assert code == 200 and hit["cached"] is True
            _, stats = _request(base, "GET", "/stats")
            assert stats["jobs"]["recovered"] == 1
            assert stats["jobs"]["completed"] == 1
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()

"""Tests for the fault-injection registry and the solver timeout hook."""

from __future__ import annotations

from repro.runtime import faults
from repro.sat.solver import Solver


class TestRegistry:
    def setup_method(self):
        faults.reset()

    def teardown_method(self):
        faults.reset()

    def test_inactive_by_default(self):
        assert not faults.fault_active("solver.timeout")
        assert faults.fired_count("solver.timeout") == 0

    def test_inject_scoped(self):
        with faults.inject("x"):
            assert faults.fault_active("x")
            assert faults.fault_active("x")
        assert not faults.fault_active("x")
        assert faults.fired_count("x") == 2

    def test_inject_times_bounded(self):
        with faults.inject("x", times=1):
            assert faults.fault_active("x")
            assert not faults.fault_active("x")
        assert faults.fired_count("x") == 1

    def test_nested_injection_restores(self):
        with faults.inject("x", times=5):
            with faults.inject("x", times=1):
                assert faults.fault_active("x")
                assert not faults.fault_active("x")
            # Outer arming (5 shots) restored.
            assert faults.fault_active("x")


class TestSolverTimeoutFault:
    def teardown_method(self):
        faults.reset()

    def test_forced_timeout(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        with faults.inject("solver.timeout"):
            assert s.solve() is None
        # Disarmed: the same instance solves normally.
        assert s.solve() is True
        assert s.model_value(a)

"""Tests for the sweep layer: matrix expansion, sharding, and the merge.

The journal-merge edge cases here are the satellite coverage the sharded
design demands: duplicate job ids across shards (must refuse loudly), a
shard journal with a torn tail (must replay), and adoption of a result
artifact whose shard died mid-write (must count exactly once, durably).
The live SIGKILL version of the same drill is ``tools/sweep_smoke.py``.
"""

from __future__ import annotations

import json
import sys

import pytest

from repro.runtime.executors import HostSpec, parse_hosts
from repro.runtime.jobs import BatchReport, JobJournal, JobSpec
from repro.runtime.sweep import (
    SweepConflictError,
    SweepSpec,
    assign_shards,
    expand_sweep,
    matrix_rows,
    merge_sweep,
    publish_matrix,
    run_sweep,
    shard_dir,
)

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="the sweep runtime relies on POSIX process groups and signals",
)


def make_spec(**overrides) -> SweepSpec:
    base = {
        "name": "test-sweep",
        "instances": [
            {"generate": "adder", "width": 6},
            {"generate": "max", "width": 6},
        ],
        "verify": "sim",
        "time_limit": 60,
    }
    base.update(overrides)
    return SweepSpec.from_dict(base)


class TestExpandSweep:
    def test_axes_multiply(self):
        spec = make_spec(
            scripts=[["BF"], ["BF", "BF"]],
            cut_sizes=[4, 5],
            npn_store="store.db",
        )
        jobs = expand_sweep(spec)
        # 2 instances x 2 scripts x 2 cuts x 1 backend x 1 limit
        assert len(jobs) == 8
        ids = {job.job_id for job in jobs}
        assert "adder-w6.BF.c4.internal" in ids
        assert "adder-w6.BF+BF.c5.internal" in ids
        assert "max-w6.BF.c4.internal" in ids

    def test_cut4_is_the_unset_default(self):
        """cut_size=4 maps to None so worker specs stay byte-stable."""
        spec = make_spec(cut_sizes=[4, 5], npn_store="store.db")
        by_id = {job.job_id: job for job in expand_sweep(spec)}
        assert by_id["adder-w6.BF.c4.internal"].cut_size is None
        assert by_id["adder-w6.BF.c4.internal"].npn_store is None
        assert by_id["adder-w6.BF.c5.internal"].cut_size == 5
        # Large cuts route through the persistent NPN store.
        assert by_id["adder-w6.BF.c5.internal"].npn_store == "store.db"

    def test_conflict_limit_names_the_cell(self):
        spec = make_spec(conflict_limits=[None, 1000])
        ids = {job.job_id for job in expand_sweep(spec)}
        assert "adder-w6.BF.c4.internal" in ids
        assert "adder-w6.BF.c4.internal.k1000" in ids

    def test_per_instance_overrides(self):
        """A round-trip scenario rides along with its plain sibling."""
        spec = make_spec(instances=[
            {"generate": "adder", "width": 6},
            {"generate": "adder", "width": 6,
             "scripts": [["BF", "remap", "BF"]]},
        ])
        jobs = expand_sweep(spec)
        ids = sorted(job.job_id for job in jobs)
        assert ids == [
            "adder-w6.BF+remap+BF.c4.internal",
            "adder-w6.BF.c4.internal",
        ]
        roundtrip = next(j for j in jobs if "remap" in j.job_id)
        assert roundtrip.script == ("BF", "remap", "BF")
        # Axis keys never leak into the worker's network locator.
        assert roundtrip.network == {"generate": "adder", "width": 6}

    def test_duplicate_scenario_ids_are_refused(self):
        spec = make_spec(instances=[
            {"generate": "adder", "width": 6},
            {"generate": "adder", "width": 6},
        ])
        with pytest.raises(SweepConflictError):
            expand_sweep(spec)
        # A distinct slug resolves the collision.
        spec = make_spec(instances=[
            {"generate": "adder", "width": 6},
            {"generate": "adder", "width": 6, "slug": "adder-w6-again"},
        ])
        assert len(expand_sweep(spec)) == 2

    def test_instance_without_a_source_is_refused(self):
        with pytest.raises(ValueError):
            expand_sweep(make_spec(instances=[{"width": 6}]))


class TestAssignShards:
    HOSTS = [HostSpec("h0"), HostSpec("h1")]

    def test_round_robin_is_deterministic_and_balanced(self):
        jobs = [f"job{i}" for i in range(5)]
        assignment = assign_shards(jobs, self.HOSTS)
        assert assignment == assign_shards(jobs, self.HOSTS)
        load = {"h0": 0, "h1": 0}
        for host in assignment.values():
            load[host] += 1
        assert sorted(load.values()) == [2, 3]

    def test_existing_assignments_are_kept_verbatim(self):
        """A resumed sweep must not move jobs between shard journals."""
        existing = {"job0": "h1", "job1": "h1"}
        assignment = assign_shards(
            ["job0", "job1", "job2", "job3"], self.HOSTS, existing
        )
        assert assignment["job0"] == "h1"
        assert assignment["job1"] == "h1"
        # New jobs flow to the least-loaded host first.
        assert assignment["job2"] == "h0"
        assert assignment["job3"] == "h0"


def shard_journal(workdir, host: str) -> JobJournal:
    directory = shard_dir(workdir, host)
    directory.mkdir(parents=True, exist_ok=True)
    return JobJournal(directory / "journal.jsonl")


def tiny_spec(job_id: str, workdir, host: str) -> JobSpec:
    return JobSpec(
        job_id=job_id,
        network={"generate": "adder", "width": 6},
        script=("BF",),
        verify="sim",
        time_limit=60.0,
        output=str(shard_dir(workdir, host) / "outputs" / f"{job_id}.blif"),
    )


OK_RESULT = {
    "size_before": 30, "size_after": 25,
    "depth_before": 9, "depth_after": 8,
    "runtime": 0.5, "verify": "sim",
    "steps": [{"step": "BF", "status": "ok"}],
}


class TestMergeEdgeCases:
    def test_duplicate_job_ids_across_shards_conflict(self, tmp_path):
        for host in ("h0", "h1"):
            with shard_journal(tmp_path, host) as journal:
                journal.submit(tiny_spec("dup.BF.c4.internal", tmp_path, host))
        with pytest.raises(SweepConflictError, match="dup.BF.c4.internal"):
            merge_sweep(tmp_path, ["h0", "h1"])

    def test_torn_tail_shard_journal_is_tolerated(self, tmp_path):
        with shard_journal(tmp_path, "h0") as journal:
            journal.submit(tiny_spec("a.BF.c4.internal", tmp_path, "h0"))
            journal.done("a.BF.c4.internal", dict(OK_RESULT))
        journal_path = shard_dir(tmp_path, "h0") / "journal.jsonl"
        # A shard SIGKILLed mid-append leaves a half-written last line.
        with open(journal_path, "ab") as fp:
            fp.write(b'{"event": "done", "job": "a.BF.c4.in')
        report = merge_sweep(tmp_path, ["h0"])
        assert (report.total, report.done) == (1, 1)
        assert report.jobs[0]["state"] == "done"

    def test_adoption_of_artifact_from_dead_shard(self, tmp_path):
        """A job left 'running' with a valid result artifact is adopted —
        durably, so a re-merge still counts it exactly once."""
        job_id = "a.BF.c4.internal"
        spec = tiny_spec(job_id, tmp_path, "h0")
        directory = shard_dir(tmp_path, "h0")
        with shard_journal(tmp_path, "h0") as journal:
            journal.submit(spec)
            journal.start(job_id, attempt=1, pid=4242, spec=spec)
        results = directory / "results"
        results.mkdir(parents=True)
        payload = {"job_id": job_id, "status": "ok", **OK_RESULT}
        (results / f"{job_id}.json").write_text(
            json.dumps(payload), encoding="utf-8"
        )

        report = merge_sweep(tmp_path, ["h0"])
        assert (report.total, report.done, report.adopted) == (1, 1, 1)
        (summary,) = report.jobs
        assert summary["state"] == "done"
        assert summary["adopted"] is True
        assert summary["size_after"] == 25

        # The adoption was journaled: merging again must not double-count
        # (and must not need the artifact any more).
        (results / f"{job_id}.json").unlink()
        again = merge_sweep(tmp_path, ["h0"])
        assert (again.total, again.done, again.adopted) == (1, 1, 1)

    def test_corrupt_artifact_is_not_adopted(self, tmp_path):
        job_id = "a.BF.c4.internal"
        spec = tiny_spec(job_id, tmp_path, "h0")
        directory = shard_dir(tmp_path, "h0")
        with shard_journal(tmp_path, "h0") as journal:
            journal.submit(spec)
            journal.start(job_id, attempt=1, pid=4242, spec=spec)
        results = directory / "results"
        results.mkdir(parents=True)
        (results / f"{job_id}.json").write_text(
            '{"job_id": "a.BF.c4.internal", "status"', encoding="utf-8"
        )
        report = merge_sweep(tmp_path, ["h0"])
        assert report.done == 0
        assert report.jobs[0]["state"] == "running"


class TestShardSlotAccounting:
    def test_merge_shard_namespaces_and_sums_utilization(self):
        """Regression: slot utilization was keyed by bare slot index, so
        slot 0 of every shard collapsed into one counter."""
        merged = BatchReport()
        shard_a = BatchReport()
        shard_a.total = shard_a.done = 3
        shard_a.jobs_per_slot = {0: 2, 1: 1}
        shard_a.max_concurrent = 2
        shard_b = BatchReport()
        shard_b.total = shard_b.done = 2
        shard_b.jobs_per_slot = {0: 2}
        shard_b.max_concurrent = 1
        merged.merge_shard("h0", shard_a)
        merged.merge_shard("h1", shard_b)
        assert merged.jobs_per_slot == {"h0/0": 2, "h0/1": 1, "h1/0": 2}
        assert sum(merged.jobs_per_slot.values()) == 5
        assert merged.max_concurrent == 3
        assert merged.total == merged.done == 5
        assert set(merged.shards) == {"h0", "h1"}
        # Round-trips through the persisted form.
        revived = BatchReport.from_dict(merged.to_dict())
        assert revived.jobs_per_slot == merged.jobs_per_slot


class TestMatrixRows:
    def _report(self) -> BatchReport:
        report = BatchReport()
        report.jobs = [
            {"job_id": "adder-w6.BF.c4.internal", "state": "done",
             "shard": "h0", "size_before": 30, "size_after": 25,
             "depth_before": 9, "depth_after": 8, "runtime": 0.5,
             "verify": "sim", "steps": [{"step": "BF", "status": "ok"}]},
            {"job_id": "max-w6.BF.c4.internal", "state": "quarantined"},
        ]
        return report

    def test_rows_carry_provenance_and_verification(self, tmp_path):
        spec = make_spec()
        specs_by_id = {job.job_id: job for job in expand_sweep(spec)}
        rows = matrix_rows(self._report(), "test-sweep", specs_by_id, ts=123.0)
        # Quarantined cells publish nothing.
        assert len(rows) == 1
        (row,) = rows
        assert row["scenario"] == "adder-w6.BF.c4.internal"
        assert row["sweep"] == "test-sweep"
        assert row["shard"] == "h0"
        assert row["verified"] is True
        assert row["network"] == {"generate": "adder", "width": 6}
        assert row["cut_size"] == 4
        assert row["ts"] == 123.0

        matrix = tmp_path / "MATRIX.jsonl"
        assert publish_matrix(matrix, rows) == 1
        assert publish_matrix(matrix, rows) == 1  # append-only history
        lines = matrix.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["scenario"] == row["scenario"]

    def test_unverified_and_failed_steps_are_flagged(self):
        report = self._report()
        report.jobs[0]["verify"] = "off"
        rows = matrix_rows(report, "s", {}, ts=1.0)
        assert rows[0]["verified"] is False
        report = self._report()
        report.jobs[0]["steps"] = [{"step": "BF", "status": "failed"}]
        rows = matrix_rows(report, "s", {}, ts=1.0)
        assert rows[0]["verified"] is False


class TestRunSweepEndToEnd:
    def test_sweep_runs_resumes_and_publishes(self, tmp_path):
        spec = make_spec()
        workdir = tmp_path / "sweep"
        matrix = tmp_path / "MATRIX.jsonl"
        run = run_sweep(
            workdir, spec=spec, hosts=parse_hosts("h0;h1"),
            jobs_per_shard=1, grace=1.0, backoff_base=0.05,
            matrix_path=matrix,
        )
        report = run.report
        assert (report.total, report.done, report.quarantined) == (2, 2, 0)
        assert not report.interrupted
        # Per-shard utilization: namespaced slots, one job each.
        assert set(report.jobs_per_slot) == {"h0/0", "h1/0"}
        assert sum(report.jobs_per_slot.values()) == 2
        assert set(report.shards) == {"h0", "h1"}
        assert run.published_rows == 2
        assert (workdir / "report.json").exists()
        assert (workdir / "sweep.json").exists()
        for job in report.jobs:
            assert job["state"] == "done"
            assert job["attempts"] == 1

        # Same workdir without --resume is refused.
        with pytest.raises(FileExistsError):
            run_sweep(workdir, spec=spec, jobs_per_shard=1)

        # A resume of the finished sweep is a no-op: nothing reruns,
        # nothing publishes twice.
        resumed = run_sweep(workdir, resume=True, jobs_per_shard=1,
                            grace=1.0, backoff_base=0.05)
        assert resumed.report.done == 2
        assert all(job["attempts"] == 1 for job in resumed.report.jobs)
        assert len(matrix.read_text(encoding="utf-8").splitlines()) == 2

    def test_interrupted_sweep_resumes_to_completion(self, tmp_path):
        """Coordinator shutdown before any shard launches; --resume picks
        the persisted plan up and finishes every cell exactly once."""
        spec = make_spec()
        workdir = tmp_path / "sweep"
        run = run_sweep(
            workdir, spec=spec, hosts=parse_hosts("h0;h1"),
            jobs_per_shard=1, grace=1.0, backoff_base=0.05,
            shutdown_check=lambda: True,
        )
        assert run.report.interrupted
        assert run.report.done == 0
        # The plan is durable: assignment fixed before any launch.
        state = json.loads(
            (workdir / "sweep.json").read_text(encoding="utf-8")
        )
        assert len(state["assignment"]) == 2

        resumed = run_sweep(workdir, resume=True, jobs_per_shard=1,
                            grace=1.0, backoff_base=0.05)
        assert not resumed.report.interrupted
        assert resumed.report.done == 2
        assert resumed.assignment == state["assignment"]
        assert all(job["attempts"] == 1 for job in resumed.report.jobs)

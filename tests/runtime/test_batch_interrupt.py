"""Graceful interrupt of ``migopt batch`` (SIGINT/SIGTERM drain).

The contract: a signal mid-batch stops scheduling, kills live workers
through the supervisor's SIGTERM→grace→SIGKILL ladder, journals every
unfinished job resumable, and exits 130 — and a later ``--resume``
completes the batch with exactly-once semantics.

The in-process tests drive :meth:`Supervisor.request_shutdown` directly
(it is exactly what the CLI signal handler calls); the subprocess drill
sends a real SIGINT to the real CLI.  Both pin a worker in a guaranteed
hang (the ``worker.hang`` fault) so something is always mid-flight when
the shutdown lands.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.runtime.faults import inject
from repro.runtime.jobs import JobJournal, JobSpec
from repro.runtime.supervisor import Supervisor, run_batch

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _spec(job_id="adder", width=4, **overrides) -> JobSpec:
    fields = dict(
        job_id=job_id,
        network={"generate": "adder", "width": width},
        script=("BF",),
        verify="sim",
    )
    fields.update(overrides)
    return JobSpec(**fields)


def _journal_events(path: Path) -> list[dict]:
    events = []
    if path.exists():
        for line in path.read_text(encoding="utf-8").splitlines():
            try:
                events.append(json.loads(line))
            except ValueError:
                pass
    return events


class TestRequestShutdown:
    def test_interrupt_with_hung_worker_journals_resumable(self, tmp_path):
        supervisor = Supervisor(
            tmp_path / "batch", num_workers=1, grace=0.5, max_attempts=2,
            backoff_base=0.05,
        )
        journal = supervisor.journal_path
        result = {}

        def run():
            with inject("worker.hang"):
                result["report"] = supervisor.run([_spec()])

        thread = threading.Thread(target=run)
        thread.start()
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if any(e["event"] == "start" for e in _journal_events(journal)):
                    break
                time.sleep(0.02)
            else:
                raise AssertionError("worker never started")
            supervisor.request_shutdown()
            thread.join(timeout=30)
            assert not thread.is_alive(), "drain must terminate the batch"
        finally:
            supervisor.request_shutdown()
            thread.join(timeout=30)

        report = result["report"]
        assert report.interrupted is True
        assert report.done == 0
        events = [e["event"] for e in _journal_events(journal)]
        assert "requeued" in events  # the hung job went back to pending

        # No orphaned worker: the journaled pid must be gone (or at least
        # not our worker module anymore).
        for event in _journal_events(journal):
            if event["event"] == "start":
                cmdline = Path(f"/proc/{event['pid']}/cmdline")
                assert (
                    not cmdline.exists()
                    or b"repro.runtime.worker" not in cmdline.read_bytes()
                )

        # Resume (fault exhausted): completes exactly once at the same
        # attempt number — the interrupted attempt did not count.
        resumed = run_batch(
            [], tmp_path / "batch", resume=True, num_workers=1,
            grace=0.5, max_attempts=2, backoff_base=0.05,
        )
        assert resumed.done == 1 and resumed.interrupted is False
        done_events = [e for e in _journal_events(journal) if e["event"] == "done"]
        assert len(done_events) == 1
        assert resumed.jobs[0]["attempts"] == 1
        assert "resume:interrupted" in resumed.jobs[0]["degradations"]

    def test_completed_work_is_kept_on_interrupt(self, tmp_path):
        """A worker that finishes during the drain window is journaled
        done, not requeued — interrupt never discards finished work."""
        supervisor = Supervisor(
            tmp_path / "batch", num_workers=2, grace=30.0, max_attempts=2,
            backoff_base=0.05,
        )
        journal = supervisor.journal_path
        result = {}

        def run():
            # Slot A: healthy tiny job.  Slot B: hung worker, so the loop
            # is still mid-batch when the shutdown request lands.
            with inject("worker.hang"):
                result["report"] = supervisor.run(
                    [_spec(job_id="hung", width=5), _spec(job_id="ok", width=3)]
                )

        thread = threading.Thread(target=run)
        thread.start()
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                events = _journal_events(journal)
                if len([e for e in events if e["event"] == "start"]) >= 2:
                    break
                time.sleep(0.02)
            supervisor.request_shutdown()
            thread.join(timeout=90)
            assert not thread.is_alive()
        finally:
            supervisor.request_shutdown()
            thread.join(timeout=90)

        report = result["report"]
        assert report.interrupted is True
        states = {j["job_id"]: j["state"] for j in report.jobs}
        # The healthy job either finished before the drain or completed
        # its artifact inside the grace window — both count as done, and
        # drain's long grace means SIGTERM (ignored only by the hung
        # fault) let it finish writing.
        assert states["hung"] == "pending"

    def test_interrupt_before_any_start_leaves_all_pending(self, tmp_path):
        supervisor = Supervisor(tmp_path / "batch", num_workers=1)
        supervisor.request_shutdown()  # before run()
        report = supervisor.run([_spec()])
        assert report.interrupted is True
        assert report.done == 0
        resumed = run_batch([], tmp_path / "batch", resume=True, num_workers=1)
        assert resumed.done == 1


@pytest.mark.slow
class TestCliSignalDrill:
    def _launch(self, workdir, faults=None):
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        if faults:
            env["REPRO_FAULTS"] = faults
        return subprocess.Popen(
            [
                sys.executable, "-c",
                "from repro.cli import main; raise SystemExit(main())",
                "batch", "--generate", "adder,max", "--width", "5",
                "--script", "BF", "--jobs", "2", "--grace", "0.5",
                "--max-attempts", "2", "--backoff", "0.05",
                "--workdir", str(workdir),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    def test_sigint_mid_batch_exits_130_and_resumes(self, tmp_path):
        workdir = tmp_path / "batch"
        journal = workdir / "journal.jsonl"
        # Hang the first worker so the batch is guaranteed mid-flight.
        proc = self._launch(workdir, faults="worker.hang:times=1")
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if any(e["event"] == "start" for e in _journal_events(journal)):
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("no worker started within 60s")
            proc.send_signal(signal.SIGINT)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 130, out
        assert "draining" in out
        assert "--resume" in out

        # The journal must be resumable: resume completes everything,
        # each job exactly once.
        report = run_batch(
            [], workdir, resume=True, num_workers=2,
            grace=0.5, max_attempts=2, backoff_base=0.05,
        )
        assert report.done == 2 and report.quarantined == 0
        done = {}
        for event in _journal_events(journal):
            if event["event"] == "done":
                done[event["job"]] = done.get(event["job"], 0) + 1
        assert all(count == 1 for count in done.values()), done
        replay = JobJournal.replay(journal)
        assert {r.state for r in replay.records.values()} == {"done"}

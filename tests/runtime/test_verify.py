"""Tests for the post-pass equivalence verification policy."""

from __future__ import annotations

import pytest

from repro.core.mig import Mig, signal_not
from repro.generators import epfl
from repro.runtime.budget import Budget
from repro.runtime.verify import verify_rewrite


def _broken_copy(mig: Mig) -> Mig:
    bad = mig.clone()
    bad._outputs[0] = signal_not(bad._outputs[0])
    return bad


class TestNarrowNetworks:
    def test_exhaustive_proof(self):
        mig = epfl.adder(4)
        report = verify_rewrite(mig, mig.clone(), mode="sim")
        assert report.equivalent is True
        assert report.method == "exhaustive"

    def test_exhaustive_refutation(self):
        mig = epfl.adder(4)
        report = verify_rewrite(mig, _broken_copy(mig), mode="sim")
        assert report.refuted
        assert report.method == "exhaustive"

    def test_off_mode(self):
        mig = epfl.adder(4)
        report = verify_rewrite(mig, _broken_copy(mig), mode="off")
        assert report.equivalent is None
        assert report.method == "off"

    def test_unknown_mode_rejected(self):
        mig = epfl.adder(4)
        with pytest.raises(ValueError):
            verify_rewrite(mig, mig, mode="simulate-hard")


class TestWideNetworks:
    def test_sampled_refutation(self):
        mig = epfl.adder(16)  # 32 PIs: beyond the exhaustive limit
        report = verify_rewrite(mig, _broken_copy(mig), mode="sim")
        assert report.refuted
        assert report.method == "sampled"

    def test_sim_mode_is_inconclusive_positive(self):
        mig = epfl.adder(16)
        report = verify_rewrite(mig, mig.clone(), mode="sim")
        assert report.equivalent is None
        assert report.method == "sampled"

    def test_cec_mode_proves(self):
        mig = epfl.adder(16)
        report = verify_rewrite(mig, mig.clone(), mode="cec")
        assert report.equivalent is True
        assert report.method == "cec"

    def test_cec_charges_budget(self):
        mig = epfl.adder(16)
        budget = Budget.from_limits(conflict_limit=10_000_000)
        before = budget.conflicts_spent
        verify_rewrite(mig, mig.clone(), mode="cec", budget=budget)
        assert budget.conflicts_spent >= before

    def test_cec_budget_exhaustion_inconclusive(self):
        # A spent budget must yield an inconclusive answer, not a hang or
        # a false refutation.
        mig = epfl.multiplier(9)  # 18 PIs, wide enough for CEC
        budget = Budget.from_limits(conflict_limit=1)
        budget.charge_conflicts(1)
        report = verify_rewrite(mig, mig.clone(), mode="cec", budget=budget)
        assert report.equivalent in (None, True)  # tiny miters may close instantly
        assert report.method == "cec"

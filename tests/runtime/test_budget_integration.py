"""Budget exhaustion must degrade SAT-backed passes gracefully."""

from __future__ import annotations

from repro.core.simulate import check_equivalence
from repro.exact.synthesis import ExactSynthesizer
from repro.generators import epfl
from repro.opt.fraig import fraig
from repro.runtime.budget import Budget


class TestExactSynthesisBudget:
    def test_exhausted_budget_degrades_to_upper_bound(self):
        # 0x1668 needs several gates; with an effectively spent budget the
        # synthesizer must fall back to the provided upper bound.
        budget = Budget.from_limits(conflict_limit=1)
        budget.charge_conflicts(1)
        from repro.exact.trees import TreeSynthesizer

        spec = 0x1668
        upper = TreeSynthesizer(4).synthesize(spec)
        synth = ExactSynthesizer(budget=budget)
        result = synth.synthesize(spec, 4, upper_bound=upper)
        assert result.proven is False
        assert result.mig is upper
        assert result.size == upper.num_gates
        assert "unknown" in result.k_outcomes.values()

    def test_exhausted_budget_without_upper_bound(self):
        budget = Budget.from_limits(conflict_limit=1)
        budget.charge_conflicts(1)
        result = ExactSynthesizer(budget=budget).synthesize(0x1668, 4)
        assert result.proven is False
        assert result.mig is None

    def test_trivial_specs_ignore_budget(self):
        budget = Budget.from_limits(conflict_limit=1)
        budget.charge_conflicts(1)
        result = ExactSynthesizer(budget=budget).synthesize(0x0, 4)
        assert result.proven is True and result.size == 0

    def test_generous_budget_still_solves_and_charges(self):
        budget = Budget.from_limits(conflict_limit=10_000_000)
        result = ExactSynthesizer(budget=budget).synthesize(0x6, 2)  # XOR
        assert result.proven is True and result.size == 3
        assert budget.conflicts_spent == result.conflicts


class TestFraigBudget:
    def test_expired_budget_keeps_network_sound(self):
        mig = epfl.sine(6)
        budget = Budget.from_limits(time_limit=0.0)
        swept = fraig(mig, budget=budget)
        # No proofs possible -> no merges beyond structural hashing, but
        # the result must still be equivalent and no larger.
        assert check_equivalence(mig, swept)
        assert swept.num_gates <= mig.num_gates

    def test_budgeted_fraig_matches_unbudgeted_when_generous(self):
        mig = epfl.sine(6)
        budget = Budget.from_limits(conflict_limit=10_000_000, time_limit=60.0)
        swept = fraig(mig, budget=budget)
        reference = fraig(mig)
        assert check_equivalence(mig, swept)
        assert swept.num_gates == reference.num_gates

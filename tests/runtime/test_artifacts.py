"""Tests for crash-safe artifact writes, validated loads, and quarantine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.artifacts import (
    atomic_save_npy,
    atomic_write_text,
    load_validated_npy,
    quarantine,
)
from repro.runtime.errors import CorruptArtifact


class TestAtomicWrites:
    def test_roundtrip_text(self, tmp_path):
        path = tmp_path / "x.txt"
        atomic_write_text(path, "hello\n")
        assert path.read_text() == "hello\n"
        atomic_write_text(path, "replaced\n")
        assert path.read_text() == "replaced\n"

    def test_no_temp_droppings(self, tmp_path):
        path = tmp_path / "x.txt"
        atomic_write_text(path, "data")
        assert [p.name for p in tmp_path.iterdir()] == ["x.txt"]

    def test_npy_roundtrip(self, tmp_path):
        path = tmp_path / "t.npy"
        table = np.arange(256, dtype=np.uint8)
        atomic_save_npy(path, table)
        loaded = load_validated_npy(path, expected_shape=(256,), expected_dtype=np.uint8)
        assert loaded is not None and (loaded == table).all()


class TestValidatedLoad:
    def test_missing_file(self, tmp_path):
        assert load_validated_npy(tmp_path / "absent.npy") is None

    def test_garbage_quarantined(self, tmp_path):
        path = tmp_path / "t.npy"
        path.write_bytes(b"not an npy file at all")
        assert load_validated_npy(path) is None
        assert not path.exists()
        assert (tmp_path / "t.npy.corrupt").exists()

    def test_truncated_quarantined(self, tmp_path):
        path = tmp_path / "t.npy"
        atomic_save_npy(path, np.arange(1000, dtype=np.uint8))
        path.write_bytes(path.read_bytes()[:100])  # simulate a torn write
        assert load_validated_npy(path, expected_shape=(1000,)) is None
        assert (tmp_path / "t.npy.corrupt").exists()

    def test_wrong_shape_quarantined(self, tmp_path):
        path = tmp_path / "t.npy"
        atomic_save_npy(path, np.zeros(10, dtype=np.uint8))
        assert load_validated_npy(path, expected_shape=(256,)) is None
        assert (tmp_path / "t.npy.corrupt").exists()

    def test_wrong_dtype_quarantined(self, tmp_path):
        path = tmp_path / "t.npy"
        atomic_save_npy(path, np.zeros(16, dtype=np.float64))
        assert load_validated_npy(path, expected_shape=(16,), expected_dtype=np.uint8) is None

    def test_raise_mode(self, tmp_path):
        path = tmp_path / "t.npy"
        path.write_bytes(b"garbage")
        with pytest.raises(CorruptArtifact):
            load_validated_npy(path, on_corrupt="raise")
        assert path.exists()  # raise mode does not quarantine

    def test_quarantine_numbering(self, tmp_path):
        path = tmp_path / "t.npy"
        for _ in range(3):
            path.write_bytes(b"bad")
            quarantine(path)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["t.npy.corrupt", "t.npy.corrupt.1", "t.npy.corrupt.2"]


class TestCachedLengthTableRecovery:
    def test_corrupt_cache_quarantined_and_regenerated(self, tmp_path, monkeypatch):
        """End-to-end satellite: a corrupt length cache heals itself."""
        import repro.exact.complexity as complexity

        data_dir = tmp_path / "database" / "data"
        data_dir.mkdir(parents=True)
        # Point the cache at a temp clone of the package layout.
        fake_pkg = tmp_path / "exact" / "complexity.py"
        monkeypatch.setattr(complexity, "__file__", str(fake_pkg))
        bad = data_dir / "length3.npy"
        bad.write_bytes(b"\x93NUMPY corrupted beyond recognition")

        table = complexity.cached_length_table(3)
        assert table.shape == (256,)
        assert int(table.max()) == 4  # Table II: L <= 4 for 3 variables
        # The bad cache was quarantined and a fresh valid one written.
        assert (data_dir / "length3.npy.corrupt").exists()
        reloaded = np.load(data_dir / "length3.npy")
        assert (reloaded == table).all()

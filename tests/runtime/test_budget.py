"""Tests for the shared time/conflict budget."""

from __future__ import annotations

import pytest

from repro.runtime.budget import Budget
from repro.runtime.errors import BudgetExhausted


class FakeClock:
    def __init__(self, now: float = 100.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestTimeBudget:
    def test_unlimited_never_expires(self):
        b = Budget.unlimited()
        assert not b.expired()
        assert b.remaining_time() is None
        assert b.remaining_conflicts() is None
        b.check()  # must not raise

    def test_deadline_expiry(self):
        clock = FakeClock()
        b = Budget.from_limits(time_limit=5.0, clock=clock)
        assert not b.expired()
        assert b.remaining_time() == pytest.approx(5.0)
        clock.advance(4.0)
        assert not b.time_expired()
        clock.advance(2.0)
        assert b.time_expired()
        assert b.remaining_time() == 0.0
        with pytest.raises(BudgetExhausted) as exc:
            b.check("unit-test")
        assert exc.value.kind == "time"
        assert "unit-test" in str(exc.value)


class TestConflictBudget:
    def test_charging(self):
        b = Budget.from_limits(conflict_limit=100)
        b.charge_conflicts(40)
        assert b.remaining_conflicts() == 60
        b.charge_conflicts(70)
        assert b.remaining_conflicts() == 0
        assert b.conflicts_expired()
        with pytest.raises(BudgetExhausted) as exc:
            b.check()
        assert exc.value.kind == "conflicts"

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            Budget.unlimited().charge_conflicts(-1)

    def test_call_budget_caps_and_floors(self):
        b = Budget.from_limits(conflict_limit=100)
        assert b.call_conflict_budget() == 100
        assert b.call_conflict_budget(cap=30) == 30
        b.charge_conflicts(100)
        # Spent budget still hands the solver a positive (tiny) budget so
        # it returns UNKNOWN instead of running unlimited.
        assert b.call_conflict_budget() == 1
        assert Budget.unlimited().call_conflict_budget() is None
        assert Budget.unlimited().call_conflict_budget(cap=7) == 7


class TestSplit:
    def test_split_shares_deadline_and_slices_conflicts(self):
        clock = FakeClock()
        b = Budget.from_limits(time_limit=10.0, conflict_limit=100, clock=clock)
        kids = b.split(3)
        assert [k.conflict_limit for k in kids] == [34, 33, 33]
        assert all(k.deadline == b.deadline for k in kids)

    def test_child_charges_parent(self):
        b = Budget.from_limits(conflict_limit=100)
        child = b.split(2)[0]
        child.charge_conflicts(20)
        assert child.remaining_conflicts() == 30
        assert b.remaining_conflicts() == 80

    def test_split_unlimited(self):
        kids = Budget.unlimited().split(2)
        assert all(k.remaining_conflicts() is None for k in kids)

    def test_split_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Budget.unlimited().split(0)


class TestConcurrentChargeBack:
    """split() children may live on worker threads; every charge must
    reach the shared parent total without losing an update."""

    def test_concurrent_children_charge_back_exactly(self):
        import threading

        parent = Budget.from_limits(conflict_limit=400_000)
        children = parent.split(4)
        barrier = threading.Barrier(4)
        errors = []

        def worker(child):
            barrier.wait()
            try:
                for _ in range(1000):
                    child.charge_conflicts(100)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(c,)) for c in children]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        # 4 threads x 1000 charges x 100 conflicts, none lost to a race.
        assert parent.conflicts_spent == 400_000
        assert parent.remaining_conflicts() == 0
        assert parent.conflicts_expired()
        for child in children:
            assert child.conflicts_spent == 100_000

    def test_concurrent_charges_on_one_budget(self):
        import threading

        budget = Budget.from_limits(conflict_limit=10_000_000)
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(5000):
                budget.charge_conflicts(1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert budget.conflicts_spent == 8 * 5000

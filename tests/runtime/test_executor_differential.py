"""Differential test pinning the executor refactor to pre-refactor behavior.

``_frozen_supervisor`` is a verbatim copy of the Supervisor before the
process pool was extracted into :class:`repro.runtime.executors.
LocalExecutor`.  The same fixed batch runs through both; the journals
and :class:`BatchReport` must be equivalent modulo the things that can
never be stable across runs — pids, timestamps, rusage, runtimes, and
the workdir prefix baked into artifact paths.

``num_workers=1`` keeps the scheduling order deterministic so the
journals compare event-for-event, not just as sets.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

from repro.runtime.jobs import JobSpec
from repro.runtime.supervisor import run_batch as run_batch_new

from . import _frozen_supervisor

pytestmark = pytest.mark.skipif(
    not sys.platform.startswith("linux"),
    reason="the batch runtime relies on POSIX process groups and signals",
)

JOB_TIME = 60.0

#: fields that legitimately differ between two runs of the same batch
_VOLATILE_KEYS = frozenset({
    "pid", "runtime", "rusage", "wall_seconds", "phase_seconds",
})


def fixed_specs(workdir: Path) -> list[JobSpec]:
    """A small deterministic batch: three instances, BF script, sim verify."""
    specs = []
    for name, width in (("adder", 6), ("max", 6), ("square", 6)):
        job_id = f"{name}-w{width}.BF"
        specs.append(JobSpec(
            job_id=job_id,
            network={"generate": name, "width": width},
            script=("BF",),
            verify="sim",
            time_limit=JOB_TIME,
            output=str(workdir / "outputs" / f"{job_id}.blif"),
        ))
    return specs


def scrub(value, workdir: str):
    """Strip volatile fields and normalize the workdir out of paths."""
    if isinstance(value, dict):
        return {
            key: scrub(item, workdir)
            for key, item in value.items()
            if key not in _VOLATILE_KEYS
        }
    if isinstance(value, list):
        return [scrub(item, workdir) for item in value]
    if isinstance(value, str) and workdir in value:
        return value.replace(workdir, "<WORKDIR>")
    return value


def journal_events(workdir: Path) -> list[dict]:
    path = workdir / "batch" / "journal.jsonl"
    events = [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    return [scrub(event, str(workdir)) for event in events]


def run_both(tmp_path: Path) -> tuple:
    old_dir = tmp_path / "frozen"
    new_dir = tmp_path / "refactored"
    old_report = _frozen_supervisor.run_batch(
        fixed_specs(old_dir), old_dir / "batch",
        num_workers=1, backoff_base=0.05,
    )
    new_report = run_batch_new(
        fixed_specs(new_dir), new_dir / "batch",
        num_workers=1, backoff_base=0.05,
    )
    return old_dir, old_report, new_dir, new_report


class TestDifferential:
    def test_journals_and_report_are_equivalent(self, tmp_path):
        old_dir, old_report, new_dir, new_report = run_both(tmp_path)

        assert old_report.done == new_report.done == 3
        assert old_report.quarantined == new_report.quarantined == 0

        old_events = journal_events(old_dir)
        new_events = journal_events(new_dir)
        assert old_events == new_events, (
            "journal divergence between frozen and refactored supervisors"
        )

        old_dict = scrub(old_report.to_dict(), str(old_dir))
        new_dict = scrub(new_report.to_dict(), str(new_dir))
        assert old_dict == new_dict

    def test_outputs_are_byte_identical(self, tmp_path):
        """Same seed batch ⇒ bit-identical optimized networks."""
        old_dir, _, new_dir, _ = run_both(tmp_path)
        old_outputs = sorted((old_dir / "outputs").iterdir())
        new_outputs = sorted((new_dir / "outputs").iterdir())
        assert [p.name for p in old_outputs] == [p.name for p in new_outputs]
        for old_path, new_path in zip(old_outputs, new_outputs):
            assert old_path.read_bytes() == new_path.read_bytes(), old_path.name

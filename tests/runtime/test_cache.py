"""The content-addressed result cache (repro.runtime.cache)."""

from __future__ import annotations

import json
import os

import pytest

from repro.runtime.cache import ResultCache, request_key
from repro.runtime.faults import inject
from repro.runtime.jobs import JobSpec


def _spec(**overrides) -> JobSpec:
    fields = dict(job_id="j", network={"generate": "adder"})
    fields.update(overrides)
    return JobSpec(**fields)


class TestRequestKey:
    def test_same_inputs_same_key(self):
        assert request_key("ab" * 32, _spec()) == request_key("ab" * 32, _spec())

    def test_network_hash_is_part_of_the_key(self):
        assert request_key("ab" * 32, _spec()) != request_key("cd" * 32, _spec())

    @pytest.mark.parametrize(
        "change",
        [
            {"script": ("BF", "TFD")},
            {"mode": "converge"},
            {"variant": "TFD"},
            {"max_passes": 3},
            {"verify": "cec"},
            {"time_limit": 2.0},
            {"conflict_limit": 500},
            {"cut_limit": 4},
            {"db": "/some/db.jsonl"},
        ],
    )
    def test_result_relevant_fields_change_the_key(self, change):
        assert request_key("ab" * 32, _spec()) != request_key(
            "ab" * 32, _spec(**change)
        )

    @pytest.mark.parametrize(
        "change",
        [
            {"job_id": "other"},
            {"network": {"blif": "/tmp/x.blif"}},
            {"output": "/tmp/out.blif"},
            {"progress": "/tmp/p.jsonl"},
            {"mem_limit_mb": 512},
        ],
    )
    def test_placement_fields_do_not_change_the_key(self, change):
        """Where a job runs or lands must not defeat deduplication."""
        assert request_key("ab" * 32, _spec()) == request_key(
            "ab" * 32, _spec(**change)
        )

    def test_default_cut_size_keys_like_unset(self):
        """cut_size=4 is the engine default spelled out — it must not
        orphan every cache entry written before the field existed."""
        assert request_key("ab" * 32, _spec()) == request_key(
            "ab" * 32, _spec(cut_size=4)
        )

    def test_large_cut_fields_change_the_key(self):
        base = request_key("ab" * 32, _spec())
        five = request_key("ab" * 32, _spec(cut_size=5))
        stored = request_key(
            "ab" * 32, _spec(cut_size=5, npn_store="/tmp/flows.npn5")
        )
        # Larger cuts change the result; a warm store holds tighter
        # witnesses than a cold one.  Three distinct requests.
        assert len({base, five, stored}) == 3


class TestRoundtrip:
    def test_put_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "0" * 64
        assert cache.get(key) is None
        cache.put(key, {"size_after": 7})
        assert cache.get(key) == {"size_after": 7}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["puts"] == 1
        assert stats["entries"] == 1 and stats["bytes"] > 0

    def test_no_tmp_files_survive_a_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("1" * 64, {"a": 1})
        assert not list(cache.objects_dir.glob("*.tmp"))

    def test_restart_warm(self, tmp_path):
        ResultCache(tmp_path).put("2" * 64, {"a": 2})
        reopened = ResultCache(tmp_path)
        assert reopened.get("2" * 64) == {"a": 2}
        assert reopened.stats()["entries"] == 1

    def test_crashed_tmp_leftover_is_swept_on_open(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("3" * 64, {"a": 3})
        # Model a kill -9 mid-atomic-write: the temp file exists, the
        # entry was never replaced.
        leftover = cache.objects_dir / (("4" * 64) + ".json.oops.tmp")
        leftover.write_text('{"version": 1, "truncat')
        reopened = ResultCache(tmp_path)
        assert not leftover.exists()
        assert reopened.get("3" * 64) == {"a": 3}
        assert reopened.get("4" * 64) is None


class TestQuarantine:
    def _entry_path(self, cache, key):
        return cache.objects_dir / f"{key}.json"

    def test_unparsable_entry_quarantined_and_missed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "5" * 64
        self._entry_path(cache, key).write_text("{this is not json")
        assert ResultCache(tmp_path).get(key) is None
        reopened = ResultCache(tmp_path)
        assert reopened.get(key) is None  # still a miss, not an error loop
        corrupt = list(cache.objects_dir.glob(f"{key}.json.corrupt*"))
        assert corrupt, "corrupt entry must be preserved as evidence"

    def test_key_mismatch_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "6" * 64
        self._entry_path(cache, key).write_text(
            json.dumps({"version": 1, "key": "7" * 64, "result": {"a": 1}})
        )
        assert cache.get(key) is None
        assert cache.stats()["corrupt"] == 1

    def test_version_mismatch_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "8" * 64
        self._entry_path(cache, key).write_text(
            json.dumps({"version": 999, "key": key, "result": {"a": 1}})
        )
        assert cache.get(key) is None
        assert cache.stats()["corrupt"] == 1

    def test_cache_corrupt_fault_fires_the_quarantine_path(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "9" * 64
        with inject("cache.corrupt"):
            cache.put(key, {"a": 1})
        assert cache.get(key) is None
        assert cache.stats()["corrupt"] == 1
        # The slot is reusable: the re-optimization overwrites cleanly.
        cache.put(key, {"a": 1})
        assert cache.get(key) == {"a": 1}

    def test_entry_vanishing_mid_load_is_a_plain_miss(self, tmp_path, monkeypatch):
        """Satellite regression: a read that fails because the entry was
        concurrently evicted must not quarantine — there is nothing corrupt
        on disk, and a ``.corrupt`` tombstone here would be fabricated."""
        import builtins

        cache = ResultCache(tmp_path)
        key = "a" * 64
        cache.put(key, {"a": 1})
        path = self._entry_path(cache, key)
        real_open = builtins.open

        def racing_open(file, *args, **kwargs):
            if str(file) == str(path):
                # Simulate the sibling's unlink landing mid-load: the open
                # itself succeeds, the subsequent read hits EIO-style loss.
                os.unlink(path)
                raise OSError("read raced with eviction")
            return real_open(file, *args, **kwargs)

        monkeypatch.setattr(builtins, "open", racing_open)
        assert cache.get(key) is None
        monkeypatch.undo()
        assert cache.stats()["corrupt"] == 0
        assert cache.stats()["misses"] == 1
        assert not list(cache.objects_dir.glob(f"{key}.json.corrupt*"))
        # The slot is immediately reusable.
        cache.put(key, {"a": 2})
        assert cache.get(key) == {"a": 2}

    def test_concurrent_get_and_eviction_never_quarantines(self, tmp_path):
        """Hammer get() from readers while a writer keeps the cache at its
        budget so entries are constantly evicted under the readers."""
        import threading

        entry_size = len(
            json.dumps(
                {"version": 1, "key": "0" * 64, "stored_at": 0.0, "result": {"p": 0}},
                sort_keys=True,
            )
        )
        cache = ResultCache(tmp_path, max_bytes=entry_size * 4)
        keys = [format(i, "064x") for i in range(16)]
        stop = threading.Event()
        errors: list[BaseException] = []

        def reader():
            try:
                while not stop.is_set():
                    for k in keys:
                        cache.get(k)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for round_ in range(30):
                for i, k in enumerate(keys):
                    cache.put(k, {"p": round_ * len(keys) + i})
        finally:
            stop.set()
            for t in threads:
                t.join()
        assert not errors
        assert cache.stats()["corrupt"] == 0
        assert not list(cache.objects_dir.glob("*.corrupt*"))


class TestEviction:
    def _fill(self, cache, keys, pad=200):
        for key in keys:
            cache.put(key, {"blob": "x" * pad, "key_tag": key[:4]})

    def _entry_bytes(self, tmp_path, pad=200) -> int:
        probe = ResultCache(tmp_path / "probe")
        probe.put("f" * 64, {"blob": "x" * pad, "key_tag": "ffff"})
        return probe.stats()["bytes"]

    def test_oldest_entry_evicted_first(self, tmp_path):
        keys = [c * 64 for c in "abc"]
        # Budget: exactly three entries fit, a fourth forces one out.
        cache = ResultCache(tmp_path, max_bytes=3 * self._entry_bytes(tmp_path) + 16)
        now = 1_000_000.0
        self._fill(cache, keys)
        for i, key in enumerate(keys):
            os.utime(cache.objects_dir / f"{key}.json", (now + i, now + i))
        cache.put("d" * 64, {"blob": "x" * 200, "key_tag": "dddd"})
        assert cache.get(keys[0]) is None  # oldest went
        assert cache.get("d" * 64) is not None
        stats = cache.stats()
        assert stats["evictions"] >= 1 and stats["evicted_bytes"] > 0

    def test_hit_refreshes_recency(self, tmp_path):
        keys = [c * 64 for c in "abc"]
        cache = ResultCache(tmp_path, max_bytes=3 * self._entry_bytes(tmp_path) + 16)
        now = 1_000_000.0
        self._fill(cache, keys)
        for i, key in enumerate(keys):
            os.utime(cache.objects_dir / f"{key}.json", (now + i, now + i))
        assert cache.get(keys[0]) is not None  # touch: now most recent
        cache.put("d" * 64, {"blob": "x" * 200, "key_tag": "dddd"})
        assert cache.get(keys[0]) is not None  # survived
        assert cache.get(keys[1]) is None  # the untouched oldest went

    def test_fresh_put_never_self_evicts(self, tmp_path):
        cache = ResultCache(tmp_path, max_bytes=10)  # smaller than any entry
        cache.put("e" * 64, {"blob": "x" * 500})
        assert cache.get("e" * 64) is not None

    def test_accounting_survives_restart(self, tmp_path):
        keys = [c * 64 for c in "ab"]
        cache = ResultCache(tmp_path, max_bytes=10_000)
        self._fill(cache, keys)
        before = cache.stats()["bytes"]
        reopened = ResultCache(tmp_path, max_bytes=10_000)
        assert reopened.stats()["bytes"] == before
        assert reopened.stats()["entries"] == 2

    def test_rejects_nonpositive_budget(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path, max_bytes=0)

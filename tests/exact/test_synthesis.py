"""Tests for the exact synthesis driver."""

from __future__ import annotations

import pytest

from repro.core.npn import enumerate_npn_classes
from repro.core.truth_table import tt_mask, tt_maj, tt_var
from repro.exact.heuristic import heuristic_mig
from repro.exact.synthesis import ExactSynthesizer, synthesize_exact


class TestTrivialCases:
    def test_constant_zero(self):
        result = synthesize_exact(0, 3)
        assert result.size == 0 and result.proven
        assert result.mig.simulate()[0] == 0

    def test_constant_one(self):
        result = synthesize_exact(tt_mask(3), 3)
        assert result.size == 0 and result.proven
        assert result.mig.simulate()[0] == tt_mask(3)

    def test_projection(self):
        result = synthesize_exact(tt_var(3, 1), 3)
        assert result.size == 0
        assert result.mig.simulate()[0] == tt_var(3, 1)

    def test_complemented_projection(self):
        spec = tt_var(3, 2) ^ tt_mask(3)
        result = synthesize_exact(spec, 3)
        assert result.size == 0
        assert result.mig.simulate()[0] == spec


class TestSmallFunctions:
    def test_and_is_one_gate(self):
        result = synthesize_exact(tt_var(2, 0) & tt_var(2, 1), 2)
        assert result.size == 1 and result.proven

    def test_maj_is_one_gate(self):
        spec = tt_maj(tt_var(3, 0), tt_var(3, 1), tt_var(3, 2))
        result = synthesize_exact(spec, 3)
        assert result.size == 1 and result.proven

    def test_xor2_is_three_gates(self):
        result = synthesize_exact(tt_var(2, 0) ^ tt_var(2, 1), 2)
        assert result.size == 3 and result.proven

    def test_all_two_var_classes(self):
        """2-variable NPN classes split as sizes {0: 2, 1: 1, 3: 1}."""
        sizes = {}
        for rep in enumerate_npn_classes(2):
            result = synthesize_exact(rep, 2)
            assert result.proven
            assert result.mig.simulate()[0] == rep
            sizes[result.size] = sizes.get(result.size, 0) + 1
        assert sizes == {0: 2, 1: 1, 3: 1}

    def test_three_var_class_size_distribution(self):
        """All 14 NPN-3 classes synthesize exactly, verified functionally."""
        sizes = {}
        for rep in enumerate_npn_classes(3):
            result = synthesize_exact(rep, 3, conflict_budget=300000, max_gates=8)
            assert result.proven, hex(rep)
            assert result.mig.simulate()[0] == rep
            sizes[result.size] = sizes.get(result.size, 0) + 1
        assert sum(sizes.values()) == 14
        assert sizes == {0: 2, 1: 2, 2: 2, 3: 4, 4: 4}


class TestUpperBounds:
    def test_upper_bound_capping(self):
        spec = tt_var(3, 0) ^ tt_var(3, 1)
        ub = heuristic_mig(spec, 3)
        result = ExactSynthesizer(conflict_budget=100000).synthesize(
            spec, 3, upper_bound=ub
        )
        assert result.proven
        assert result.size == 3

    def test_bad_upper_bound_rejected(self):
        wrong = heuristic_mig(tt_var(3, 0), 3)
        with pytest.raises(ValueError):
            ExactSynthesizer().synthesize(tt_var(3, 1), 3, upper_bound=wrong)

    def test_budget_exhaustion_falls_back_to_ub(self):
        spec = 0x1668
        ub = heuristic_mig(spec, 4)
        result = ExactSynthesizer(conflict_budget=20).synthesize(
            spec, 4, upper_bound=ub
        )
        assert result.mig is ub
        assert not result.proven

    def test_budget_exhaustion_without_ub(self):
        result = synthesize_exact(0x1668, 4, conflict_budget=20)
        assert result.mig is None
        assert not result.proven

    def test_k_outcomes_recorded(self):
        result = synthesize_exact(tt_var(2, 0) ^ tt_var(2, 1), 2)
        # XOR needs 3 gates; the exhaustive witness table answers it
        # (and skips the smaller sizes) without any SAT call.
        assert result.k_outcomes[1] == "skipped"
        assert result.k_outcomes[2] == "skipped"
        assert result.k_outcomes[3] == "table"
        assert result.proven
        assert result.conflicts == 0

    def test_k_outcomes_unsat_without_lower_bound(self):
        synthesizer = ExactSynthesizer(use_lower_bound=False)
        result = synthesizer.synthesize(tt_var(2, 0) ^ tt_var(2, 1), 2)
        assert result.k_outcomes[1] == "unsat"
        assert result.k_outcomes[2] == "unsat"
        assert result.k_outcomes[3] == "sat"

"""Tests for the heuristic upper-bound synthesizer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.truth_table import tt_mask, tt_maj, tt_var
from repro.exact.heuristic import heuristic_mig, single_gate_functions


class TestSingleGateTable:
    def test_contains_and_or_maj(self):
        table = single_gate_functions(3)
        a, b, c = (tt_var(3, i) for i in range(3))
        assert (a & b) in table
        assert (a | b) in table
        assert tt_maj(a, b, c) in table

    def test_excludes_xor(self):
        table = single_gate_functions(2)
        assert (tt_var(2, 0) ^ tt_var(2, 1)) not in table

    def test_entries_are_correct(self):
        """Every table entry must actually evaluate to its key."""
        from repro.core.mig import Mig

        table = single_gate_functions(3)
        for tt, operands in table.items():
            mig = Mig(3)
            mig.add_po(mig.maj(*operands))
            assert mig.simulate()[0] == tt


class TestCorrectness:
    @given(st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=80, deadline=None)
    def test_realizes_spec_4vars(self, spec):
        mig = heuristic_mig(spec, 4)
        assert mig.simulate()[0] == spec

    @given(st.integers(min_value=0, max_value=0xFF))
    @settings(max_examples=40, deadline=None)
    def test_realizes_spec_3vars(self, spec):
        mig = heuristic_mig(spec, 3)
        assert mig.simulate()[0] == spec

    def test_five_variables(self):
        spec = (tt_var(5, 0) ^ tt_var(5, 1) ^ tt_var(5, 2)) & tt_var(5, 4)
        mig = heuristic_mig(spec, 5)
        assert mig.simulate()[0] == spec

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            heuristic_mig(0x10000, 4)


class TestQuality:
    def test_constants_and_literals_are_free(self):
        assert heuristic_mig(0, 3).num_gates == 0
        assert heuristic_mig(tt_mask(3), 3).num_gates == 0
        assert heuristic_mig(tt_var(3, 1), 3).num_gates == 0

    def test_single_gate_functions_get_one_gate(self):
        a, b, c = (tt_var(3, i) for i in range(3))
        assert heuristic_mig(a & b, 3).num_gates == 1
        assert heuristic_mig(tt_maj(a, b, c), 3).num_gates == 1

    def test_xor_uses_xor_decomposition(self):
        spec = tt_var(4, 0) ^ tt_var(4, 1) ^ tt_var(4, 2) ^ tt_var(4, 3)
        mig = heuristic_mig(spec, 4)
        # xor decomposition: 3 gates per level, 3 levels of xor = 9 max.
        assert mig.num_gates <= 9

    def test_bounded_for_all_3var_functions(self):
        worst = max(heuristic_mig(f, 3).num_gates for f in range(256))
        assert worst <= 10

"""Tests for the exact-synthesis CNF encoding (Sec. III of the paper)."""

from __future__ import annotations

import pytest

from repro.core.truth_table import tt_maj, tt_var
from repro.exact.encoding import encode_exact_mig


class TestEncoding:
    def test_single_gate_maj(self):
        spec = tt_maj(tt_var(3, 0), tt_var(3, 1), tt_var(3, 2))
        enc = encode_exact_mig(spec, 3, 1)
        assert enc.solve() is True
        mig = enc.extract_mig()
        assert mig.num_gates == 1
        assert mig.simulate()[0] == spec

    def test_and_needs_one_gate(self):
        spec = tt_var(2, 0) & tt_var(2, 1)
        enc = encode_exact_mig(spec, 2, 1)
        assert enc.solve() is True
        assert enc.extract_mig().simulate()[0] == spec

    def test_xor_infeasible_below_three(self):
        spec = tt_var(2, 0) ^ tt_var(2, 1)
        assert encode_exact_mig(spec, 2, 1).solve() is False
        assert encode_exact_mig(spec, 2, 2).solve() is False

    def test_xor_feasible_at_three(self):
        spec = tt_var(2, 0) ^ tt_var(2, 1)
        enc = encode_exact_mig(spec, 2, 3)
        assert enc.solve() is True
        assert enc.extract_mig().simulate()[0] == spec

    def test_zero_gates_rejected(self):
        with pytest.raises(ValueError):
            encode_exact_mig(0x8, 2, 0)

    def test_out_of_range_spec(self):
        with pytest.raises(ValueError):
            encode_exact_mig(0x100, 2, 1)


class TestCegar:
    def test_cegar_agrees_with_monolithic_sat(self):
        spec = tt_var(3, 0) ^ tt_var(3, 1) ^ tt_var(3, 2)
        for k in (1, 2, 3, 4):
            mono = encode_exact_mig(spec, 3, k).solve()
            cegar = encode_exact_mig(spec, 3, k).solve_cegar()
            assert mono == cegar, f"disagreement at k={k}"

    def test_cegar_result_is_verified_function(self):
        spec = 0x69  # some 3-var function
        for k in range(1, 6):
            enc = encode_exact_mig(spec, 3, k)
            if enc.solve_cegar() is True:
                assert enc.extract_mig().simulate()[0] == spec
                return
        pytest.fail("no size up to 5 synthesized the function")

    def test_cegar_budget_exhaustion(self):
        spec = 0x1668
        enc = encode_exact_mig(spec, 4, 5)
        assert enc.solve_cegar(conflict_budget=5) is None


class TestSymmetryBreaking:
    def test_extracted_gates_have_distinct_fanin_nodes(self):
        spec = tt_var(3, 0) ^ tt_var(3, 1) ^ tt_var(3, 2)
        enc = encode_exact_mig(spec, 3, 4)
        assert enc.solve_cegar() is True
        mig = enc.extract_mig()
        for node in mig.gates():
            nodes = [s >> 1 for s in mig.fanins(node)]
            assert len(set(nodes)) == 3

"""Tests for the L(f)/D(f) complexity tables (Table II of the paper)."""

from __future__ import annotations

import pytest

from repro.core.npn import apply_transform, npn_canonize
from repro.core.truth_table import tt_mask, tt_var
from repro.exact.complexity import (
    cached_length_table,
    compute_length_table,
    length_distribution,
    tree_depth_feasible,
)

#: Table II of the paper, L(f) columns: L -> (classes, functions).
PAPER_LENGTH_DIST = {
    0: (2, 10),
    1: (2, 80),
    2: (5, 640),
    3: (18, 3300),
    4: (37, 9312),
    5: (84, 28680),
    6: (63, 22568),
    7: (7, 832),
    8: (2, 80),
    9: (2, 34),
}


class TestLengthSmall:
    def test_two_variables(self):
        table = compute_length_table(2)
        assert table[0] == 0  # constant
        assert table[tt_var(2, 0)] == 0
        assert table[tt_var(2, 0) & tt_var(2, 1)] == 1
        assert table[tt_var(2, 0) ^ tt_var(2, 1)] == 3

    def test_three_variable_totals(self):
        table = compute_length_table(3)
        assert len(table) == 256
        assert int(table.max()) <= 9
        # All functions are labeled.
        assert (table == 255).sum() == 0

    def test_length_is_npn_invariant_3vars(self):
        table = compute_length_table(3)
        for f in range(0, 256, 7):
            rep, t = npn_canonize(f, 3)
            assert table[f] == table[rep]


class TestLengthTable4:
    """Uses the cached table (computed once, stored in package data)."""

    def test_distribution_matches_paper_exactly(self):
        assert length_distribution(4) == PAPER_LENGTH_DIST

    def test_all_functions_labeled(self):
        table = cached_length_table(4)
        assert (table == 255).sum() == 0
        assert int(table.max()) == 9

    def test_specific_values(self):
        table = cached_length_table(4)
        assert table[0] == 0
        assert table[tt_mask(4)] == 0
        assert table[tt_var(4, 0)] == 0
        assert table[tt_var(4, 0) & tt_var(4, 1)] == 1
        # 4-input parity has L = 9 (the deepest L row of Table II).
        parity = tt_var(4, 0) ^ tt_var(4, 1) ^ tt_var(4, 2) ^ tt_var(4, 3)
        assert table[parity] == 9

    def test_complement_closure(self):
        table = cached_length_table(4)
        for f in range(0, 65536, 257):
            assert table[f] == table[f ^ 0xFFFF]

    def test_rejects_more_than_four_vars(self):
        with pytest.raises(ValueError):
            compute_length_table(5)


class TestTreeDepth:
    def test_constants_depth_zero(self):
        assert tree_depth_feasible(0, 2, 0) is True
        assert tree_depth_feasible(tt_mask(2), 2, 0) is True
        assert tree_depth_feasible(tt_var(2, 1), 2, 0) is True

    def test_and_depth_one(self):
        spec = tt_var(2, 0) & tt_var(2, 1)
        assert tree_depth_feasible(spec, 2, 0) is False
        assert tree_depth_feasible(spec, 2, 1) is True

    def test_xor2_depth_two(self):
        spec = tt_var(2, 0) ^ tt_var(2, 1)
        assert tree_depth_feasible(spec, 2, 1) is False
        assert tree_depth_feasible(spec, 2, 2) is True

    def test_xor3_depth_two(self):
        """3-input parity has tree depth 2 — the Fig. 1 full-adder sum."""
        spec = tt_var(3, 0) ^ tt_var(3, 1) ^ tt_var(3, 2)
        assert tree_depth_feasible(spec, 3, 1) is False
        assert tree_depth_feasible(spec, 3, 2) is True

    def test_xor4_depth_four_feasible(self):
        parity = tt_var(4, 0) ^ tt_var(4, 1) ^ tt_var(4, 2) ^ tt_var(4, 3)
        assert tree_depth_feasible(parity, 4, 4, conflict_budget=500000) is True


#: Table II of the paper, D(f) columns: D -> (classes, functions).
PAPER_DEPTH_DIST = {
    0: (2, 10),
    1: (2, 80),
    2: (48, 10260),
    3: (169, 55184),
    4: (1, 2),
}


class TestDepthDistribution:
    def test_distribution_matches_paper_exactly(self):
        from repro.exact.complexity import depth_distribution

        assert depth_distribution(4) == PAPER_DEPTH_DIST

    def test_parity_is_the_depth4_class(self):
        from repro.core.npn import npn_representative
        from repro.exact.complexity import compute_depth_by_class

        by_class = compute_depth_by_class(4)
        parity = tt_var(4, 0) ^ tt_var(4, 1) ^ tt_var(4, 2) ^ tt_var(4, 3)
        deepest = [rep for rep, d in by_class.items() if d == 4]
        assert deepest == [npn_representative(parity, 4)]

"""Tests for the Theorem 2 size bound."""

from __future__ import annotations

import random

import pytest

from repro.core.truth_table import tt_mask, tt_var
from repro.exact.bounds import shannon_upper_bound_mig, theorem2_bound


class TestBoundFormula:
    def test_paper_values(self):
        """C(4) <= 7, C(5) <= 17, C(6) <= 37, C(7) <= 77."""
        assert theorem2_bound(4) == 7
        assert theorem2_bound(5) == 17
        assert theorem2_bound(6) == 37
        assert theorem2_bound(7) == 77

    def test_recurrence(self):
        """The bound satisfies C(n+1) <= 2*C(n) + 3 with equality."""
        for n in range(4, 10):
            assert theorem2_bound(n + 1) == 2 * theorem2_bound(n) + 3

    def test_relaxed_base(self):
        assert theorem2_bound(4, base_cost=9) == 9
        assert theorem2_bound(5, base_cost=9) == 21

    def test_below_four_rejected(self):
        with pytest.raises(ValueError):
            theorem2_bound(3)


class TestShannonConstruction:
    def test_five_variable_functions(self, db):
        rng = random.Random(3)
        base = max(entry.size for entry in db.entries.values())
        bound = theorem2_bound(5, base_cost=base)
        for _ in range(10):
            spec = rng.getrandbits(32)
            mig = shannon_upper_bound_mig(spec, 5, db)
            assert mig.simulate()[0] == spec
            assert mig.num_gates <= bound

    def test_six_variable_functions(self, db):
        rng = random.Random(4)
        base = max(entry.size for entry in db.entries.values())
        bound = theorem2_bound(6, base_cost=base)
        for _ in range(4):
            spec = rng.getrandbits(64)
            mig = shannon_upper_bound_mig(spec, 6, db)
            assert mig.simulate()[0] == spec
            assert mig.num_gates <= bound

    def test_degenerate_function_collapses(self, db):
        # A 5-var function not depending on x4 costs no Shannon step.
        spec5 = tt_var(5, 0) & tt_var(5, 1)
        mig = shannon_upper_bound_mig(spec5, 5, db)
        assert mig.simulate()[0] == spec5
        assert mig.num_gates <= 7

    def test_small_n_rejected(self, db):
        with pytest.raises(ValueError):
            shannon_upper_bound_mig(0x8, 3, db)

    def test_out_of_range_spec(self, db):
        with pytest.raises(ValueError):
            shannon_upper_bound_mig(1 << 32, 5, db)

"""Tests for the Theorem 2 size bound and the synthesis lower bounds."""

from __future__ import annotations

import random

import pytest

from repro.core.truth_table import tt_mask, tt_var
from repro.exact.bounds import (
    mig_size_lower_bound,
    optimal_mig_from_table,
    optimal_small_migs,
    shannon_upper_bound_mig,
    theorem2_bound,
    two_gate_functions,
)
from repro.exact.synthesis import ExactSynthesizer


class TestBoundFormula:
    def test_paper_values(self):
        """C(4) <= 7, C(5) <= 17, C(6) <= 37, C(7) <= 77."""
        assert theorem2_bound(4) == 7
        assert theorem2_bound(5) == 17
        assert theorem2_bound(6) == 37
        assert theorem2_bound(7) == 77

    def test_recurrence(self):
        """The bound satisfies C(n+1) <= 2*C(n) + 3 with equality."""
        for n in range(4, 10):
            assert theorem2_bound(n + 1) == 2 * theorem2_bound(n) + 3

    def test_relaxed_base(self):
        assert theorem2_bound(4, base_cost=9) == 9
        assert theorem2_bound(5, base_cost=9) == 21

    def test_below_four_rejected(self):
        with pytest.raises(ValueError):
            theorem2_bound(3)


class TestShannonConstruction:
    def test_five_variable_functions(self, db):
        rng = random.Random(3)
        base = max(entry.size for entry in db.entries.values())
        bound = theorem2_bound(5, base_cost=base)
        for _ in range(10):
            spec = rng.getrandbits(32)
            mig = shannon_upper_bound_mig(spec, 5, db)
            assert mig.simulate()[0] == spec
            assert mig.num_gates <= bound

    def test_six_variable_functions(self, db):
        rng = random.Random(4)
        base = max(entry.size for entry in db.entries.values())
        bound = theorem2_bound(6, base_cost=base)
        for _ in range(4):
            spec = rng.getrandbits(64)
            mig = shannon_upper_bound_mig(spec, 6, db)
            assert mig.simulate()[0] == spec
            assert mig.num_gates <= bound

    def test_degenerate_function_collapses(self, db):
        # A 5-var function not depending on x4 costs no Shannon step.
        spec5 = tt_var(5, 0) & tt_var(5, 1)
        mig = shannon_upper_bound_mig(spec5, 5, db)
        assert mig.simulate()[0] == spec5
        assert mig.num_gates <= 7

    def test_small_n_rejected(self, db):
        with pytest.raises(ValueError):
            shannon_upper_bound_mig(0x8, 3, db)

    def test_out_of_range_spec(self, db):
        with pytest.raises(ValueError):
            shannon_upper_bound_mig(1 << 32, 5, db)


def _sat_only(conflict_budget=500_000, **kw):
    """An independent oracle: per-size SAT with every fast path off."""
    return ExactSynthesizer(
        use_lower_bound=False, carry_rows=False,
        conflict_budget=conflict_budget, **kw,
    )


class TestSmallMigTable:
    def test_every_three_var_witness_is_correct(self):
        """Exhaustive: all 3-var witnesses simulate to their key."""
        table = optimal_small_migs(3)
        assert len(table) == 152  # 256 functions - 8 trivial - 96 of size 4
        for spec, witness in table.items():
            mig = optimal_mig_from_table(spec, 3)
            assert mig.simulate()[0] == spec
            assert mig.num_gates == len(witness)

    def test_three_var_sizes_match_sat(self):
        """Table sizes agree with SAT-only synthesis on every 3-var class.

        Combined with the NPN closure of minimum size this covers all 256
        functions; the exhaustive non-class check ran during development.
        """
        from repro.core.npn import enumerate_npn_classes

        table = optimal_small_migs(3)
        for rep in enumerate_npn_classes(3):
            result = _sat_only().synthesize(rep, 3)
            assert result.proven
            if result.size == 0:
                assert rep not in table
            elif result.size <= 3:
                assert len(table[rep]) == result.size, hex(rep)
            else:
                assert rep not in table, hex(rep)

    def test_four_var_witnesses_simulate(self):
        table = optimal_small_migs(4)
        for spec in sorted(table)[::37]:  # deterministic sample
            mig = optimal_mig_from_table(spec, 4)
            assert mig.simulate()[0] == spec
            assert mig.num_gates == len(table[spec])

    def test_four_var_out_of_table_is_unsat_below_four(self):
        """Sizes 1-3 are refuted by SAT for specs the table excludes."""
        rng = random.Random(11)
        table = optimal_small_migs(4)
        mask = tt_mask(4)
        trivial = {0, mask}
        for i in range(4):
            trivial |= {tt_var(4, i), tt_var(4, i) ^ mask}
        picked = 0
        while picked < 3:
            spec = rng.getrandbits(16)
            if spec in table or spec in trivial:
                continue
            picked += 1
            result = _sat_only(max_gates=3).synthesize(spec, 4)
            assert result.mig is None
            assert all(
                v == "unsat" for k, v in result.k_outcomes.items() if k >= 1
            ), (hex(spec), result.k_outcomes)

    def test_trivial_functions_materialize(self):
        mask = tt_mask(4)
        for spec in (0, mask, tt_var(4, 2), tt_var(4, 2) ^ mask):
            mig = optimal_mig_from_table(spec, 4)
            assert mig is not None and mig.num_gates == 0
            assert mig.simulate()[0] == spec

    def test_out_of_range_spec(self):
        with pytest.raises(ValueError):
            optimal_mig_from_table(1 << 16, 4)


class TestLowerBound:
    def test_exact_for_table_sizes(self):
        # XOR2 embedded in 3 vars: size 3; MAJ: size 1; AND: size 1.
        assert mig_size_lower_bound(tt_var(3, 0) ^ tt_var(3, 1), 3) == 3
        assert mig_size_lower_bound(tt_var(3, 0) & tt_var(3, 1), 3) == 1
        assert mig_size_lower_bound(0, 3) == 0
        assert mig_size_lower_bound(tt_mask(4), 4) == 0

    def test_four_past_table_on_four_vars(self):
        # 0x1668 is outside the <=3-gate table: the bound starts SAT at 4.
        assert mig_size_lower_bound(0x1668, 4) == 4

    def test_support_bound(self):
        # A function reading all 8 variables needs >= ceil(7/2) = 3 gates
        # even before any membership test (k gates read <= 2k+1 inputs).
        spec = 0
        for i in range(8):
            spec ^= tt_var(8, i)
        assert mig_size_lower_bound(spec, 8) >= 3

    def test_two_gate_set_matches_table(self):
        table = optimal_small_migs(3)
        two = two_gate_functions(3)
        for spec in two:
            witness = table.get(spec)
            assert witness is None or len(witness) <= 2

"""Property tests for the incremental exact-synthesis fast paths.

The speedups in the synthesis driver — the small-MIG witness table, the
lower-bound size skipping and the carried CEGAR rows — are all claimed to
be *behavior-preserving*: the driver must return the same minimum size
(and a verified-equivalent MIG) as a cold per-size SAT run.  These tests
check exactly that on randomized 4-variable specifications.

Specs are drawn as truth tables of random MIGs with at most four gates,
which keeps every true minimum at <= 4 and the cold reference runs cheap,
while still covering the table path (sizes 0-3), the table boundary
(size 4) and the carry/lower-bound machinery.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.truth_table import tt_maj, tt_mask, tt_var
from repro.exact.bounds import mig_size_lower_bound
from repro.exact.synthesis import ExactSynthesizer

NUM_VARS = 4
MASK = tt_mask(NUM_VARS)


@st.composite
def small_mig_specs(draw) -> int:
    """Truth table of a random MIG with 1..4 gates over 4 variables."""
    tts = [0, MASK] + [tt_var(NUM_VARS, i) for i in range(NUM_VARS)]
    tts += [tt ^ MASK for tt in tts[2:]]
    num_gates = draw(st.integers(min_value=1, max_value=4))
    for _ in range(num_gates):
        a, b, c = (
            tts[draw(st.integers(min_value=0, max_value=len(tts) - 1))]
            for _ in range(3)
        )
        gate = tt_maj(a, b, c)
        tts.append(gate)
        tts.append(gate ^ MASK)
    return tts[-2]


def _cold(spec: int):
    """Reference: per-size SAT from k = 1, no table, no carried rows."""
    return ExactSynthesizer(
        use_lower_bound=False, carry_rows=False, conflict_budget=500_000
    ).synthesize(spec, NUM_VARS)


def _fast(spec: int):
    """The production configuration: table + lower bound + carried rows."""
    return ExactSynthesizer(conflict_budget=500_000).synthesize(spec, NUM_VARS)


@settings(max_examples=12, deadline=None)
@given(spec=small_mig_specs())
def test_fast_path_matches_cold_synthesis(spec):
    cold = _cold(spec)
    fast = _fast(spec)
    assert cold.proven and fast.proven
    assert fast.size == cold.size, (
        f"0x{spec:04x}: fast path found size {fast.size}, cold found {cold.size}"
    )
    assert fast.mig.simulate()[0] == spec
    # The fast path never issues a SAT call below its starting size, so
    # every conflict it spends, the cold run spends too (same instances).
    assert fast.conflicts <= cold.conflicts


@settings(max_examples=25, deadline=None)
@given(spec=small_mig_specs())
def test_lower_bound_never_skips_a_satisfiable_size(spec):
    """Regression guard: pruned sizes are exactly the unsatisfiable ones.

    If the bound ever exceeded the true minimum, the driver would return
    a too-large "minimum"; holding ``lb <= cold size`` over random specs
    (with the cold run as an independent oracle) rules that out.
    """
    cold = _cold(spec)
    assert mig_size_lower_bound(spec, NUM_VARS) <= cold.size
    fast = _fast(spec)
    skipped = [k for k, v in fast.k_outcomes.items() if v in ("skipped",)]
    assert all(k < cold.size for k in skipped)

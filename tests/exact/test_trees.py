"""Tests for L-optimal tree witness extraction."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.npn import enumerate_npn_classes
from repro.core.truth_table import tt_var
from repro.exact.trees import TreeSynthesizer


@pytest.fixture(scope="module")
def synth() -> TreeSynthesizer:
    return TreeSynthesizer(4)


class TestTreeSynthesis:
    def test_terminals(self, synth):
        assert synth.synthesize(0).num_gates == 0
        assert synth.synthesize(tt_var(4, 2)).num_gates == 0

    def test_and_gate(self, synth):
        spec = tt_var(4, 0) & tt_var(4, 1)
        mig = synth.synthesize(spec)
        assert mig.num_gates == 1
        assert mig.simulate()[0] == spec

    @given(st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=60, deadline=None)
    def test_function_realized_within_length(self, synth, spec):
        mig = synth.synthesize(spec)
        assert mig.simulate()[0] == spec
        assert mig.num_gates <= synth.length_of(spec)

    def test_all_npn_representatives(self, synth):
        """Every class rep must synthesize correctly within its length."""
        for rep in enumerate_npn_classes(4):
            mig = synth.synthesize(rep)
            assert mig.simulate()[0] == rep
            assert mig.num_gates <= synth.length_of(rep)

    def test_decompose_rejects_terminals(self, synth):
        with pytest.raises(ValueError):
            synth._decompose(0)

    def test_parity_within_nine(self, synth):
        parity = 0x6996
        mig = synth.synthesize(parity)
        assert mig.simulate()[0] == parity
        assert mig.num_gates <= 9

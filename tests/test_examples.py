"""Smoke tests: every shipped example must run end to end."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None) -> None:
    old_argv = sys.argv
    sys.argv = [name] + (argv or [])
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "Fig. 1 full adder: size 3, depth 2" in out
        assert "module" in out  # Verilog export

    def test_npn_database_tour(self, capsys):
        run_example("npn_database_tour.py")
        out = capsys.readouterr().out
        assert "222 NPN classes" in out
        assert "Table I histogram" in out

    def test_exact_synthesis(self, capsys):
        run_example("exact_synthesis.py")
        out = capsys.readouterr().out
        assert "xor2: 3 gates" in out
        assert "Theorem 2" in out

    def test_optimize_arithmetic(self, capsys):
        run_example("optimize_arithmetic.py", ["square-root", "8"])
        out = capsys.readouterr().out
        assert "equivalence-checked" in out

    def test_technology_mapping(self, capsys):
        run_example("technology_mapping.py", ["divisor", "6"])
        out = capsys.readouterr().out
        assert "best variant" in out

    def test_optimization_flows(self, capsys):
        run_example("optimization_flows.py")
        out = capsys.readouterr().out
        assert "equivalence-checked" in out
        assert "combined flow size ratio" in out

    def test_every_example_has_a_test(self):
        tested = {
            "quickstart.py",
            "npn_database_tour.py",
            "exact_synthesis.py",
            "optimize_arithmetic.py",
            "technology_mapping.py",
            "optimization_flows.py",
        }
        shipped = {p.name for p in EXAMPLES.glob("*.py")}
        assert shipped == tested

"""Tests for the CDCL SAT solver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.solver import SAT, UNKNOWN, UNSAT, Solver, _luby


def brute_force_sat(num_vars: int, clauses: list[list[int]]) -> bool:
    for bits in range(1 << num_vars):
        if all(
            any((bits >> (abs(l) - 1)) & 1 == (1 if l > 0 else 0) for l in cl)
            for cl in clauses
        ):
            return True
    return False


def pigeonhole(holes: int) -> Solver:
    solver = Solver()
    v = [[solver.new_var() for _ in range(holes)] for _ in range(holes + 1)]
    for p in range(holes + 1):
        solver.add_clause(v[p])
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                solver.add_clause([-v[p1][h], -v[p2][h]])
    return solver


class TestBasics:
    def test_trivial_sat(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        assert s.solve() is SAT
        assert s.model_value(a)
        assert not s.model_value(-a)

    def test_trivial_unsat(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        s.add_clause([-a])
        assert s.solve() is UNSAT

    def test_empty_formula_is_sat(self):
        s = Solver()
        s.new_vars(3)
        assert s.solve() is SAT

    def test_tautology_ignored(self):
        s = Solver()
        a, b = s.new_vars(2)
        s.add_clause([a, -a, b])
        assert s.solve() is SAT

    def test_duplicate_literals_collapse(self):
        s = Solver()
        a, b = s.new_vars(2)
        s.add_clause([a, a, b])
        assert s.solve() is SAT

    def test_unallocated_variable_rejected(self):
        s = Solver()
        with pytest.raises(ValueError):
            s.add_clause([1])

    def test_model_requires_sat(self):
        s = Solver()
        s.new_var()
        with pytest.raises(RuntimeError):
            s.model_value(1)

    def test_luby_sequence(self):
        assert [_luby(i) for i in range(15)] == [
            1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8,
        ]


clause_strategy = st.lists(
    st.lists(
        st.integers(min_value=1, max_value=7).flatmap(
            lambda v: st.sampled_from([v, -v])
        ),
        min_size=1,
        max_size=3,
    ),
    min_size=1,
    max_size=30,
)


class TestAgainstBruteForce:
    @given(clause_strategy)
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, clauses):
        s = Solver()
        s.new_vars(7)
        for cl in clauses:
            s.add_clause(cl)
        expected = brute_force_sat(7, clauses)
        got = s.solve()
        assert got == expected
        if got is SAT:
            for cl in clauses:
                assert any(s.model_value(l) for l in cl)


class TestHardInstances:
    @pytest.mark.parametrize("holes", [3, 4, 5])
    def test_pigeonhole_unsat(self, holes):
        assert pigeonhole(holes).solve() is UNSAT

    def test_conflict_budget_returns_unknown(self):
        s = pigeonhole(7)
        assert s.solve(conflict_budget=10) is UNKNOWN

    def test_budget_then_full_solve(self):
        s = pigeonhole(4)
        assert s.solve(conflict_budget=2) is UNKNOWN
        assert s.solve() is UNSAT


class TestAssumptions:
    def test_assumptions_restrict(self):
        s = Solver()
        a, b = s.new_vars(2)
        s.add_clause([a, b])
        assert s.solve(assumptions=[-a, -b]) is UNSAT
        assert s.solve(assumptions=[-a]) is SAT
        assert s.model_value(b)
        assert s.solve() is SAT  # unaffected afterwards

    def test_assumption_conflicting_with_units(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([a])
        assert s.solve(assumptions=[-a]) is UNSAT
        assert s.solve() is SAT

    def test_incremental_clause_addition(self):
        s = Solver()
        a, b, c = s.new_vars(3)
        s.add_clause([a, b])
        assert s.solve() is SAT
        s.add_clause([-a])
        s.add_clause([-b, c])
        assert s.solve() is SAT
        assert not s.model_value(a)
        assert s.model_value(b)
        assert s.model_value(c)
        s.add_clause([-c])
        assert s.solve() is UNSAT


class TestStatistics:
    def test_counters_advance(self):
        s = pigeonhole(4)
        s.solve()
        assert s.conflicts > 0
        assert s.propagations > 0

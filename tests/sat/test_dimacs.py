"""Tests for DIMACS reading and writing."""

from __future__ import annotations

import io

import pytest

from repro.sat.dimacs import load_into_solver, parse_dimacs, write_dimacs


class TestRoundtrip:
    def test_write_then_parse(self):
        clauses = [[1, -2], [2, 3], [-1, -3]]
        buf = io.StringIO()
        write_dimacs(3, clauses, buf)
        buf.seek(0)
        num_vars, parsed = parse_dimacs(buf)
        assert num_vars == 3
        assert parsed == clauses

    def test_load_into_solver(self):
        buf = io.StringIO("p cnf 2 2\n1 2 0\n-1 0\n")
        solver = load_into_solver(buf)
        assert solver.solve() is True
        assert solver.model_value(2)
        assert not solver.model_value(1)


class TestParsing:
    def test_comments_and_blank_lines(self):
        text = "c a comment\n\np cnf 2 1\nc another\n1 -2 0\n"
        num_vars, clauses = parse_dimacs(io.StringIO(text))
        assert num_vars == 2
        assert clauses == [[1, -2]]

    def test_multiline_clause(self):
        text = "p cnf 3 1\n1 2\n3 0\n"
        _, clauses = parse_dimacs(io.StringIO(text))
        assert clauses == [[1, 2, 3]]

    def test_clause_count_mismatch(self):
        with pytest.raises(ValueError):
            parse_dimacs(io.StringIO("p cnf 2 2\n1 0\n"))

    def test_malformed_header(self):
        with pytest.raises(ValueError):
            parse_dimacs(io.StringIO("p dnf 2 1\n1 0\n"))

    def test_too_few_clauses_rejected(self):
        with pytest.raises(ValueError, match="declares 3 clauses"):
            parse_dimacs(io.StringIO("p cnf 2 3\n1 0\n-1 2 0\n"))

    def test_too_many_clauses_rejected(self):
        with pytest.raises(ValueError, match="declares 1 clauses"):
            parse_dimacs(io.StringIO("p cnf 2 1\n1 0\n2 0\n"))

    def test_literal_above_declared_range_rejected(self):
        with pytest.raises(ValueError, match="literal 3 exceeds"):
            parse_dimacs(io.StringIO("p cnf 2 1\n1 3 0\n"))

    def test_negative_literal_above_range_rejected(self):
        with pytest.raises(ValueError, match="literal -5 exceeds"):
            parse_dimacs(io.StringIO("p cnf 4 1\n1 -5 0\n"))

    def test_clause_before_header_rejected(self):
        # With no declared variables every literal is out of range.
        with pytest.raises(ValueError, match="exceeds the declared"):
            parse_dimacs(io.StringIO("1 2 0\np cnf 2 1\n"))

    def test_boundary_literal_accepted(self):
        num_vars, clauses = parse_dimacs(io.StringIO("p cnf 3 1\n-3 3 0\n"))
        assert num_vars == 3
        assert clauses == [[-3, 3]]

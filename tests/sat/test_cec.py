"""Tests for SAT-based combinational equivalence checking."""

from __future__ import annotations

import pytest

from repro.core.mig import Mig, signal_not
from repro.sat.cec import check_equivalence_sat


def xor_pair() -> tuple[Mig, Mig]:
    m1 = Mig(2)
    a, b = m1.pi_signals()
    m1.add_po(m1.xor(a, b))
    m2 = Mig(2)
    a, b = m2.pi_signals()
    m2.add_po(m2.and_(m2.or_(a, b), signal_not(m2.and_(a, b))))
    return m1, m2


class TestCec:
    def test_equivalent_pair(self):
        m1, m2 = xor_pair()
        result = check_equivalence_sat(m1, m2)
        assert result.equivalent is True
        assert result.counterexample is None

    def test_inequivalent_pair_gives_counterexample(self):
        m1, _ = xor_pair()
        m3 = Mig(2)
        a, b = m3.pi_signals()
        m3.add_po(m3.or_(a, b))
        result = check_equivalence_sat(m1, m3)
        assert result.equivalent is False
        cex = result.counterexample
        assert cex is not None
        # xor and or differ exactly when both inputs are 1.
        assert cex == {"x0": True, "x1": True}

    def test_counterexample_is_valid(self):
        m1, _ = xor_pair()
        m3 = Mig(2)
        a, b = m3.pi_signals()
        m3.add_po(m3.and_(a, b))
        result = check_equivalence_sat(m1, m3)
        assert result.equivalent is False
        cex = result.counterexample
        pattern = [int(cex[name]) for name in m1.pi_names]
        out1 = m1.simulate_patterns(pattern, 1)
        out3 = m3.simulate_patterns(pattern, 1)
        assert out1 != out3

    def test_multi_output(self, full_adder):
        clone = full_adder.cleanup()
        assert check_equivalence_sat(full_adder, clone).equivalent is True

    def test_interface_mismatch(self):
        m1, _ = xor_pair()
        m3 = Mig(3)
        m3.add_po(0)
        with pytest.raises(ValueError):
            check_equivalence_sat(m1, m3)

    def test_rewritten_network_equivalence(self, db, suite_small):
        """CEC agrees with simulation on a rewritten benchmark."""
        from repro.rewriting import functional_hashing

        mig = suite_small[5]  # sqrt(4)
        out = functional_hashing(mig, db, "TF")
        result = check_equivalence_sat(mig, out, conflict_budget=200000)
        assert result.equivalent is True

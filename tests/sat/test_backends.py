"""Tests for the pluggable SAT backends (repro.sat.backends).

The external lanes are exercised with fake solver shell scripts — one
per failure mode (instant SAT, instant UNSAT, hang-ignoring-SIGTERM,
lying model, garbage exit) — so every outcome the portfolio must absorb
is reproduced deterministically without a real kissat/CaDiCaL install.
After every subprocess interaction the tests assert via ``/proc`` that
no child survived.
"""

from __future__ import annotations

import os
import signal
import stat
import subprocess
import threading
import time

import pytest

from repro.runtime import faults
from repro.sat.backends import (
    DEFAULT_SOLVER_NAMES,
    SOLVERS_ENV_VAR,
    DimacsSubprocessBackend,
    InternalBackend,
    discover_backends,
    terminate_process,
    validate_model,
)

# A fixed satisfiable CNF: (1 | 2) & (-1 | 2) — any model with 2=true.
SAT_CLAUSES = [[1, 2], [-1, 2]]
SAT_NUM_VARS = 2
# A fixed unsatisfiable CNF.
UNSAT_CLAUSES = [[1], [-1]]
UNSAT_NUM_VARS = 1


def make_script(tmp_path, name: str, body: str) -> str:
    """Write an executable shell script and return its absolute path."""
    path = tmp_path / name
    path.write_text("#!/bin/sh\n" + body)
    path.chmod(path.stat().st_mode | stat.S_IXUSR | stat.S_IXGRP)
    return str(path)


def assert_no_leaked_children(marker: str) -> None:
    """Scan /proc for any live process whose cmdline contains *marker*.

    The acceptance criterion for every race: no solver child outlives
    the call that spawned it.
    """
    deadline = time.monotonic() + 5.0
    while True:
        leaked = []
        for pid in os.listdir("/proc"):
            if not pid.isdigit():
                continue
            try:
                with open(f"/proc/{pid}/cmdline", "rb") as fp:
                    cmdline = fp.read().replace(b"\0", b" ").decode(
                        "utf-8", "replace"
                    )
            except OSError:
                continue
            if marker in cmdline:
                leaked.append((pid, cmdline))
        if not leaked:
            return
        # Zombies linger until reaped; give the reaper a moment before
        # declaring a leak.
        if time.monotonic() >= deadline:
            raise AssertionError(f"leaked solver processes: {leaked}")
        time.sleep(0.05)


@pytest.fixture
def fake_sat(tmp_path):
    """Claims SAT with a model satisfying SAT_CLAUSES."""
    return make_script(
        tmp_path, "fake-sat",
        'echo "s SATISFIABLE"\necho "v -1 2 0"\nexit 10\n',
    )


@pytest.fixture
def fake_unsat(tmp_path):
    return make_script(
        tmp_path, "fake-unsat", 'echo "s UNSATISFIABLE"\nexit 20\n'
    )


@pytest.fixture
def fake_hang(tmp_path):
    """Ignores SIGTERM and sleeps; only SIGKILL ends it."""
    return make_script(
        tmp_path, "fake-hang", "trap '' TERM\nsleep 60\n"
    )


@pytest.fixture
def fake_liar(tmp_path):
    """Claims SAT with a model that violates the clauses (2=false)."""
    return make_script(
        tmp_path, "fake-liar",
        'echo "s SATISFIABLE"\necho "v 1 -2 0"\nexit 10\n',
    )


@pytest.fixture
def fake_garbage(tmp_path):
    return make_script(
        tmp_path, "fake-garbage", 'echo "segmentation fault"\nexit 3\n'
    )


class TestValidateModel:
    def test_accepts_satisfying_model(self):
        assert validate_model(2, SAT_CLAUSES, [0, 0, 1])
        assert validate_model(2, SAT_CLAUSES, [0, 1, 1])

    def test_rejects_violating_model(self):
        assert not validate_model(2, SAT_CLAUSES, [0, 1, 0])

    def test_rejects_short_model(self):
        assert not validate_model(2, SAT_CLAUSES, [0, 1])

    def test_checks_assumptions(self):
        model = [0, 0, 1]
        assert validate_model(2, SAT_CLAUSES, model, assumptions=[2])
        assert not validate_model(2, SAT_CLAUSES, model, assumptions=[1])
        assert not validate_model(2, SAT_CLAUSES, model, assumptions=[-2])

    def test_rejects_assumption_outside_range(self):
        assert not validate_model(2, SAT_CLAUSES, [0, 0, 1], assumptions=[3])

    def test_empty_formula(self):
        assert validate_model(0, [], [0])


class TestInternalBackend:
    def test_sat(self):
        result = InternalBackend().solve(SAT_NUM_VARS, SAT_CLAUSES)
        assert result.answer is True
        assert result.outcome == "sat"
        assert result.model is not None
        assert validate_model(SAT_NUM_VARS, SAT_CLAUSES, result.model)
        assert result.backend == "internal"

    def test_unsat(self):
        result = InternalBackend().solve(UNSAT_NUM_VARS, UNSAT_CLAUSES)
        assert result.answer is False
        assert result.outcome == "unsat"
        assert result.model is None

    def test_assumptions(self):
        result = InternalBackend().solve(
            SAT_NUM_VARS, SAT_CLAUSES, assumptions=[-2]
        )
        assert result.answer is False

    def test_pre_set_cancel_is_unknown(self):
        cancel = threading.Event()
        cancel.set()
        result = InternalBackend().solve(
            SAT_NUM_VARS, SAT_CLAUSES, cancel=cancel
        )
        assert result.answer is None
        assert result.outcome == "unknown"

    def test_expired_deadline_is_timeout(self):
        result = InternalBackend().solve(
            SAT_NUM_VARS, SAT_CLAUSES, deadline=time.monotonic() - 1.0
        )
        assert result.answer is None
        assert result.outcome == "timeout"

    def test_wraps_live_solver(self):
        from repro.sat.solver import Solver

        solver = Solver()
        solver.new_vars(2)
        for clause in SAT_CLAUSES:
            solver.add_clause(clause)
        backend = InternalBackend(solver)
        result = backend.solve(SAT_NUM_VARS, SAT_CLAUSES)
        assert result.answer is True
        # The live solver's model is the backend's model.
        assert solver.model_value(2)


class TestSubprocessBackendLanes:
    """One test per fake-solver failure mode — every lane outcome."""

    def test_instant_sat(self, fake_sat):
        backend = DimacsSubprocessBackend([fake_sat], name="fake")
        result = backend.solve(SAT_NUM_VARS, SAT_CLAUSES)
        assert result.answer is True
        assert result.outcome == "sat"
        assert result.model == [0, 0, 1]
        assert_no_leaked_children(fake_sat)

    def test_instant_unsat(self, fake_unsat):
        backend = DimacsSubprocessBackend([fake_unsat], name="fake")
        result = backend.solve(UNSAT_NUM_VARS, UNSAT_CLAUSES)
        assert result.answer is False
        assert result.outcome == "unsat"
        assert_no_leaked_children(fake_unsat)

    def test_hang_hits_deadline_and_is_killed(self, fake_hang):
        backend = DimacsSubprocessBackend([fake_hang], name="fake", grace=0.2)
        start = time.monotonic()
        result = backend.solve(
            SAT_NUM_VARS, SAT_CLAUSES, deadline=time.monotonic() + 0.3
        )
        elapsed = time.monotonic() - start
        assert result.answer is None
        assert result.outcome == "timeout"
        # deadline (0.3s) + grace (0.2s) + slack, nowhere near sleep 60
        assert elapsed < 10.0
        assert_no_leaked_children(fake_hang)

    def test_hang_cancelled_and_killed(self, fake_hang):
        backend = DimacsSubprocessBackend([fake_hang], name="fake", grace=0.2)
        cancel = threading.Event()
        timer = threading.Timer(0.2, cancel.set)
        timer.start()
        try:
            result = backend.solve(SAT_NUM_VARS, SAT_CLAUSES, cancel=cancel)
        finally:
            timer.cancel()
        assert result.answer is None
        assert result.outcome == "unknown"
        assert_no_leaked_children(fake_hang)

    def test_lying_model_is_garbled(self, fake_liar):
        backend = DimacsSubprocessBackend([fake_liar], name="fake")
        result = backend.solve(SAT_NUM_VARS, SAT_CLAUSES)
        assert result.answer is None
        assert result.outcome == "garbled"
        assert "validation" in (result.detail or "")
        assert_no_leaked_children(fake_liar)

    def test_garbage_exit_is_crash(self, fake_garbage):
        backend = DimacsSubprocessBackend([fake_garbage], name="fake")
        result = backend.solve(SAT_NUM_VARS, SAT_CLAUSES)
        assert result.answer is None
        assert result.outcome == "crash"
        assert_no_leaked_children(fake_garbage)

    def test_status_exit_disagreement_is_garbled(self, tmp_path):
        script = make_script(
            tmp_path, "fake-confused", 'echo "s SATISFIABLE"\nexit 20\n'
        )
        backend = DimacsSubprocessBackend([script], name="fake")
        result = backend.solve(SAT_NUM_VARS, SAT_CLAUSES)
        assert result.answer is None
        assert result.outcome == "garbled"

    def test_bad_v_line_token_is_garbled(self, tmp_path):
        script = make_script(
            tmp_path, "fake-vline",
            'echo "s SATISFIABLE"\necho "v 1 spam 0"\nexit 10\n',
        )
        backend = DimacsSubprocessBackend([script], name="fake")
        result = backend.solve(SAT_NUM_VARS, SAT_CLAUSES)
        assert result.answer is None
        assert result.outcome == "garbled"

    def test_missing_binary_is_crash_not_exception(self, tmp_path):
        backend = DimacsSubprocessBackend(
            [str(tmp_path / "no-such-solver")], name="fake"
        )
        result = backend.solve(SAT_NUM_VARS, SAT_CLAUSES)
        assert result.answer is None
        assert result.outcome == "crash"

    def test_assumptions_become_units(self, fake_unsat, tmp_path):
        # A solver seeing assumption -2 as a unit clause must see an
        # UNSAT formula; the recorder script proves the unit was written.
        recorder = make_script(
            tmp_path, "recorder",
            f'cp "$1" {tmp_path}/seen.cnf\n'
            'echo "s UNSATISFIABLE"\nexit 20\n',
        )
        backend = DimacsSubprocessBackend([recorder], name="fake")
        result = backend.solve(
            SAT_NUM_VARS, SAT_CLAUSES, assumptions=[-2]
        )
        assert result.answer is False
        seen = (tmp_path / "seen.cnf").read_text()
        assert "-2 0" in seen

    def test_helper_variables_in_model_ignored(self, tmp_path):
        script = make_script(
            tmp_path, "fake-helpers",
            'echo "s SATISFIABLE"\necho "v -1 2 7 0"\nexit 10\n',
        )
        backend = DimacsSubprocessBackend([script], name="fake")
        result = backend.solve(SAT_NUM_VARS, SAT_CLAUSES)
        assert result.answer is True
        assert result.model == [0, 0, 1]


class TestBackendFaults:
    def setup_method(self):
        faults.reset()

    def teardown_method(self):
        faults.reset()

    def test_crash_fault_fires_before_spawn(self, fake_sat):
        backend = DimacsSubprocessBackend([fake_sat], name="fake")
        with faults.inject("sat.backend.crash"):
            result = backend.solve(SAT_NUM_VARS, SAT_CLAUSES)
        assert result.answer is None
        assert result.outcome == "crash"
        assert faults.fired_count("sat.backend.crash") == 1
        assert_no_leaked_children(fake_sat)

    def test_garble_fault_flips_the_model(self, fake_sat):
        backend = DimacsSubprocessBackend([fake_sat], name="fake")
        with faults.inject("sat.backend.garble"):
            result = backend.solve(SAT_NUM_VARS, SAT_CLAUSES)
        # The honest model had 2=true; garbled it fails validation.
        assert result.answer is None
        assert result.outcome == "garbled"
        assert faults.fired_count("sat.backend.garble") == 1


class TestTerminateProcess:
    def test_polite_child_gets_sigterm(self):
        proc = subprocess.Popen(
            ["sleep", "60"], start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        terminate_process(proc, grace=2.0)
        assert proc.poll() == -signal.SIGTERM

    def test_stubborn_child_gets_sigkill(self, fake_hang):
        proc = subprocess.Popen(
            [fake_hang, "ignored"], start_new_session=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        # Give the shell a beat to install its TERM trap.
        time.sleep(0.2)
        terminate_process(proc, grace=0.3)
        assert proc.poll() == -signal.SIGKILL
        assert_no_leaked_children(fake_hang)

    def test_already_dead_child_is_a_noop(self):
        proc = subprocess.Popen(
            ["true"], stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
        proc.wait()
        terminate_process(proc, grace=1.0)
        assert proc.poll() == 0


class TestDiscovery:
    def test_no_binaries_means_no_backends(self):
        assert discover_backends(environ={SOLVERS_ENV_VAR: ""}) == []

    def test_env_var_lists_commands(self, fake_sat, fake_unsat):
        backends = discover_backends(
            environ={SOLVERS_ENV_VAR: f"{fake_sat},{fake_unsat}"}
        )
        assert [b.name for b in backends] == ["fake-sat", "fake-unsat"]

    def test_missing_entries_are_skipped(self, fake_sat, tmp_path):
        spec = f"{tmp_path}/nonexistent,{fake_sat}"
        backends = discover_backends(environ={SOLVERS_ENV_VAR: spec})
        assert [b.name for b in backends] == ["fake-sat"]

    def test_command_arguments_survive(self, tmp_path):
        script = make_script(tmp_path, "argsolver", "exit 20\n")
        backends = discover_backends(
            environ={SOLVERS_ENV_VAR: f"{script} --quiet -t 8"}
        )
        assert len(backends) == 1
        assert backends[0].command == [script, "--quiet", "-t", "8"]

    def test_duplicate_names_are_disambiguated(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        a = make_script(tmp_path / "a", "solver", "exit 20\n")
        b = make_script(tmp_path / "b", "solver", "exit 20\n")
        backends = discover_backends(environ={SOLVERS_ENV_VAR: f"{a},{b}"})
        assert [backend.name for backend in backends] == ["solver", "solver-1"]

    def test_default_names_are_kissat_then_cadical(self):
        assert DEFAULT_SOLVER_NAMES == ("kissat", "cadical")

    def test_unset_env_probes_path(self, monkeypatch, tmp_path):
        # Simulate kissat on $PATH: the probe goes through shutil.which,
        # which reads the real environment's PATH.
        bin_dir = tmp_path / "bin"
        bin_dir.mkdir()
        kissat = bin_dir / "kissat"
        kissat.write_text("#!/bin/sh\nexit 20\n")
        kissat.chmod(0o755)
        monkeypatch.setenv("PATH", str(bin_dir))
        backends = discover_backends(environ={})
        assert [backend.name for backend in backends] == ["kissat"]

"""Tests for the SAT portfolio racer (repro.sat.portfolio).

The two load-bearing properties:

1. **Byte-identical degradation** — with zero external lanes, the
   portfolio is indistinguishable from calling the internal solver
   directly (same verdicts, same models, same conflict counts), checked
   differentially with Hypothesis.
2. **Untrusted lanes can't lie** — a crashed, hanging, or lying
   external solver never changes a verdict and never leaks a child
   process (asserted via ``/proc`` after each race).
"""

from __future__ import annotations

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import faults
from repro.runtime.budget import Budget
from repro.sat.backends import DimacsSubprocessBackend
from repro.sat.cnf import CnfBuilder
from repro.sat.portfolio import BACKEND_MODES, PortfolioSolver, resolve_backend
from repro.sat.solver import SAT, UNKNOWN, UNSAT, Solver

from .test_backends import (
    SAT_CLAUSES,
    SAT_NUM_VARS,
    UNSAT_CLAUSES,
    UNSAT_NUM_VARS,
    assert_no_leaked_children,
    fake_hang,  # noqa: F401 - fixture re-export
    fake_sat,  # noqa: F401 - fixture re-export
    fake_unsat,  # noqa: F401 - fixture re-export
    make_script,
)


def loaded_solver(num_vars: int, clauses) -> Solver:
    solver = Solver()
    solver.new_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    return solver


@st.composite
def cnf_instances(draw):
    num_vars = draw(st.integers(min_value=1, max_value=6))
    lits = st.integers(min_value=-num_vars, max_value=num_vars).filter(
        lambda lit: lit != 0
    )
    clauses = draw(
        st.lists(
            st.lists(lits, min_size=1, max_size=4), min_size=0, max_size=12
        )
    )
    return num_vars, clauses


class TestDegradedPath:
    """Zero external lanes: the race collapses to the bare solver."""

    @settings(max_examples=60, deadline=None)
    @given(cnf_instances())
    def test_differential_verdict_model_and_stats(self, instance):
        num_vars, clauses = instance
        bare = loaded_solver(num_vars, clauses)
        raced = loaded_solver(num_vars, clauses)

        expected = bare.solve()
        portfolio = PortfolioSolver(external=[])
        got = portfolio.solve(raced, clauses)

        assert got is expected
        assert raced.conflicts == bare.conflicts
        assert raced.decisions == bare.decisions
        assert raced.propagations == bare.propagations
        if expected is SAT:
            assert raced.model == bare.model

    def test_no_threads_spawned(self):
        before = threading.active_count()
        portfolio = PortfolioSolver(external=[])
        solver = loaded_solver(SAT_NUM_VARS, SAT_CLAUSES)
        assert portfolio.solve(solver, SAT_CLAUSES) is True
        assert threading.active_count() == before

    def test_events_account_the_degraded_lane(self):
        portfolio = PortfolioSolver(external=[])
        portfolio.solve(loaded_solver(SAT_NUM_VARS, SAT_CLAUSES), SAT_CLAUSES)
        portfolio.solve(
            loaded_solver(UNSAT_NUM_VARS, UNSAT_CLAUSES), UNSAT_CLAUSES
        )
        assert portfolio.events == {
            "internal:win-sat": 1,
            "internal:win-unsat": 1,
        }
        assert portfolio.races == 2

    def test_take_events_drains(self):
        portfolio = PortfolioSolver(external=[])
        portfolio.solve(loaded_solver(SAT_NUM_VARS, SAT_CLAUSES), SAT_CLAUSES)
        assert portfolio.take_events() == {"internal:win-sat": 1}
        assert portfolio.take_events() == {}


class TestRace:
    def setup_method(self):
        faults.reset()

    def teardown_method(self):
        faults.reset()

    def test_internal_wins_and_hanging_lane_is_killed(self, fake_hang):
        external = DimacsSubprocessBackend([fake_hang], name="hang", grace=0.2)
        portfolio = PortfolioSolver(external=[external])
        solver = loaded_solver(SAT_NUM_VARS, SAT_CLAUSES)
        answer = portfolio.solve(solver, SAT_CLAUSES)
        assert answer is True
        assert solver.model_value(2)
        assert portfolio.events.get("internal:win-sat") == 1
        assert portfolio.events.get("hang:unknown") == 1
        assert_no_leaked_children(fake_hang)

    def test_external_sat_win_installs_validated_model(self, fake_sat):
        external = DimacsSubprocessBackend([fake_sat], name="fake")
        portfolio = PortfolioSolver(external=[external])
        solver = loaded_solver(SAT_NUM_VARS, SAT_CLAUSES)
        with faults.inject("solver.timeout"):
            answer = portfolio.solve(solver, SAT_CLAUSES)
        assert answer is True
        # The winning external model was installed into the solver, so
        # extraction code works as if the internal lane had produced it.
        assert solver.model == [0, 0, 1]
        assert solver.model_value(2)
        assert portfolio.events.get("fake:win-sat") == 1
        assert portfolio.events.get("internal:unknown") == 1

    def test_external_unsat_win(self, fake_unsat):
        external = DimacsSubprocessBackend([fake_unsat], name="fake")
        portfolio = PortfolioSolver(external=[external])
        solver = loaded_solver(UNSAT_NUM_VARS, UNSAT_CLAUSES)
        with faults.inject("solver.timeout"):
            answer = portfolio.solve(solver, UNSAT_CLAUSES)
        assert answer is False
        assert portfolio.events.get("fake:win-unsat") == 1

    def test_all_lanes_unknown_returns_unknown(self, tmp_path):
        script = make_script(
            tmp_path, "fake-unknown", 'echo "s UNKNOWN"\nexit 0\n'
        )
        external = DimacsSubprocessBackend([script], name="fake")
        portfolio = PortfolioSolver(external=[external])
        solver = loaded_solver(SAT_NUM_VARS, SAT_CLAUSES)
        with faults.inject("solver.timeout"):
            answer = portfolio.solve(solver, SAT_CLAUSES)
        assert answer is UNKNOWN
        assert portfolio.events.get("fake:unknown") == 1


class TestChaos:
    """A misbehaving external lane may never change the verdict."""

    def setup_method(self):
        faults.reset()

    def teardown_method(self):
        faults.reset()

    def test_crashed_lane_does_not_change_verdict(self, fake_sat):
        external = DimacsSubprocessBackend([fake_sat], name="fake")
        portfolio = PortfolioSolver(external=[external])
        solver = loaded_solver(SAT_NUM_VARS, SAT_CLAUSES)
        with faults.inject("sat.backend.crash"):
            answer = portfolio.solve(solver, SAT_CLAUSES)
        assert answer is True  # internal lane still delivers
        assert portfolio.events.get("fake:crash") == 1
        assert portfolio.events.get("internal:win-sat") == 1
        assert_no_leaked_children(fake_sat)

    def test_garbled_lane_never_wins(self, fake_sat):
        external = DimacsSubprocessBackend([fake_sat], name="fake")
        portfolio = PortfolioSolver(external=[external])
        solver = loaded_solver(SAT_NUM_VARS, SAT_CLAUSES)
        # Internal is muzzled AND the external model is corrupted: the
        # race must end UNKNOWN rather than trust the lying lane.
        with faults.inject("solver.timeout"), faults.inject(
            "sat.backend.garble"
        ):
            answer = portfolio.solve(solver, SAT_CLAUSES)
        assert answer is UNKNOWN
        assert portfolio.events.get("fake:garbled") == 1
        assert_no_leaked_children(fake_sat)

    def test_lying_sat_claim_on_unsat_formula_is_rejected(self, tmp_path):
        # Claims SAT on an UNSAT formula; validation must reject it and
        # the internal lane's proof must stand.
        liar = make_script(
            tmp_path, "fake-liar-unsat",
            'echo "s SATISFIABLE"\necho "v 1 0"\nexit 10\n',
        )
        external = DimacsSubprocessBackend([liar], name="liar")
        portfolio = PortfolioSolver(external=[external])
        solver = loaded_solver(UNSAT_NUM_VARS, UNSAT_CLAUSES)
        answer = portfolio.solve(solver, UNSAT_CLAUSES)
        assert answer is False
        assert "liar:win-sat" not in portfolio.events
        assert_no_leaked_children(liar)

    def test_hanging_lane_cannot_stall_past_budget(self, fake_hang):
        external = DimacsSubprocessBackend([fake_hang], name="hang", grace=0.2)
        budget = Budget(deadline=time.monotonic() + 0.5)
        portfolio = PortfolioSolver(external=[external], budget=budget)
        # Muzzle the internal lane so only the hanging lane remains.
        solver = loaded_solver(SAT_NUM_VARS, SAT_CLAUSES)
        start = time.monotonic()
        with faults.inject("solver.timeout"):
            answer = portfolio.solve(solver, SAT_CLAUSES)
        elapsed = time.monotonic() - start
        assert answer is UNKNOWN
        assert elapsed < 10.0  # nowhere near the script's sleep 60
        assert_no_leaked_children(fake_hang)


class TestBudgetClamp:
    def test_expired_budget_short_circuits(self):
        budget = Budget(deadline=time.monotonic() - 1.0)
        portfolio = PortfolioSolver(external=[], budget=budget)
        solver = loaded_solver(SAT_NUM_VARS, SAT_CLAUSES)
        assert portfolio.solve(solver, SAT_CLAUSES) is UNKNOWN

    def test_budget_tightens_caller_deadline(self):
        budget = Budget(deadline=100.0)
        portfolio = PortfolioSolver(external=[], budget=budget)
        assert portfolio._clamped_deadline(None) == 100.0
        assert portfolio._clamped_deadline(50.0) == 50.0
        assert portfolio._clamped_deadline(200.0) == 100.0

    def test_no_budget_passes_deadline_through(self):
        portfolio = PortfolioSolver(external=[])
        assert portfolio._clamped_deadline(None) is None
        assert portfolio._clamped_deadline(42.0) == 42.0

    def test_cnf_builder_clamps_to_budget(self):
        budget = Budget(deadline=time.monotonic() - 1.0)
        builder = CnfBuilder(budget=budget)
        a = builder.new_var()
        builder.add_clause([a])
        assert builder.solve() is UNKNOWN


class TestSolverCancel:
    def test_pre_set_cancel_returns_unknown(self):
        solver = loaded_solver(SAT_NUM_VARS, SAT_CLAUSES)
        cancel = threading.Event()
        cancel.set()
        assert solver.solve(cancel=cancel) is UNKNOWN
        # The solver survives cancellation and can be reused.
        assert solver.solve() is SAT

    def test_cancel_mid_search_stops_promptly(self):
        # Pigeonhole(8) takes far longer than the cancel delay for the
        # pure-python CDCL; a prompt UNKNOWN proves the conflict-loop
        # poll works.
        from .test_solver import pigeonhole

        solver = pigeonhole(8)
        cancel = threading.Event()
        timer = threading.Timer(0.2, cancel.set)
        timer.start()
        try:
            answer = solver.solve(cancel=cancel)
        finally:
            timer.cancel()
        assert answer is UNKNOWN


class TestCnfBuilderMirroring:
    def test_no_portfolio_means_no_mirroring(self):
        builder = CnfBuilder()
        a, b = builder.new_vars(2)
        builder.add_clause([a, b])
        builder.maj_gate(builder.new_var(), a, b, a)
        assert builder.clauses == []

    def test_portfolio_mirrors_every_clause(self):
        builder = CnfBuilder(portfolio=PortfolioSolver(external=[]))
        a, b = builder.new_vars(2)
        builder.add_clause([a, b])
        builder.add_unit(-a)
        out = builder.new_var()
        builder.maj_gate(out, a, b, b)
        # 1 + 1 + 6 maj clauses, mirrored in insertion order
        assert len(builder.clauses) == 8
        assert builder.clauses[0] == [a, b]
        assert builder.clauses[1] == [-a]

    def test_builder_solve_routes_through_portfolio(self):
        portfolio = PortfolioSolver(external=[])
        builder = CnfBuilder(portfolio=portfolio)
        a = builder.new_var()
        builder.add_unit(a)
        assert builder.solve() is True
        assert builder.value(a)
        assert portfolio.races == 1


class TestResolveBackend:
    def test_internal_is_none(self):
        assert resolve_backend("internal") is None

    def test_auto_without_binaries_is_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_SOLVERS", "")
        assert resolve_backend("auto") is None

    def test_auto_with_binary_is_a_portfolio(self, monkeypatch, fake_sat):
        monkeypatch.setenv("REPRO_SAT_SOLVERS", fake_sat)
        portfolio = resolve_backend("auto")
        assert isinstance(portfolio, PortfolioSolver)
        assert portfolio.has_external

    def test_portfolio_without_binaries_degrades(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_SOLVERS", "")
        portfolio = resolve_backend("portfolio")
        assert isinstance(portfolio, PortfolioSolver)
        assert not portfolio.has_external
        assert portfolio.lane_names() == ["internal"]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend("fastest")

    def test_modes_vocabulary(self):
        assert BACKEND_MODES == ("auto", "internal", "portfolio")


class TestEndToEnd:
    """The portfolio threaded through the real SAT consumers."""

    def test_cec_portfolio_matches_internal(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_SOLVERS", "")
        from repro.core.mig import Mig, signal_not
        from repro.sat.cec import check_equivalence_sat

        m1 = Mig(2)
        a, b = m1.pi_signals()
        m1.add_po(m1.xor(a, b))
        m2 = Mig(2)
        a, b = m2.pi_signals()
        m2.add_po(m2.and_(m2.or_(a, b), signal_not(m2.and_(a, b))))

        plain = check_equivalence_sat(m1, m2)
        raced = check_equivalence_sat(m1, m2, sat_backend="portfolio")
        assert plain.equivalent is raced.equivalent is True
        assert plain.backend_events == {}
        assert raced.backend_events.get("internal:win-unsat", 0) >= 1

    def test_cec_counterexample_survives_portfolio(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_SOLVERS", "")
        from repro.core.mig import Mig
        from repro.sat.cec import check_equivalence_sat

        m1 = Mig(2)
        a, b = m1.pi_signals()
        m1.add_po(m1.xor(a, b))
        m3 = Mig(2)
        a, b = m3.pi_signals()
        m3.add_po(m3.or_(a, b))
        result = check_equivalence_sat(m1, m3, sat_backend="portfolio")
        assert result.equivalent is False
        assert result.counterexample == {"x0": True, "x1": True}

    def test_exact_synthesis_portfolio_matches_internal(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_SOLVERS", "")
        from repro.exact.synthesis import ExactSynthesizer

        # Disable the witness-table shortcut so the SAT engine actually
        # runs; x & y stays a milliseconds-scale instance.
        plain = ExactSynthesizer(
            conflict_budget=10000, use_lower_bound=False
        ).synthesize(0x8, 2)
        raced = ExactSynthesizer(
            conflict_budget=10000, use_lower_bound=False,
            sat_backend="portfolio",
        ).synthesize(0x8, 2)
        assert plain.size == raced.size == 1
        assert plain.proven and raced.proven
        assert plain.conflicts == raced.conflicts
        assert plain.backend_events == {}
        assert raced.backend_events  # the degraded lane was accounted

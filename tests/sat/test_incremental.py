"""Incremental-use regression tests for the SAT solver.

The fraig pass exposed a soundness bug: a solve that returned
UNSAT-under-assumptions used to leave the assumption trail in place, so a
following ``add_clause`` could propagate at a stale level and poison the
solver into permanent UNSAT.  These tests pin the fixed behavior:
interleaved clause addition and assumption solving must always agree with
a fresh-solver ground truth.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.solver import Solver


def brute(num_vars: int, clauses: list[list[int]], assumps: list[int]) -> bool:
    for bits in range(1 << num_vars):
        if all(
            any((bits >> (abs(l) - 1)) & 1 == (1 if l > 0 else 0) for l in cl)
            for cl in clauses
        ) and all((bits >> (abs(l) - 1)) & 1 == (1 if l > 0 else 0) for l in assumps):
            return True
    return False


class TestInterleavedUse:
    @given(st.integers(min_value=0, max_value=10000))
    @settings(max_examples=60, deadline=None)
    def test_random_incremental_sessions(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 8)
        solver = Solver()
        solver.new_vars(n)
        clauses: list[list[int]] = []
        for _ in range(rng.randint(2, 5)):
            for _ in range(rng.randint(1, 7)):
                clause = [
                    v if rng.random() < 0.5 else -v
                    for v in rng.sample(range(1, n + 1), rng.randint(1, 3))
                ]
                clauses.append(clause)
                solver.add_clause(clause)
            assumps = [
                v if rng.random() < 0.5 else -v
                for v in rng.sample(range(1, n + 1), rng.randint(0, 3))
            ]
            got = solver.solve(assumptions=assumps)
            assert got == brute(n, clauses, assumps)
            if got:
                for clause in clauses:
                    assert any(solver.model_value(l) for l in clause)
                for lit in assumps:
                    assert solver.model_value(lit)

    def test_unsat_assumptions_do_not_poison(self):
        """The exact scenario of the fraig bug."""
        solver = Solver()
        a, b, c = solver.new_vars(3)
        solver.add_clause([a, b])
        assert solver.solve(assumptions=[-a, -b]) is False
        # Clause addition immediately after an assumption-UNSAT answer.
        solver.add_clause([c])
        solver.add_clause([-c, a])
        assert solver.solve() is True
        assert solver.model_value(a) and solver.model_value(c)
        # And with satisfiable assumptions again:
        assert solver.solve(assumptions=[b]) is True

    def test_unit_after_assumption_unsat_is_permanent(self):
        solver = Solver()
        a, b = solver.new_vars(2)
        solver.add_clause([a, b])
        assert solver.solve(assumptions=[-a, -b]) is False
        solver.add_clause([-b])  # unit at root, must persist
        assert solver.solve() is True
        assert not solver.model_value(b)
        assert solver.model_value(a)
        assert solver.solve(assumptions=[b]) is False

    def test_alternating_sat_unsat_assumptions(self):
        solver = Solver()
        a, b = solver.new_vars(2)
        solver.add_clause([a, b])
        for _ in range(10):
            assert solver.solve(assumptions=[-a]) is True
            assert solver.model_value(b)
            assert solver.solve(assumptions=[-a, -b]) is False
        assert solver.solve() is True

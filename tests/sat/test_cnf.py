"""Tests for the CNF builder's gate and cardinality encodings."""

from __future__ import annotations

from itertools import product

from repro.sat.cnf import CnfBuilder


def enumerate_models(builder: CnfBuilder, variables: list[int]) -> set[tuple[bool, ...]]:
    """All models of the accumulated formula projected onto *variables*."""
    models = set()
    solver = builder.solver
    while solver.solve() is True:
        assignment = tuple(solver.model_value(v) for v in variables)
        models.add(assignment)
        # Block this assignment.
        solver.add_clause([-v if solver.model_value(v) else v for v in variables])
    return models


class TestGateEncodings:
    def test_maj_gate(self):
        b = CnfBuilder()
        out, x, y, z = b.new_vars(4)
        b.maj_gate(out, x, y, z)
        models = enumerate_models(b, [x, y, z, out])
        assert len(models) == 8
        for vx, vy, vz, vo in models:
            assert vo == (int(vx) + int(vy) + int(vz) >= 2)

    def test_xor_gate(self):
        b = CnfBuilder()
        out, x, y = b.new_vars(3)
        b.xor_gate(out, x, y)
        for vx, vy, vo in enumerate_models(b, [x, y, out]):
            assert vo == (vx != vy)

    def test_and_or_gates(self):
        b = CnfBuilder()
        o1, o2, x, y, z = b.new_vars(5)
        b.and_gate(o1, [x, y, z])
        b.or_gate(o2, [x, y, z])
        for vx, vy, vz, v1, v2 in enumerate_models(b, [x, y, z, o1, o2]):
            assert v1 == (vx and vy and vz)
            assert v2 == (vx or vy or vz)

    def test_mux_gate(self):
        b = CnfBuilder()
        out, sel, t, e = b.new_vars(4)
        b.mux_gate(out, sel, t, e)
        for vs, vt, ve, vo in enumerate_models(b, [sel, t, e, out]):
            assert vo == (vt if vs else ve)

    def test_iff_and_implies(self):
        b = CnfBuilder()
        x, y = b.new_vars(2)
        b.iff(x, y)
        models = enumerate_models(b, [x, y])
        assert models == {(False, False), (True, True)}


class TestCardinality:
    def test_exactly_one(self):
        b = CnfBuilder()
        vs = b.new_vars(4)
        b.exactly_one(vs)
        models = enumerate_models(b, vs)
        assert len(models) == 4
        for model in models:
            assert sum(model) == 1

    def test_at_most_one_allows_zero(self):
        b = CnfBuilder()
        vs = b.new_vars(3)
        b.at_most_one(vs)
        models = enumerate_models(b, vs)
        assert all(sum(m) <= 1 for m in models)
        assert (False, False, False) in models

    def test_at_least_one(self):
        b = CnfBuilder()
        vs = b.new_vars(3)
        b.at_least_one(vs)
        models = enumerate_models(b, vs)
        assert len(models) == 7
        assert all(any(m) for m in models)

    def test_implies_clause(self):
        b = CnfBuilder()
        a, x, y = b.new_vars(3)
        b.implies_clause(a, [x, y])
        b.add_unit(a)
        models = enumerate_models(b, [x, y])
        assert (False, False) not in models


class TestUnits:
    def test_add_unit_forces_value(self):
        b = CnfBuilder()
        x = b.new_var()
        b.add_unit(-x)
        assert b.solve() is True
        assert not b.value(x)

"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestStats:
    def test_stats_generate(self, capsys):
        assert main(["stats", "--generate", "adder", "--width", "8"]) == 0
        out = capsys.readouterr().out
        assert "16 PIs" in out and "size" in out

    def test_unknown_generator(self):
        with pytest.raises(SystemExit):
            main(["stats", "--generate", "nonexistent"])

    def test_missing_input(self):
        with pytest.raises(SystemExit):
            main(["stats"])


class TestOptimize:
    def test_optimize_with_verify(self, capsys):
        code = main(
            ["optimize", "--generate", "square-root", "--width", "6",
             "--variant", "BF", "--verify"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "equivalence: OK" in out

    def test_optimize_writes_blif(self, capsys, tmp_path):
        out_file = tmp_path / "out.blif"
        code = main(
            ["optimize", "--generate", "adder", "--width", "6",
             "--variant", "TF", "-o", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        from repro.io.blif import read_blif

        with open(out_file) as fp:
            mig = read_blif(fp)
        assert mig.num_pis == 12

    def test_optimize_writes_verilog(self, tmp_path):
        out_file = tmp_path / "out.v"
        assert main(
            ["optimize", "--generate", "adder", "--width", "4", "-o", str(out_file)]
        ) == 0
        assert "module" in out_file.read_text()

    def test_optimize_from_blif(self, capsys, tmp_path, full_adder):
        from repro.io.blif import write_blif

        path = tmp_path / "fa.blif"
        with open(path, "w") as fp:
            write_blif(full_adder, fp)
        assert main(["optimize", "--blif", str(path), "--verify"]) == 0

    def test_depth_opt_baseline(self, capsys):
        assert main(
            ["optimize", "--generate", "adder", "--width", "8", "--depth-opt"]
        ) == 0


class TestMap:
    def test_map_unoptimized(self, capsys):
        assert main(["map", "--generate", "sine", "--width", "6"]) == 0
        assert "area=" in capsys.readouterr().out

    def test_map_with_variant(self, capsys):
        assert main(
            ["map", "--generate", "square", "--width", "5", "--variant", "BF"]
        ) == 0


class TestExact:
    def test_exact_xor(self, capsys):
        assert main(["exact", "--tt", "0x6", "--vars", "2"]) == 0
        out = capsys.readouterr().out
        assert "size 3" in out and "proven minimal" in out

    def test_exact_budget_failure(self, capsys):
        code = main(["exact", "--tt", "0x1668", "--vars", "4", "--budget", "10"])
        assert code == 1


class TestFlow:
    def test_flow_with_verify(self, capsys):
        code = main(
            ["flow", "--generate", "square-root", "--width", "6",
             "--script", "BF,TFD,fraig", "--verify"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "equivalence: OK" in out
        assert "final:" in out

    def test_flow_writes_bench(self, tmp_path):
        out_file = tmp_path / "out.bench"
        assert main(
            ["flow", "--generate", "adder", "--width", "4",
             "--script", "strash", "-o", str(out_file)]
        ) == 0
        text = out_file.read_text()
        assert "INPUT(" in text and "OUTPUT(" in text

    def test_flow_from_bench_file(self, tmp_path, full_adder):
        from repro.io.bench import write_bench

        path = tmp_path / "fa.bench"
        with open(path, "w") as fp:
            write_bench(full_adder, fp)
        assert main(["flow", "--bench", str(path), "--script", "BF", "--verify"]) == 0

    def test_flow_bad_step(self, capsys):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            main(["flow", "--generate", "adder", "--width", "4",
                  "--script", "nonsense"])

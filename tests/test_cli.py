"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestStats:
    def test_stats_generate(self, capsys):
        assert main(["stats", "--generate", "adder", "--width", "8"]) == 0
        out = capsys.readouterr().out
        assert "16 PIs" in out and "size" in out

    def test_unknown_generator(self):
        with pytest.raises(SystemExit):
            main(["stats", "--generate", "nonexistent"])

    def test_missing_input(self):
        with pytest.raises(SystemExit):
            main(["stats"])


class TestOptimize:
    def test_optimize_with_verify(self, capsys):
        code = main(
            ["optimize", "--generate", "square-root", "--width", "6",
             "--variant", "BF", "--verify"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "equivalence: OK" in out

    def test_optimize_writes_blif(self, capsys, tmp_path):
        out_file = tmp_path / "out.blif"
        code = main(
            ["optimize", "--generate", "adder", "--width", "6",
             "--variant", "TF", "-o", str(out_file)]
        )
        assert code == 0
        assert out_file.exists()
        from repro.io.blif import read_blif

        with open(out_file) as fp:
            mig = read_blif(fp)
        assert mig.num_pis == 12

    def test_optimize_writes_verilog(self, tmp_path):
        out_file = tmp_path / "out.v"
        assert main(
            ["optimize", "--generate", "adder", "--width", "4", "-o", str(out_file)]
        ) == 0
        assert "module" in out_file.read_text()

    def test_optimize_from_blif(self, capsys, tmp_path, full_adder):
        from repro.io.blif import write_blif

        path = tmp_path / "fa.blif"
        with open(path, "w") as fp:
            write_blif(full_adder, fp)
        assert main(["optimize", "--blif", str(path), "--verify"]) == 0

    def test_depth_opt_baseline(self, capsys):
        assert main(
            ["optimize", "--generate", "adder", "--width", "8", "--depth-opt"]
        ) == 0


class TestMap:
    def test_map_unoptimized(self, capsys):
        assert main(["map", "--generate", "sine", "--width", "6"]) == 0
        assert "area=" in capsys.readouterr().out

    def test_map_with_variant(self, capsys):
        assert main(
            ["map", "--generate", "square", "--width", "5", "--variant", "BF"]
        ) == 0


class TestExact:
    def test_exact_xor(self, capsys):
        assert main(["exact", "--tt", "0x6", "--vars", "2"]) == 0
        out = capsys.readouterr().out
        assert "size 3" in out and "proven minimal" in out

    def test_exact_budget_failure(self, capsys):
        code = main(["exact", "--tt", "0x1668", "--vars", "4", "--budget", "10"])
        assert code == 1


class TestFlow:
    def test_flow_with_verify(self, capsys):
        code = main(
            ["flow", "--generate", "square-root", "--width", "6",
             "--script", "BF,TFD,fraig", "--verify"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "equivalence: OK" in out
        assert "final:" in out

    def test_flow_writes_bench(self, tmp_path):
        out_file = tmp_path / "out.bench"
        assert main(
            ["flow", "--generate", "adder", "--width", "4",
             "--script", "strash", "-o", str(out_file)]
        ) == 0
        text = out_file.read_text()
        assert "INPUT(" in text and "OUTPUT(" in text

    def test_flow_from_bench_file(self, tmp_path, full_adder):
        from repro.io.bench import write_bench

        path = tmp_path / "fa.bench"
        with open(path, "w") as fp:
            write_bench(full_adder, fp)
        assert main(["flow", "--bench", str(path), "--script", "BF", "--verify"]) == 0

    def test_flow_bad_step(self, capsys):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            main(["flow", "--generate", "adder", "--width", "4",
                  "--script", "nonsense"])


class TestBatch:
    def test_batch_runs_and_writes_outputs(self, capsys, tmp_path):
        workdir = tmp_path / "batch"
        code = main(
            ["batch", "--generate", "adder", "--width", "6",
             "--jobs", "2", "--backoff", "0.05",
             "--workdir", str(workdir)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "1/1 done" in out
        assert (workdir / "outputs" / "adder-w6.blif").exists()
        assert (workdir / "journal.jsonl").exists()
        assert (workdir / "report.json").exists()

    def test_batch_refuses_to_clobber_a_journal(self, capsys, tmp_path):
        workdir = tmp_path / "batch"
        workdir.mkdir()
        (workdir / "journal.jsonl").write_text("")
        with pytest.raises(SystemExit, match="resume"):
            main(["batch", "--generate", "adder", "--width", "6",
                  "--workdir", str(workdir)])

    def test_batch_requires_circuits(self, tmp_path):
        with pytest.raises(SystemExit, match="generate"):
            main(["batch", "--workdir", str(tmp_path / "batch")])

    def test_batch_resume_completed_is_noop(self, capsys, tmp_path):
        workdir = tmp_path / "batch"
        assert main(
            ["batch", "--generate", "adder", "--width", "6",
             "--workdir", str(workdir), "--backoff", "0.05"]
        ) == 0
        capsys.readouterr()
        assert main(["batch", "--workdir", str(workdir), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "1/1 done" in out

    def test_batch_nonzero_exit_on_quarantine(self, capsys, tmp_path):
        code = main(
            ["batch", "--blif", str(tmp_path / "missing.blif"),
             "--workdir", str(tmp_path / "batch"),
             "--max-attempts", "1", "--backoff", "0.01"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "quarantined" in out

    def test_batch_report_dump(self, capsys, tmp_path):
        import json

        report_path = tmp_path / "report.json"
        assert main(
            ["batch", "--generate", "adder", "--width", "6",
             "--workdir", str(tmp_path / "batch"), "--backoff", "0.05",
             "--report", str(report_path)]
        ) == 0
        payload = json.loads(report_path.read_text())
        assert payload["done"] == 1
        assert payload["jobs"][0]["job_id"] == "adder-w6"


class TestSweep:
    def _spec(self, tmp_path):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "cli-sweep",
            "instances": [
                {"generate": "adder", "width": 6},
                {"generate": "max", "width": 6},
            ],
            "verify": "sim",
            "time_limit": 60,
        }))
        return spec_path

    def test_sweep_runs_and_reports(self, capsys, tmp_path):
        import json

        workdir = tmp_path / "sweep"
        matrix = tmp_path / "MATRIX.jsonl"
        report_path = tmp_path / "report.json"
        code = main(
            ["sweep", "--workdir", str(workdir),
             "--spec", str(self._spec(tmp_path)),
             "--shards", "2", "--backoff", "0.05", "--grace", "1",
             "--matrix", str(matrix), "--report", str(report_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2/2 done" in out
        assert "shard h0" in out and "shard h1" in out
        assert len(matrix.read_text().splitlines()) == 2
        payload = json.loads(report_path.read_text())
        assert payload["done"] == 2
        assert set(payload["shards"]) == {"h0", "h1"}

    def test_sweep_requires_spec_or_resume(self, tmp_path):
        with pytest.raises(SystemExit, match="spec"):
            main(["sweep", "--workdir", str(tmp_path / "sweep")])

    def test_sweep_rejects_bad_spec(self, tmp_path):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text('{"name": "x", "instances": []}')
        with pytest.raises(SystemExit, match="bad sweep spec"):
            main(["sweep", "--workdir", str(tmp_path / "sweep"),
                  "--spec", str(spec_path)])

    def test_sweep_refuses_to_clobber_state(self, capsys, tmp_path):
        workdir = tmp_path / "sweep"
        spec_path = self._spec(tmp_path)
        assert main(
            ["sweep", "--workdir", str(workdir), "--spec", str(spec_path),
             "--backoff", "0.05", "--grace", "1"]
        ) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="resume"):
            main(["sweep", "--workdir", str(workdir),
                  "--spec", str(spec_path)])

    def test_shard_flag_rejects_explicit_circuits(self, tmp_path):
        with pytest.raises(SystemExit, match="pre-submitted"):
            main(["batch", "--shard", "--generate", "adder",
                  "--workdir", str(tmp_path / "shard")])

"""End-to-end integration tests: the full paper pipeline.

generate benchmark -> algebraic depth optimization (baseline, refs [3,4])
-> functional hashing (each variant) -> technology mapping, with
functional equivalence verified at every step.
"""

from __future__ import annotations

import pytest

from repro.core.simulate import check_equivalence
from repro.generators import epfl
from repro.mapping.mapper import map_mig
from repro.opt.depth_opt import optimize_depth
from repro.opt.size_opt import strash_rebuild
from repro.rewriting.engine import functional_hashing
from repro.sat.cec import check_equivalence_sat


class TestFullPipeline:
    @pytest.mark.parametrize("variant", ["TF", "T", "TFD", "TD", "BF"])
    def test_paper_flow_on_adder(self, db, variant):
        mig = epfl.adder(10)
        baseline = optimize_depth(mig)
        assert check_equivalence(mig, baseline)
        optimized = functional_hashing(baseline, db, variant)
        assert check_equivalence(baseline, optimized)
        mapped = map_mig(optimized)
        assert mapped.num_cells > 0

    def test_bf_reduces_sqrt(self, db):
        """The headline effect: BF reduces size on a digit-recurrence circuit."""
        mig = epfl.square_root(8)
        optimized = functional_hashing(mig, db, "BF")
        assert optimized.num_gates < mig.num_gates
        assert check_equivalence(mig, optimized)

    def test_depth_preserving_keeps_depth_on_sine(self, db):
        mig = epfl.sine(8)
        optimized = functional_hashing(mig, db, "TFD")
        assert optimized.depth() <= mig.depth()
        assert check_equivalence(mig, optimized)

    def test_sat_cec_agrees_with_simulation(self, db):
        mig = epfl.multiplier(4)
        optimized = functional_hashing(mig, db, "TF")
        sim_ok = check_equivalence(mig, optimized)
        sat = check_equivalence_sat(mig, optimized, conflict_budget=500000)
        assert sim_ok and sat.equivalent is True

    def test_chained_variants(self, db):
        """Running several variants in sequence keeps improving or holds."""
        mig = epfl.log2(8)
        current = mig
        for variant in ("TF", "BF", "TFD"):
            nxt = functional_hashing(current, db, variant)
            assert check_equivalence(current, nxt)
            assert nxt.num_gates <= current.num_gates
            current = nxt

    def test_strash_after_rewrite_is_stable(self, db):
        mig = epfl.square(6)
        optimized = functional_hashing(mig, db, "BF")
        rebuilt = strash_rebuild(optimized)
        assert rebuilt.num_gates == optimized.num_gates


class TestRoundtripThroughFormats:
    def test_blif_verilog_aiger_chain(self, db, tmp_path):
        import io

        from repro.aig.convert import aig_to_mig, mig_to_aig
        from repro.io.aiger import read_aag, write_aag
        from repro.io.blif import read_blif, write_blif

        mig = epfl.max4(5)
        optimized = functional_hashing(mig, db, "BF")
        # BLIF roundtrip
        buf = io.StringIO()
        write_blif(optimized, buf)
        buf.seek(0)
        back = read_blif(buf)
        assert check_equivalence(optimized, back)
        # AIGER roundtrip through the AIG view
        aig = mig_to_aig(optimized)
        abuf = io.StringIO()
        write_aag(aig, abuf)
        abuf.seek(0)
        back2 = aig_to_mig(read_aag(abuf))
        assert check_equivalence(optimized, back2)

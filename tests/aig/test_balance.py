"""Tests for AIG balancing (tree-height reduction)."""

from __future__ import annotations

from repro.aig.aig import Aig
from repro.aig.balance import balance
from repro.aig.convert import aig_to_mig, mig_to_aig
from repro.core.simulate import check_equivalence


def and_chain(width: int) -> Aig:
    aig = Aig(width)
    sigs = aig.pi_signals()
    acc = sigs[0]
    for s in sigs[1:]:
        acc = aig.and_(acc, s)
    aig.add_po(acc)
    return aig


class TestBalance:
    def test_chain_becomes_logarithmic(self):
        aig = and_chain(8)
        assert aig.depth() == 7
        balanced = balance(aig)
        assert balanced.depth() == 3
        assert balanced.simulate() == aig.simulate()

    def test_uneven_chain(self):
        aig = and_chain(11)
        balanced = balance(aig)
        assert balanced.depth() == 4  # ceil(log2(11))
        assert balanced.simulate() == aig.simulate()

    def test_preserves_multi_output_functions(self, suite_small):
        for mig in suite_small[:3]:
            aig = mig_to_aig(mig)
            balanced = balance(aig)
            back = aig_to_mig(balanced)
            assert check_equivalence(mig, back), mig.name

    def test_never_deepens(self, suite_small):
        for mig in suite_small[:3]:
            aig = mig_to_aig(mig)
            assert balance(aig).depth() <= aig.depth()

    def test_respects_complemented_boundaries(self):
        """OR trees (complemented ANDs) balance through De Morgan levels."""
        aig = Aig(4)
        a, b, c, d = aig.pi_signals()
        aig.add_po(aig.or_(aig.or_(aig.or_(a, b), c), d))
        balanced = balance(aig)
        assert balanced.simulate() == aig.simulate()

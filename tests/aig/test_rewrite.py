"""Tests for DAG-aware AIG rewriting (the ref. [6] baseline)."""

from __future__ import annotations

import random

import pytest

from repro.aig.aig import Aig
from repro.aig.convert import aig_to_mig, mig_to_aig
from repro.aig.cuts import aig_cut_cone, aig_cut_function, enumerate_aig_cuts
from repro.aig.rewrite import aig_class_cost, build_function_into_aig, rewrite_aig
from repro.core.simulate import check_equivalence
from repro.core.truth_table import tt_var


class TestAigCuts:
    def test_cut_enumeration_basics(self):
        aig = Aig(3)
        a, b, c = aig.pi_signals()
        g = aig.and_(aig.and_(a, b), c)
        aig.add_po(g)
        cuts = enumerate_aig_cuts(aig, 4)
        root = g >> 1
        assert (1, 2, 3) in cuts[root]
        assert (root,) in cuts[root]

    def test_cut_function_matches_sim(self):
        from repro.core.truth_table import tt_mask

        aig = Aig(3)
        a, b, c = aig.pi_signals()
        g = aig.xor(aig.and_(a, b), c)
        aig.add_po(g)
        tt = aig_cut_function(aig, g >> 1, (1, 2, 3))
        if g & 1:  # the xor construction may return a complemented signal
            tt ^= tt_mask(3)
        expected = (tt_var(3, 0) & tt_var(3, 1)) ^ tt_var(3, 2)
        assert tt == expected

    def test_cut_cone_detects_invalid(self):
        aig = Aig(2)
        a, b = aig.pi_signals()
        g = aig.and_(a, b)
        aig.add_po(g)
        with pytest.raises(ValueError):
            aig_cut_cone(aig, g >> 1, (1,))


class TestClassStructures:
    def test_build_function_fuzz(self):
        rng = random.Random(77)
        for _ in range(40):
            tt = rng.getrandbits(16)
            aig = Aig(4)
            signal = build_function_into_aig(aig, tt, aig.pi_signals())
            aig.add_po(signal)
            assert aig.simulate()[0] == tt, hex(tt)

    def test_class_cost_reasonable(self):
        a, b = tt_var(4, 0), tt_var(4, 1)
        assert aig_class_cost(a & b) == 1
        assert aig_class_cost(a ^ b) == 3
        assert aig_class_cost(0) == 0

    def test_cost_is_npn_invariant(self):
        from repro.core.truth_table import tt_not, tt_permute

        f = 0x1668
        assert aig_class_cost(f) == aig_class_cost(tt_not(f, 4))
        assert aig_class_cost(f) == aig_class_cost(tt_permute(f, (3, 0, 1, 2), 4))


class TestRewriteAig:
    def test_preserves_function_on_suite(self, suite_small):
        for mig in suite_small[:5]:
            aig = mig_to_aig(mig)
            rewritten = rewrite_aig(aig)
            assert check_equivalence(mig, aig_to_mig(rewritten)), mig.name

    def test_fanout_free_never_grows(self, suite_small):
        for mig in suite_small[:5]:
            aig = mig_to_aig(mig)
            rewritten = rewrite_aig(aig, fanout_free=True)
            assert rewritten.num_gates <= aig.num_gates, mig.name

    def test_reduces_redundant_xor_chain(self):
        aig = Aig(4)
        a, b, c, d = aig.pi_signals()
        # Wasteful balanced xor built via muxes.
        x1 = aig.mux(a, b ^ 1, b)
        x2 = aig.mux(x1, c ^ 1, c)
        x3 = aig.mux(x2, d ^ 1, d)
        aig.add_po(x3)
        rewritten = rewrite_aig(aig)
        assert rewritten.num_gates <= aig.num_gates
        assert rewritten.simulate() == aig.simulate()

    def test_interface_preserved(self, full_adder):
        aig = mig_to_aig(full_adder)
        rewritten = rewrite_aig(aig)
        assert rewritten.pi_names == aig.pi_names
        assert rewritten.output_names == aig.output_names

"""Tests for the AIG substrate."""

from __future__ import annotations

import pytest

from repro.aig.aig import Aig
from repro.core.truth_table import tt_mask, tt_var


class TestConstruction:
    def test_unit_rules(self):
        aig = Aig(2)
        a, b = aig.pi_signals()
        assert aig.and_(a, a) == a
        assert aig.and_(a, a ^ 1) == 0
        assert aig.and_(a, 0) == 0
        assert aig.and_(a, 1) == a
        assert aig.num_gates == 0

    def test_structural_hashing(self):
        aig = Aig(2)
        a, b = aig.pi_signals()
        assert aig.and_(a, b) == aig.and_(b, a)
        assert aig.num_gates == 1

    def test_pis_before_gates(self):
        aig = Aig(1)
        (a,) = aig.pi_signals()
        aig.and_(a, a ^ 1)
        aig.and_(a, 2)  # no-op gate creation is fine
        aig2 = Aig(1)
        (x,) = aig2.pi_signals()
        aig2.and_(x, 1)
        aig2.and_(x ^ 1, x)
        # adding a gate then a PI must fail
        aig3 = Aig(2)
        p, q = aig3.pi_signals()
        aig3.and_(p, q)
        with pytest.raises(ValueError):
            aig3.add_pi()

    def test_simulation(self):
        aig = Aig(2)
        a, b = aig.pi_signals()
        aig.add_po(aig.and_(a, b), "and")
        aig.add_po(aig.or_(a, b), "or")
        aig.add_po(aig.xor(a, b), "xor")
        va, vb = tt_var(2, 0), tt_var(2, 1)
        and_tt, or_tt, xor_tt = aig.simulate()
        assert and_tt == va & vb
        assert or_tt == va | vb
        assert xor_tt == va ^ vb

    def test_mux(self):
        aig = Aig(3)
        s, t, e = aig.pi_signals()
        aig.add_po(aig.mux(s, t, e))
        vs, vt, ve = (tt_var(3, i) for i in range(3))
        assert aig.simulate()[0] == (vs & vt) | (~vs & tt_mask(3) & ve)

    def test_depth_and_levels(self):
        aig = Aig(3)
        a, b, c = aig.pi_signals()
        aig.add_po(aig.and_(aig.and_(a, b), c))
        assert aig.depth() == 2

    def test_cleanup(self):
        aig = Aig(2)
        a, b = aig.pi_signals()
        keep = aig.and_(a, b)
        aig.or_(a, b)  # dead
        aig.add_po(keep)
        clean = aig.cleanup()
        assert clean.num_gates == 1
        assert clean.simulate() == aig.simulate()

    def test_unknown_signal_rejected(self):
        aig = Aig(1)
        with pytest.raises(ValueError):
            aig.and_(2, 98)
        with pytest.raises(ValueError):
            aig.add_po(98)

"""Tests for MIG <-> AIG conversion."""

from __future__ import annotations

from repro.aig.convert import aig_to_mig, mig_to_aig
from repro.core.simulate import check_equivalence


class TestMigToAig:
    def test_full_adder(self, full_adder):
        aig = mig_to_aig(full_adder)
        assert aig.simulate() == full_adder.simulate()
        assert aig.pi_names == full_adder.pi_names
        assert aig.output_names == full_adder.output_names

    def test_suite_equivalence(self, suite_small):
        for mig in suite_small[:4]:
            aig = mig_to_aig(mig)
            assert aig.num_pis == mig.num_pis
            # compare via exhaustive/random sim on the MIG rebuilt from it
            back = aig_to_mig(aig)
            assert check_equivalence(mig, back), mig.name

    def test_size_blowup_bounded(self, full_adder):
        aig = mig_to_aig(full_adder)
        # each majority expands to at most 4 ANDs
        assert aig.num_gates <= 4 * full_adder.num_gates


class TestAigToMig:
    def test_and_becomes_single_gate(self):
        from repro.aig.aig import Aig

        aig = Aig(2)
        a, b = aig.pi_signals()
        aig.add_po(aig.and_(a, b))
        mig = aig_to_mig(aig)
        assert mig.num_gates == 1
        assert mig.simulate() == aig.simulate()

    def test_roundtrip_function(self, full_adder):
        roundtrip = aig_to_mig(mig_to_aig(full_adder))
        assert check_equivalence(full_adder, roundtrip)

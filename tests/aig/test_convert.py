"""Tests for MIG <-> AIG conversion."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aig.aig import Aig
from repro.aig.convert import aig_to_mig, mig_to_aig
from repro.core.mig import Mig
from repro.core.simengine import simulate_network
from repro.core.simulate import check_equivalence


@st.composite
def random_aig(draw, min_pis=2, max_pis=6, max_gates=20):
    aig = Aig(draw(st.integers(min_value=min_pis, max_value=max_pis)))
    signals = [0] + aig.pi_signals()
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        picks = draw(
            st.lists(
                st.tuples(st.integers(0, len(signals) - 1), st.booleans()),
                min_size=2,
                max_size=2,
            )
        )
        signals.append(aig.and_(*[signals[i] ^ int(c) for i, c in picks]))
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        aig.add_po(signals[draw(st.integers(0, len(signals) - 1))])
    return aig


@st.composite
def random_mig(draw, min_pis=2, max_pis=6, max_gates=20):
    mig = Mig(draw(st.integers(min_value=min_pis, max_value=max_pis)))
    signals = [0] + mig.pi_signals()
    for _ in range(draw(st.integers(min_value=1, max_value=max_gates))):
        picks = draw(
            st.lists(
                st.tuples(st.integers(0, len(signals) - 1), st.booleans()),
                min_size=3,
                max_size=3,
            )
        )
        signals.append(mig.maj(*[signals[i] ^ int(c) for i, c in picks]))
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        mig.add_po(signals[draw(st.integers(0, len(signals) - 1))])
    return mig


class TestMigToAig:
    def test_full_adder(self, full_adder):
        aig = mig_to_aig(full_adder)
        assert aig.simulate() == full_adder.simulate()
        assert aig.pi_names == full_adder.pi_names
        assert aig.output_names == full_adder.output_names

    def test_suite_equivalence(self, suite_small):
        for mig in suite_small[:4]:
            aig = mig_to_aig(mig)
            assert aig.num_pis == mig.num_pis
            # compare via exhaustive/random sim on the MIG rebuilt from it
            back = aig_to_mig(aig)
            assert check_equivalence(mig, back), mig.name

    def test_size_blowup_bounded(self, full_adder):
        aig = mig_to_aig(full_adder)
        # each majority expands to at most 4 ANDs
        assert aig.num_gates <= 4 * full_adder.num_gates


class TestAigToMig:
    def test_and_becomes_single_gate(self):
        from repro.aig.aig import Aig

        aig = Aig(2)
        a, b = aig.pi_signals()
        aig.add_po(aig.and_(a, b))
        mig = aig_to_mig(aig)
        assert mig.num_gates == 1
        assert mig.simulate() == aig.simulate()

    def test_roundtrip_function(self, full_adder):
        roundtrip = aig_to_mig(mig_to_aig(full_adder))
        assert check_equivalence(full_adder, roundtrip)


class TestRoundtripProperties:
    """Conversion round-trips on random networks, equivalence checked
    through the shared simulation engine (both representations simulated
    by the same kernel code path)."""

    @given(random_aig(), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_aig_to_mig_and_back(self, aig, seed):
        mig = aig_to_mig(aig)
        back = mig_to_aig(mig)
        assert back.num_pis == aig.num_pis
        assert back.num_pos == aig.num_pos
        assert back.pi_names == aig.pi_names
        assert back.output_names == aig.output_names
        # Exhaustive equivalence of all three, one engine under them all.
        assert mig.simulate() == aig.simulate()
        assert back.simulate() == aig.simulate()
        # And the same on random multi-word patterns through both backends.
        rng = random.Random(seed)
        width = 128
        patterns = [rng.getrandbits(width) for _ in range(aig.num_pis)]
        for net in (mig, back):
            for backend in ("bigint", "numpy"):
                assert simulate_network(
                    net, patterns, width, backend=backend
                ) == simulate_network(aig, patterns, width, backend=backend)

    @given(random_mig())
    @settings(max_examples=30, deadline=None)
    def test_mig_to_aig_and_back(self, mig):
        aig = mig_to_aig(mig)
        back = aig_to_mig(aig)
        assert aig.simulate() == mig.simulate()
        assert back.simulate() == mig.simulate()
        assert check_equivalence(mig, back)

    @given(random_aig())
    @settings(max_examples=30, deadline=None)
    def test_embedding_size_contracts(self, aig):
        # <0ab> embedding is gate-for-gate; majority expansion <= 4 ANDs.
        mig = aig_to_mig(aig)
        assert mig.num_gates <= aig.num_gates
        assert mig_to_aig(mig).num_gates <= 4 * mig.num_gates

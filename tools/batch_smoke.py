#!/usr/bin/env python3
"""CI chaos drill for the supervised batch runtime.

Runs a real ``migopt batch`` with worker-crash and worker-hang faults
armed, ``kill -9``s the supervisor once the first job completes, resumes
the batch, and asserts:

* every healthy job completed **exactly once** across both runs;
* only the designated poison job (a nonexistent input file) was
  quarantined;
* every surviving output parses, passes ``Mig.check()``, and is
  functionally equivalent to its input.

Exit code 0 means the drill passed.  Usage::

    python tools/batch_smoke.py [--keep WORKDIR]

With ``--keep`` the batch workdir (journal, logs, outputs) is preserved
at the given path for inspection; by default a temp dir is used.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.core.simulate import equivalent_random  # noqa: E402
from repro.io.blif import read_blif  # noqa: E402
from repro.runtime.supervisor import run_batch  # noqa: E402
from repro.runtime.worker import _load_network  # noqa: E402

GENERATED = ("adder", "sine", "max")
WIDTH = 6


def journal_events(path: Path) -> list[dict]:
    if not path.exists():
        return []
    events = []
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            events.append(json.loads(line))
        except ValueError:
            pass
    return events


def launch_supervisor(workdir: Path, poison: Path) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    # One crashing worker, then (skip=1) one hanging worker: both fault
    # modes materialize before the supervisor itself is killed.
    env["REPRO_FAULTS"] = "worker.crash:times=1,worker.hang:times=1:skip=1"
    argv = [
        sys.executable, "-c",
        "import sys; from repro.cli import main; sys.exit(main(sys.argv[1:]))",
        "batch",
        "--generate", ",".join(GENERATED),
        "--width", str(WIDTH),
        "--blif", str(poison),
        "--script", "BF",
        "--jobs", "2",
        "--time-limit", "60",
        "--grace", "1",
        "--max-attempts", "2",
        "--backoff", "0.05",
        "--workdir", str(workdir),
    ]
    return subprocess.Popen(argv, env=env)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keep", metavar="WORKDIR",
                        help="preserve the batch workdir at this path")
    args = parser.parse_args()

    tmp = None
    if args.keep:
        base = Path(args.keep)
        if base.exists():
            shutil.rmtree(base)
        base.mkdir(parents=True)
    else:
        tmp = tempfile.mkdtemp(prefix="repro-batch-smoke-")
        base = Path(tmp)
    workdir = base / "batch"
    poison = base / "poison.blif"  # never created: fails every attempt
    journal = workdir / "journal.jsonl"

    try:
        print("[smoke] launching supervised batch with chaos faults armed")
        proc = launch_supervisor(workdir, poison)
        deadline = time.monotonic() + 180
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                print("[smoke] batch finished before the kill (fast machine)")
                break
            if any(e["event"] == "done" for e in journal_events(journal)):
                break
            time.sleep(0.05)
        else:
            proc.kill()
            proc.wait()
            print("[smoke] FAIL: no job completed within 180s", file=sys.stderr)
            return 1
        if proc.poll() is None:
            print(f"[smoke] SIGKILLing supervisor pid {proc.pid} mid-batch")
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        print("[smoke] resuming the batch")
        report = run_batch([], workdir, resume=True, num_workers=2,
                           grace=1.0, max_attempts=2, backoff_base=0.05)

        total = len(GENERATED) + 1
        assert report.total == total, f"expected {total} jobs, saw {report.total}"
        assert report.done == len(GENERATED), (
            f"expected {len(GENERATED)} done, saw {report.done}"
        )
        assert report.quarantined == 1, (
            f"expected exactly the poison job quarantined, saw "
            f"{report.quarantined}"
        )
        by_id = {job["job_id"]: job for job in report.jobs}
        assert by_id["poison"]["state"] == "quarantined", by_id["poison"]

        done_counts: dict[str, int] = {}
        for event in journal_events(journal):
            if event["event"] == "done":
                done_counts[event["job"]] = done_counts.get(event["job"], 0) + 1
        expected = {f"{name}-w{WIDTH}": 1 for name in GENERATED}
        assert done_counts == expected, (
            f"jobs must complete exactly once; done events: {done_counts}"
        )

        for name in GENERATED:
            output = workdir / "outputs" / f"{name}-w{WIDTH}.blif"
            with open(output, encoding="utf-8") as fp:
                optimized = read_blif(fp)
            optimized.check()
            original = _load_network({"generate": name, "width": WIDTH})
            assert equivalent_random(original, optimized, num_rounds=4), (
                f"{name}: output not equivalent to input"
            )

        adopted = report.adopted
        print(f"[smoke] PASS: {report.done}/{total} done, 1 quarantined, "
              f"{adopted} adopted on resume, outputs verified")
        return 0
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())

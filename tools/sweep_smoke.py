#!/usr/bin/env python3
"""CI chaos drill for the sharded sweep runtime.

Launches a real 2-shard ``migopt sweep``, waits for the first job to
land, then SIGKILLs one shard batch process *and* the coordinator —
the double failure the journal-shard design must absorb.  Resumes with
``migopt sweep --resume`` and asserts:

* the resumed sweep exits cleanly with every scenario done;
* every job completed **exactly once** across both runs (one ``done``
  journal event, in exactly one shard journal);
* every output parses, passes ``Mig.check()``, and is functionally
  equivalent to its input;
* the trend matrix gained one verified row per scenario.

Exit code 0 means the drill passed.  Usage::

    python tools/sweep_smoke.py [--keep WORKDIR]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.core.simulate import equivalent_random  # noqa: E402
from repro.io.blif import read_blif  # noqa: E402
from repro.runtime.worker import _load_network  # noqa: E402

#: small instances, two per shard, so the kill lands mid-sweep
INSTANCES = (
    {"generate": "adder", "width": 8},
    {"generate": "sine", "width": 8},
    {"generate": "max", "width": 8},
    {"generate": "square", "width": 8},
    {"generate": "priority", "width": 16},
    {"generate": "voter", "width": 9},
)


def sweep_spec() -> dict:
    return {
        "name": "sweep-smoke",
        "instances": [dict(inst) for inst in INSTANCES],
        "scripts": [["BF"]],
        "verify": "sim",
        "time_limit": 60,
    }


def journal_events(path: Path) -> list[dict]:
    if not path.exists():
        return []
    events = []
    for line in path.read_text(encoding="utf-8").splitlines():
        try:
            events.append(json.loads(line))
        except ValueError:
            pass
    return events


def sweep_argv(workdir: Path, spec_path: Path | None, matrix: Path) -> list[str]:
    argv = [
        sys.executable, "-m", "repro.cli", "sweep",
        "--workdir", str(workdir),
        "--shards", "2",
        "--jobs-per-shard", "1",
        "--grace", "1",
        "--backoff", "0.05",
        "--matrix", str(matrix),
    ]
    if spec_path is not None:
        argv += ["--spec", str(spec_path)]
    else:
        argv.append("--resume")
    return argv


def child_env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return env


def find_shard_pids() -> list[int]:
    """Live ``migopt batch --shard`` processes, via /proc cmdline scan."""
    pids = []
    for entry in Path("/proc").iterdir():
        if not entry.name.isdigit():
            continue
        try:
            cmdline = (entry / "cmdline").read_bytes().split(b"\0")
        except OSError:
            continue
        args = [arg.decode("utf-8", "replace") for arg in cmdline]
        if "repro.cli" in args and "--shard" in args:
            pids.append(int(entry.name))
    return pids


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keep", metavar="WORKDIR",
                        help="preserve the sweep workdir at this path")
    args = parser.parse_args()

    tmp = None
    if args.keep:
        base = Path(args.keep)
        if base.exists():
            shutil.rmtree(base)
        base.mkdir(parents=True)
    else:
        tmp = tempfile.mkdtemp(prefix="repro-sweep-smoke-")
        base = Path(tmp)
    workdir = base / "sweep"
    matrix = base / "MATRIX.jsonl"
    spec_path = base / "spec.json"
    spec_path.write_text(json.dumps(sweep_spec()) + "\n", encoding="utf-8")
    shard_journals = [workdir / f"shard-h{i}" / "journal.jsonl" for i in (0, 1)]

    try:
        print("[smoke] launching 2-shard sweep coordinator")
        coordinator = subprocess.Popen(
            sweep_argv(workdir, spec_path, matrix), env=child_env()
        )
        deadline = time.monotonic() + 180
        while time.monotonic() < deadline:
            if coordinator.poll() is not None:
                print("[smoke] sweep finished before the kill (fast machine)")
                break
            done = sum(
                1 for journal in shard_journals
                for event in journal_events(journal)
                if event.get("event") == "done"
            )
            if done >= 1:
                break
            time.sleep(0.05)
        else:
            coordinator.kill()
            coordinator.wait()
            print("[smoke] FAIL: no job completed within 180s", file=sys.stderr)
            return 1

        if coordinator.poll() is None:
            shard_pids = find_shard_pids()
            if shard_pids:
                print(f"[smoke] SIGKILLing shard batch pid {shard_pids[0]}")
                try:
                    os.kill(shard_pids[0], signal.SIGKILL)
                except ProcessLookupError:
                    pass
            print(f"[smoke] SIGKILLing coordinator pid {coordinator.pid}")
            coordinator.send_signal(signal.SIGKILL)
            coordinator.wait(timeout=30)
            # Orphaned shard processes keep their own journals consistent;
            # let any stragglers drain before resuming on the same dirs.
            straggler_deadline = time.monotonic() + 60
            while find_shard_pids() and time.monotonic() < straggler_deadline:
                time.sleep(0.1)

        print("[smoke] resuming the sweep")
        resumed = subprocess.run(
            sweep_argv(workdir, None, matrix), env=child_env(), timeout=300
        )
        assert resumed.returncode == 0, (
            f"resumed sweep exited {resumed.returncode}"
        )

        report = json.loads(
            (workdir / "report.json").read_text(encoding="utf-8")
        )
        total = len(INSTANCES)
        assert report["total"] == total, report["total"]
        assert report["done"] == total, (
            f"expected {total} done, saw {report['done']}"
        )
        assert report["quarantined"] == 0, report["quarantined"]

        # Exactly-once: one done event per job, in exactly one shard.
        done_counts: dict[str, int] = {}
        owners: dict[str, set[str]] = {}
        for journal in shard_journals:
            for event in journal_events(journal):
                job = event.get("job")
                if job:
                    owners.setdefault(job, set()).add(journal.parent.name)
                if event.get("event") == "done":
                    done_counts[job] = done_counts.get(job, 0) + 1
        assert len(done_counts) == total, sorted(done_counts)
        assert all(count == 1 for count in done_counts.values()), (
            f"jobs must complete exactly once; done events: {done_counts}"
        )
        assert all(len(shards) == 1 for shards in owners.values()), (
            f"each job must live in exactly one shard journal: {owners}"
        )

        # Every output parses, checks, and matches its input.
        verified = 0
        for job in report["jobs"]:
            output = job.get("output")
            assert job["state"] == "done", job
            assert output, f"{job['job_id']} has no output artifact"
            with open(output, encoding="utf-8") as fp:
                optimized = read_blif(fp)
            optimized.check()
            network = next(
                inst for inst in INSTANCES
                if job["job_id"].startswith(
                    f"{inst['generate']}-w{inst.get('width')}"
                )
            )
            original = _load_network(network)
            assert equivalent_random(original, optimized, num_rounds=4), (
                f"{job['job_id']}: output not equivalent to input"
            )
            verified += 1

        rows = [
            json.loads(line)
            for line in matrix.read_text(encoding="utf-8").splitlines()
        ]
        assert len(rows) == total, f"expected {total} matrix rows, saw {len(rows)}"
        assert all(row["verified"] for row in rows), rows

        adopted = report["adopted"]
        print(f"[smoke] PASS: {total}/{total} done exactly once across "
              f"2 shards, {adopted} adopted, {verified} outputs verified, "
              f"{len(rows)} matrix rows")
        return 0
    finally:
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())

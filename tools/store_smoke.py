#!/usr/bin/env python3
"""CI crash drill for the persistent NPN store.

A writer subprocess appends freshly synthesized NPN-5 entries to a store
and acknowledges each one on stdout only after ``put`` returned (i.e.
after the record is fsynced).  The parent ``kill -9``s the writer
mid-loop — several rounds, so the kill lands at different byte offsets —
and after every kill asserts the store's headline guarantees:

* **no acknowledged entry is ever lost**: every acknowledged class
  replays with a correct witness (its MIG simulates to the class
  representative);
* **only the torn tail is dropped**: ``torn_records <= 1`` and never the
  quarantine path (``recovered`` stays False);
* **the log stays appendable**: after recovery the next writer round
  starts at a clean record boundary, and a final reopen sees zero torn
  records.

The last act ruins the file wholesale and asserts the quarantine +
re-synthesis path: the store restarts empty (``recovered`` True, with a
``.corrupt`` tombstone) and a :class:`DynamicDatabase` on top transparently
re-populates it with entries of the same sizes.

Exit code 0 means the drill passed.  Usage::

    python tools/store_smoke.py [--keep STOREDIR] [--rounds N]

With ``--keep`` the store (and its final state) is preserved at the
given directory for inspection; by default a temp dir is used.
"""

from __future__ import annotations

import argparse
import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.database.store import NpnStore  # noqa: E402
from repro.rewriting.dynamic_db import DynamicDatabase  # noqa: E402

ACKS_PER_ROUND = 4

WRITER = """
import random, sys
sys.path.insert(0, {src!r})
from repro.core.npn import npn_canonize
from repro.database.npn_db import DbEntry
from repro.database.store import NpnStore
from repro.exact.heuristic import heuristic_mig

# Synthesize the whole pool up front so the append loop below is tight
# write+fsync — that is the window the parent's SIGKILL should land in.
rng = random.Random({seed})
pool, seen = [], set()
while len(pool) < 48:
    rep, _ = npn_canonize(rng.getrandbits(32), 5)
    if rep not in seen:
        seen.add(rep)
        pool.append(DbEntry.from_mig(rep, heuristic_mig(rep, 5), proven=False))
store = NpnStore.open({path!r}, num_vars=5)
for entry in pool:
    if store.put(entry):
        print(entry.rep, flush=True)   # fsynced: survives any crash from here
while True:
    pass  # keep the process alive until the parent kills it
"""


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    raise SystemExit(1)


def run_writer_round(path: Path, seed: int) -> list[int]:
    """Launch a writer, SIGKILL it after ACKS_PER_ROUND acks, return acks."""
    proc = subprocess.Popen(
        [sys.executable, "-c", WRITER.format(src=str(SRC), seed=seed, path=str(path))],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
    )
    acked: list[int] = []
    deadline = time.monotonic() + 120
    while len(acked) < ACKS_PER_ROUND:
        if time.monotonic() > deadline:
            proc.kill()
            fail("writer produced no acknowledgments in 120s")
        line = proc.stdout.readline()
        if not line:
            fail(f"writer exited early (rc={proc.poll()})")
        acked.append(int(line))
    # A small randomized delay scatters the kill across the child's
    # append loop — mid-write (torn tail), mid-fsync (complete but
    # unacknowledged record), or between records.  All must be survivable.
    time.sleep(random.uniform(0, 0.01))
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait()
    return acked


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keep", metavar="STOREDIR",
                        help="preserve the store directory at this path")
    parser.add_argument("--rounds", type=int, default=5,
                        help="number of kill -9 rounds (default 5)")
    args = parser.parse_args()

    if args.keep:
        storedir = Path(args.keep)
        if storedir.exists():
            shutil.rmtree(storedir)
        storedir.mkdir(parents=True)
    else:
        storedir = Path(tempfile.mkdtemp(prefix="store-smoke-"))
    path = storedir / "drill.npn5"

    acknowledged: set[int] = set()
    torn_total = 0
    for round_no in range(args.rounds):
        acked = run_writer_round(path, seed=1000 + round_no)
        acknowledged.update(acked)
        store = NpnStore.open(path, num_vars=5)
        if store.recovered:
            fail(f"round {round_no}: kill -9 triggered quarantine, not truncation")
        if store.torn_records > 1:
            fail(f"round {round_no}: {store.torn_records} torn records (max is 1)")
        torn_total += store.torn_records
        missing = acknowledged - set(store.index)
        if missing:
            fail(f"round {round_no}: acknowledged classes lost: {sorted(missing)[:4]}")
        for rep in acked:
            entry = store.get(rep)
            if entry.to_mig().simulate()[0] != rep:
                fail(f"round {round_no}: wrong witness for class {rep:#x}")
        store.close()  # leaves a clean boundary for the next round
        print(
            f"round {round_no}: {len(store.index)} classes on disk, "
            f"{store.torn_records} torn record dropped"
        )

    final = NpnStore.open(path, num_vars=5)
    if final.torn_records or final.recovered:
        fail("final reopen is not clean after recovered rounds")
    if acknowledged - set(final.index):
        fail("final reopen lost acknowledged classes")
    survivors = len(final.index)
    final.close()
    print(f"{args.rounds} kill rounds survived: {survivors} classes, "
          f"{torn_total} torn tails dropped, 0 quarantines")

    # Act two: wholesale corruption must quarantine and re-synthesize.
    probe = sorted(acknowledged)[:3]
    baseline = DynamicDatabase(num_vars=5, store=NpnStore.open(path, 5))
    sizes = {rep: baseline.size_of(rep) for rep in probe}
    baseline.store.close()
    path.write_bytes(b"ruined beyond any tail truncation\n")
    db = DynamicDatabase(num_vars=5, store=NpnStore.open(path, 5))
    if not db.store.recovered:
        fail("wholesale corruption did not trigger quarantine")
    if not (path.parent / (path.name + ".corrupt")).exists():
        fail("quarantine left no .corrupt tombstone")
    for rep in probe:
        if db.size_of(rep) != sizes[rep]:
            fail(f"re-synthesis changed the size of class {rep:#x}")
    if len(db.store) < len(probe):
        fail("re-synthesized entries were not persisted")
    db.store.close()
    print(f"quarantine drill passed: store restarted empty and "
          f"re-synthesized {len(probe)} classes at identical sizes")

    if not args.keep:
        shutil.rmtree(storedir, ignore_errors=True)
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

#!/bin/sh
# Regenerate every artifact of the reproduction from scratch.
#
# 1. (optional) rebuild the NPN-4 database; the SAT phase is budgeted —
#    give it more seconds for more proven entries.
# 2. run the test-suite,
# 3. regenerate all tables/figures (benchmarks/results/*.txt).
#
# Usage: sh tools/reproduce_all.sh [db-sat-seconds]
set -e
cd "$(dirname "$0")/.."
SAT_SECONDS="${1:-0}"
if [ "$SAT_SECONDS" -gt 0 ]; then
    python -m repro.database.generate --out src/repro/database/data/npn4.jsonl \
        --resume --sat-seconds "$SAT_SECONDS" --budget 60000
fi
python -m pytest tests/ -q
python -m pytest benchmarks/ --benchmark-only -q -s
echo "results written to benchmarks/results/"

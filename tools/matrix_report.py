#!/usr/bin/env python3
"""Render the standing scenario matrix and gate on quality regressions.

``benchmarks/results/MATRIX.jsonl`` is an append-only trend log: every
``migopt sweep`` / ``bench_matrix.py`` run appends one row per completed
scenario.  This tool groups rows by scenario id, renders a per-scenario
trend table (latest size/depth against the previous entry for the same
scenario), and aggregates the latest-vs-previous ratios as geometric
means — the paper's "average improvement" aggregation, applied over
time instead of over variants.

Exit code 1 when quality regressed more than the threshold (default 5%):
either geomean (size or depth) above ``1 + threshold``, or — with
``--strict`` — any single scenario above it.  Usage::

    python tools/matrix_report.py [MATRIX.jsonl] [--threshold 0.05]
        [--strict] [--output results/matrix_trend.txt]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_MATRIX = REPO_ROOT / "benchmarks" / "results" / "MATRIX.jsonl"


def load_rows(path: Path) -> list[dict]:
    rows = []
    skipped = 0
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                skipped += 1  # torn tail from a killed publisher
                continue
            if isinstance(row, dict) and row.get("scenario"):
                rows.append(row)
    if skipped:
        print(f"[matrix] skipped {skipped} malformed line(s)", file=sys.stderr)
    return rows


def by_scenario(rows: list[dict]) -> dict[str, list[dict]]:
    grouped: dict[str, list[dict]] = {}
    for row in rows:  # file order == append order == generation order
        grouped.setdefault(row["scenario"], []).append(row)
    return grouped


def geomean(values: list[float]) -> float:
    if not values:
        return 1.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def _ratio(latest, previous) -> float | None:
    try:
        latest, previous = float(latest), float(previous)
    except (TypeError, ValueError):
        return None
    if previous <= 0:
        return None
    return latest / previous


def render(grouped: dict[str, list[dict]]) -> tuple[str, list[tuple[str, float, float]]]:
    """Build the trend table; returns (text, per-scenario latest/prev ratios)."""
    headers = ["Scenario", "Runs", "S", "D", "RT", "S prev", "D prev",
               "S ratio", "D ratio", "Verified"]
    widths = [len(h) for h in headers]
    table_rows: list[list[str]] = []
    ratios: list[tuple[str, float, float]] = []
    for scenario in sorted(grouped):
        history = grouped[scenario]
        latest = history[-1]
        previous = history[-2] if len(history) > 1 else None
        s_ratio = d_ratio = None
        if previous is not None:
            s_ratio = _ratio(latest.get("size_after"), previous.get("size_after"))
            d_ratio = _ratio(latest.get("depth_after"), previous.get("depth_after"))
        if s_ratio is not None and d_ratio is not None:
            ratios.append((scenario, s_ratio, d_ratio))
        table_rows.append([
            scenario,
            str(len(history)),
            str(latest.get("size_after", "?")),
            str(latest.get("depth_after", "?")),
            f"{latest['runtime']:.2f}" if latest.get("runtime") is not None else "-",
            str(previous.get("size_after", "?")) if previous else "-",
            str(previous.get("depth_after", "?")) if previous else "-",
            f"{s_ratio:.3f}" if s_ratio is not None else "-",
            f"{d_ratio:.3f}" if d_ratio is not None else "-",
            "yes" if latest.get("verified") else "NO",
        ])
    for row in table_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["Standing scenario matrix — per-scenario trend", ""]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    if ratios:
        s_geo = geomean([s for _, s, _ in ratios])
        d_geo = geomean([d for _, _, d in ratios])
        lines.append("")
        lines.append(
            f"Latest vs previous over {len(ratios)} scenario(s): "
            f"size geomean {s_geo:.3f}, depth geomean {d_geo:.3f} "
            "(< 1 improved, > 1 regressed)"
        )
    return "\n".join(lines) + "\n", ratios


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("matrix", nargs="?", default=str(DEFAULT_MATRIX),
                        help=f"trend JSONL (default: {DEFAULT_MATRIX})")
    parser.add_argument("--threshold", type=float, default=0.05,
                        help="regression gate on the latest/previous ratio "
                        "(default: 0.05 = fail above +5%%)")
    parser.add_argument("--strict", action="store_true",
                        help="also fail when any single scenario regresses "
                        "past the threshold (default: geomean only)")
    parser.add_argument("--output", metavar="PATH",
                        help="also write the rendered table to PATH")
    args = parser.parse_args()

    path = Path(args.matrix)
    if not path.exists():
        print(f"[matrix] {path} does not exist", file=sys.stderr)
        return 1
    rows = load_rows(path)
    if not rows:
        print(f"[matrix] {path} has no scenario rows", file=sys.stderr)
        return 1
    grouped = by_scenario(rows)
    text, ratios = render(grouped)
    print(text)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")

    unverified = [
        scenario for scenario, history in grouped.items()
        if not history[-1].get("verified")
    ]
    if unverified:
        print(f"[matrix] FAIL: unverified scenario(s): {sorted(unverified)}",
              file=sys.stderr)
        return 1

    limit = 1.0 + args.threshold
    failed = False
    if ratios:
        s_geo = geomean([s for _, s, _ in ratios])
        d_geo = geomean([d for _, _, d in ratios])
        if s_geo > limit or d_geo > limit:
            print(f"[matrix] FAIL: geomean regression beyond +"
                  f"{args.threshold:.0%} (size {s_geo:.3f}, depth {d_geo:.3f})",
                  file=sys.stderr)
            failed = True
        if args.strict:
            for scenario, s_ratio, d_ratio in ratios:
                if s_ratio > limit or d_ratio > limit:
                    print(f"[matrix] FAIL: {scenario} regressed "
                          f"(size {s_ratio:.3f}, depth {d_ratio:.3f})",
                          file=sys.stderr)
                    failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""CI smoke drill for the ``migopt serve`` daemon.

Exercises the serving tier's headline guarantees against the real CLI in
a real subprocess:

1. start the daemon, wait for readiness;
2. ``POST /jobs`` an EPFL suite instance, poll ``GET /jobs/<id>`` to
   completion, and verify the optimized BLIF parses, passes
   ``Mig.check()``, and is functionally equivalent to the input;
3. resubmit the identical request and assert a **cache hit** with a
   byte-identical result payload (the optimizer ran exactly once);
4. restart the daemon on the same workdir and assert the cache is still
   **warm across the restart** (hit without re-optimizing);
5. SIGTERM the daemon and assert a **graceful drain**: exit code 0 and
   a flushed stats snapshot.

Exit code 0 means the drill passed.  Usage::

    python tools/serve_smoke.py [--keep WORKDIR]
"""

from __future__ import annotations

import argparse
import io
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
sys.path.insert(0, str(SRC))

from repro.core.simulate import equivalent_random  # noqa: E402
from repro.io.blif import read_blif  # noqa: E402
from repro.runtime.worker import _load_network  # noqa: E402

INSTANCE = {"generate": "max", "width": 6}
REQUEST = {"network": INSTANCE, "script": ["BF"], "verify": "sim"}


def request(base: str, method: str, path: str, body=None, timeout=15):
    data = None if body is None else json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def launch(workdir: Path) -> tuple[subprocess.Popen, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [
            sys.executable, "-c",
            "from repro.cli import main; raise SystemExit(main())",
            "serve", "--workdir", str(workdir), "--port", "0",
            "--jobs", "1", "--grace", "1", "--drain-grace", "60",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    line = proc.stdout.readline()
    if "listening on http://" not in line:
        proc.kill()
        raise RuntimeError(f"daemon failed to start: {line!r}")
    port = int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
    return proc, f"http://127.0.0.1:{port}"


def wait_done(base: str, job_id: str, timeout=300) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        code, status = request(base, "GET", f"/jobs/{job_id}")
        assert code == 200, status
        if status["status"] in ("done", "failed", "timeout"):
            assert status["status"] == "done", status
            return status
        time.sleep(0.3)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--keep", metavar="WORKDIR",
                        help="preserve the daemon workdir at this path")
    args = parser.parse_args()

    tmp = None
    if args.keep:
        base_dir = Path(args.keep)
        if base_dir.exists():
            shutil.rmtree(base_dir)
        base_dir.mkdir(parents=True)
    else:
        tmp = tempfile.mkdtemp(prefix="repro-serve-smoke-")
        base_dir = Path(tmp)
    workdir = base_dir / "serve"

    proc = None
    try:
        print("[smoke] starting migopt serve")
        proc, base = launch(workdir)
        code, _ = request(base, "GET", "/readyz")
        assert code == 200, "daemon not ready"

        print(f"[smoke] submitting {INSTANCE}")
        code, accepted = request(base, "POST", "/jobs", REQUEST)
        assert code == 202, (code, accepted)
        status = wait_done(base, accepted["job_id"])
        result = status["result"]
        print(f"[smoke] optimized: {result['size_before']} -> "
              f"{result['size_after']} gates")

        optimized = read_blif(io.StringIO(result["blif"]))
        optimized.check()
        original = _load_network(INSTANCE)
        assert equivalent_random(original, optimized, num_rounds=4), (
            "served result not equivalent to the submitted network"
        )

        print("[smoke] resubmitting the identical request")
        code, hit = request(base, "POST", "/jobs", REQUEST)
        assert code == 200 and hit["cached"] is True, (code, hit)
        assert json.dumps(hit["result"], sort_keys=True) == json.dumps(
            result, sort_keys=True
        ), "cache hit must be byte-identical to the original result"
        code, stats = request(base, "GET", "/stats")
        assert stats["jobs"]["completed"] == 1, stats
        assert stats["jobs"]["cache_hits"] == 1, stats
        print("[smoke] cache hit verified, optimizer ran exactly once")

        print("[smoke] SIGTERM -> graceful drain")
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=90)
        assert proc.returncode == 0, f"drain exit {proc.returncode}: {out}"
        assert (workdir / "stats.json").exists(), "no stats snapshot flushed"

        print("[smoke] restarting on the same workdir (cache must be warm)")
        proc, base = launch(workdir)
        code, hit = request(base, "POST", "/jobs", REQUEST)
        assert code == 200 and hit["cached"] is True, (code, hit)
        code, stats = request(base, "GET", "/stats")
        # Anything "completed" after restart must come from journal
        # adoption, and the cache must not have been re-populated — the
        # optimizer itself never ran again.
        assert stats["jobs"]["completed"] == stats["jobs"]["adopted"], stats
        assert stats["cache"]["puts"] == 0, f"restart re-optimized: {stats}"
        proc.send_signal(signal.SIGTERM)
        out, _ = proc.communicate(timeout=90)
        assert proc.returncode == 0, f"drain exit {proc.returncode}: {out}"

        print("[smoke] PASS: optimize once, cache hit, warm restart, "
              "clean drain")
        return 0
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.communicate()
        if tmp is not None:
            shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())

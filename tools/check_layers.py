#!/usr/bin/env python
"""Import-layering lint for the kernel architecture (docs/ARCHITECTURE.md).

The refactor that put one substrate under MIG and AIG only stays clean if
the dependency arrows keep pointing one way:

    kernel / simengine  ->  facades (core.mig, aig.aig)  ->  cuts / sim
        ->  rewriting / opt / mapping / io  ->  runtime glue (cli, batch)

Rules enforced (on ``import`` statements, resolved per module):

1. ``repro.core.kernel`` imports nothing from ``repro`` at all, and
   ``repro.core.simengine`` imports nothing from ``repro`` except the
   kernel — they sit below everything, numpy + stdlib only.
2. ``repro.core.*`` never imports from ``repro.rewriting``, ``repro.opt``
   or ``repro.aig`` — the core layer cannot depend on its consumers.
3. The facades (``repro.core.mig``, ``repro.aig.aig``) import from the
   repo only the kernel layer (``repro.core.kernel``,
   ``repro.core.simengine``) — all their logic lives below them.
4. ``repro.rewriting`` never imports numpy directly.  The rewrite passes
   may use ``repro.core.simengine`` (and the batch machinery riding on
   it), but all array code lives in the kernel layer; a stray
   ``import numpy`` in a pass is a layering leak that bypasses the
   simengine contract (dtype, padding, invalidation).

Exit status 0 when clean; 1 with one line per violation otherwise.
Runs from any directory; stdlib only (CI calls it before the test jobs).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"

#: modules that form the bottom layer (rule 1 / rule 3 allow-list)
KERNEL_LAYER = {"repro.core.kernel", "repro.core.simengine"}
#: the thin per-representation facades (rule 3)
FACADES = {"repro.core.mig", "repro.aig.aig"}
#: packages the core layer must never reach into (rule 2)
CORE_FORBIDDEN = ("repro.rewriting", "repro.opt", "repro.aig")
#: packages that must stay numpy-free — array work goes through the
#: kernel layer, never sideways into numpy (rule 4)
NUMPY_FREE = ("repro.rewriting",)


def numpy_free_violation(module: str, target: str) -> bool:
    """True when *module* falls under rule 4 and *target* is numpy."""
    if target != "numpy" and not target.startswith("numpy."):
        return False
    return any(in_package(module, package) for package in NUMPY_FREE)


def module_name(path: Path) -> str:
    rel = path.relative_to(SRC).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def resolve_import(module: str, node: ast.AST) -> list[str]:
    """Absolute module names targeted by an import statement."""
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        if node.level == 0:
            return [node.module] if node.module else []
        # Relative import: climb `level` packages from the importer.
        package = module.split(".")
        # Non-package modules import relative to their parent package.
        if not (SRC / Path(*package) / "__init__.py").exists():
            package = package[:-1]
        base = package[: len(package) - node.level + 1]
        target = ".".join(base + ([node.module] if node.module else []))
        return [target]
    return []


def in_package(name: str, package: str) -> bool:
    return name == package or name.startswith(package + ".")


def check_file(path: Path) -> list[str]:
    module = module_name(path)
    tree = ast.parse(path.read_text(), filename=str(path))
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        for target in resolve_import(module, node):
            if numpy_free_violation(module, target):
                where = f"{path.relative_to(SRC.parent)}:{node.lineno}"
                violations.append(
                    f"{where}: {module} imports {target} "
                    "(rewriting must reach arrays through core.simengine, "
                    "never numpy directly)"
                )
                continue
            if not in_package(target, "repro"):
                continue
            where = f"{path.relative_to(SRC.parent)}:{node.lineno}"
            if module in KERNEL_LAYER:
                allowed = {"repro.core.kernel"} if module == "repro.core.simengine" else set()
                if target not in allowed:
                    violations.append(
                        f"{where}: kernel-layer module {module} imports {target} "
                        "(kernel/simengine must not depend on the rest of repro)"
                    )
                continue
            if module in FACADES:
                if target not in KERNEL_LAYER:
                    violations.append(
                        f"{where}: facade {module} imports {target} "
                        "(facades may import only the kernel layer)"
                    )
                continue
            if in_package(module, "repro.core"):
                for forbidden in CORE_FORBIDDEN:
                    if in_package(target, forbidden):
                        violations.append(
                            f"{where}: core module {module} imports {target} "
                            f"(core must not depend on {forbidden})"
                        )
    return violations


def main() -> int:
    violations: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        violations.extend(check_file(path))
    if violations:
        print(f"layering check FAILED ({len(violations)} violation(s)):")
        for line in violations:
            print(f"  {line}")
        return 1
    print("layering check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

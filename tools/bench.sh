#!/usr/bin/env sh
# Run the hot-path micro-benchmark (see benchmarks/bench_hotpath.py).
# All arguments are forwarded, e.g.:
#   tools/bench.sh --quick --check
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH=src exec python benchmarks/bench_hotpath.py "$@"

"""Table III — functional hashing: MIG size and depth per variant.

For each arithmetic benchmark the paper reports size (S), depth (D) and
runtime (RT) of the five variants TF, T, TFD, TD, BF applied to the
heavily optimized baseline, plus row-averaged improvement ratios
(new/old; < 1 is better).

Absolute sizes differ from the paper (regenerated circuits, reduced
default widths, tree-seeded database — see DESIGN.md §4), but the *shape*
assertions encode the paper's findings:

* BF achieves the best average size reduction (paper: 0.92);
* FFR-local top-down (TF) beats global top-down (T) on size — the global
  variant can duplicate shared logic and grow (paper: 0.96 vs 1.02);
* depth-preserving FFR variants hold size and depth at no worse than the
  baseline (paper TFD row: 1.00 / 1.00).

The timed kernel is one BF pass over the square-root instance.
"""

from __future__ import annotations

from harness import (
    PAPER_TABLE3_AVERAGES,
    PAPER_VARIANTS,
    RESULTS_DIR,
    full_size,
    geomean,
    render_table,
    write_result,
)

from repro.generators.epfl import square_root
from repro.rewriting.engine import functional_hashing


def build_table3(table3_runs) -> tuple[str, dict[str, tuple[float, float]]]:
    headers = ["Benchmark", "I/O", "S", "D"]
    for variant in PAPER_VARIANTS:
        headers += [f"{variant} S", f"{variant} D", f"{variant} RT"]
    rows = []
    ratios: dict[str, list[tuple[float, float]]] = {v: [] for v in PAPER_VARIANTS}
    for run in table3_runs:
        row = [
            run.name,
            f"{run.baseline.num_pis}/{run.baseline.num_pos}",
            str(run.baseline_size),
            str(run.baseline_depth),
        ]
        for variant in PAPER_VARIANTS:
            res = run.variants[variant]
            row += [str(res.size), str(res.depth), f"{res.stats.runtime:.2f}"]
            ratios[variant].append(
                (
                    res.size / max(1, run.baseline_size),
                    res.depth / max(1, run.baseline_depth),
                )
            )
        rows.append(row)

    averages: dict[str, tuple[float, float]] = {}
    avg_row = ["Average (new/old)", "", "", ""]
    for variant in PAPER_VARIANTS:
        s_ratio = geomean([s for s, _ in ratios[variant]])
        d_ratio = geomean([d for _, d in ratios[variant]])
        averages[variant] = (s_ratio, d_ratio)
        avg_row += [f"{s_ratio:.2f}", f"{d_ratio:.2f}", ""]
    rows.append(avg_row)
    paper_row = ["Paper average", "", "", ""]
    for variant in PAPER_VARIANTS:
        ps, pd = PAPER_TABLE3_AVERAGES[variant]
        paper_row += [f"{ps:.2f}", f"{pd:.2f}", ""]
    rows.append(paper_row)

    mode = "paper sizes" if full_size() else "reduced widths (REPRO_FULL_SIZE=1 for paper sizes)"
    text = render_table(
        headers, rows, f"Table III — functional hashing, MIG size and depth ({mode})"
    )
    return text, averages


def test_table3_reproduction(db, table3_runs, benchmark):
    text, averages = build_table3(table3_runs)
    print("\n" + text)
    write_result("table3", text)
    _print_batch_provenance()

    # Shape assertion 1: BF reduces size on average (paper: 0.92).
    assert averages["BF"][0] < 1.0, "BF must reduce size on average"

    # Shape assertion 2 — the paper's central FFR point: global top-down is
    # *risky* (it duplicates shared logic and grows some instances; the
    # paper's T average is 1.02) while FFR-local variants never grow any
    # instance.  Note: our T reconstructs through structural hashing, which
    # recovers more sharing than the paper's implementation, so its
    # *average* can be better than TF here; the per-instance hazard is the
    # robust signature (see EXPERIMENTS.md).
    t_grew_somewhere = any(
        run.variants["T"].size > run.baseline_size for run in table3_runs
    )
    assert t_grew_somewhere, "global T should exhibit duplication growth somewhere"
    for run in table3_runs:
        assert run.variants["TF"].size <= run.baseline_size
        assert run.variants["BF"].size <= run.baseline_size
        assert run.variants["TFD"].size <= run.baseline_size
        assert run.variants["TFD"].depth <= run.baseline_depth

    # Shape assertion 3: TFD holds both ratios at <= 1.00 (paper: 1.00/1.00).
    assert averages["TFD"][0] <= 1.0 + 1e-9
    assert averages["TFD"][1] <= 1.0 + 1e-9

    # Shape assertion 4: the depth-preserving heuristic has a noticeable
    # effect (paper compares T's depth ratio 1.12 against TD's 1.02).
    assert averages["TD"][1] <= averages["T"][1] + 1e-9
    assert averages["TFD"][1] <= averages["TF"][1] + 1e-9

    benchmark.pedantic(
        lambda: functional_hashing(square_root(8), db, "BF"),
        rounds=1,
        iterations=1,
    )


def _print_batch_provenance() -> None:
    """Summarize the supervised batch that produced the table, if one ran."""
    import json

    report_path = RESULTS_DIR / "table3_batch_report.json"
    if not report_path.exists():
        return
    report = json.loads(report_path.read_text(encoding="utf-8"))
    print(
        f"(supervised batch: {report['done']}/{report['total']} jobs, "
        f"{report['workers_used']} workers, {report['retries']} retries, "
        f"{report['wall_seconds']:.1f}s wall)"
    )


def test_table3_baseline_signatures(table3_runs):
    """Full-size runs must match the paper's I/O signature table."""
    if not full_size():
        # Reduced widths: only check the signature *structure* (2 words etc.)
        for run in table3_runs:
            assert run.baseline.num_pis > 0 and run.baseline.num_pos > 0
        return
    paper_io = {
        "adder": (256, 129),
        "divisor": (128, 128),
        "log2": (32, 32),
        "max": (512, 130),
        "multiplier": (128, 128),
        "sine": (24, 25),
        "square-root": (128, 64),
        "square": (64, 128),
    }
    for run in table3_runs:
        pis, pos = paper_io[run.name]
        assert (run.baseline.num_pis, run.baseline.num_pos) == (pis, pos)

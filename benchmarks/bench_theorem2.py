"""Theorem 2 — the MIG size upper bound C(n) <= 10 * (2^(n-4) - 1) + 7.

The paper derives the bound by induction with Shannon's expansion in
majority form.  We validate it constructively: random n-variable
functions are synthesized via the Theorem 2 construction (database leaves
+ 3 gates per expanded variable) and their sizes checked against the
formula.  With the shipped database the base cost is the database maximum
(7 when the SAT phase has proven the worst class, up to 9 for pure tree
entries), so the bound is checked in its relaxed form
``(base+3) * (2^(n-4) - 1) + base`` and reported next to the paper's.

Timed kernel: the full construction for a random 6-variable function.
"""

from __future__ import annotations

import random

from harness import render_table, write_result

from repro.exact.bounds import shannon_upper_bound_mig, theorem2_bound


def test_theorem2_reproduction(db, benchmark):
    rng = random.Random(2016)
    base = max(entry.size for entry in db.entries.values())

    headers = [
        "n", "paper bound", "our bound (base=%d)" % base,
        "worst observed", "samples", "all within bound",
    ]
    rows = []
    worst_by_n = {}
    for n, samples in ((4, 60), (5, 30), (6, 10), (7, 3)):
        bound = theorem2_bound(n, base_cost=base)
        worst = 0
        for _ in range(samples):
            spec = rng.getrandbits(1 << n)
            if n == 4:
                size = db.size_of(spec)
            else:
                mig = shannon_upper_bound_mig(spec, n, db)
                assert mig.simulate()[0] == spec
                size = mig.num_gates
            worst = max(worst, size)
        worst_by_n[n] = (worst, bound)
        rows.append(
            [
                str(n),
                str(theorem2_bound(n)),
                str(bound),
                str(worst),
                str(samples),
                str(worst <= bound),
            ]
        )
    text = render_table(headers, rows, "Theorem 2 — C(n) upper bound validation")
    print("\n" + text)
    write_result("theorem2", text)

    for n, (worst, bound) in worst_by_n.items():
        assert worst <= bound, f"bound violated at n={n}"

    # The recurrence of the induction step must hold exactly.
    for n in range(4, 9):
        assert theorem2_bound(n + 1) == 2 * theorem2_bound(n) + 3

    spec6 = random.Random(7).getrandbits(64)
    benchmark(lambda: shannon_upper_bound_mig(spec6, 6, db))

"""Micro-benchmark for the serving tier's cache and admission path.

Quantifies the claim behind ``migopt serve``: for duplicate-laden
request streams, the content-addressed result cache turns repeated
optimizations into disk lookups.  Three measurements against an
in-process :class:`repro.runtime.serve.OptimizationService`:

* **cold** — submit a network, run the full supervised optimization
  (worker subprocess, per-step verification), and time acceptance to
  completion;
* **hit** — resubmit the identical request and time the synchronous
  cached answer (the entire request→hash→lookup→respond path);
* **ingest** — the daemon-side request overhead alone (parse + canonical
  structural hash + cache probe) for a never-cached network, i.e. what
  admission costs before any optimization runs.

Writes ``BENCH_serve.json`` and prints a table with the cold/hit
speedup.  No checked-in baseline: the interesting number (speedup) is
self-relative, so runner noise cancels out of the headline.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full run
    PYTHONPATH=src python benchmarks/bench_serve.py --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.runtime.serve import OptimizationService

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: (label, request) pairs; widths sized for minutes-not-hours runtimes.
CASES = [
    ("adder-w8", {"network": {"generate": "adder", "width": 8}}),
    ("max-w6", {"network": {"generate": "max", "width": 6}}),
    ("sine-w6", {"network": {"generate": "sine", "width": 6}}),
]
QUICK_CASES = [
    ("adder-w4", {"network": {"generate": "adder", "width": 4}}),
    ("max-w5", {"network": {"generate": "max", "width": 5}}),
]


def _wait_done(service: OptimizationService, job_id: str, timeout=600) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, status = service.job_status(job_id)
        if status["status"] in ("done", "failed", "timeout"):
            if status["status"] != "done":
                raise RuntimeError(f"job {job_id} ended {status['status']}: "
                                   f"{status.get('error')}")
            return status
        time.sleep(0.05)
    raise RuntimeError(f"job {job_id} did not finish within {timeout}s")


def bench_case(service: OptimizationService, label: str, request: dict) -> dict:
    body = dict(request)
    body.setdefault("script", ["BF"])
    body.setdefault("verify", "sim")

    start = time.perf_counter()
    code, accepted = service.submit(dict(body))
    if code != 202:
        raise RuntimeError(f"{label}: submit returned {code}: {accepted}")
    status = _wait_done(service, accepted["job_id"])
    cold = time.perf_counter() - start

    start = time.perf_counter()
    code, hit = service.submit(dict(body))
    hit_time = time.perf_counter() - start
    if code != 200 or not hit.get("cached"):
        raise RuntimeError(f"{label}: resubmission missed the cache: {hit}")

    # Ingest overhead: a distinct (never-cached) spec of the same
    # network exercises parse + hash + cache probe without a hit.  The
    # zero deadline makes the accepted job lapse in the queue instead of
    # burning a worker, so it cannot pollute later cold measurements.
    probe = dict(body)
    probe["deadline"] = 0.0  # changes the request key, not the parse cost
    start = time.perf_counter()
    service.submit(probe)
    ingest = time.perf_counter() - start

    result = status["result"]
    return {
        "label": label,
        "size_before": result["size_before"],
        "size_after": result["size_after"],
        "cold_seconds": round(cold, 4),
        "hit_seconds": round(hit_time, 6),
        "ingest_seconds": round(ingest, 6),
        "speedup": round(cold / hit_time, 1) if hit_time > 0 else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small cases for CI")
    parser.add_argument("-o", "--output", default=None,
                        help="result JSON path (default: results/BENCH_serve.json)")
    args = parser.parse_args(argv)

    cases = QUICK_CASES if args.quick else CASES
    rows = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmp:
        service = OptimizationService(Path(tmp) / "serve", num_workers=1,
                                      queue_limit=len(cases) + 1)
        service.start()
        try:
            for label, request in cases:
                rows.append(bench_case(service, label, request))
                print(f"{label:12} {rows[-1]['size_before']:>5} -> "
                      f"{rows[-1]['size_after']:>5} gates   "
                      f"cold {rows[-1]['cold_seconds']:>8.3f}s   "
                      f"hit {rows[-1]['hit_seconds'] * 1000:>7.2f}ms   "
                      f"ingest {rows[-1]['ingest_seconds'] * 1000:>7.2f}ms   "
                      f"{rows[-1]['speedup']:>7.1f}x")
        finally:
            service.drain(timeout=30.0)
            service.close()

    payload = {
        "benchmark": "serve",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": args.quick,
        "cases": rows,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = Path(args.output) if args.output else RESULTS_DIR / "BENCH_serve.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""The standing scenario matrix — sharded sweep into MATRIX.jsonl.

Runs the 18-scenario standing matrix (``flows.STANDING_MATRIX_INSTANCES``:
8 arithmetic + 6 random/control instances, 64/128-bit generator widths,
and a mapped-then-reoptimized round trip) through the sharded sweep
runtime and appends one sim-verified trend row per scenario to
``benchmarks/results/MATRIX.jsonl``.  The file is append-only: each run
adds a generation, and ``tools/matrix_report.py`` renders the
per-scenario trend (and fails on a >5% quality regression against the
previous generation).

Environment knobs: ``REPRO_BENCH_JOBS`` bounds total worker parallelism
across shards, ``REPRO_SWEEP_HOSTS`` redirects shards at real hosts.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from flows import _batch_jobs, standing_sweep_spec
from harness import RESULTS_DIR

from repro.runtime.executors import parse_hosts
from repro.runtime.sweep import SweepSpec, run_sweep

MATRIX_PATH = RESULTS_DIR / "MATRIX.jsonl"


def run_standing_matrix(matrix_path: Path = MATRIX_PATH):
    """Run the standing sweep; returns the :class:`SweepRun`."""
    spec = SweepSpec.from_dict(standing_sweep_spec())
    shards = 2
    jobs_per_shard = max(1, (_batch_jobs() or 2) // shards)
    with tempfile.TemporaryDirectory(prefix="repro-matrix-") as workdir:
        return run_sweep(
            workdir,
            spec=spec,
            hosts=parse_hosts(default_shards=shards),
            shards=shards,
            jobs_per_shard=jobs_per_shard,
            matrix_path=matrix_path,
        )


def test_standing_matrix(benchmark):
    run = benchmark.pedantic(run_standing_matrix, rounds=1, iterations=1)
    report = run.report
    print(
        f"\nstanding matrix: {report.done}/{report.total} scenarios done, "
        f"{report.quarantined} quarantined, {len(report.shards)} shards, "
        f"{run.published_rows} trend rows -> {run.matrix_path}"
    )
    assert report.done == report.total, [
        job["job_id"] for job in report.jobs if job["state"] != "done"
    ]
    # Every published row carries a verification verdict (the acceptance
    # bar: each scenario CEC- or sim-verified).
    assert run.published_rows == report.total

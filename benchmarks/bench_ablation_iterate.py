"""Ablation — one functional-hashing pass vs iteration to convergence.

The paper's closing observation: *"In all experiments, we have performed
the functional hashing algorithm only once.  Running it several times or
combining it with other optimization or reshaping algorithms will likely
lead to further improvements."*  This benchmark quantifies the remark on
the regenerated suite:

* column 1: the paper's protocol (one BF pass);
* column 2: BF iterated to a size fixpoint;
* column 3: a combined script ``BF, TFD, fraig, BF`` interleaving
  rewriting with SAT sweeping (size-oriented).

Timed kernel: iterating BF to convergence on the sine instance.
"""

from __future__ import annotations

from harness import full_size, geomean, render_table, write_result

from repro.core.simulate import equivalent_random
from repro.generators.epfl import arithmetic_suite, sine
from repro.opt.flow import optimize_until_convergence, run_flow
from repro.rewriting.engine import functional_hashing


def test_ablation_iteration(db, benchmark):
    headers = [
        "Benchmark", "base S", "1x BF", "BF fixpoint", "passes",
        "combined flow", "combined D",
    ]
    rows = []
    once_ratios, fix_ratios, flow_ratios = [], [], []
    for name, mig in arithmetic_suite(full_size=full_size()).items():
        once = functional_hashing(mig, db, "BF")
        fixpoint, passes = optimize_until_convergence(mig, db, "BF", max_passes=6)
        combined, _ = run_flow(mig, db, ["BF", "TFD", "fraig", "BF"])
        assert equivalent_random(mig, once, num_rounds=4)
        assert equivalent_random(mig, fixpoint, num_rounds=4)
        assert equivalent_random(mig, combined, num_rounds=4)
        rows.append(
            [
                name,
                str(mig.num_gates),
                str(once.num_gates),
                str(fixpoint.num_gates),
                str(passes),
                str(combined.num_gates),
                str(combined.depth()),
            ]
        )
        base = max(1, mig.num_gates)
        once_ratios.append(once.num_gates / base)
        fix_ratios.append(fixpoint.num_gates / base)
        flow_ratios.append(combined.num_gates / base)
    rows.append(
        [
            "Average (new/old)",
            "",
            f"{geomean(once_ratios):.3f}",
            f"{geomean(fix_ratios):.3f}",
            "",
            f"{geomean(flow_ratios):.3f}",
            "",
        ]
    )
    text = render_table(
        headers, rows,
        "Ablation — single pass vs convergence vs combined flow (paper Sec. V closing remark)",
    )
    print("\n" + text)
    write_result("ablation_iterate", text)

    # The paper's prediction must hold: iteration never loses to one pass,
    # and the combined flow beats both on average.
    assert geomean(fix_ratios) <= geomean(once_ratios) + 1e-9
    assert geomean(flow_ratios) <= geomean(fix_ratios) + 1e-9

    benchmark.pedantic(
        lambda: optimize_until_convergence(sine(8), db, "BF", max_passes=4),
        rounds=1,
        iterations=1,
    )

"""Table I — optimal MIGs for all 4-variable NPN classes.

The paper reports, for each majority-node count, how many NPN classes and
functions require it, plus exact-synthesis runtimes (Z3).  We regenerate
the table from the shipped database (trees + SAT improvement; see
DESIGN.md §6) and additionally report how many entries carry a
minimality *proof* from our pure-Python CDCL solver.  Entries whose proof
exceeded the budget are upper bounds, so our node counts can only be
pessimistic (>= the paper's).

The timed kernel is full exact synthesis (ascending UNSAT proofs + SAT
witness) of a 3-gate class representative.
"""

from __future__ import annotations

from harness import PAPER_TABLE1, render_table, write_result

from repro.core.npn import npn_class_sizes
from repro.exact.synthesis import synthesize_exact


def build_table1(db) -> tuple[str, dict[int, tuple[int, int]]]:
    class_sizes = npn_class_sizes(4)
    dist: dict[int, tuple[int, int]] = {}
    times: dict[int, float] = {}
    proven: dict[int, int] = {}
    for rep, entry in db.entries.items():
        classes, functions = dist.get(entry.size, (0, 0))
        dist[entry.size] = (classes + 1, functions + class_sizes[rep])
        times[entry.size] = times.get(entry.size, 0.0) + entry.generation_time
        proven[entry.size] = proven.get(entry.size, 0) + int(entry.proven)

    headers = [
        "Majority nodes", "Classes", "Functions", "Proven", "Time [s]",
        "Paper classes", "Paper functions",
    ]
    rows = []
    for size in sorted(dist):
        classes, functions = dist[size]
        p_cl, p_fn = PAPER_TABLE1.get(size, (0, 0))
        rows.append(
            [
                str(size),
                str(classes),
                str(functions),
                str(proven[size]),
                f"{times[size]:.1f}",
                str(p_cl),
                str(p_fn),
            ]
        )
    total_classes = sum(c for c, _ in dist.values())
    total_functions = sum(f for _, f in dist.values())
    rows.append(
        [
            "Σ",
            str(total_classes),
            str(total_functions),
            str(sum(proven.values())),
            f"{sum(times.values()):.1f}",
            "222",
            "65536",
        ]
    )
    text = render_table(
        headers, rows, "Table I — optimal MIGs for all 4-variable NPN classes"
    )
    return text, dist


def test_table1_reproduction(db, benchmark):
    text, dist = build_table1(db)
    print("\n" + text)
    write_result("table1", text)

    # Invariants: full coverage and exact low-size rows.
    assert sum(c for c, _ in dist.values()) == 222
    assert sum(f for _, f in dist.values()) == 65536
    for size in (0, 1, 2, 3):
        assert dist[size] == PAPER_TABLE1[size], f"size {size} row diverges"
    # Upper-bound property: no entry may be SMALLER than the paper's
    # minimum; cumulative counts up to each size never exceed the paper's.
    cumulative = 0
    paper_cumulative = 0
    for size in range(0, 10):
        cumulative += dist.get(size, (0, 0))[0]
        paper_cumulative += PAPER_TABLE1.get(size, (0, 0))[0]
        assert cumulative <= paper_cumulative + 0, (
            f"database claims more small classes than the paper at size {size}"
        )

    # Timed kernel: exact synthesis (with minimality proof) of a class
    # whose optimum is 3 gates.
    three_gate_rep = next(
        rep for rep, e in sorted(db.entries.items()) if e.size == 3
    )
    result = benchmark(
        lambda: synthesize_exact(three_gate_rep, 4, conflict_budget=200000)
    )
    assert result.size == 3 and result.proven

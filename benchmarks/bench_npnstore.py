"""Micro-benchmark for the persistent NPN-5 store and large-cut rewriting.

Two headline numbers for ``BENCH_npnstore.json``:

1. **Warm-store vs cold-synthesis lookup speedup.**  For every case the
   cut-function classes its flow actually encountered are resolved
   through a fresh :class:`DynamicDatabase` twice — once with no store
   attached (every class pays heuristic synthesis) and once against the
   populated store file (every class is a disk-tier probe).  Min-of-N
   per side, geomean across cases.  This is the quantity the store
   exists to improve: the second process to ever see a cut function
   should not pay for it again.

2. **cut_size=5 vs cut_size=4 size reduction on the Table III suite.**
   The same flow — converge the depth-optimized baseline under BF —
   runs once against the packaged exact NPN-4 database and once at
   ``cut_size=5`` through the full store lifecycle the PR ships:
   cold run populates the store, ``improve_store`` tightens the
   unproven entries in the background (the ``migopt db improve`` path),
   and the warm rerun harvests the improved witnesses.  Every cut-5
   result is asserted equivalent to its baseline.

Protocol notes: flows are deterministic, so sizes need no repetition;
only the lookup timings use the min-of-N cold protocol of
``bench_hotpath.py`` (fresh database per repetition, minimum kept).

Usage::

    PYTHONPATH=src python benchmarks/bench_npnstore.py           # full run
    PYTHONPATH=src python benchmarks/bench_npnstore.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_npnstore.py --check   # enforce floors

Exit status is non-zero in ``--check`` mode when the lookup-speedup
geomean falls below ``--min-warm-speedup`` (default 20x) or fewer than
``--min-wins`` cases see a strictly better cut-5 size.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import tempfile
import time
from pathlib import Path

from repro.core.simulate import check_equivalence
from repro.database import NpnDatabase
from repro.database.store import NpnStore, improve_store
from repro.generators.epfl import arithmetic_suite
from repro.opt.depth_opt import optimize_depth
from repro.opt.flow import optimize_until_convergence
from repro.rewriting.dynamic_db import DynamicDatabase

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: the Table III instances (scaled widths; depth-optimized baselines as
#: in benchmarks/flows.py), in suite order
CASES = (
    "adder", "divisor", "log2", "max",
    "multiplier", "sine", "square-root", "square",
)

#: the CI smoke subset: cases whose improvement phase is sub-second
QUICK_CASES = ("adder", "max", "multiplier", "square")

#: always-on lookup case: random 5-var classes, synthesis-heavy enough
#: that the timing signal dwarfs canonization noise even in --quick
RANDOM_LOOKUP_CLASSES = 48


def geomean(values: list[float]) -> float | None:
    if not values:
        return None
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


def time_lookups(tts: list[int], repeat: int, store_path: Path | None) -> float:
    """Min-of-N seconds to resolve *tts* through a fresh DynamicDatabase.

    A new database per repetition keeps the in-memory LRU cold, so the
    timing isolates the tier under test: heuristic synthesis with no
    store attached, the disk tier with ``store_path``.
    """
    best = None
    for _ in range(repeat):
        db = DynamicDatabase(num_vars=5, store=store_path)
        start = time.perf_counter()
        db.lookup_batch(tts)
        seconds = time.perf_counter() - start
        if store_path is not None:
            assert db.misses == 0, "warm store failed to cover its own classes"
            db.store.close()
        best = seconds if best is None else min(best, seconds)
    assert best is not None
    return best


def run_lookup_case(name: str, tts: list[int], repeat: int,
                    storedir: Path) -> dict:
    """Cold-synthesis vs warm-store resolution of one class set."""
    store_path = storedir / f"lookup-{name}.npn5"
    # Populate the store once (not timed), as the first process would.
    db = DynamicDatabase(num_vars=5, store=NpnStore.open(store_path, 5))
    db.lookup_batch(tts)
    db.store.close()
    cold = time_lookups(tts, repeat, None)
    warm = time_lookups(tts, repeat, store_path)
    return {
        "classes": len(set(tts)),
        "cold_seconds": round(cold, 5),
        "warm_seconds": round(warm, 5),
        "warm_speedup": round(cold / warm, 2),
    }


def run_quality_case(name: str, baseline, db4: NpnDatabase, budget: int,
                     storedir: Path) -> dict:
    """The same BF convergence flow at cut_size 4 and 5 (cold/warm)."""
    out4, _ = optimize_until_convergence(baseline, db4, variant="BF")

    store_path = storedir / f"{name}.npn5"
    cold_db = DynamicDatabase(num_vars=5, store=NpnStore.open(store_path, 5))
    start = time.perf_counter()
    cold, _ = optimize_until_convergence(
        baseline, cold_db, variant="BF", cut_size=5
    )
    cold_seconds = time.perf_counter() - start
    cold_db.store.close()

    store = NpnStore.open(store_path, 5)
    start = time.perf_counter()
    summary = improve_store(store, budget=budget)
    improve_seconds = time.perf_counter() - start

    warm_db = DynamicDatabase(num_vars=5, store=store)
    start = time.perf_counter()
    warm, _ = optimize_until_convergence(
        baseline, warm_db, variant="BF", cut_size=5
    )
    warm_seconds = time.perf_counter() - start
    store.close()

    assert check_equivalence(baseline, warm), f"{name}: cut-5 result diverges"
    return {
        "baseline_size": baseline.num_gates,
        "cut4_size": out4.num_gates,
        "cut5_cold_size": cold.num_gates,
        "cut5_warm_size": warm.num_gates,
        "cut5_wins": warm.num_gates < out4.num_gates,
        "cut4_reduction": round(1 - out4.num_gates / baseline.num_gates, 4),
        "cut5_reduction": round(1 - warm.num_gates / baseline.num_gates, 4),
        "classes_improved": summary["improved"],
        "classes_proven": summary["proven"],
        "cold_flow_seconds": round(cold_seconds, 3),
        "improve_seconds": round(improve_seconds, 3),
        "warm_flow_seconds": round(warm_seconds, 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"only run the smoke cases {QUICK_CASES}")
    parser.add_argument("--repeat", type=int, default=3,
                        help="repetitions per lookup timing; minimum kept")
    parser.add_argument("--budget", type=int, default=15000,
                        help="conflict budget per entry for the improve phase")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when a floor below is missed")
    parser.add_argument("--min-warm-speedup", type=float, default=20.0,
                        help="floor for the warm-lookup geomean in --check")
    parser.add_argument("--min-wins", type=int, default=None,
                        help="cases where cut-5 must strictly beat cut-4 "
                        "(default: half the cases, i.e. 4 of 8 full, 2 quick)")
    parser.add_argument("-o", "--output", type=Path,
                        default=RESULTS_DIR / "BENCH_npnstore.json")
    args = parser.parse_args(argv)

    names = QUICK_CASES if args.quick else CASES
    min_wins = args.min_wins if args.min_wins is not None else len(names) // 2
    db4 = NpnDatabase.load()
    suite = arithmetic_suite()
    failures: list[str] = []

    with tempfile.TemporaryDirectory(prefix="bench-npnstore-") as tmp:
        storedir = Path(tmp)

        quality: dict[str, dict] = {}
        wins = 0
        for name in names:
            baseline = optimize_depth(suite[name], rounds=2)
            entry = run_quality_case(name, baseline, db4, args.budget, storedir)
            quality[name] = entry
            wins += entry["cut5_wins"]
            print(f"{name:12} cut4 {entry['cut4_size']:>5}  "
                  f"cut5 cold {entry['cut5_cold_size']:>5} -> warm "
                  f"{entry['cut5_warm_size']:>5}  "
                  f"({'win' if entry['cut5_wins'] else 'tie/loss'}, improve "
                  f"{entry['improve_seconds']:.1f}s)")
        print(f"cut-5 strictly better on {wins}/{len(names)} instances")
        if args.check and wins < min_wins:
            failures.append(
                f"cut-5 beat cut-4 on only {wins}/{len(names)} cases "
                f"(floor {min_wins})"
            )

        lookups: dict[str, dict] = {}
        speedups: list[float] = []
        rng = random.Random(0x5EED)
        lookup_sets = {
            "random": [rng.getrandbits(32) for _ in range(RANDOM_LOOKUP_CLASSES)],
        }
        for name in names:
            # Re-harvest each flow's real working set from its store.
            store = NpnStore.open(storedir / f"{name}.npn5", 5)
            reps = sorted(store.index)
            store.close()
            if len(reps) >= 8:  # tiny sets time the clock, not the tier
                lookup_sets[name] = reps
        for name, tts in lookup_sets.items():
            entry = run_lookup_case(name, tts, args.repeat, storedir)
            lookups[name] = entry
            speedups.append(entry["warm_speedup"])
            print(f"lookup {name:12} {entry['classes']:>3} classes  cold "
                  f"{entry['cold_seconds']:.4f}s -> warm "
                  f"{entry['warm_seconds']:.4f}s  ({entry['warm_speedup']}x)")

    lookup_geomean = round(geomean(speedups), 2)
    print(f"geomean warm-store lookup speedup: {lookup_geomean}x")
    if args.check and lookup_geomean < args.min_warm_speedup:
        failures.append(
            f"lookup geomean {lookup_geomean}x below the floor "
            f"{args.min_warm_speedup}x"
        )

    payload = {
        "benchmark": "npnstore",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "quick": args.quick,
        "repeat": args.repeat,
        "improve_budget": args.budget,
        "geomean_warm_lookup_speedup": lookup_geomean,
        "cut5_wins": wins,
        "cases_total": len(names),
        "lookup_cases": lookups,
        "quality_cases": quality,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2, sort_keys=True)
        fp.write("\n")
    print(f"wrote {args.output}")

    for failure in failures:
        print(f"CHECK FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())

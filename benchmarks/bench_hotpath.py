"""Micro-benchmark for the functional-hashing hot path.

Times one cold-cache BF pass over the word-level generator circuits and
writes ``BENCH_hotpath.json`` with wall-clock numbers, speedups against
the checked-in pre-optimization baseline
(``benchmarks/results/BENCH_hotpath_baseline.json``), and the hot-path
cache hit rates reported by :class:`repro.runtime.metrics.PassMetrics`.

Protocol (must match the baseline capture): before each case the global
NPN canonization memo is cleared, then a single BF pass runs and its
wall-clock time is recorded; with ``--repeat N`` each case is repeated
cold and the minimum is kept.  "Cold" is the honest setting for a
rewriting pass — a user optimizing one circuit pays the canonization
cost once, and warm-memo numbers would mostly measure the lru_cache.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py            # full run
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_hotpath.py --check    # fail on >2x regression

Exit status is non-zero in ``--check`` mode when any case regressed more
than ``--max-regression`` (default 2.0x) against the baseline.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import random

from repro.core import npn
from repro.core.simengine import simulate_network
from repro.database import NpnDatabase
from repro.generators.epfl import adder, log2, multiplier, sine, square_root
from repro.rewriting.engine import functional_hashing
from repro.runtime.metrics import PassMetrics

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_hotpath_baseline.json"

#: name -> circuit factory; sizes chosen so the full run stays under a
#: minute while the biggest instances dominate the timing signal.
CASES = {
    "adder32": lambda: adder(32),
    "multiplier8": lambda: multiplier(8),
    "multiplier12": lambda: multiplier(12),
    "square_root10": lambda: square_root(10),
    "square_root16": lambda: square_root(16),
    "sine8": lambda: sine(8),
    "sine12": lambda: sine(12),
    "log2_10": lambda: log2(10),
}

#: the subset used by the CI smoke job
QUICK_CASES = ("adder32", "multiplier8", "square_root10", "sine8")

#: simulation microbench instances — all at least ~1k gates, spanning
#: shallow/wide (multiplier) to deep/narrow (square root) level shapes
SIM_CASES = {
    "multiplier20": lambda: multiplier(20),
    "sine12": lambda: sine(12),
    "log2_10": lambda: log2(10),
    "square_root24": lambda: square_root(24),
}

QUICK_SIM_CASES = ("multiplier20", "sine12")

#: fraig-style random-vector protocol: this many 64-bit rounds per case
SIM_ROUNDS = 16
SIM_WIDTH = 64


def run_sim_case(factory, repeat: int) -> dict:
    """Time fraig-style random-vector simulation: seed loop vs the engine.

    The *seed* path is what the pre-kernel tree did for signatures and
    randomized equivalence: one big-int sweep over the network per
    64-bit round (``backend="bigint"`` is that historical loop,
    bit-for-bit — see tests/core/test_simengine.py).  The *engine* path
    batches all rounds into a single wide word per PI and runs the
    numpy backend once, level by level.  Same vectors, same results
    (asserted); the speedup is the simulation-engine headline number.
    """
    net = factory()
    rng = random.Random(0xC0FFEE)
    rounds = [
        [rng.getrandbits(SIM_WIDTH) for _ in range(net.num_pis)]
        for _ in range(SIM_ROUNDS)
    ]
    combined = [
        sum(rounds[r][i] << (SIM_WIDTH * r) for r in range(SIM_ROUNDS))
        for i in range(net.num_pis)
    ]
    mask = (1 << SIM_WIDTH) - 1
    best_seed = best_engine = None
    for _ in range(repeat):
        start = time.perf_counter()
        seed_out = [
            simulate_network(net, words, SIM_WIDTH, backend="bigint")
            for words in rounds
        ]
        seconds = time.perf_counter() - start
        best_seed = seconds if best_seed is None else min(best_seed, seconds)

        start = time.perf_counter()
        engine_out = simulate_network(
            net, combined, SIM_WIDTH * SIM_ROUNDS, backend="numpy"
        )
        seconds = time.perf_counter() - start
        best_engine = (
            seconds if best_engine is None else min(best_engine, seconds)
        )
    for r in range(SIM_ROUNDS):
        got = [(w >> (SIM_WIDTH * r)) & mask for w in engine_out]
        assert got == seed_out[r], f"backend mismatch in round {r}"
    return {
        "gates": net.num_gates,
        "levels": len(net.arrays().sim_levels),
        "rounds": SIM_ROUNDS,
        "width": SIM_WIDTH,
        "seed_seconds": round(best_seed, 5),
        "engine_seconds": round(best_engine, 5),
        "speedup_vs_seed": round(best_seed / best_engine, 2),
    }


def run_case(db: NpnDatabase, factory, variant: str, repeat: int) -> dict:
    """Time *repeat* cold BF passes over one circuit; keep the fastest."""
    mig = factory()
    best_seconds = None
    best_metrics: PassMetrics | None = None
    size_after = mig.num_gates
    for _ in range(repeat):
        # Cold protocol: drop the scalar lru AND the batch memo — the
        # array pipeline must win on genuinely cold canonizations, not
        # by replaying a warm table the baseline never had.
        npn.canonize_cache_clear()
        metrics = PassMetrics(variant=variant)
        start = time.perf_counter()
        result = functional_hashing(mig, db, variant, metrics=metrics)
        seconds = time.perf_counter() - start
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
            best_metrics = metrics
            size_after = result.num_gates
    assert best_seconds is not None and best_metrics is not None
    return {
        "size_before": mig.num_gates,
        "size_after": size_after,
        "pass_seconds": round(best_seconds, 4),
        "gates_per_second": round(mig.num_gates / best_seconds, 1),
        "db_hit_rate": round(best_metrics.db_hit_rate, 4),
        "npn_cache_hit_rate": round(best_metrics.npn_cache_hit_rate, 4),
        "cut_function_hit_rate": round(best_metrics.cut_function_hit_rate, 4),
        "cuts_considered": best_metrics.cuts_considered,
        "phase_seconds": {
            k: round(v, 6) for k, v in best_metrics.phase_seconds.items()
        },
    }


def load_baseline(path: Path) -> dict | None:
    try:
        with open(path, "r", encoding="utf-8") as fp:
            return json.load(fp)
    except (OSError, json.JSONDecodeError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"only run the smoke cases {QUICK_CASES}")
    parser.add_argument("--repeat", type=int, default=3,
                        help="cold repetitions per case; the minimum is kept")
    parser.add_argument("--variant", default="BF",
                        help="functional-hashing variant to time")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if any case regresses more than "
                        "--max-regression vs the checked-in baseline")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="allowed slowdown factor in --check mode")
    parser.add_argument("--min-sim-speedup", type=float, default=None,
                        help="in --check mode, fail when the simulation "
                        "microbench geomean falls below this factor")
    parser.add_argument("--min-rewrite-speedup", type=float, default=None,
                        help="in --check mode, fail when the rewriting "
                        "geomean speedup vs baseline falls below this floor")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument("-o", "--output", type=Path,
                        default=RESULTS_DIR / "BENCH_hotpath.json")
    args = parser.parse_args(argv)


    db = NpnDatabase.load()
    names = QUICK_CASES if args.quick else tuple(CASES)
    baseline = load_baseline(args.baseline)
    baseline_cases = (baseline or {}).get("cases", {})

    cases: dict[str, dict] = {}
    speedups: list[float] = []
    regressions: list[str] = []
    for name in names:
        entry = run_case(db, CASES[name], args.variant, args.repeat)
        base = baseline_cases.get(name)
        if base and base.get("pass_seconds"):
            speedup = base["pass_seconds"] / entry["pass_seconds"]
            entry["speedup_vs_baseline"] = round(speedup, 2)
            speedups.append(speedup)
            if speedup < 1.0 / args.max_regression:
                regressions.append(
                    f"{name}: {entry['pass_seconds']}s vs baseline "
                    f"{base['pass_seconds']}s ({1 / speedup:.2f}x slower)"
                )
        cases[name] = entry
        speedup_note = (
            f"  ({entry['speedup_vs_baseline']}x vs baseline)"
            if "speedup_vs_baseline" in entry else ""
        )
        print(f"{name:16} {entry['size_before']:>5} gates  "
              f"{entry['pass_seconds']:.4f}s{speedup_note}")

    geomean = None
    if speedups:
        product = 1.0
        for s in speedups:
            product *= s
        geomean = round(product ** (1.0 / len(speedups)), 2)
        print(f"geomean speedup vs baseline: {geomean}x")
        if args.min_rewrite_speedup and geomean < args.min_rewrite_speedup:
            regressions.append(
                f"rewriting geomean {geomean}x below the "
                f"--min-rewrite-speedup floor {args.min_rewrite_speedup}x"
            )

    sim_names = QUICK_SIM_CASES if args.quick else tuple(SIM_CASES)
    sim_cases: dict[str, dict] = {}
    sim_speedups: list[float] = []
    for name in sim_names:
        entry = run_sim_case(SIM_CASES[name], args.repeat)
        sim_cases[name] = entry
        sim_speedups.append(entry["speedup_vs_seed"])
        print(f"sim {name:16} {entry['gates']:>5} gates  "
              f"seed {entry['seed_seconds']:.4f}s -> engine "
              f"{entry['engine_seconds']:.4f}s  "
              f"({entry['speedup_vs_seed']}x)")
    sim_geomean = None
    if sim_speedups:
        product = 1.0
        for s in sim_speedups:
            product *= s
        sim_geomean = round(product ** (1.0 / len(sim_speedups)), 2)
        print(f"geomean simulation speedup vs seed big-int loop: {sim_geomean}x")
        if args.min_sim_speedup and sim_geomean < args.min_sim_speedup:
            regressions.append(
                f"simulation geomean {sim_geomean}x below the "
                f"--min-sim-speedup floor {args.min_sim_speedup}x"
            )

    payload = {
        "schema": "bench-hotpath/1",
        "label": "current tree",
        "variant": args.variant,
        "python": platform.python_version(),
        "quick": args.quick,
        "repeat": args.repeat,
        "geomean_speedup_vs_baseline": geomean,
        "cases": cases,
        "sim_geomean_speedup_vs_seed": sim_geomean,
        "sim_cases": sim_cases,
    }
    args.output.parent.mkdir(parents=True, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2)
        fp.write("\n")
    print(f"written to {args.output}")

    if args.check and regressions:
        for line in regressions:
            print(f"REGRESSION  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation — priority-cut and candidate-list budgets, and 5-input cuts.

Two design choices the implementation (like the paper's) must fix:

* the number of cuts kept per node (priority cuts, ref. [11]) and the
  number of candidates per node in Algorithm 2 ("to reduce the run-time
  requirements, we only store a predetermined number of best candidates");
* the cut arity: 4 inputs with the precomputed 222-class database versus
  5 inputs with the on-demand database (Sec. IV: "Already for 5 inputs,
  the enumeration of all NPN classes becomes impractical, which can be
  circumvented by considering a much smaller subset, see, e.g., [9]").

This benchmark sweeps both on one representative instance and records the
quality/run-time trade-off.  Timed kernel: BF at the default budgets.
"""

from __future__ import annotations

import time

from harness import render_table, write_result

from repro.core.simulate import equivalent_random
from repro.generators.epfl import square_root
from repro.rewriting.bottom_up import rewrite_bottom_up
from repro.rewriting.dynamic_db import DynamicDatabase
from repro.rewriting.engine import functional_hashing


def test_ablation_cut_and_candidate_limits(db, benchmark):
    mig = square_root(10)
    headers = ["cut_limit", "candidate_limit", "size", "depth", "runtime [s]"]
    rows = []
    sizes = {}
    for cut_limit in (2, 8, 16):
        for candidate_limit in (1, 3):
            start = time.perf_counter()
            out = rewrite_bottom_up(
                mig, db, fanout_free=True,
                cut_limit=cut_limit, candidate_limit=candidate_limit,
            )
            runtime = time.perf_counter() - start
            assert equivalent_random(mig, out, num_rounds=4)
            sizes[(cut_limit, candidate_limit)] = out.num_gates
            rows.append(
                [str(cut_limit), str(candidate_limit), str(out.num_gates),
                 str(out.depth()), f"{runtime:.2f}"]
            )
    text = render_table(
        headers, rows, "Ablation — priority-cut and candidate budgets (BF on square-root)"
    )
    print("\n" + text)
    write_result("ablation_params", text)

    # More cuts can only help quality (same candidate budget).
    assert sizes[(8, 1)] <= sizes[(2, 1)]
    assert sizes[(16, 3)] <= sizes[(2, 3)]

    benchmark.pedantic(
        lambda: rewrite_bottom_up(mig, db, fanout_free=True),
        rounds=1, iterations=1,
    )


def test_ablation_five_input_cuts(db, benchmark):
    mig = square_root(8)
    headers = ["configuration", "size", "depth", "runtime [s]", "db entries built"]
    rows = []
    start = time.perf_counter()
    four = functional_hashing(mig, db, "TF", cut_size=4)
    t4 = time.perf_counter() - start
    rows.append(["4-cut, precomputed 222-class db", str(four.num_gates),
                 str(four.depth()), f"{t4:.2f}", "222 (offline)"])

    db5 = DynamicDatabase(num_vars=5)
    start = time.perf_counter()
    five = functional_hashing(mig, db5, "TF", cut_size=5)
    t5 = time.perf_counter() - start
    rows.append(["5-cut, on-demand db (ref. [9] idea)", str(five.num_gates),
                 str(five.depth()), f"{t5:.2f}", str(db5.misses)])

    assert equivalent_random(mig, four, num_rounds=4)
    assert equivalent_random(mig, five, num_rounds=4)
    text = render_table(headers, rows, "Ablation — 4-input vs 5-input cut rewriting")
    print("\n" + text)
    write_result("ablation_cut5", text)

    # The on-demand database touches only the working set, far below the
    # 616 126 classes a full NPN-5 enumeration would need.
    assert 0 < db5.misses < 5000

    benchmark.pedantic(
        lambda: functional_hashing(mig, DynamicDatabase(num_vars=5), "TF", cut_size=5),
        rounds=1, iterations=1,
    )

"""Micro-benchmark for cold exact synthesis (Sec. III of the paper).

Times :meth:`repro.exact.synthesis.ExactSynthesizer.synthesize` cold —
fresh synthesizer, fresh encodings, no warm state — over a fixed set of
NPN-4 class representatives spanning database sizes 2..5, and writes
``BENCH_exact.json`` with wall-clock numbers, per-case speedups against
the checked-in pre-optimization baseline
(``benchmarks/results/BENCH_exact_baseline.json``) and the solver
counters (conflicts, propagations, decisions, restarts, learned
clauses) in the :class:`repro.runtime.metrics.PassMetrics` key schema.

Protocol (must match the baseline capture, mirroring
``bench_hotpath.py``): each case runs ``--repeat N`` times cold and the
minimum wall-clock time is kept.  Every run must *prove* the minimum
size; the harness fails loudly if a case returns unproven or disagrees
with the expected size, so a "speedup" can never come from giving a
wrong answer.

Usage::

    PYTHONPATH=src python benchmarks/bench_exact.py            # full run
    PYTHONPATH=src python benchmarks/bench_exact.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_exact.py --check    # fail on >2x regression

Exit status is non-zero in ``--check`` mode when any case regressed more
than ``--max-regression`` (default 2.0x) against the baseline.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.exact.synthesis import ExactSynthesizer

RESULTS_DIR = Path(__file__).resolve().parent / "results"
BASELINE_PATH = RESULTS_DIR / "BENCH_exact_baseline.json"

#: NPN-4 class representative -> known minimum size.  Chosen to span the
#: database size histogram while keeping the *pre-optimization* full run
#: under ~2 minutes (size-6/7 classes take minutes each on the seed and
#: would make baseline capture dishonest-by-timeout).
CASES: dict[str, tuple[int, int]] = {
    "0x0017": (0x0017, 2),
    "0x017f": (0x017F, 2),
    "0x0006": (0x0006, 3),
    "0x001b": (0x001B, 3),
    "0x003c": (0x003C, 3),
    "0x0016": (0x0016, 4),
    "0x0019": (0x0019, 4),
    "0x0069": (0x0069, 4),
    "0x003d": (0x003D, 4),
    "0x001e": (0x001E, 4),
    "0x01fe": (0x01FE, 5),
}

#: the subset used by the CI smoke job (fast even on the seed tree)
QUICK_CASES = ("0x0017", "0x0006", "0x001b", "0x0016", "0x0069")

#: per-size conflict budget; generous so every case proves its minimum
CONFLICT_BUDGET = 500_000


def run_case(
    spec: int, expected_size: int, repeat: int, backend: str = "internal"
) -> dict:
    """Time *repeat* cold synthesis runs of *spec*; keep the fastest."""
    best_seconds = None
    best = None
    backend_events: dict[str, int] = {}
    for _ in range(repeat):
        synthesizer = ExactSynthesizer(
            conflict_budget=CONFLICT_BUDGET, sat_backend=backend
        )
        start = time.perf_counter()
        result = synthesizer.synthesize(spec, 4)
        seconds = time.perf_counter() - start
        if not result.proven or result.size != expected_size:
            raise SystemExit(
                f"bench_exact: 0x{spec:04x} returned size={result.size} "
                f"proven={result.proven}, expected proven size {expected_size}"
            )
        if result.mig.simulate()[0] != spec:
            raise SystemExit(f"bench_exact: 0x{spec:04x} produced a wrong MIG")
        for key, count in getattr(result, "backend_events", {}).items():
            backend_events[key] = backend_events.get(key, 0) + count
        if best_seconds is None or seconds < best_seconds:
            best_seconds = seconds
            best = result
    assert best_seconds is not None and best is not None
    skipped = sorted(k for k, v in best.k_outcomes.items() if v == "skipped")
    entry = {
        "size": best.size,
        # 6 decimals: table-answered cases finish in tens of microseconds
        "synth_seconds": round(best_seconds, 6),
        "skipped_sizes": skipped,
        # Solver counters in the PassMetrics key schema (sat_*); the seed
        # tree predates some counters, hence the getattr defaults.
        "sat_conflicts": best.conflicts,
        "sat_propagations": getattr(best, "propagations", 0),
        "sat_decisions": getattr(best, "decisions", 0),
        "sat_restarts": getattr(best, "restarts", 0),
        "sat_learned": getattr(best, "learned", 0),
    }
    if backend != "internal":
        # Per-lane fates across all repetitions: "<backend>:<outcome>"
        # counters, "win-*" marking the lane that decided each race.
        entry["backend_events"] = backend_events
    return entry


def load_baseline(path: Path) -> dict | None:
    try:
        with open(path, "r", encoding="utf-8") as fp:
            return json.load(fp)
    except (OSError, json.JSONDecodeError):
        return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help=f"only run the smoke cases {QUICK_CASES}")
    parser.add_argument("--repeat", type=int, default=3,
                        help="cold repetitions per case; the minimum is kept")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero if any case regresses more than "
                        "--max-regression vs the checked-in baseline")
    parser.add_argument("--max-regression", type=float, default=2.0,
                        help="allowed slowdown factor in --check mode")
    parser.add_argument("--backend", choices=("internal", "auto", "portfolio"),
                        default="internal",
                        help="SAT backend mode; 'portfolio' races external "
                        "DIMACS solvers ($REPRO_SAT_SOLVERS / kissat / "
                        "cadical on $PATH) and records per-backend win "
                        "counts in the output")
    parser.add_argument("--baseline", type=Path, default=BASELINE_PATH)
    parser.add_argument("-o", "--output", type=Path,
                        default=RESULTS_DIR / "BENCH_exact.json")
    args = parser.parse_args(argv)

    # Build the small-MIG witness table once before any clock starts: it
    # is a per-process lru_cached constant (a function of the variable
    # count only, ~0.07s for n=4), exactly like the NPN database the
    # rewriting benchmarks load up front.  Timing it inside the first
    # case would misattribute a fixed setup cost to that case.
    from repro.exact.bounds import optimal_small_migs

    optimal_small_migs(4)

    names = QUICK_CASES if args.quick else tuple(CASES)
    baseline = load_baseline(args.baseline)
    baseline_cases = (baseline or {}).get("cases", {})

    cases: dict[str, dict] = {}
    speedups: list[float] = []
    regressions: list[str] = []
    for name in names:
        spec, expected_size = CASES[name]
        entry = run_case(spec, expected_size, args.repeat, backend=args.backend)
        base = baseline_cases.get(name)
        if base and base.get("synth_seconds"):
            # Floor at 1us: a case the table answers faster than the
            # clock resolves would otherwise divide by zero.
            speedup = base["synth_seconds"] / max(entry["synth_seconds"], 1e-6)
            entry["speedup_vs_baseline"] = round(speedup, 2)
            speedups.append(speedup)
            if speedup < 1.0 / args.max_regression:
                regressions.append(
                    f"{name}: {entry['synth_seconds']}s vs baseline "
                    f"{base['synth_seconds']}s ({1 / speedup:.2f}x slower)"
                )
            if base.get("size") is not None and base["size"] != entry["size"]:
                raise SystemExit(
                    f"bench_exact: {name} minimum size changed: "
                    f"baseline {base['size']} vs current {entry['size']}"
                )
        cases[name] = entry
        speedup_note = (
            f"  ({entry['speedup_vs_baseline']}x vs baseline)"
            if "speedup_vs_baseline" in entry else ""
        )
        print(f"{name:8} size {entry['size']}  {entry['synth_seconds']:8.4f}s  "
              f"{entry['sat_conflicts']:>7} conflicts{speedup_note}")

    backend_wins: dict[str, int] = {}
    if args.backend != "internal":
        for entry in cases.values():
            for key, count in entry.get("backend_events", {}).items():
                lane, _, outcome = key.partition(":")
                if outcome.startswith("win-"):
                    backend_wins[lane] = backend_wins.get(lane, 0) + count
        wins = ", ".join(f"{lane}={n}" for lane, n in sorted(backend_wins.items()))
        print(f"backend wins: {wins or 'none'}")

    geomean = None
    if speedups:
        product = 1.0
        for s in speedups:
            product *= s
        geomean = round(product ** (1.0 / len(speedups)), 2)
        print(f"geomean speedup vs baseline: {geomean}x")

    payload = {
        "schema": "bench-exact/1",
        "label": "current tree",
        "python": platform.python_version(),
        "quick": args.quick,
        "repeat": args.repeat,
        "conflict_budget": CONFLICT_BUDGET,
        "sat_backend": args.backend,
        "geomean_speedup_vs_baseline": geomean,
        "cases": cases,
    }
    if args.backend != "internal":
        payload["backend_wins"] = backend_wins
    args.output.parent.mkdir(parents=True, exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as fp:
        json.dump(payload, fp, indent=2)
        fp.write("\n")
    print(f"written to {args.output}")

    if args.check and regressions:
        for line in regressions:
            print(f"REGRESSION  {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

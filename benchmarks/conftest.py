"""Shared fixtures for the reproduction benchmarks."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.database import NpnDatabase


@pytest.fixture(scope="session")
def db() -> NpnDatabase:
    """The packaged NPN-4 database."""
    return NpnDatabase.load()


@pytest.fixture(scope="session")
def table3_runs(db):
    """The Table III flow results, shared with the Table IV benchmark."""
    from flows import run_table3_flow

    return run_table3_flow(db)

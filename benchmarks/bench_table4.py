"""Table IV — area and depth after technology mapping.

The paper maps each variant's output (and the baseline) with ABC onto a
standard-cell library and reports area (A) and depth (D); the functional
hashing results improved 7 of 8 best-known mapped areas.  We substitute a
cut-based mapper with a generic library (DESIGN.md §4), map the same
optimized networks, and check the paper's qualitative findings:

* the best mapped area per benchmark comes from an optimized variant (or
  ties the baseline) for most of the suite;
* best results are *distributed* across variants — no single variant wins
  everywhere (the paper highlights this as the reason to keep several).

Timed kernel: mapping the BF-optimized square-root instance.
"""

from __future__ import annotations

from harness import PAPER_VARIANTS, full_size, geomean, render_table, write_result

from repro.mapping.mapper import map_mig


def build_table4(table3_runs) -> tuple[str, dict]:
    headers = ["Benchmark", "base A", "base D"]
    for variant in PAPER_VARIANTS:
        headers += [f"{variant} A", f"{variant} D"]
    rows = []
    stats = {
        "wins": {v: 0 for v in PAPER_VARIANTS},
        "improved": 0,
        "ratios": {v: [] for v in PAPER_VARIANTS},
        "count": 0,
    }
    for run in table3_runs:
        base_map = map_mig(run.baseline)
        row = [run.name, f"{base_map.area:.0f}", str(base_map.depth)]
        best_variant = None
        best_area = None
        for variant in PAPER_VARIANTS:
            mapped = map_mig(run.variants[variant].mig)
            row += [f"{mapped.area:.0f}", str(mapped.depth)]
            stats["ratios"][variant].append(mapped.area / max(1.0, base_map.area))
            if best_area is None or mapped.area < best_area:
                best_area = mapped.area
                best_variant = variant
        rows.append(row)
        stats["count"] += 1
        stats["wins"][best_variant] += 1
        if best_area <= base_map.area:
            stats["improved"] += 1

    avg_row = ["Average area (new/old)", "", ""]
    for variant in PAPER_VARIANTS:
        avg_row += [f"{geomean(stats['ratios'][variant]):.2f}", ""]
    rows.append(avg_row)

    mode = "paper sizes" if full_size() else "reduced widths (REPRO_FULL_SIZE=1 for paper sizes)"
    text = render_table(
        headers, rows, f"Table IV — area and depth after technology mapping ({mode})"
    )
    return text, stats


def test_table4_reproduction(db, table3_runs, benchmark):
    text, stats = build_table4(table3_runs)
    print("\n" + text)
    write_result("table4", text)

    # Paper finding: optimized MIGs give better (or equal) mapped area for
    # the large majority of the suite (7 of 8 in the paper).
    assert stats["improved"] >= stats["count"] - 2

    # Paper finding: the best mapping results are distributed across
    # variants — at least two different variants win some benchmark,
    # unless one variant strictly dominates (possible at reduced sizes).
    winners = [v for v, wins in stats["wins"].items() if wins > 0]
    assert len(winners) >= 1
    assert sum(stats["wins"].values()) == stats["count"]

    # At least one fanout-free variant must reduce average mapped area.
    assert min(
        geomean(stats["ratios"]["TF"]), geomean(stats["ratios"]["BF"])
    ) <= 1.0

    sqrt_run = next(run for run in table3_runs if run.name == "square-root")
    benchmark.pedantic(
        lambda: map_mig(sqrt_run.variants["BF"].mig), rounds=1, iterations=1
    )

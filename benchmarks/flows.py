"""The shared Table III / Table IV experiment flow.

Reproduces the paper's experimental setup: each arithmetic benchmark is
first brought to a "heavily optimized" state with the algebraic depth
optimization of refs [3]/[4] (the paper starts from the best-known MIGs,
which were produced by exactly that flow), then every functional-hashing
variant of Sec. V-C is applied once, as in the paper ("we have performed
the functional hashing algorithm only once").

The per-(instance, variant) optimizations run through the supervised
batch runtime (`repro.runtime.supervisor`): each is an isolated worker
subprocess scheduled from a crash-safe journal, so a pathological
instance cannot take down the whole table run, and the batch spreads
across `REPRO_BENCH_JOBS` workers (default: one per CPU, capped at 4).
Set ``REPRO_BENCH_JOBS=0`` to fall back to in-process execution.
"""

from __future__ import annotations

import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from harness import PAPER_VARIANTS, full_size, write_json_result

from repro.core.mig import Mig
from repro.core.simulate import equivalent_random
from repro.generators.epfl import arithmetic_suite
from repro.io.blif import read_blif, write_blif
from repro.opt.depth_opt import optimize_depth
from repro.rewriting.engine import RewriteStats, functional_hashing
from repro.runtime.jobs import JobSpec
from repro.runtime.metrics import PassMetrics
from repro.runtime.supervisor import run_batch


@dataclass
class VariantResult:
    size: int
    depth: int
    runtime: float
    mig: Mig
    stats: RewriteStats


@dataclass
class BenchmarkRun:
    name: str
    baseline: Mig
    baseline_size: int
    baseline_depth: int
    variants: dict[str, VariantResult]


def _batch_jobs() -> int:
    """Worker count for the benchmark batch (0 = run in-process)."""
    value = os.environ.get("REPRO_BENCH_JOBS", "")
    if value:
        return max(0, int(value))
    return min(4, os.cpu_count() or 1)


def _baselines() -> dict[str, Mig]:
    return {
        name: optimize_depth(mig, rounds=2)
        for name, mig in arithmetic_suite(full_size=full_size()).items()
    }


def run_table3_flow(db, variants: tuple[str, ...] = PAPER_VARIANTS) -> list[BenchmarkRun]:
    """Generate, depth-optimize, and rewrite every suite instance."""
    baselines = _baselines()
    num_workers = _batch_jobs()
    if num_workers == 0:
        return _run_in_process(db, baselines, variants)
    return _run_supervised(baselines, variants, num_workers)


def _run_supervised(
    baselines: dict[str, Mig],
    variants: tuple[str, ...],
    num_workers: int,
) -> list[BenchmarkRun]:
    """One batch job per (instance, variant), isolated and journaled."""
    with tempfile.TemporaryDirectory(prefix="repro-table3-") as workdir:
        workdir = Path(workdir)
        inputs = workdir / "inputs"
        inputs.mkdir()
        specs = []
        for name, baseline in baselines.items():
            blif_path = inputs / f"{name}.blif"
            with open(blif_path, "w", encoding="utf-8") as fp:
                write_blif(baseline, fp)
            for variant in variants:
                job_id = f"{name}.{variant}"
                specs.append(
                    JobSpec(
                        job_id=job_id,
                        network={"blif": str(blif_path)},
                        script=(variant,),
                        verify="sim",
                        output=str(workdir / "outputs" / f"{job_id}.blif"),
                    )
                )
        report = run_batch(specs, workdir / "batch", num_workers=num_workers)
        write_json_result("table3_batch_report", report.to_dict())
        if report.done != report.total:
            quarantined = [
                job["job_id"] for job in report.jobs if job["state"] == "quarantined"
            ]
            raise AssertionError(
                f"batch finished {report.done}/{report.total} jobs; "
                f"quarantined: {quarantined}"
            )
        by_id = {job["job_id"]: job for job in report.jobs}

        runs = []
        for name, baseline in baselines.items():
            results: dict[str, VariantResult] = {}
            for variant in variants:
                job_id = f"{name}.{variant}"
                summary = by_id[job_id]
                with open(workdir / "outputs" / f"{job_id}.blif",
                          encoding="utf-8") as fp:
                    optimized = read_blif(fp)
                if not equivalent_random(baseline, optimized, num_rounds=4):
                    raise AssertionError(f"{name}/{variant} changed functionality")
                # The RT column of Table III times the rewriting pass, not
                # the worker's process overhead: use the step's runtime.
                step_runtime = sum(
                    step.get("runtime", 0.0) for step in summary.get("steps", [])
                )
                stats = RewriteStats(
                    variant=variant,
                    size_before=summary["size_before"],
                    depth_before=summary["depth_before"],
                    size_after=summary["size_after"],
                    depth_after=summary["depth_after"],
                    runtime=step_runtime or summary["runtime"],
                    metrics=PassMetrics.from_dict(summary.get("metrics", {})),
                )
                results[variant] = VariantResult(
                    optimized.num_gates, optimized.depth(), stats.runtime,
                    optimized, stats,
                )
            runs.append(
                BenchmarkRun(
                    name=name,
                    baseline=baseline,
                    baseline_size=baseline.num_gates,
                    baseline_depth=baseline.depth(),
                    variants=results,
                )
            )
        return runs


# ---------------------------------------------------------------------------
# the standing scenario matrix (`migopt sweep` / bench_matrix.py)
# ---------------------------------------------------------------------------

#: the sweep's instance axis: the 8 EPFL arithmetic instances at their
#: scaled benchmark widths, the 6 random/control instances, wider 64/128-bit
#: generator scenarios, and a mapped-then-reoptimized round trip — 18
#: scenarios per (script × cut × backend) cell.
STANDING_MATRIX_INSTANCES: tuple[dict, ...] = (
    # -- arithmetic half, scaled benchmark widths --
    {"generate": "adder", "width": 32},
    {"generate": "divisor", "width": 12},
    {"generate": "log2", "width": 10},
    {"generate": "max", "width": 24},
    {"generate": "multiplier", "width": 12},
    {"generate": "sine", "width": 10},
    {"generate": "square-root", "width": 10},
    {"generate": "square", "width": 14},
    # -- random/control half --
    {"generate": "arbiter", "width": 16},
    {"generate": "dec", "width": 5},
    {"generate": "int2float", "width": 8},
    {"generate": "priority", "width": 16},
    {"generate": "router"},
    {"generate": "voter", "width": 15},
    # -- 64/128-bit generator widths (linear-depth instances stay cheap) --
    {"generate": "adder", "width": 64},
    {"generate": "adder", "width": 128},
    {"generate": "priority", "width": 128},
    # -- mapped-then-reoptimized round trip --
    {
        "generate": "adder",
        "width": 32,
        "scripts": [["BF", "remap", "BF"]],
    },
)


def standing_sweep_spec(
    verify: str = "sim", time_limit: float | None = 600.0
) -> dict:
    """The standing matrix as a ``migopt sweep`` spec (JSON-ready dict).

    One ``BF`` cell per instance (the paper's best variant), every
    scenario sim-verified; the round-trip instance overrides its script
    axis locally.  ``bench_matrix.py`` runs it and appends trend rows to
    ``benchmarks/results/MATRIX.jsonl``.
    """
    return {
        "name": "standing-matrix",
        "instances": [dict(inst) for inst in STANDING_MATRIX_INSTANCES],
        "scripts": [["BF"]],
        "cut_sizes": [4],
        "sat_backends": ["internal"],
        "verify": verify,
        "time_limit": time_limit,
    }


def _run_in_process(
    db, baselines: dict[str, Mig], variants: tuple[str, ...]
) -> list[BenchmarkRun]:
    """The pre-supervisor path, kept for REPRO_BENCH_JOBS=0 debugging."""
    runs = []
    for name, baseline in baselines.items():
        results: dict[str, VariantResult] = {}
        for variant in variants:
            optimized, stats = functional_hashing(
                baseline, db, variant, return_stats=True
            )
            if not equivalent_random(baseline, optimized, num_rounds=4):
                raise AssertionError(f"{name}/{variant} changed functionality")
            results[variant] = VariantResult(
                optimized.num_gates, optimized.depth(), stats.runtime, optimized,
                stats,
            )
        runs.append(
            BenchmarkRun(
                name=name,
                baseline=baseline,
                baseline_size=baseline.num_gates,
                baseline_depth=baseline.depth(),
                variants=results,
            )
        )
    return runs

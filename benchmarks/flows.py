"""The shared Table III / Table IV experiment flow.

Reproduces the paper's experimental setup: each arithmetic benchmark is
first brought to a "heavily optimized" state with the algebraic depth
optimization of refs [3]/[4] (the paper starts from the best-known MIGs,
which were produced by exactly that flow), then every functional-hashing
variant of Sec. V-C is applied once, as in the paper ("we have performed
the functional hashing algorithm only once").
"""

from __future__ import annotations

from dataclasses import dataclass

from harness import PAPER_VARIANTS, full_size

from repro.core.mig import Mig
from repro.core.simulate import equivalent_random
from repro.generators.epfl import arithmetic_suite
from repro.opt.depth_opt import optimize_depth
from repro.rewriting.engine import RewriteStats, functional_hashing


@dataclass
class VariantResult:
    size: int
    depth: int
    runtime: float
    mig: Mig
    stats: RewriteStats


@dataclass
class BenchmarkRun:
    name: str
    baseline: Mig
    baseline_size: int
    baseline_depth: int
    variants: dict[str, VariantResult]


def run_table3_flow(db, variants: tuple[str, ...] = PAPER_VARIANTS) -> list[BenchmarkRun]:
    """Generate, depth-optimize, and rewrite every suite instance."""
    runs = []
    for name, mig in arithmetic_suite(full_size=full_size()).items():
        baseline = optimize_depth(mig, rounds=2)
        results: dict[str, VariantResult] = {}
        for variant in variants:
            optimized, stats = functional_hashing(
                baseline, db, variant, return_stats=True
            )
            if not equivalent_random(baseline, optimized, num_rounds=4):
                raise AssertionError(f"{name}/{variant} changed functionality")
            results[variant] = VariantResult(
                optimized.num_gates, optimized.depth(), stats.runtime, optimized,
                stats,
            )
        runs.append(
            BenchmarkRun(
                name=name,
                baseline=baseline,
                baseline_size=baseline.num_gates,
                baseline_depth=baseline.depth(),
                variants=results,
            )
        )
    return runs

"""Shared infrastructure for the table/figure reproduction benchmarks.

Every ``bench_*.py`` regenerates one table or figure of the paper.  Each
prints its table to stdout (run ``pytest benchmarks/ --benchmark-only -s``
to see them live) and writes it to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can reference stable artifacts.

The paper-sized benchmark widths take hours in pure Python, so Table III/IV
default to reduced widths (same structure generators); set the environment
variable ``REPRO_FULL_SIZE=1`` for the paper's exact I/O sizes.
"""

from __future__ import annotations

import os
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Paper values for Table I: majority nodes -> (classes, functions).
PAPER_TABLE1 = {
    0: (2, 10),
    1: (2, 80),
    2: (5, 640),
    3: (18, 3300),
    4: (42, 10352),
    5: (117, 40064),
    6: (35, 11058),
    7: (1, 32),
}

#: Paper values for Table III: benchmark -> (initial size, initial depth).
PAPER_TABLE3_BASELINE = {
    "adder": (2978, 12),
    "divisor": (75666, 636),
    "log2": (37582, 181),
    "max": (7202, 27),
    "multiplier": (41885, 111),
    "sine": (7890, 91),
    "square-root": (52344, 690),
    "square": (19200, 36),
}

#: Paper Table III average improvement rows (size ratio, depth ratio).
PAPER_TABLE3_AVERAGES = {
    "TF": (0.96, 1.09),
    "T": (1.02, 1.12),
    "TFD": (1.00, 1.00),
    "TD": (0.99, 1.02),
    "BF": (0.92, 1.14),
}

#: The variant columns of Tables III and IV, in paper order.
PAPER_VARIANTS = ("TF", "T", "TFD", "TD", "BF")


def full_size() -> bool:
    """True when the harness should use the paper's exact benchmark sizes."""
    return os.environ.get("REPRO_FULL_SIZE", "") not in ("", "0")


def write_result(name: str, text: str) -> Path:
    """Persist a rendered table under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text, encoding="utf-8")
    return path


def write_json_result(name: str, payload: dict) -> Path:
    """Persist a JSON artifact (e.g. a batch report) under benchmarks/results/."""
    import json

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def render_table(headers: list[str], rows: list[list[str]], title: str) -> str:
    """Render a simple aligned text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, ""]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines) + "\n"


def geomean(values: list[float]) -> float:
    """Geometric mean (the paper's 'average improvement' aggregation)."""
    if not values:
        return 1.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))

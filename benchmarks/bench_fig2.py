"""Fig. 2 — the optimal MIG for S_{0,2}(x1, x2, x3, x4).

The paper's hardest 4-variable NPN class is the symmetric function
S_{0,2}, the single class requiring 7 majority nodes (last row of
Table I); Fig. 2 shows one optimal MIG.  We regenerate the structure from
the database entry of the class, verify its function, and report its size
against the paper's 7.

Timed kernel: database lookup + structural instantiation of the class.
"""

from __future__ import annotations

from harness import render_table, write_result

from repro.core.mig import Mig
from repro.core.npn import npn_canonize
from repro.core.truth_table import tt_mask


def s02_truth_table() -> int:
    """S_{0,2}: true iff exactly 0 or 2 of the four inputs are true."""
    tt = 0
    for m in range(16):
        if bin(m).count("1") in (0, 2):
            tt |= 1 << m
    return tt


def test_fig2_reproduction(db, benchmark):
    spec = s02_truth_table()
    rep, _ = npn_canonize(spec, 4)
    entry = db.entries[rep]

    def instantiate() -> Mig:
        mig = Mig(4)
        mig.add_po(db.rebuild(mig, spec, mig.pi_signals()))
        return mig.cleanup()

    mig = benchmark(instantiate)
    assert mig.simulate()[0] == spec

    expression = mig.to_expression(mig.outputs[0])
    headers = ["Property", "Ours", "Paper"]
    rows = [
        ["truth table", f"0x{spec:04x}", "S_{0,2}"],
        ["NPN representative", f"0x{rep:04x}", "-"],
        ["MIG size", str(mig.num_gates), "7"],
        ["MIG depth", str(mig.depth()), "3 (Fig. 2 drawing)"],
        ["size proven minimal", str(entry.proven), "yes (SMT)"],
        ["expression", expression[:70], "Fig. 2"],
    ]
    text = render_table(headers, rows, "Fig. 2 — optimal MIG for S_{0,2}")
    print("\n" + text)
    write_result("fig2", text)

    # The paper proves 7 is optimal; our entry can only match or exceed it.
    assert mig.num_gates >= 7
    assert mig.num_gates <= 9  # L(f) bound from the tree database


def test_fig2_class_is_among_hardest(db):
    """S_{0,2} needs 7 gates in the paper — it must rank near the database top."""
    spec = s02_truth_table()
    rep, _ = npn_canonize(spec, 4)
    size = db.entries[rep].size
    assert 7 <= size <= 9  # paper optimum 7; tree bound L = 9
    harder = sum(1 for e in db.entries.values() if e.size > size)
    assert harder <= 3


def test_fig2_complement_structure(db):
    """S_{0,2} is NPN-equivalent to (x1^x2^x3^x4) | x1x2x3x4 (paper text)."""
    from repro.core.npn import npn_representative
    from repro.core.truth_table import tt_var

    parity = 0
    for i in range(4):
        parity ^= tt_var(4, i)
    conj = tt_mask(4)
    for i in range(4):
        conj &= tt_var(4, i)
    alt = parity | conj
    assert npn_representative(alt, 4) == npn_representative(s02_truth_table(), 4)

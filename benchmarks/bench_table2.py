"""Table II — complexity of 4-variable MIGs: C(f), L(f), D(f).

The paper partitions all 65 536 functions (222 classes) by combinational
complexity C(f) (minimum DAG size), length L(f) (minimum expression size)
and depth D(f).  L and D are mathematical facts that our exhaustive DP /
closure computations reproduce *exactly*; C comes from the database and is
exact where proven, an upper bound otherwise.

Timed kernel: the full L(f) dynamic program for 3 variables.
"""

from __future__ import annotations

from harness import render_table, write_result

from repro.core.npn import npn_class_sizes
from repro.exact.complexity import (
    compute_depth_by_class,
    compute_length_table,
    depth_distribution,
    length_distribution,
)

#: Table II of the paper: measure -> {value: (classes, functions)}.
PAPER_TABLE2 = {
    "C": {0: (2, 10), 1: (2, 80), 2: (5, 640), 3: (18, 3300), 4: (42, 10352),
          5: (117, 40064), 6: (35, 11058), 7: (1, 32)},
    "L": {0: (2, 10), 1: (2, 80), 2: (5, 640), 3: (18, 3300), 4: (37, 9312),
          5: (84, 28680), 6: (63, 22568), 7: (7, 832), 8: (2, 80), 9: (2, 34)},
    "D": {0: (2, 10), 1: (2, 80), 2: (48, 10260), 3: (169, 55184), 4: (1, 2)},
}


def c_distribution(db) -> dict[int, tuple[int, int]]:
    class_sizes = npn_class_sizes(4)
    dist: dict[int, tuple[int, int]] = {}
    for rep, entry in db.entries.items():
        classes, functions = dist.get(entry.size, (0, 0))
        dist[entry.size] = (classes + 1, functions + class_sizes[rep])
    return dict(sorted(dist.items()))


def build_table2(db) -> tuple[str, dict]:
    dists = {
        "C": c_distribution(db),
        "L": length_distribution(4),
        "D": depth_distribution(4),
    }
    headers = ["Value"]
    for measure in ("C", "L", "D"):
        headers += [f"{measure} class.", f"{measure} func.",
                    f"paper {measure} cl.", f"paper {measure} fn."]
    rows = []
    max_value = max(max(d) for d in dists.values())
    for value in range(max_value + 1):
        row = [str(value)]
        for measure in ("C", "L", "D"):
            got = dists[measure].get(value, (0, 0))
            paper = PAPER_TABLE2[measure].get(value, (0, 0))
            row += [str(got[0]), str(got[1]), str(paper[0]), str(paper[1])]
        rows.append(row)
    text = render_table(headers, rows, "Table II — complexity of 4-variable MIGs")
    return text, dists


def test_table2_reproduction(db, benchmark):
    text, dists = build_table2(db)
    print("\n" + text)
    write_result("table2", text)

    # L and D must match the paper exactly — they are exhaustive computations.
    assert dists["L"] == PAPER_TABLE2["L"], "L(f) distribution diverges from Table II"
    assert dists["D"] == PAPER_TABLE2["D"], "D(f) distribution diverges from Table II"
    # C is exact through size 3 and never better than the paper's optimum.
    for value in (0, 1, 2, 3):
        assert dists["C"][value] == PAPER_TABLE2["C"][value]
    assert sum(c for c, _ in dists["C"].values()) == 222

    # Coherence: C(f) <= L(f) class-wise is impossible to violate globally;
    # check the aggregate expectation values instead.
    def mean(dist):
        return sum(v * fn for v, (_, fn) in dist.items()) / 65536

    assert mean(dists["C"]) <= mean(dists["L"]) + 1e-9

    benchmark(lambda: compute_length_table(3))


def test_depth_by_class_is_consistent(db, benchmark):
    """D(f) per class agrees with the distribution and the paper maximum."""
    by_class = benchmark.pedantic(
        lambda: compute_depth_by_class(4), rounds=1, iterations=1
    )
    assert max(by_class.values()) == 4
    assert sum(1 for d in by_class.values() if d == 4) == 1

"""Related-work baseline — MIG functional hashing vs DAG-aware AIG rewriting.

The paper's Sec. I/II position MIG optimization against AIG-based flows
(DAG-aware AIG rewriting, ref. [6], plus balancing, ref. [7]).  This
benchmark runs both flows on the same circuits:

* the MIG flow: functional hashing (BF) on the native MIG;
* the AIG flow: the MIG converted to an AIG, rewritten with 4-cut
  DAG-aware rewriting and balanced.

Sizes are *not* directly comparable across data structures (an AND gate
vs a majority gate), so the table reports each representation's own gate
count plus the technology-mapped area of both results — the apples-to-
apples metric the paper uses in Table IV.

Timed kernel: the AIG rewriting pass on the square-root instance.
"""

from __future__ import annotations

from harness import full_size, geomean, render_table, write_result

from repro.aig.balance import balance
from repro.aig.convert import aig_to_mig, mig_to_aig
from repro.aig.rewrite import rewrite_aig
from repro.core.simulate import equivalent_random
from repro.generators.epfl import arithmetic_suite, square_root
from repro.mapping.mapper import map_mig
from repro.rewriting.engine import functional_hashing


def test_aig_baseline_comparison(db, benchmark):
    headers = [
        "Benchmark", "MIG S", "BF S", "AIG S", "rewritten AIG S",
        "mapped MIG-flow A", "mapped AIG-flow A",
    ]
    rows = []
    mig_areas, aig_areas = [], []
    for name, mig in arithmetic_suite(full_size=full_size()).items():
        mig_opt = functional_hashing(mig, db, "BF")
        aig = mig_to_aig(mig)
        aig_opt = balance(rewrite_aig(aig))
        back = aig_to_mig(aig_opt)
        assert equivalent_random(mig, mig_opt, num_rounds=4)
        assert equivalent_random(mig, back, num_rounds=4)
        mapped_mig = map_mig(mig_opt)
        mapped_aig = map_mig(back)
        rows.append(
            [
                name,
                str(mig.num_gates),
                str(mig_opt.num_gates),
                str(aig.num_gates),
                str(aig_opt.num_gates),
                f"{mapped_mig.area:.0f}",
                f"{mapped_aig.area:.0f}",
            ]
        )
        mig_areas.append(mapped_mig.area)
        aig_areas.append(mapped_aig.area)
    ratio = geomean([m / max(1.0, a) for m, a in zip(mig_areas, aig_areas)])
    rows.append(["Geomean mapped area MIG/AIG", "", "", "", "", f"{ratio:.2f}", ""])
    text = render_table(
        headers, rows,
        "Related-work baseline — MIG functional hashing vs DAG-aware AIG rewriting",
    )
    print("\n" + text)
    write_result("aig_baseline", text)

    # Both flows must reduce their own representation on at least one
    # instance and never break functionality (asserted above).
    assert any(int(r[2]) < int(r[1]) for r in rows[:-1]), "BF never reduced?"
    assert any(int(r[4]) <= int(r[3]) for r in rows[:-1])

    benchmark.pedantic(
        lambda: rewrite_aig(mig_to_aig(square_root(8))), rounds=1, iterations=1
    )

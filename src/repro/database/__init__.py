"""Precomputed minimum-MIG database for 4-input NPN classes (Sec. IV)."""

from .npn_db import DbEntry, NpnDatabase
from .generate import generate_tree_database, improve_with_sat

__all__ = ["DbEntry", "NpnDatabase", "generate_tree_database", "improve_with_sat"]

"""Persistent NPN-5/6 rewrite store: the disk tier behind ``DynamicDatabase``.

The paper's Sec. IV observes that enumerating all 616 126 NPN-5 classes
is impractical and that the cut functions actually occurring in real
netlists form a much smaller subset.  :class:`NpnStore` turns that
subset into a durable asset: the first process ever to synthesize a
best-known MIG for a cut function appends it here, and every later
lookup — in any process, including warm ``migopt serve`` restarts — is
an in-memory dict probe plus a deserialized entry.  Background
``migopt db improve`` jobs tighten unproven entries through the
supervised batch runtime, so the store (and result quality for every
future user) improves with traffic.

Crash-safety model — the PR 1/PR 3 artifact discipline applied to a
growing database:

* **append-only record log** — one JSON line per accepted entry,
  flushed and fsynced before :meth:`put` returns, so an acknowledged
  entry survives ``kill -9`` at any instant;
* **torn-tail-tolerant replay** — a crash mid-append leaves at most one
  torn final line; :meth:`open` replays the prefix of complete records,
  truncates the torn tail in place, and counts it in
  :attr:`torn_records` (never a lost *acknowledged* entry: fsync
  happened strictly before acknowledgement);
* **quarantine-on-corruption** — a log whose header is unreadable,
  whose arity disagrees, or that is corrupt *before* the final line is
  moved aside as ``<name>.corrupt[.N]`` (:func:`repro.runtime.artifacts.
  quarantine`) and the store restarts empty instead of serving bytes it
  cannot trust;
* **atomic compaction** — :meth:`compact` rewrites the log as one
  record per class (temp file + fsync + ``os.replace``), so a crash
  mid-compaction leaves the previous log intact;
* **monotone upgrades** — :meth:`put` accepts a new witness only if it
  is strictly smaller than the incumbent, or proves the incumbent's
  size optimal; the best-known MIG for a class never regresses.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..runtime.artifacts import quarantine
from .npn_db import DbEntry, entry_from_json, entry_to_json

__all__ = ["NpnStore", "StoreCorrupt", "improve_store"]

#: first line of every store log; replay refuses anything else
_MAGIC = "npn-store-v1"


class StoreCorrupt(RuntimeError):
    """Internal signal: the log cannot be trusted past the header."""


def _header_line(num_vars: int) -> str:
    return json.dumps({"format": _MAGIC, "num_vars": num_vars}, sort_keys=True)


def _accepts(old: DbEntry | None, new: DbEntry) -> bool:
    """The monotone upgrade rule shared by :meth:`NpnStore.put` and replay.

    A new witness replaces the incumbent only if it is strictly smaller,
    or newly proven at the same size.  Everything else — larger, equal
    and no new proof — is rejected, so the best-known entry for a class
    can only improve.
    """
    if old is None:
        return True
    if new.size < old.size:
        return True
    return new.size == old.size and new.proven and not old.proven


class NpnStore:
    """Crash-safe, append-only store of best-known MIGs per NPN class.

    >>> store = NpnStore.open("flows.npn5", num_vars=5)
    >>> store.put(entry)          # fsynced before returning True
    >>> store.get(rep)            # in-memory dict probe
    >>> store.compact()           # atomic rewrite, one line per class

    The in-memory index (``rep -> DbEntry``) is rebuilt on open by
    replaying the log, so lookups never touch the disk again until the
    next :meth:`put`.
    """

    def __init__(
        self, path: str | Path, num_vars: int, entries: dict[int, DbEntry],
        torn_records: int = 0, recovered: bool = False,
    ) -> None:
        self.path = Path(path)
        self.num_vars = num_vars
        #: the live index: class representative -> best-known entry
        self.index = entries
        #: records dropped as a torn tail during the last replay
        self.torn_records = torn_records
        #: True when open() quarantined a corrupt log and restarted empty
        self.recovered = recovered
        #: lifetime counters (surfaced through PassMetrics / serve /stats)
        self.appends = 0
        self.rejected = 0
        self._fp = None

    # -- opening and replay ------------------------------------------------

    @classmethod
    def open(cls, path: str | Path, num_vars: int = 5) -> "NpnStore":
        """Open (or create) the store at *path*, replaying its log.

        Replay tolerates exactly one torn final line (the footprint of a
        crash mid-append): the tail is truncated away and counted.  Any
        deeper corruption — bad header, arity mismatch, malformed line
        before the end — quarantines the whole file and starts fresh;
        serving a guess from an untrusted log is worse than re-paying
        synthesis.
        """
        path = Path(path)
        if num_vars < 4 or num_vars > 6:
            raise ValueError("NpnStore supports 4 to 6 variables")
        entries: dict[int, DbEntry] = {}
        torn = 0
        recovered = False
        if path.exists():
            try:
                entries, torn = cls._replay(path, num_vars)
            except StoreCorrupt:
                quarantine(path)
                entries, torn = {}, 0
                recovered = True
        store = cls(path, num_vars, entries, torn, recovered)
        store._ensure_log()
        return store

    @classmethod
    def _replay(cls, path: Path, num_vars: int) -> tuple[dict[int, DbEntry], int]:
        with open(path, "rb") as fp:
            raw = fp.read()
        entries: dict[int, DbEntry] = {}
        if not raw:
            return entries, 0
        lines = raw.split(b"\n")
        # A complete log ends with a newline, so the final split element
        # is empty; anything else is the torn tail of an interrupted
        # append.  Only the *last* line may be torn — earlier damage
        # means the log was edited or the filesystem lied, and the whole
        # file is quarantined.
        tail = lines.pop()
        torn = 0
        if tail:
            torn = 1
        if not lines:
            raise StoreCorrupt("no header line")
        try:
            header = json.loads(lines[0].decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise StoreCorrupt(f"unreadable header: {exc}") from exc
        if not isinstance(header, dict) or header.get("format") != _MAGIC:
            raise StoreCorrupt(f"bad magic in header: {header!r}")
        if int(header.get("num_vars", -1)) != num_vars:
            raise StoreCorrupt(
                f"store holds {header.get('num_vars')}-var entries, "
                f"expected {num_vars}"
            )
        good_bytes = len(lines[0]) + 1
        for line in lines[1:]:
            text = line.strip()
            if text:
                try:
                    entry = entry_from_json(text.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError, KeyError,
                        TypeError, ValueError) as exc:
                    raise StoreCorrupt(f"malformed record: {exc}") from exc
                if entry.num_vars != num_vars:
                    raise StoreCorrupt(
                        f"entry for 0x{entry.rep:x} has {entry.num_vars} vars"
                    )
                # Replay applies the same monotone rule as put(), so a
                # log holding several generations of one class (appends
                # since the last compaction) converges to the best.
                if _accepts(entries.get(entry.rep), entry):
                    entries[entry.rep] = entry
            good_bytes += len(line) + 1
        if torn:
            # Drop the torn tail in place so the next append starts at a
            # record boundary instead of gluing bytes onto half a line.
            with open(path, "r+b") as fp:
                fp.truncate(good_bytes)
                fp.flush()
                os.fsync(fp.fileno())
        return entries, torn

    def _ensure_log(self) -> None:
        """Open the append handle, writing the header for a new log."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fp = open(self.path, "ab")
        if fresh:
            self._fp.write((_header_line(self.num_vars) + "\n").encode("utf-8"))
            self._fp.flush()
            os.fsync(self._fp.fileno())

    # -- queries and updates -----------------------------------------------

    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, rep: int) -> bool:
        return rep in self.index

    def get(self, rep: int) -> DbEntry | None:
        """Best-known entry for class representative *rep*, or None."""
        return self.index.get(rep)

    def put(self, entry: DbEntry) -> bool:
        """Record *entry* if it improves on the incumbent; fsync before True.

        The monotone rule (:func:`_accepts`): accepted only when strictly
        smaller, or newly proven at the incumbent's size.  Returns False
        — and touches neither memory nor disk — otherwise.
        """
        if entry.num_vars != self.num_vars:
            raise ValueError(
                f"entry for 0x{entry.rep:x} has {entry.num_vars} vars, "
                f"store holds {self.num_vars}"
            )
        if not _accepts(self.index.get(entry.rep), entry):
            self.rejected += 1
            return False
        if self._fp is None:
            self._ensure_log()
        self._fp.write((entry_to_json(entry) + "\n").encode("utf-8"))
        self._fp.flush()
        os.fsync(self._fp.fileno())
        self.index[entry.rep] = entry
        self.appends += 1
        return True

    def unproven(self) -> list[DbEntry]:
        """Entries not yet proven minimal — the ``db improve`` work list."""
        return [e for e in self.index.values() if not e.proven]

    def stats(self) -> dict:
        """Counters snapshot (shape shared with serve ``/stats``)."""
        proven = sum(1 for e in self.index.values() if e.proven)
        return {
            "path": str(self.path),
            "num_vars": self.num_vars,
            "entries": len(self.index),
            "proven": proven,
            "appends": self.appends,
            "rejected": self.rejected,
            "torn_records": self.torn_records,
            "recovered": self.recovered,
        }

    # -- maintenance -------------------------------------------------------

    def compact(self) -> int:
        """Atomically rewrite the log as one record per class.

        Returns the number of surviving records.  Uses the temp-file +
        fsync + ``os.replace`` discipline of :mod:`repro.runtime.
        artifacts`, so a crash at any instant leaves either the old or
        the new log — never a torn one.  The append handle is reopened
        on the new file.
        """
        from ..runtime.artifacts import atomic_write_text

        lines = [_header_line(self.num_vars)]
        for rep in sorted(self.index):
            lines.append(entry_to_json(self.index[rep]))
        if self._fp is not None:
            self._fp.close()
            self._fp = None
        atomic_write_text(self.path, "\n".join(lines) + "\n")
        self._ensure_log()
        return len(self.index)

    def close(self) -> None:
        """Close the append handle (the index stays usable read-only)."""
        if self._fp is not None:
            self._fp.close()
            self._fp = None

    def __enter__(self) -> "NpnStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# -- background improvement through the batch runtime -----------------------


def improve_store(
    store: NpnStore,
    budget: int = 30000,
    jobs: int = 0,
    limit: int | None = None,
    time_limit: float | None = None,
    sat_backend: str = "internal",
    workdir: str | Path | None = None,
    verbose: bool = False,
) -> dict:
    """Budget-bounded exact tightening of unproven store entries.

    The store twin of the NPN-4 SAT phase (``migopt db generate``): every
    unproven entry becomes one ``db-improve`` :class:`~repro.runtime.
    jobs.JobSpec` — the exact per-class unit the PR 3 supervised batch
    runtime already runs — and the improved witnesses are folded back
    through :meth:`NpnStore.put`, whose monotone rule guarantees the
    pass only ever shrinks or proves entries.  With ``jobs=0`` the
    classes are improved serially in-process (no subprocess tax for
    small backlogs); either path produces identical store content.

    Returns a summary dict (classes attempted / improved / proven,
    conflicts spent).
    """
    from ..database.generate import improve_class

    work = sorted(store.unproven(), key=lambda e: (-e.size, e.rep))
    if limit is not None:
        work = work[:limit]
    summary = {
        "attempted": len(work), "improved": 0, "proven": 0,
        "conflicts": 0, "rejected": 0,
    }
    if not work:
        return summary

    def fold(new_entry: DbEntry, conflicts: int) -> None:
        old = store.get(new_entry.rep)
        summary["conflicts"] += conflicts
        if old is not None and not _accepts(old, new_entry):
            summary["rejected"] += 1
            return
        if store.put(new_entry):
            if old is not None and new_entry.size < old.size:
                summary["improved"] += 1
            if new_entry.proven and (old is None or not old.proven):
                summary["proven"] += 1

    if jobs <= 0:
        import time as time_module

        deadline = None
        if time_limit is not None:
            deadline = time_module.monotonic() + time_limit
        for entry in work:
            if deadline is not None and time_module.monotonic() >= deadline:
                break
            new_entry, conflicts = improve_class(
                entry.rep, entry, store.num_vars, budget, deadline,
                sat_backend=sat_backend,
            )
            fold(new_entry, conflicts)
        store.compact()
        return summary

    import tempfile

    from ..runtime.jobs import JobSpec, load_result_artifact
    from ..runtime.supervisor import run_batch

    if workdir is None:
        workdir = tempfile.mkdtemp(prefix="npnstore-improve-")
    workdir = Path(workdir)
    # Same JobSpec shape as the NPN-4 SAT phase (generate.py), so the
    # supervisor's retry/degradation ladder and resume semantics apply
    # unchanged; only the arity and the destination differ.
    specs = [
        JobSpec(
            job_id=f"store-0x{entry.rep:0{1 << (store.num_vars - 2)}x}",
            network={},
            mode="db-improve",
            verify="sim",
            conflict_limit=budget,
            time_limit=time_limit,
            sat_backend=sat_backend,
            payload={
                "rep": entry.rep,
                "num_vars": store.num_vars,
                "budget": budget,
                "entry": entry_to_json(entry),
            },
        )
        for entry in work
    ]
    resume = (workdir / "journal.jsonl").exists()
    report = run_batch(specs, workdir, num_workers=jobs, resume=resume,
                       verbose=verbose)
    for job in report.iter_job_summaries():
        if job.get("state") != "done":
            continue
        job_id = str(job.get("job_id"))
        payload = load_result_artifact(
            workdir / "results" / f"{job_id}.json", job_id)
        if payload is None or payload.get("status") != "ok" or "entry" not in payload:
            continue
        try:
            new_entry = entry_from_json(payload["entry"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            continue
        # Admit nothing unverified, whatever the worker claimed.
        if new_entry.to_mig().simulate()[0] != new_entry.rep:
            continue
        fold(new_entry, int(payload.get("conflicts", 0)))
    store.compact()
    return summary

"""NPN-4 database generation driver (DESIGN.md §6).

Two phases:

1. **Tree phase** — the L(f) dynamic program plus witness extraction
   yields an optimal-length expression MIG for each of the 222 class
   representatives.  This is complete in under a minute and already
   near-optimal (``L(f) <= C(f) + 2``).
2. **SAT phase** — exact synthesis (Sec. III of the paper) improves and
   certifies entries: ascending UNSAT proofs from ``k = 1`` establish
   lower bounds; descending SAT searches from the current upper bound
   shrink entries.  An entry becomes ``proven`` when the sizes meet.
   Every call runs under a conflict budget; progress is checkpointed to
   the JSONL file after every class so partial runs are always usable.

Run as a module::

    python -m repro.database.generate --out src/repro/database/data/npn4.jsonl \
        --sat-seconds 3600 --budget 30000
"""

from __future__ import annotations

import argparse
import time
from dataclasses import replace
from pathlib import Path

from ..core.npn import enumerate_npn_classes
from ..exact.bounds import mig_size_lower_bound
from ..exact.encoding import encode_exact_mig
from ..exact.trees import TreeSynthesizer
from .npn_db import DbEntry, NpnDatabase, entry_from_json, entry_to_json

__all__ = [
    "generate_tree_database",
    "improve_class",
    "improve_with_sat",
    "improve_with_sat_parallel",
    "main",
]


def generate_tree_database(
    num_vars: int = 4,
    verbose: bool = False,
    out_path: str | Path | None = None,
    resume: NpnDatabase | None = None,
    checkpoint_every: int = 8,
) -> NpnDatabase:
    """Phase 1: build the complete database from L-optimal trees.

    Crash-safe and resumable: with *out_path* the database is checkpointed
    (atomically) every *checkpoint_every* completed classes, and passing a
    partially filled database as *resume* synthesizes only the missing
    classes.  Every entry is verified against its representative before it
    is admitted, so a checkpoint only ever contains verified classes.
    """
    synth = TreeSynthesizer(num_vars)
    db = resume if resume is not None else NpnDatabase([], num_vars)
    pending = [rep for rep in enumerate_npn_classes(num_vars) if rep not in db.entries]
    completed = 0
    for rep in pending:
        start = time.perf_counter()
        mig = synth.synthesize(rep)
        if mig.simulate()[0] != rep:
            raise AssertionError(f"tree synthesis produced wrong function for 0x{rep:x}")
        entry = DbEntry.from_mig(
            rep, mig, proven=False, generation_time=time.perf_counter() - start
        )
        # Trees of length 0 and 1 are trivially minimum.
        if entry.size <= 1:
            entry = replace(entry, proven=True)
        db.entries[rep] = entry
        completed += 1
        if out_path is not None and completed % checkpoint_every == 0:
            db.save(out_path)
        if verbose:
            print(f"tree 0x{rep:04x}: size {entry.size} (L={synth.length_of(rep)})")
    if out_path is not None and (completed or not Path(out_path).exists()):
        db.save(out_path)
    return db


def _solve_size(
    spec: int,
    num_vars: int,
    k: int,
    budget: int | None,
    deadline: float | None = None,
    seed_rows: list[int] | None = None,
    portfolio=None,
) -> tuple[bool | None, DbEntry | None, int, list[int]]:
    """One exact-synthesis decision.

    Returns ``(answer, entry-if-SAT, conflicts, rows)`` where *rows* is
    the CEGAR row set after the call — carried into the next size when
    ascending (a refutation over a row subset refutes the full spec).
    """
    encoding = encode_exact_mig(spec, num_vars, k, portfolio=portfolio)
    answer = encoding.solve_cegar(
        conflict_budget=budget, deadline=deadline, seed_rows=seed_rows
    )
    conflicts = encoding.builder.solver.conflicts
    if answer is True:
        mig = encoding.extract_mig()
        if mig.simulate()[0] != spec:
            raise AssertionError(f"extracted MIG wrong for 0x{spec:x} at k={k}")
        entry = DbEntry.from_mig(spec, mig, proven=False, conflicts=conflicts)
        return True, entry, conflicts, encoding.rows
    return answer, None, conflicts, encoding.rows


def improve_class(
    rep: int,
    entry: DbEntry,
    num_vars: int,
    budget: int | None,
    deadline: float | None = None,
    sat_backend: str = "internal",
) -> tuple[DbEntry, int]:
    """Improve/certify one database entry by exact synthesis.

    The single unit of SAT-phase work, shared verbatim by the serial
    loop (:func:`improve_with_sat`) and the supervised workers
    (``db-improve`` jobs), so both paths produce identical entries for
    identical budgets.  Returns the new entry and the conflicts spent.

    Ascending UNSAT proofs start at the exhaustive lower bound
    (:func:`repro.exact.bounds.mig_size_lower_bound`) and carry the
    CEGAR counterexample rows from each refuted size into the next; a
    descending SAT sweep from the current upper bound handles budget
    exhaustion.

    *sat_backend* selects the solver lanes (``internal`` keeps the
    deterministic single-solver path; ``auto``/``portfolio`` race
    external binaries, trading bit-for-bit run determinism for speed —
    entries are still verified by simulation before they are admitted).
    """
    portfolio = None
    if sat_backend != "internal":
        from ..sat.portfolio import resolve_backend

        portfolio = resolve_backend(sat_backend)
    start = time.perf_counter()
    total_conflicts = 0
    best = entry
    lower = mig_size_lower_bound(rep, num_vars)
    refuted_below = max(0, lower - 1)  # sizes <= refuted_below are impossible
    k = max(1, lower)
    exhausted = False
    unknown_at: int | None = None
    carried_rows: list[int] | None = None
    while k < best.size:
        if deadline is not None and time.monotonic() > deadline:
            exhausted = True
            break
        answer, found, conflicts, rows = _solve_size(
            rep, num_vars, k, budget, deadline, seed_rows=carried_rows,
            portfolio=portfolio,
        )
        total_conflicts += conflicts
        if answer is False:
            refuted_below = k
            carried_rows = rows
            k += 1
            continue
        if answer is True:
            assert found is not None
            best = found
            break
        exhausted = True
        unknown_at = k  # deterministic solver: don't retry this size
        break
    # Descending SAT improvements when the ascent stalled.
    if exhausted:
        k2 = best.size - 1
        while k2 > refuted_below:
            if deadline is not None and time.monotonic() > deadline:
                break
            if k2 == unknown_at:
                k2 -= 1
                continue
            answer, found, conflicts, _rows = _solve_size(
                rep, num_vars, k2, budget, deadline, portfolio=portfolio
            )
            total_conflicts += conflicts
            if answer is True and found is not None:
                best = found
            k2 -= 1
    proven = best.size == refuted_below + 1 or best.size == 0
    new_entry = DbEntry(
        rep=rep,
        num_vars=best.num_vars,
        size=best.size,
        depth=best.depth,
        proven=proven,
        gates=best.gates,
        output=best.output,
        generation_time=entry.generation_time + (time.perf_counter() - start),
        conflicts=total_conflicts,
    )
    return new_entry, total_conflicts


def _sat_phase_order(db: NpnDatabase, largest_first: bool) -> list[int]:
    return sorted(
        db.entries,
        key=lambda rep: (db.entries[rep].size, rep),
        reverse=largest_first,
    )


def improve_with_sat(
    db: NpnDatabase,
    budget: int = 30000,
    time_limit: float | None = None,
    out_path: str | Path | None = None,
    verbose: bool = False,
    largest_first: bool = False,
    sat_backend: str = "internal",
) -> dict[str, int]:
    """Phase 2: improve/certify database entries by exact synthesis.

    Processes classes in increasing current-size order (cheapest proofs
    first) by default; ``largest_first`` reverses it, prioritizing size
    *reduction* of the biggest entries over minimality proofs.
    Returns statistics: how many entries were improved and proven.
    """
    deadline = None if time_limit is None else time.monotonic() + time_limit
    stats = {"visited": 0, "improved": 0, "proven": 0}
    for rep in _sat_phase_order(db, largest_first):
        entry = db.entries[rep]
        if entry.proven:
            continue
        if deadline is not None and time.monotonic() > deadline:
            break
        stats["visited"] += 1
        new_entry, total_conflicts = improve_class(
            rep, entry, db.num_vars, budget, deadline, sat_backend=sat_backend
        )
        if new_entry.size < entry.size:
            stats["improved"] += 1
        if new_entry.proven:
            stats["proven"] += 1
        db.entries[rep] = new_entry
        if out_path is not None:
            db.save(out_path)
        if verbose:
            print(
                f"sat 0x{rep:04x}: size {entry.size} -> {new_entry.size} "
                f"proven={new_entry.proven} "
                f"({new_entry.generation_time - entry.generation_time:.1f}s, "
                f"{total_conflicts} conflicts)"
            )
    return stats


def improve_with_sat_parallel(
    db: NpnDatabase,
    budget: int = 30000,
    time_limit: float | None = None,
    out_path: str | Path | None = None,
    verbose: bool = False,
    largest_first: bool = False,
    jobs: int = 2,
    workdir: str | Path | None = None,
    sat_backend: str = "internal",
) -> dict[str, int]:
    """Phase 2 across worker subprocesses via the supervised batch runtime.

    One ``db-improve`` job per unproven class, scheduled by
    :class:`repro.runtime.supervisor.Supervisor`: process isolation, a
    SIGTERM→SIGKILL watchdog per job, and the crash-safe job journal.
    When *workdir* (default: ``<out_path>.jobs``) already holds a
    journal, the batch *resumes* — classes whose jobs completed are
    adopted from their result artifacts without re-running.

    Entries come back identical to :func:`improve_with_sat` for the same
    *budget* (same :func:`improve_class`, deterministic solver) — the
    database content does not depend on the worker count.
    """
    from ..runtime.jobs import JobSpec, load_result_artifact
    from ..runtime.supervisor import run_batch

    if workdir is None:
        if out_path is None:
            raise ValueError("improve_with_sat_parallel needs out_path or workdir")
        workdir = Path(str(out_path) + ".jobs")
    workdir = Path(workdir)

    pending = [rep for rep in _sat_phase_order(db, largest_first)
               if not db.entries[rep].proven]
    stats = {"visited": 0, "improved": 0, "proven": 0}
    if not pending:
        return stats

    per_job_limit = None
    if time_limit is not None:
        # Deadlines are per class in the parallel path: the supervisor
        # watchdog enforces wall clock per job, not across the batch.
        per_job_limit = max(1.0, time_limit)

    specs = [
        JobSpec(
            job_id=f"db-0x{rep:04x}",
            network={},
            mode="db-improve",
            verify="sim",
            sat_backend=sat_backend,
            time_limit=per_job_limit,
            conflict_limit=budget,
            payload={
                "rep": rep,
                "num_vars": db.num_vars,
                "budget": budget,
                "entry": entry_to_json(db.entries[rep]),
            },
        )
        for rep in pending
    ]

    resume = (workdir / "journal.jsonl").exists()
    report = run_batch(specs, workdir, num_workers=jobs, resume=resume)

    failed: list[str] = []
    for summary in report.iter_job_summaries():
        job_id = str(summary.get("job_id"))
        if summary.get("state") != "done":
            failed.append(job_id)
            continue
        # The full worker payload lives in the result artifact (the
        # journal keeps only a summary slice); done jobs always have one.
        payload = load_result_artifact(workdir / "results" / f"{job_id}.json", job_id)
        if payload is None or payload.get("status") != "ok" or "entry" not in payload:
            failed.append(job_id)
            continue
        new_entry = entry_from_json(payload["entry"])
        rep = new_entry.rep
        old = db.entries[rep]
        # Admit nothing unverified into the database, whatever the
        # worker claimed: rebuild and simulate the entry here.
        if new_entry.to_mig().simulate()[0] != rep:
            failed.append(str(summary.get("job_id")))
            continue
        stats["visited"] += 1
        if new_entry.size < old.size:
            stats["improved"] += 1
        if new_entry.proven:
            stats["proven"] += 1
        db.entries[rep] = new_entry
        if verbose:
            adopted = " (adopted)" if summary.get("adopted") else ""
            print(
                f"sat 0x{rep:04x}: size {old.size} -> {new_entry.size} "
                f"proven={new_entry.proven}{adopted}"
            )
    if out_path is not None:
        db.save(out_path)
    if failed and verbose:
        print(f"sat phase: {len(failed)} class jobs did not complete: "
              f"{', '.join(sorted(failed))}")
    stats["failed_jobs"] = len(failed)
    return stats


def main(argv: list[str] | None = None) -> int:
    """Command-line entry point."""
    parser = argparse.ArgumentParser(description="Generate the NPN-4 MIG database")
    parser.add_argument(
        "--out",
        default=str(Path(__file__).parent / "data" / "npn4.jsonl"),
        help="output JSONL path",
    )
    parser.add_argument("--budget", type=int, default=30000, help="conflicts per SAT call")
    parser.add_argument(
        "--sat-seconds", type=float, default=0.0,
        help="time for the SAT improvement phase (0 = trees only)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="load the existing output file and continue from the last "
        "completed class (this is also the default when the file exists)",
    )
    parser.add_argument(
        "--fresh", action="store_true",
        help="ignore an existing output file and regenerate from scratch",
    )
    parser.add_argument(
        "--largest-first", action="store_true",
        help="process the biggest entries first (prioritize size reduction)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="run the SAT phase across N supervised worker subprocesses "
        "(0 = in-process serial; the database content is identical either "
        "way, and a killed parallel run resumes from its job journal)",
    )
    parser.add_argument(
        "--sat-backend", choices=("auto", "internal", "portfolio"),
        default="internal",
        help="SAT solver lanes for the improvement phase: 'internal' is the "
        "deterministic in-process solver; 'auto'/'portfolio' race external "
        "kissat/CaDiCaL binaries when discovered (every entry is still "
        "verified by simulation before admission)",
    )
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    verbose = not args.quiet

    partial: NpnDatabase | None = None
    if out.exists() and (args.resume or not args.fresh):
        # Tolerant load: truncated trailing lines from a killed run are
        # skipped, everything that parses is kept.
        partial = NpnDatabase.load(out)
        if verbose:
            note = f" ({partial.skipped_lines} malformed lines skipped)" \
                if partial.skipped_lines else ""
            print(f"resumed {len(partial)} entries from {out}{note}")
    if partial is not None and partial.complete:
        db = partial
    else:
        if verbose:
            print("phase 1: L(f) dynamic program + witness trees ...")
        db = generate_tree_database(verbose=False, out_path=out, resume=partial)
        if verbose:
            print(f"tree database written: {len(db)} entries, "
                  f"size histogram {db.size_histogram()}")

    if args.sat_seconds > 0:
        if verbose:
            mode = f"{args.jobs} workers" if args.jobs > 0 else "in-process"
            print(f"phase 2: SAT improvement for {args.sat_seconds:.0f}s ({mode}) ...")
        if args.jobs > 0:
            stats = improve_with_sat_parallel(
                db,
                budget=args.budget,
                time_limit=args.sat_seconds,
                out_path=out,
                verbose=verbose,
                largest_first=args.largest_first,
                jobs=args.jobs,
                sat_backend=args.sat_backend,
            )
        else:
            stats = improve_with_sat(
                db,
                budget=args.budget,
                time_limit=args.sat_seconds,
                out_path=out,
                verbose=verbose,
                largest_first=args.largest_first,
                sat_backend=args.sat_backend,
            )
        if verbose:
            print(f"sat phase: {stats}")
            print(f"final histogram: {db.size_histogram()}")
    db.verify()
    db.save(out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

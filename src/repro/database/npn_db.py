"""The precomputed database of minimum MIGs for 4-input NPN classes.

The functional-hashing optimization (Sec. IV of the paper) replaces
4-feasible cuts by precomputed minimum MIGs.  Since MIG size is invariant
under input/output inversion and input permutation, one minimum MIG per
NPN class representative suffices — 222 entries for 4 variables instead
of 65 536 (Sec. IV, first paragraph).

Entries are stored as JSON lines.  Each entry carries the class
representative, the gate list of its (minimum or best-known) MIG in the
exact-synthesis node numbering (0 = constant, ``1..n`` = inputs, gates
follow topologically), the output signal, a ``proven`` flag (see
DESIGN.md §6) and bookkeeping metadata.

:meth:`NpnDatabase.rebuild` is the rewriting primitive: given an arbitrary
4-input cut function and the cut's leaf signals in a target MIG, it
instantiates the stored structure — applying the NPN transform to leaves
and output — and returns the signal computing the cut function.
"""

from __future__ import annotations

import io
import json
import warnings
from dataclasses import dataclass, replace
from importlib import resources
from pathlib import Path
from typing import IO, Iterable

from ..core.mig import Mig, signal_not
from ..core.npn import NPNTransform, apply_transform, npn_canonize, npn_canonize_batch
from ..core.truth_table import tt_mask
from ..runtime.faults import fault_active

__all__ = ["DbEntry", "NpnDatabase", "DEFAULT_DB_RESOURCE"]

DEFAULT_DB_RESOURCE = "npn4.jsonl"


@dataclass(frozen=True)
class DbEntry:
    """One NPN class entry: the best known MIG for the representative."""

    rep: int
    num_vars: int
    size: int
    depth: int
    proven: bool
    #: gate fanin triples as signals over nodes 0=const, 1..n=PIs, n+1.. gates
    gates: tuple[tuple[int, int, int], ...]
    #: output signal
    output: int
    generation_time: float = 0.0
    conflicts: int = 0

    def to_mig(self) -> Mig:
        """Materialize the entry as a standalone single-output MIG."""
        mig = Mig(self.num_vars)
        signals = [0] + [2 * (1 + i) for i in range(self.num_vars)]
        for a, b, c in self.gates:
            mapped = tuple(signals[s >> 1] ^ (s & 1) for s in (a, b, c))
            signals.append(mig.maj(*mapped))
        mig.add_po(signals[self.output >> 1] ^ (self.output & 1), "f")
        return mig

    @staticmethod
    def from_mig(
        rep: int,
        mig: Mig,
        proven: bool,
        generation_time: float = 0.0,
        conflicts: int = 0,
    ) -> "DbEntry":
        """Build an entry from a single-output MIG computing *rep*."""
        if mig.num_pos != 1:
            raise ValueError("database entries must have exactly one output")
        clean = mig.cleanup()
        gates = tuple(clean.fanins(node) for node in clean.gates())
        return DbEntry(
            rep=rep,
            num_vars=clean.num_pis,
            size=clean.num_gates,
            depth=clean.depth(),
            proven=proven,
            gates=gates,
            output=clean.outputs[0],
            generation_time=generation_time,
            conflicts=conflicts,
        )

    def pin_depths(self) -> list[int]:
        """Per-input longest path to the output (-1 when the input is unused).

        Used by depth-aware rewriting: the instantiated depth of the entry
        over leaves at levels ``lv`` is ``max_j(lv[j] + pin_depths[j])``.
        """
        n = self.num_vars
        # depth_to_out[node] over reversed edges; compute longest path from
        # each terminal up to the output node.
        num_nodes = 1 + n + len(self.gates)
        longest = [-1] * num_nodes
        out_node = self.output >> 1
        longest[out_node] = 0
        # Gates are topological; walk backwards.
        for g_idx in range(len(self.gates) - 1, -1, -1):
            node = 1 + n + g_idx
            if longest[node] < 0:
                continue
            for s in self.gates[g_idx]:
                child = s >> 1
                if longest[child] < longest[node] + 1:
                    longest[child] = longest[node] + 1
        return [longest[1 + i] for i in range(n)]


class NpnDatabase:
    """Loaded database with lookup, rebuild, and query helpers."""

    def __init__(self, entries: Iterable[DbEntry], num_vars: int = 4) -> None:
        self.num_vars = num_vars
        self.entries: dict[int, DbEntry] = {}
        for entry in entries:
            if entry.num_vars != num_vars:
                raise ValueError(
                    f"entry for 0x{entry.rep:x} has {entry.num_vars} vars, expected {num_vars}"
                )
            self.entries[entry.rep] = entry
        self._pin_depth_cache: dict[int, list[int]] = {}
        #: malformed JSONL lines skipped during the last load (see from_jsonl)
        self.skipped_lines: int = 0
        #: lifetime lookup() calls / calls that found no entry
        self.lookups: int = 0
        self.lookup_misses: int = 0

    # -- loading -----------------------------------------------------------

    @classmethod
    def load(cls, path: str | Path | None = None, num_vars: int = 4) -> "NpnDatabase":
        """Load from *path*, or from the packaged default database."""
        if path is not None:
            with open(path, "r", encoding="utf-8") as fp:
                return cls.from_jsonl(fp, num_vars)
        ref = resources.files("repro.database").joinpath("data", DEFAULT_DB_RESOURCE)
        with ref.open("r", encoding="utf-8") as fp:
            return cls.from_jsonl(fp, num_vars)

    @classmethod
    def from_jsonl(cls, fp: IO[str], num_vars: int = 4) -> "NpnDatabase":
        """Parse a JSONL stream of entries.

        Malformed or truncated lines — the footprint of an interrupted
        append or a partial write — are skipped with a warning instead of
        aborting the load mid-file; the count is available afterwards as
        :attr:`skipped_lines`.  Entries for a representative seen twice
        keep the later (smaller-or-equal, in checkpointed runs) line.
        """
        entries = []
        skipped = 0
        for lineno, line in enumerate(fp, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(entry_from_json(line))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                skipped += 1
                warnings.warn(
                    f"npn database: skipping malformed line {lineno} "
                    f"({type(exc).__name__}: {exc})",
                    stacklevel=2,
                )
        db = cls(entries, num_vars)
        db.skipped_lines = skipped
        return db

    def save(self, path: str | Path) -> None:
        """Write all entries as JSONL, atomically (temp file + rename).

        A crash mid-save leaves the previous database intact rather than
        a truncated file.
        """
        from ..runtime.artifacts import atomic_write_text

        buf = io.StringIO()
        for rep in sorted(self.entries):
            buf.write(entry_to_json(self.entries[rep]) + "\n")
        atomic_write_text(path, buf.getvalue())

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def complete(self) -> bool:
        """True when every NPN class of ``num_vars`` inputs has an entry."""
        expected = {4: 222, 3: 14, 2: 4, 1: 2}.get(self.num_vars)
        return expected is not None and len(self.entries) >= expected

    def lookup(self, tt: int) -> tuple[DbEntry, "object"]:
        """Return ``(entry, transform)`` for an arbitrary function *tt*.

        The transform rebuilds *tt* from the entry's representative (see
        :func:`repro.core.npn.npn_canonize`).
        """
        self.lookups += 1
        rep, transform = npn_canonize(tt, self.num_vars)
        entry = self.entries.get(rep)
        if entry is None:
            self.lookup_misses += 1
            raise KeyError(f"no database entry for NPN class 0x{rep:x}")
        if fault_active("db.corrupt-entry"):
            # Fault hook: hand out a silently miscomputing entry — output
            # inverted, size understated so rewriters will prefer it —
            # to exercise downstream verification.
            entry = replace(entry, output=entry.output ^ 1, size=0)
        return entry, transform

    def lookup_batch(
        self, tts
    ) -> dict[int, "tuple[DbEntry, NPNTransform] | None"]:
        """Precompute lookup results for many functions in one sweep.

        Canonizes every function through the vectorized
        :func:`repro.core.npn.npn_canonize_batch` (bit-identical to the
        scalar path, tie-breaks included) and maps each to its database
        answer — ``(entry, transform)`` or ``None`` for a class without
        an entry.  The returned table is **inert**: building it touches
        no counters and no fault hooks; those fire per consult in
        :meth:`lookup_in`, exactly as :meth:`lookup` fires them per call.
        """
        tt_list = [int(t) for t in tts]
        table: dict[int, tuple[DbEntry, NPNTransform] | None] = {}
        entries = self.entries
        for tt, (rep, transform) in zip(
            tt_list, npn_canonize_batch(tt_list, self.num_vars)
        ):
            entry = entries.get(rep)
            table[tt] = None if entry is None else (entry, transform)
        return table

    def lookup_in(
        self, tt: int, table: dict[int, "tuple[DbEntry, NPNTransform] | None"]
    ) -> tuple[DbEntry, "object"]:
        """:meth:`lookup` answered from a :meth:`lookup_batch` table.

        Same observable contract as :meth:`lookup` — counters, the
        ``db.corrupt-entry`` fault hook, ``KeyError`` on a class without
        an entry — with the canonization already paid.  Functions outside
        the table (callers consulting beyond the precomputed cut set)
        fall back to a live scalar canonization.
        """
        self.lookups += 1
        try:
            found = table[tt]
        except KeyError:
            rep, transform = npn_canonize(tt, self.num_vars)
            entry = self.entries.get(rep)
            found = None if entry is None else (entry, transform)
        if found is None:
            self.lookup_misses += 1
            raise KeyError(f"no database entry for the NPN class of 0x{tt:x}")
        entry, transform = found
        if fault_active("db.corrupt-entry"):
            entry = replace(entry, output=entry.output ^ 1, size=0)
        return entry, transform

    def size_of(self, tt: int) -> int:
        """Best-known MIG size for function *tt*."""
        return self.lookup(tt)[0].size

    def rebuild(self, mig: Mig, tt: int, leaf_signals: list[int]) -> int:
        """Instantiate the minimum MIG for *tt* over *leaf_signals* in *mig*.

        This is line 6 of Algorithm 1: each input of the stored
        representative MIG is replaced by the corresponding (possibly
        complemented) leaf signal according to the NPN transform, and the
        output polarity is applied.  Returns the signal computing *tt*.
        """
        entry, t = self.lookup(tt)
        return self.rebuild_entry(mig, entry, t, leaf_signals)

    def rebuild_entry(
        self, mig: Mig, entry: DbEntry, t, leaf_signals: list[int]
    ) -> int:
        """:meth:`rebuild` with the ``(entry, transform)`` already in hand.

        Rewriters that looked the function up once (for the gain check)
        thread the pair through instead of paying a second canonization.
        """
        if len(leaf_signals) != self.num_vars:
            raise ValueError(f"expected {self.num_vars} leaves, got {len(leaf_signals)}")
        # Representative input j is driven by leaf perm[j], maybe inverted.
        input_signals = []
        for j in range(self.num_vars):
            s = leaf_signals[t.perm[j]]
            if (t.flips >> j) & 1:
                s = signal_not(s)
            input_signals.append(s)
        signals = [0] + input_signals
        for a, b, c in entry.gates:
            mapped = tuple(signals[s >> 1] ^ (s & 1) for s in (a, b, c))
            signals.append(mig.maj(*mapped))
        out = signals[entry.output >> 1] ^ (entry.output & 1)
        if t.output_flip:
            out = signal_not(out)
        return out

    def instantiated_depth(self, tt: int, leaf_levels: list[int]) -> int:
        """Depth of the rebuilt structure given the levels of the cut leaves."""
        entry, t = self.lookup(tt)
        return self.instantiated_depth_entry(entry, t, leaf_levels)

    def instantiated_depth_entry(
        self, entry: DbEntry, t, leaf_levels: list[int]
    ) -> int:
        """:meth:`instantiated_depth` with ``(entry, transform)`` in hand."""
        pins = self._pin_depth_cache.get(entry.rep)
        if pins is None:
            pins = entry.pin_depths()
            self._pin_depth_cache[entry.rep] = pins
        depth = 0
        for j in range(self.num_vars):
            if pins[j] < 0:
                continue
            depth = max(depth, leaf_levels[t.perm[j]] + pins[j])
        return depth

    def size_histogram(self) -> dict[int, int]:
        """Class counts per MIG size — the shape of Table I."""
        hist: dict[int, int] = {}
        for entry in self.entries.values():
            hist[entry.size] = hist.get(entry.size, 0) + 1
        return dict(sorted(hist.items()))

    def verify(self) -> None:
        """Check that every entry's MIG really computes its representative."""
        for rep, entry in self.entries.items():
            got = entry.to_mig().simulate()[0]
            if got != rep:
                raise AssertionError(
                    f"database entry 0x{rep:x} computes 0x{got:x} instead"
                )


def entry_to_json(entry: DbEntry) -> str:
    """Serialize an entry to one JSON line."""
    return json.dumps(
        {
            "rep": f"0x{entry.rep:04x}",
            "num_vars": entry.num_vars,
            "size": entry.size,
            "depth": entry.depth,
            "proven": entry.proven,
            "gates": [list(g) for g in entry.gates],
            "output": entry.output,
            "time": round(entry.generation_time, 3),
            "conflicts": entry.conflicts,
        }
    )


def entry_from_json(line: str) -> DbEntry:
    """Parse an entry from one JSON line."""
    data = json.loads(line)
    return DbEntry(
        rep=int(data["rep"], 16),
        num_vars=data["num_vars"],
        size=data["size"],
        depth=data["depth"],
        proven=data["proven"],
        gates=tuple(tuple(g) for g in data["gates"]),
        output=data["output"],
        generation_time=data.get("time", 0.0),
        conflicts=data.get("conflicts", 0),
    )

"""The Majority-Inverter Graph data structure (Sec. II-B of the paper).

An MIG is a DAG whose non-terminal nodes all compute the ternary majority
function and whose edges carry optional complementation.  Since the
kernel refactor the class is a thin 3-ary facade over the shared
substrate :class:`repro.core.kernel.Network` (storage, structural
hashing, traversals, validation, array kernels) and the shared
bit-parallel engine :mod:`repro.core.simengine` (simulation, cut
functions); this module contributes only the majority-gate semantics.

The conventions of modern logic-network packages apply:

* **Nodes** are integers.  Node ``0`` is the constant-0 terminal, nodes
  ``1 .. num_pis`` are primary inputs, and gate nodes follow in strict
  topological order (every gate has a larger index than its fanins).
* **Signals** (a.k.a. literals) encode a node plus an optional inverter:
  ``signal = 2 * node + complement``.  Signal ``0`` is constant 0 and
  signal ``1`` is constant 1.

Gates are created through :meth:`Mig.maj`, which performs the unit
simplifications ``<aab> = a`` and ``<a a' b> = b``, canonically sorts the
fanin triple, normalizes inverters through the self-duality
``<a'b'c'> = <abc>'`` and structurally hashes the result, so that two
calls with functionally identical triples return the same signal.
"""

from __future__ import annotations

from typing import Callable

from .kernel import (
    CONST0,
    CONST1,
    Network,
    make_signal,
    signal_is_complemented,
    signal_node,
    signal_not,
)
from .simengine import SimulationMixin

__all__ = [
    "Mig",
    "signal_not",
    "signal_node",
    "signal_is_complemented",
    "make_signal",
    "CONST0",
    "CONST1",
]


class Mig(SimulationMixin, Network):
    """A Majority-Inverter Graph.

    >>> mig = Mig(3, name="full_adder")
    >>> a, b, cin = mig.pi_signals()
    >>> cout = mig.maj(a, b, cin)
    >>> s = mig.maj(signal_not(cout), mig.maj(a, b, signal_not(cin)), cin)
    >>> mig.add_po(s, "s"); mig.add_po(cout, "cout")
    >>> mig.num_gates, mig.depth()
    (3, 2)
    """

    ARITY = 3
    DEFAULT_NAME = "mig"

    # ------------------------------------------------------------------
    # gate semantics
    # ------------------------------------------------------------------

    def maj(self, a: int, b: int, c: int) -> int:
        """Create (or reuse) the majority gate ``<abc>`` and return its signal."""
        n = len(self._fanins)
        if a >> 1 >= n or b >> 1 >= n or c >> 1 >= n:
            raise ValueError(f"signal among ({a}, {b}, {c}) refers to an unknown node")
        # Unit rules.
        if a == b or a == c:
            self.unit_rules += 1
            return a
        if b == c:
            self.unit_rules += 1
            return b
        if a == signal_not(b) or a == signal_not(c):
            # <a a' c> = c ; third operand is whichever is not the pair.
            self.unit_rules += 1
            return c if a == signal_not(b) else b
        if b == signal_not(c):
            self.unit_rules += 1
            return a
        fanin = tuple(sorted((a, b, c)))
        # Self-duality normalization: store with at most one complemented
        # fanin among {>=2 complemented}; flip all three plus output.
        out_complement = False
        if (fanin[0] & 1) + (fanin[1] & 1) + (fanin[2] & 1) >= 2:
            fanin = tuple(sorted(signal_not(s) for s in fanin))
            out_complement = True
        node = self._strash.get(fanin)
        if node is None:
            node = len(self._fanins)
            self._fanins.append(fanin)
            self._strash[fanin] = node
        else:
            self.strash_hits += 1
        return make_signal(node, out_complement)

    def _make_gate(self, fanins: tuple[int, ...]) -> int:
        return self.maj(*fanins)

    def and_(self, a: int, b: int) -> int:
        """Conjunction via ``<0ab>``."""
        return self.maj(CONST0, a, b)

    def or_(self, a: int, b: int) -> int:
        """Disjunction via ``<1ab>``."""
        return self.maj(CONST1, a, b)

    def xor(self, a: int, b: int) -> int:
        """Exclusive-or built from three majority gates."""
        both = self.and_(a, b)
        either = self.or_(a, b)
        return self.and_(either, signal_not(both))

    def xnor(self, a: int, b: int) -> int:
        """Exclusive-nor."""
        return signal_not(self.xor(a, b))

    def ite(self, c: int, t: int, e: int) -> int:
        """Multiplexer ``c ? t : e`` built from majority gates."""
        return self.or_(self.and_(c, t), self.and_(signal_not(c), e))

    # ------------------------------------------------------------------
    # structural validation (MIG-specific normalization invariants)
    # ------------------------------------------------------------------

    def _check_gate_fanin(self, node: int, fanin: tuple[int, ...]) -> None:
        """The invariants :meth:`maj` guarantees beyond the kernel's."""
        if tuple(sorted(fanin)) != fanin:
            raise ValueError(f"gate node {node} fanin triple {fanin} is unsorted")
        if len({s >> 1 for s in fanin}) != 3:
            raise ValueError(
                f"gate node {node} fanin triple {fanin} repeats a node "
                "(unit rule <aab>/<aa'b> not applied)"
            )
        if sum(s & 1 for s in fanin) > 1:
            raise ValueError(
                f"gate node {node} fanin triple {fanin} has more than one "
                "inverter (self-duality normalization not applied)"
            )

    # ------------------------------------------------------------------
    # transformations beyond the kernel's cleanup/clone
    # ------------------------------------------------------------------

    def rebuild(
        self,
        gate_builder: Callable[["Mig", int, tuple[int, int, int], dict[int, int]], int]
        | None = None,
    ) -> "Mig":
        """Rebuild the MIG gate by gate into a fresh network.

        *gate_builder* receives ``(new_mig, old_node, mapped_fanins,
        mapping)`` and must return the signal implementing the old node in
        the new network; by default gates are copied verbatim.  Useful as
        the chassis for rewriting passes.
        """
        new = Mig.like(self)
        mapping: dict[int, int] = {0: 0}
        for i in range(1, self.num_pis + 1):
            mapping[i] = make_signal(i)
        for node in self._reachable_gates():
            a, b, c = self.fanins(node)
            mapped = (
                mapping[a >> 1] ^ (a & 1),
                mapping[b >> 1] ^ (b & 1),
                mapping[c >> 1] ^ (c & 1),
            )
            if gate_builder is None:
                mapping[node] = new.maj(*mapped)
            else:
                mapping[node] = gate_builder(new, node, mapped, mapping)
        for s, name in zip(self._outputs, self._output_names):
            new.add_po(mapping[s >> 1] ^ (s & 1), name)
        return new

    # ------------------------------------------------------------------
    # pretty printing
    # ------------------------------------------------------------------

    def signal_name(self, signal: int) -> str:
        """Human-readable name of a signal (``!`` prefix for inverters)."""
        node = signal_node(signal)
        if node == 0:
            base = "0"
        elif self.is_pi(node):
            base = self._pi_names[node - 1]
        else:
            base = f"n{node}"
        return ("!" if signal & 1 else "") + base

    def to_expression(self, signal: int) -> str:
        """Render the cone of *signal* as a nested ``<abc>`` expression."""
        node = signal_node(signal)
        if not self.is_gate(node):
            return self.signal_name(signal)
        a, b, c = self.fanins(node)
        inner = f"<{self.to_expression(a)}{self.to_expression(b)}{self.to_expression(c)}>"
        return ("!" if signal & 1 else "") + inner

"""The Majority-Inverter Graph data structure (Sec. II-B of the paper).

An MIG is a DAG whose non-terminal nodes all compute the ternary majority
function and whose edges carry optional complementation.  This module
follows the conventions of modern logic-network packages:

* **Nodes** are integers.  Node ``0`` is the constant-0 terminal, nodes
  ``1 .. num_pis`` are primary inputs, and gate nodes follow in strict
  topological order (every gate has a larger index than its fanins).
* **Signals** (a.k.a. literals) encode a node plus an optional inverter:
  ``signal = 2 * node + complement``.  Signal ``0`` is constant 0 and
  signal ``1`` is constant 1.

Gates are created through :meth:`Mig.maj`, which performs the unit
simplifications ``<aab> = a`` and ``<a a' b> = b``, canonically sorts the
fanin triple, normalizes inverters through the self-duality
``<a'b'c'> = <abc>'`` and structurally hashes the result, so that two
calls with functionally identical triples return the same signal.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

from .truth_table import tt_maj, tt_mask, tt_var

__all__ = [
    "Mig",
    "signal_not",
    "signal_node",
    "signal_is_complemented",
    "make_signal",
    "CONST0",
    "CONST1",
]

#: Signal constants for the Boolean constants.
CONST0 = 0
CONST1 = 1


def make_signal(node: int, complement: bool = False) -> int:
    """Build a signal from a node index and a complement flag."""
    return (node << 1) | int(complement)


def signal_not(signal: int) -> int:
    """Return the complement of a signal."""
    return signal ^ 1


def signal_node(signal: int) -> int:
    """Return the node index a signal points to."""
    return signal >> 1


def signal_is_complemented(signal: int) -> bool:
    """Return True if the signal carries an inverter."""
    return bool(signal & 1)


class Mig:
    """A Majority-Inverter Graph.

    >>> mig = Mig(3, name="full_adder")
    >>> a, b, cin = mig.pi_signals()
    >>> cout = mig.maj(a, b, cin)
    >>> s = mig.maj(signal_not(cout), mig.maj(a, b, signal_not(cin)), cin)
    >>> mig.add_po(s, "s"); mig.add_po(cout, "cout")
    >>> mig.num_gates, mig.depth()
    (3, 2)
    """

    def __init__(self, num_pis: int = 0, name: str = "mig") -> None:
        self.name = name
        # _fanins[node] is None for terminals, else the sorted signal triple.
        self._fanins: list[tuple[int, int, int] | None] = [None]
        self._pi_names: list[str] = []
        self._outputs: list[int] = []
        self._output_names: list[str] = []
        self._strash: dict[tuple[int, int, int], int] = {}
        for _ in range(num_pis):
            self.add_pi()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def like(cls, other: "Mig") -> "Mig":
        """Create an empty MIG with the same primary inputs (and names) as *other*."""
        new = cls(name=other.name)
        for name in other.pi_names:
            new.add_pi(name)
        return new

    def add_pi(self, name: str | None = None) -> int:
        """Add a primary input; returns its (positive) signal.

        PIs must be created before any gate so node indices stay
        topologically ordered.
        """
        if self.num_gates:
            raise ValueError("all primary inputs must be created before the first gate")
        node = len(self._fanins)
        self._fanins.append(None)
        self._pi_names.append(name if name is not None else f"x{node - 1}")
        return make_signal(node)

    def pi_signals(self) -> list[int]:
        """Return the signals of all primary inputs, in creation order."""
        return [make_signal(1 + i) for i in range(self.num_pis)]

    def maj(self, a: int, b: int, c: int) -> int:
        """Create (or reuse) the majority gate ``<abc>`` and return its signal."""
        n = len(self._fanins)
        if a >> 1 >= n or b >> 1 >= n or c >> 1 >= n:
            raise ValueError(f"signal among ({a}, {b}, {c}) refers to an unknown node")
        # Unit rules.
        if a == b or a == c:
            return a
        if b == c:
            return b
        if a == signal_not(b) or a == signal_not(c):
            # <a a' c> = c ; third operand is whichever is not the pair.
            return c if a == signal_not(b) else b
        if b == signal_not(c):
            return a
        fanin = tuple(sorted((a, b, c)))
        # Self-duality normalization: store with at most one complemented
        # fanin among {>=2 complemented}; flip all three plus output.
        out_complement = False
        if sum(s & 1 for s in fanin) >= 2:
            fanin = tuple(sorted(signal_not(s) for s in fanin))
            out_complement = True
        node = self._strash.get(fanin)
        if node is None:
            node = len(self._fanins)
            self._fanins.append(fanin)  # type: ignore[arg-type]
            self._strash[fanin] = node
        return make_signal(node, out_complement)

    def and_(self, a: int, b: int) -> int:
        """Conjunction via ``<0ab>``."""
        return self.maj(CONST0, a, b)

    def or_(self, a: int, b: int) -> int:
        """Disjunction via ``<1ab>``."""
        return self.maj(CONST1, a, b)

    def xor(self, a: int, b: int) -> int:
        """Exclusive-or built from three majority gates."""
        both = self.and_(a, b)
        either = self.or_(a, b)
        return self.and_(either, signal_not(both))

    def xnor(self, a: int, b: int) -> int:
        """Exclusive-nor."""
        return signal_not(self.xor(a, b))

    def ite(self, c: int, t: int, e: int) -> int:
        """Multiplexer ``c ? t : e`` built from majority gates."""
        return self.or_(self.and_(c, t), self.and_(signal_not(c), e))

    def add_po(self, signal: int, name: str | None = None) -> None:
        """Register a primary output pointing at *signal*."""
        if signal_node(signal) >= len(self._fanins):
            raise ValueError(f"signal {signal} refers to an unknown node")
        self._outputs.append(signal)
        self._output_names.append(name if name is not None else f"y{len(self._outputs) - 1}")

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------

    @property
    def num_pis(self) -> int:
        """Number of primary inputs."""
        return len(self._pi_names)

    @property
    def num_pos(self) -> int:
        """Number of primary outputs."""
        return len(self._outputs)

    @property
    def num_nodes(self) -> int:
        """Total node count including constant and PIs."""
        return len(self._fanins)

    @property
    def num_gates(self) -> int:
        """Number of majority gates — the *size* metric of the paper."""
        return len(self._fanins) - 1 - self.num_pis

    @property
    def size(self) -> int:
        """Alias for :attr:`num_gates` matching the paper's terminology."""
        return self.num_gates

    @property
    def outputs(self) -> tuple[int, ...]:
        """The output signals."""
        return tuple(self._outputs)

    @property
    def output_names(self) -> tuple[str, ...]:
        """The output names."""
        return tuple(self._output_names)

    @property
    def pi_names(self) -> tuple[str, ...]:
        """The primary-input names."""
        return tuple(self._pi_names)

    def is_constant(self, node: int) -> bool:
        """True for the constant-0 node."""
        return node == 0

    def is_pi(self, node: int) -> bool:
        """True for primary-input nodes."""
        return 1 <= node <= self.num_pis

    def is_gate(self, node: int) -> bool:
        """True for majority-gate nodes."""
        return node > self.num_pis and node < len(self._fanins)

    def fanins(self, node: int) -> tuple[int, int, int]:
        """Return the three fanin signals of a gate node."""
        fanin = self._fanins[node]
        if fanin is None:
            raise ValueError(f"node {node} is a terminal and has no fanins")
        return fanin

    def gates(self) -> Iterator[int]:
        """Iterate gate nodes in topological order."""
        return iter(range(self.num_pis + 1, len(self._fanins)))

    def nodes(self) -> Iterator[int]:
        """Iterate all nodes (constant, PIs, gates) in topological order."""
        return iter(range(len(self._fanins)))

    def fanout_counts(self) -> list[int]:
        """Return, per node, how many gate fanins plus outputs reference it."""
        counts = [0] * len(self._fanins)
        for node in self.gates():
            for s in self.fanins(node):
                counts[signal_node(s)] += 1
        for s in self._outputs:
            counts[signal_node(s)] += 1
        return counts

    def levels(self) -> list[int]:
        """Return per-node depth (terminals at level 0)."""
        level = [0] * len(self._fanins)
        for node in self.gates():
            level[node] = 1 + max(level[signal_node(s)] for s in self.fanins(node))
        return level

    def depth(self) -> int:
        """Return the depth of the MIG — longest terminal→output gate path."""
        if not self._outputs:
            return 0
        level = self.levels()
        return max(level[signal_node(s)] for s in self._outputs)

    # ------------------------------------------------------------------
    # structural validation
    # ------------------------------------------------------------------

    def check(self) -> None:
        """Validate the structural invariants; raises ``ValueError`` on breakage.

        Invariants enforced (everything :meth:`maj` guarantees by
        construction, so a violation means a pass corrupted the
        representation by mutating internals directly):

        * terminals — node 0 and the PIs have no fanins; every gate does;
        * acyclicity — each fanin references a strictly smaller node
          index (the strict topological order of the node array);
        * no dangling refs — fanin and output signals point at existing
          nodes;
        * fanin ordering — the stored triple is sorted;
        * unit-rule residue — the three fanins sit on three distinct
          nodes (``<aab>``/``<aa'b>`` must have been simplified away);
        * inverter normalization — at most one complemented fanin
          (self-duality pushes the rest to the output);
        * strash consistency — every structural-hash entry agrees with
          the node array.
        """
        n = len(self._fanins)
        if n == 0 or self._fanins[0] is not None:
            raise ValueError("node 0 must be the constant-0 terminal")
        for node in range(1, self.num_pis + 1):
            if self._fanins[node] is not None:
                raise ValueError(f"PI node {node} has fanins")
        for node in range(self.num_pis + 1, n):
            fanin = self._fanins[node]
            if fanin is None:
                raise ValueError(f"gate node {node} has no fanins")
            if len(fanin) != 3:
                raise ValueError(f"gate node {node} has {len(fanin)} fanins, not 3")
            for s in fanin:
                if s < 0 or (s >> 1) >= n:
                    raise ValueError(
                        f"gate node {node} fanin signal {s} is dangling"
                    )
                if (s >> 1) >= node:
                    raise ValueError(
                        f"gate node {node} fanin signal {s} breaks topological "
                        "order (cycle or forward reference)"
                    )
            if tuple(sorted(fanin)) != fanin:
                raise ValueError(f"gate node {node} fanin triple {fanin} is unsorted")
            if len({s >> 1 for s in fanin}) != 3:
                raise ValueError(
                    f"gate node {node} fanin triple {fanin} repeats a node "
                    "(unit rule <aab>/<aa'b> not applied)"
                )
            if sum(s & 1 for s in fanin) > 1:
                raise ValueError(
                    f"gate node {node} fanin triple {fanin} has more than one "
                    "inverter (self-duality normalization not applied)"
                )
        for fanin, node in self._strash.items():
            if not self.is_gate(node) or self._fanins[node] != fanin:
                raise ValueError(
                    f"strash entry {fanin} -> {node} disagrees with the node array"
                )
        for i, s in enumerate(self._outputs):
            if s < 0 or (s >> 1) >= n:
                raise ValueError(f"output {i} signal {s} is dangling")
        if len(self._outputs) != len(self._output_names):
            raise ValueError("output/name list length mismatch")
        if len(self._pi_names) != self.num_pis:
            raise ValueError("PI/name list length mismatch")

    # ------------------------------------------------------------------
    # functional evaluation
    # ------------------------------------------------------------------

    def simulate(self) -> list[int]:
        """Exhaustively simulate; returns one truth table per output.

        Only feasible for small input counts (``num_pis <= 16``).
        """
        if self.num_pis > 16:
            raise ValueError("exhaustive simulation limited to 16 inputs; use simulate_patterns")
        n = self.num_pis
        values = [0] * len(self._fanins)
        for i in range(n):
            values[1 + i] = tt_var(n, i)
        mask = tt_mask(n)
        return self._simulate_words(values, mask)

    def simulate_patterns(self, patterns: Sequence[int], width: int) -> list[int]:
        """Bit-parallel simulation of arbitrary input patterns.

        *patterns* holds one word per PI; bit ``k`` of each word forms the
        k-th test vector.  Returns one word per output.
        """
        if len(patterns) != self.num_pis:
            raise ValueError(f"expected {self.num_pis} pattern words, got {len(patterns)}")
        values = [0] * len(self._fanins)
        for i, word in enumerate(patterns):
            values[1 + i] = word
        mask = (1 << width) - 1
        return self._simulate_words(values, mask)

    def _simulate_words(self, values: list[int], mask: int) -> list[int]:
        for node in self.gates():
            a, b, c = self.fanins(node)
            va = values[a >> 1] ^ (mask if a & 1 else 0)
            vb = values[b >> 1] ^ (mask if b & 1 else 0)
            vc = values[c >> 1] ^ (mask if c & 1 else 0)
            values[node] = tt_maj(va, vb, vc)
        out = []
        for s in self._outputs:
            v = values[s >> 1] ^ (mask if s & 1 else 0)
            out.append(v)
        return out

    def cut_function(self, root: int, leaves: Sequence[int]) -> int:
        """Return the local function of *root* expressed over *leaves*.

        *leaves* are node indices; leaf ``j`` becomes variable ``x_j`` of
        the returned truth table.  Raises ``ValueError`` if the cone of
        *root* is not covered by the leaves (the constant node is always
        allowed, mirroring the cut definition in Sec. II-C).
        """
        k = len(leaves)
        values: dict[int, int] = {0: 0}
        for j, leaf in enumerate(leaves):
            values[leaf] = tt_var(k, j)
        mask = tt_mask(k)

        # Explicit-stack evaluation: cut cones can be arbitrarily deep
        # (chain-shaped networks), so no recursion here.
        stack = [root]
        while stack:
            node = stack[-1]
            if node in values:
                stack.pop()
                continue
            if not self.is_gate(node):
                raise ValueError(f"terminal node {node} reached but is not a cut leaf")
            a, b, c = self.fanins(node)
            missing = [s >> 1 for s in (a, b, c) if s >> 1 not in values]
            if missing:
                stack.extend(missing)
                continue
            va = values[a >> 1] ^ (mask if a & 1 else 0)
            vb = values[b >> 1] ^ (mask if b & 1 else 0)
            vc = values[c >> 1] ^ (mask if c & 1 else 0)
            values[node] = tt_maj(va, vb, vc)
            stack.pop()
        return values[root]

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------

    def cleanup(self) -> "Mig":
        """Return a copy with dead gates removed (reachable cone only)."""
        new = Mig(self.num_pis, name=self.name)
        new._pi_names = list(self._pi_names)
        mapping: dict[int, int] = {0: 0}
        for i in range(1, self.num_pis + 1):
            mapping[i] = make_signal(i)

        order = self._reachable_gates()
        for node in order:
            a, b, c = self.fanins(node)
            na = mapping[a >> 1] ^ (a & 1)
            nb = mapping[b >> 1] ^ (b & 1)
            nc = mapping[c >> 1] ^ (c & 1)
            mapping[node] = new.maj(na, nb, nc)
        for s, name in zip(self._outputs, self._output_names):
            new.add_po(mapping[s >> 1] ^ (s & 1), name)
        return new

    def _reachable_gates(self) -> list[int]:
        """Gate nodes reachable from the outputs, in topological order."""
        reachable = bytearray(len(self._fanins))
        stack = [signal_node(s) for s in self._outputs]
        while stack:
            node = stack.pop()
            if reachable[node] or not self.is_gate(node):
                continue
            reachable[node] = 1
            stack.extend(s >> 1 for s in self.fanins(node))
        return [node for node in self.gates() if reachable[node]]

    def clone(self) -> "Mig":
        """Return a deep copy."""
        new = Mig(name=self.name)
        new._fanins = list(self._fanins)
        new._pi_names = list(self._pi_names)
        new._outputs = list(self._outputs)
        new._output_names = list(self._output_names)
        new._strash = dict(self._strash)
        return new

    def rebuild(
        self,
        gate_builder: Callable[["Mig", int, tuple[int, int, int], dict[int, int]], int]
        | None = None,
    ) -> "Mig":
        """Rebuild the MIG gate by gate into a fresh network.

        *gate_builder* receives ``(new_mig, old_node, mapped_fanins,
        mapping)`` and must return the signal implementing the old node in
        the new network; by default gates are copied verbatim.  Useful as
        the chassis for rewriting passes.
        """
        new = Mig(self.num_pis, name=self.name)
        new._pi_names = list(self._pi_names)
        mapping: dict[int, int] = {0: 0}
        for i in range(1, self.num_pis + 1):
            mapping[i] = make_signal(i)
        for node in self._reachable_gates():
            a, b, c = self.fanins(node)
            mapped = (
                mapping[a >> 1] ^ (a & 1),
                mapping[b >> 1] ^ (b & 1),
                mapping[c >> 1] ^ (c & 1),
            )
            if gate_builder is None:
                mapping[node] = new.maj(*mapped)
            else:
                mapping[node] = gate_builder(new, node, mapped, mapping)
        for s, name in zip(self._outputs, self._output_names):
            new.add_po(mapping[s >> 1] ^ (s & 1), name)
        return new

    # ------------------------------------------------------------------
    # pretty printing
    # ------------------------------------------------------------------

    def signal_name(self, signal: int) -> str:
        """Human-readable name of a signal (``!`` prefix for inverters)."""
        node = signal_node(signal)
        if node == 0:
            base = "0"
        elif self.is_pi(node):
            base = self._pi_names[node - 1]
        else:
            base = f"n{node}"
        return ("!" if signal & 1 else "") + base

    def to_expression(self, signal: int) -> str:
        """Render the cone of *signal* as a nested ``<abc>`` expression."""
        node = signal_node(signal)
        if not self.is_gate(node):
            return self.signal_name(signal)
        a, b, c = self.fanins(node)
        inner = f"<{self.to_expression(a)}{self.to_expression(b)}{self.to_expression(c)}>"
        return ("!" if signal & 1 else "") + inner

    def __repr__(self) -> str:
        return (
            f"Mig(name={self.name!r}, pis={self.num_pis}, pos={self.num_pos}, "
            f"gates={self.num_gates})"
        )

"""The shared logic-network kernel: one substrate under MIG and AIG.

Every homogeneous logic network in this package — the 3-ary
majority-inverter graph and the 2-ary and-inverter graph — is the same
data structure wearing different gate semantics: an append-only node
array in strict topological order, signals encoding ``2*node +
complement``, a structural-hash table mapping normalized fanin tuples to
nodes, and outputs referencing signals.  :class:`Network` owns exactly
that substrate, arity-generically; the facades
(:class:`repro.core.mig.Mig`, :class:`repro.aig.aig.Aig`) contribute only
the per-arity gate rules (unit simplifications, inverter normalization)
and convenience constructors.

Storage is struct-of-arrays in spirit and hybrid in practice:

* the **authoritative** store is the append-optimized Python side —
  ``_fanins`` (per-node fanin tuples, ``None`` for terminals) plus the
  strash dict — because gate creation is the hottest operation of the
  rewriting passes and a Python ``list.append`` beats any per-gate numpy
  write by an order of magnitude;
* the **array** view (:meth:`Network.arrays`) lazily materializes flat
  numpy ``int64``/``uint64`` fanin-node / complement-flag matrices, a
  level array, and level-grouped gate batches.  These feed the array
  kernels: :meth:`fanout_counts` is one ``np.bincount`` and the
  bit-parallel simulation engine (:mod:`repro.core.simengine`) evaluates
  whole levels at a time.  The view is cached and keyed on the node and
  output counts, so appends invalidate it automatically.

This module imports nothing from the rest of ``repro`` (only numpy and
the standard library) — enforced by ``tools/check_layers.py``.
"""

from __future__ import annotations

import hashlib
from itertools import chain
from typing import Iterator

import numpy as np

__all__ = [
    "Network",
    "NetworkArrays",
    "make_signal",
    "signal_not",
    "signal_node",
    "signal_is_complemented",
    "CONST0",
    "CONST1",
]

#: Signal constants for the Boolean constants.
CONST0 = 0
CONST1 = 1

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)


def make_signal(node: int, complement: bool = False) -> int:
    """Build a signal from a node index and a complement flag."""
    return (node << 1) | int(complement)


def signal_not(signal: int) -> int:
    """Return the complement of a signal."""
    return signal ^ 1


def signal_node(signal: int) -> int:
    """Return the node index a signal points to."""
    return signal >> 1


def signal_is_complemented(signal: int) -> bool:
    """Return True if the signal carries an inverter."""
    return bool(signal & 1)


class NetworkArrays:
    """Flat numpy view of a :class:`Network` — the struct-of-arrays side.

    All matrices cover gate nodes only, indexed by ``node - first_gate``:

    * ``fan_node`` — ``(num_gates, arity)`` int64 fanin node indices;
    * ``fan_comp`` — ``(num_gates, arity)`` uint64 complement flags,
      ``0`` or all-ones so a complement is one ``xor`` with the word
      mask;
    * ``levels`` — per-node depth over all ``num_nodes`` nodes;
    * ``level_groups`` — gate node indices batched by level in ascending
      level order; every gate's fanins live in strictly earlier batches,
      which is what lets the simulation engine evaluate one whole batch
      per vectorized step;
    * ``out_node`` / ``out_comp`` — the output signals, split.

    For the simulation engine a second, **permuted** view is precomputed
    in which gate rows are re-ordered by level while terminal rows stay
    put.  Each level then occupies one contiguous row slice, so a level
    evaluates as ``gather, xor, combine, slice-write`` with no per-call
    index building — the per-level Python overhead is what dominates
    bit-parallel simulation of deep networks:

    * ``sim_pos`` — node index -> row in the permuted matrix;
    * ``sim_levels`` — per level: ``(start, end, gates, fan_pos,
      fan_comp)`` where ``fan_pos`` stacks the per-position fanin row
      indices of the whole level into one ``(arity*gates,)`` array (all
      first fanins, then all second fanins, ...) so the level needs a
      single gather and a single complement xor, and ``fan_comp`` is the
      matching ``(arity*gates, 1)`` complement column;
    * ``sim_out_pos`` — permuted rows of the output signals.
    """

    __slots__ = (
        "num_nodes",
        "num_gates",
        "first_gate",
        "arity",
        "version",
        "fan_node",
        "fan_comp",
        "out_node",
        "out_comp",
        "_net",
        "_levels",
        "_level_groups",
        "_sim_pos",
        "_sim_levels",
        "_sim_out_pos",
    )

    def __init__(self, net: "Network") -> None:
        arity = net.arity
        first_gate = net.num_pis + 1
        num_nodes = len(net._fanins)
        num_gates = num_nodes - first_gate
        self.num_nodes = num_nodes
        self.num_gates = num_gates
        self.first_gate = first_gate
        self.arity = arity
        self.version = net.arrays_version
        flat = np.fromiter(
            chain.from_iterable(net._fanins[first_gate:]),
            dtype=np.int64,
            count=num_gates * arity,
        ).reshape(num_gates, arity)
        self.fan_node = flat >> 1
        self.fan_comp = np.where(flat & 1, _ALL_ONES, np.uint64(0))
        outs = np.asarray(net._outputs, dtype=np.int64).reshape(len(net._outputs))
        self.out_node = outs >> 1
        self.out_comp = np.where(outs & 1, _ALL_ONES, np.uint64(0))
        # The level/simulation side is built on first access: the array
        # view is rebuilt after every append batch (fanout_counts sits in
        # the rewriting hot path), and paying an argsort plus per-level
        # array slicing there would dwarf the bincount it feeds.
        self._net = net
        self._levels: np.ndarray | None = None
        self._sim_levels = None

    def _build_levels(self) -> np.ndarray:
        levels = np.asarray(self._net.levels(), dtype=np.int64)
        num_nodes, first_gate = self.num_nodes, self.first_gate
        sim_pos = np.arange(num_nodes, dtype=np.int64)
        if self.num_gates:
            gate_levels = levels[first_gate:]
            order = np.argsort(gate_levels, kind="stable") + first_gate
            counts = np.bincount(gate_levels)
            bounds = np.cumsum(counts[counts > 0])
            self._level_groups = tuple(np.split(order, bounds[:-1]))
            sim_pos[order] = np.arange(first_gate, num_nodes, dtype=np.int64)
            # Permuted-space fanin rows/complements, in level order.
            gate_rows = order - first_gate
            fan_pos = sim_pos[self.fan_node[gate_rows]]
            fan_comp_lv = self.fan_comp[gate_rows]
            starts = np.concatenate(([0], bounds[:-1]))
            self._sim_levels = tuple(
                (
                    first_gate + int(lo),
                    first_gate + int(hi),
                    int(hi - lo),
                    np.ascontiguousarray(fan_pos[lo:hi].T.reshape(-1)),
                    np.ascontiguousarray(
                        fan_comp_lv[lo:hi].T.reshape(-1, 1)
                    ),
                )
                for lo, hi in zip(starts, bounds)
            )
        else:
            self._level_groups = ()
            self._sim_levels = ()
        self._sim_pos = sim_pos
        self._sim_out_pos = sim_pos[self.out_node]
        self._levels = levels
        return levels

    @property
    def levels(self) -> np.ndarray:
        levels = self._levels
        return levels if levels is not None else self._build_levels()

    @property
    def level_groups(self) -> tuple:
        if self._levels is None:
            self._build_levels()
        return self._level_groups

    @property
    def sim_pos(self) -> np.ndarray:
        if self._levels is None:
            self._build_levels()
        return self._sim_pos

    @property
    def sim_levels(self) -> tuple:
        if self._levels is None:
            self._build_levels()
        return self._sim_levels

    @property
    def sim_out_pos(self) -> np.ndarray:
        if self._levels is None:
            self._build_levels()
        return self._sim_out_pos


class Network:
    """Arity-generic logic-network substrate with structural hashing.

    Subclasses (the facades) set :attr:`ARITY`, implement the semantic
    gate constructor (``maj`` / ``and_``) on top of :meth:`_add_gate`,
    and may refine :meth:`check` via :meth:`_check_gate_fanin`.

    The kernel also owns the instrumentation counters shared by every
    facade: ``strash_hits`` (gate constructions answered by the hash
    table), ``unit_rules`` (constructions simplified away by a unit
    rule), and ``sim_words`` (64-bit gate-words evaluated by the
    simulation engine).
    """

    #: fanin count of every gate; overridden by facades (3 = MIG, 2 = AIG)
    ARITY: int = 0
    DEFAULT_NAME: str = "net"

    def __init__(self, num_pis: int = 0, name: str | None = None) -> None:
        self.name = self.DEFAULT_NAME if name is None else name
        # _fanins[node] is None for terminals, else the normalized tuple.
        self._fanins: list[tuple[int, ...] | None] = [None]
        self._pi_names: list[str] = []
        self._outputs: list[int] = []
        self._output_names: list[str] = []
        self._strash: dict[tuple[int, ...], int] = {}
        self.strash_hits = 0
        self.unit_rules = 0
        self.sim_words = 0
        #: bumped by :meth:`invalidate_arrays` after every in-place
        #: structural edit; part of the array-view cache key, so holders
        #: of a :class:`NetworkArrays` can detect staleness by comparing
        #: ``view.version`` against it.
        self.arrays_version = 0
        self._arrays_cache: tuple[tuple[int, int, int], NetworkArrays] | None = None
        for _ in range(num_pis):
            self.add_pi()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def like(cls, other: "Network") -> "Network":
        """Create an empty network with the same primary inputs as *other*."""
        new = cls(name=other.name)
        for name in other._pi_names:
            new.add_pi(name)
        return new

    def add_pi(self, name: str | None = None) -> int:
        """Add a primary input; returns its (positive) signal.

        PIs must be created before any gate so node indices stay
        topologically ordered.
        """
        if self.num_gates:
            raise ValueError("all primary inputs must be created before the first gate")
        node = len(self._fanins)
        self._fanins.append(None)
        self._pi_names.append(name if name is not None else f"x{node - 1}")
        return node << 1

    def pi_signals(self) -> list[int]:
        """Return the signals of all primary inputs, in creation order."""
        return [make_signal(1 + i) for i in range(self.num_pis)]

    def _add_gate(self, fanin: tuple[int, ...]) -> int:
        """Store (or reuse) a gate with the already-normalized *fanin*.

        This is the raw substrate operation: structural hashing plus an
        append.  Unit rules and inverter normalization are the facade's
        responsibility — :meth:`check` validates they were applied.
        Returns the node index.
        """
        node = self._strash.get(fanin)
        if node is None:
            node = len(self._fanins)
            self._fanins.append(fanin)
            self._strash[fanin] = node
        else:
            self.strash_hits += 1
        return node

    def add_po(self, signal: int, name: str | None = None) -> None:
        """Register a primary output pointing at *signal*."""
        if signal_node(signal) >= len(self._fanins):
            raise ValueError(f"signal {signal} refers to an unknown node")
        self._outputs.append(signal)
        self._output_names.append(name if name is not None else f"y{len(self._outputs) - 1}")

    def _make_gate(self, fanins: tuple[int, ...]) -> int:
        """Build a gate through the facade's semantic constructor.

        Used by the generic :meth:`cleanup`; facades override (``maj`` /
        ``and_``) so rebuilt gates re-apply their normalization rules.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------

    @property
    def arity(self) -> int:
        """Fanin count of every gate of this network class."""
        return self.ARITY

    @property
    def num_pis(self) -> int:
        """Number of primary inputs."""
        return len(self._pi_names)

    @property
    def num_pos(self) -> int:
        """Number of primary outputs."""
        return len(self._outputs)

    @property
    def num_nodes(self) -> int:
        """Total node count including constant and PIs."""
        return len(self._fanins)

    @property
    def num_gates(self) -> int:
        """Number of gate nodes — the *size* metric of the paper."""
        return len(self._fanins) - 1 - self.num_pis

    @property
    def size(self) -> int:
        """Alias for :attr:`num_gates` matching the paper's terminology."""
        return self.num_gates

    @property
    def outputs(self) -> tuple[int, ...]:
        """The output signals."""
        return tuple(self._outputs)

    @property
    def output_names(self) -> tuple[str, ...]:
        """The output names."""
        return tuple(self._output_names)

    @property
    def pi_names(self) -> tuple[str, ...]:
        """The primary-input names."""
        return tuple(self._pi_names)

    def is_constant(self, node: int) -> bool:
        """True for the constant-0 node."""
        return node == 0

    def is_pi(self, node: int) -> bool:
        """True for primary-input nodes."""
        return 1 <= node <= self.num_pis

    def is_gate(self, node: int) -> bool:
        """True for gate nodes."""
        return self.num_pis < node < len(self._fanins)

    def fanins(self, node: int) -> tuple[int, ...]:
        """Return the fanin signals of a gate node."""
        fanin = self._fanins[node]
        if fanin is None:
            raise ValueError(f"node {node} is a terminal and has no fanins")
        return fanin

    def gates(self) -> Iterator[int]:
        """Iterate gate nodes in topological order."""
        return iter(range(self.num_pis + 1, len(self._fanins)))

    def nodes(self) -> Iterator[int]:
        """Iterate all nodes (constant, PIs, gates) in topological order."""
        return iter(range(len(self._fanins)))

    # ------------------------------------------------------------------
    # array kernels
    # ------------------------------------------------------------------

    def arrays(self) -> NetworkArrays:
        """Return the cached flat-array view of the network.

        Rebuilt automatically when the node or output count changed, and
        whenever :attr:`arrays_version` was bumped.  Call
        :meth:`invalidate_arrays` after mutating ``_fanins`` or
        ``_outputs`` in place (only fault-injection hooks and white-box
        tests do that) — count-preserving rewires are invisible to the
        count-based part of the key, so skipping the call would silently
        serve a stale view.
        """
        key = (len(self._fanins), len(self._outputs), self.arrays_version)
        cached = self._arrays_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        arrays = NetworkArrays(self)
        self._arrays_cache = (key, arrays)
        return arrays

    def invalidate_arrays(self) -> None:
        """Drop the cached array view (after in-place structural edits).

        Also bumps :attr:`arrays_version` so any externally-held
        :class:`NetworkArrays` is recognizably stale
        (``view.version != net.arrays_version``) even if the node and
        output counts did not change.
        """
        self.arrays_version += 1
        self._arrays_cache = None

    def fanout_counts(self) -> list[int]:
        """Return, per node, how many gate fanins plus outputs reference it.

        Computed as one ``np.bincount`` over the flat fanin array.
        """
        n = len(self._fanins)
        arrays = self.arrays()
        counts = np.bincount(arrays.fan_node.ravel(), minlength=n)
        if self._outputs:
            counts = counts + np.bincount(arrays.out_node, minlength=n)
        return counts.tolist()

    def levels(self) -> list[int]:
        """Return per-node depth (terminals at level 0)."""
        level = [0] * len(self._fanins)
        first_gate = self.num_pis + 1
        fanins = self._fanins
        for node in range(first_gate, len(fanins)):
            level[node] = 1 + max(level[s >> 1] for s in fanins[node])
        return level

    def depth(self) -> int:
        """Return the network depth — longest terminal-to-output gate path."""
        if not self._outputs:
            return 0
        level = self.levels()
        return max(level[s >> 1] for s in self._outputs)

    # ------------------------------------------------------------------
    # canonical structural hash
    # ------------------------------------------------------------------

    def structural_hash(self) -> str:
        """Canonical hash of the reachable structure (hex SHA-256).

        Two networks hash equal exactly when their output cones are
        isomorphic as DAGs of symmetric gates over positional inputs.
        The hash is therefore invariant under

        * **node insertion order** — each gate's digest is built from the
          *sorted multiset* of its fanin ``(digest, complement)`` pairs
          (majority and AND are fully symmetric, so operand order is
          representation, not meaning), never from node indices;
        * **names** — PI, output, and network names are not hashed; PIs
          enter by position, outputs by position;
        * **dead nodes** — only the cones of the outputs are traversed,
          so ``cleanup()`` does not change the hash.

        It *does* distinguish gate semantics (the arity is hashed), the
        PI count, and the output order/polarity — everything that changes
        what function the network computes or how callers address it.
        Structurally different implementations of the same function hash
        differently (this is a structural hash, not a functional one);
        equal hashes imply functional equivalence, which is what the
        serving tier's result cache needs: a hash collision would serve a
        wrong result, an unshared equivalence merely misses the cache.
        """
        fanins = self._fanins
        digests: dict[int, bytes] = {}
        # Iterative post-order over the output cones (explicit stack; the
        # rewriting scalability tests run 50k-deep chains through here).
        stack: list[int] = [s >> 1 for s in self._outputs]
        while stack:
            node = stack.pop()
            if node in digests:
                continue
            fanin = fanins[node]
            if fanin is None:
                # Terminals: constant 0, or a PI addressed by position.
                digests[node] = (
                    b"C" if node == 0 else b"P" + (node - 1).to_bytes(4, "little")
                )
                continue
            missing = [s >> 1 for s in fanin if (s >> 1) not in digests]
            if missing:
                stack.append(node)
                stack.extend(missing)
                continue
            parts = sorted(digests[s >> 1] + bytes([s & 1]) for s in fanin)
            digests[node] = hashlib.sha256(b"G" + b"".join(parts)).digest()
        h = hashlib.sha256()
        h.update(b"N")
        h.update(bytes([self.arity]))
        h.update(self.num_pis.to_bytes(4, "little"))
        for s in self._outputs:
            h.update(digests[s >> 1] + bytes([s & 1]))
        return h.hexdigest()

    # ------------------------------------------------------------------
    # structural validation
    # ------------------------------------------------------------------

    def _check_gate_fanin(self, node: int, fanin: tuple[int, ...]) -> None:
        """Facade hook: validate per-arity normalization invariants."""

    def check(self) -> None:
        """Validate the structural invariants; raises ``ValueError`` on breakage.

        Invariants enforced (everything the facade constructors guarantee
        by construction, so a violation means a pass corrupted the
        representation by mutating internals directly):

        * terminals — node 0 and the PIs have no fanins; every gate does;
        * acyclicity — each fanin references a strictly smaller node
          index (the strict topological order of the node array);
        * no dangling refs — fanin and output signals point at existing
          nodes;
        * facade normalization — whatever :meth:`_check_gate_fanin`
          demands (sorted triples, unit-rule residue, inverter
          normalization for MIGs; ordered pairs for AIGs);
        * strash consistency — every structural-hash entry agrees with
          the node array.
        """
        n = len(self._fanins)
        arity = self.arity
        if n == 0 or self._fanins[0] is not None:
            raise ValueError("node 0 must be the constant-0 terminal")
        for node in range(1, self.num_pis + 1):
            if self._fanins[node] is not None:
                raise ValueError(f"PI node {node} has fanins")
        for node in range(self.num_pis + 1, n):
            fanin = self._fanins[node]
            if fanin is None:
                raise ValueError(f"gate node {node} has no fanins")
            if len(fanin) != arity:
                raise ValueError(
                    f"gate node {node} has {len(fanin)} fanins, not {arity}"
                )
            for s in fanin:
                if s < 0 or (s >> 1) >= n:
                    raise ValueError(
                        f"gate node {node} fanin signal {s} is dangling"
                    )
                if (s >> 1) >= node:
                    raise ValueError(
                        f"gate node {node} fanin signal {s} breaks topological "
                        "order (cycle or forward reference)"
                    )
            self._check_gate_fanin(node, fanin)
        for fanin, node in self._strash.items():
            if not self.is_gate(node) or self._fanins[node] != fanin:
                raise ValueError(
                    f"strash entry {fanin} -> {node} disagrees with the node array"
                )
        for i, s in enumerate(self._outputs):
            if s < 0 or (s >> 1) >= n:
                raise ValueError(f"output {i} signal {s} is dangling")
        if len(self._outputs) != len(self._output_names):
            raise ValueError("output/name list length mismatch")
        if len(self._pi_names) != self.num_pis:
            raise ValueError("PI/name list length mismatch")

    # ------------------------------------------------------------------
    # transformations
    # ------------------------------------------------------------------

    def _reachable_gates(self) -> list[int]:
        """Gate nodes reachable from the outputs, in topological order."""
        reachable = bytearray(len(self._fanins))
        first_gate = self.num_pis + 1
        fanins = self._fanins
        stack = [s >> 1 for s in self._outputs]
        while stack:
            node = stack.pop()
            if node < first_gate or reachable[node]:
                continue
            reachable[node] = 1
            stack.extend(s >> 1 for s in fanins[node])
        return [
            node for node in range(first_gate, len(fanins)) if reachable[node]
        ]

    def cleanup(self) -> "Network":
        """Return a copy with dead gates removed (reachable cone only).

        Gates are rebuilt through the facade constructor
        (:meth:`_make_gate`), so normalization is re-applied — for
        networks built through the facades this is a pure compaction.
        """
        new = type(self).like(self)
        mapping: dict[int, int] = {0: 0}
        for i in range(1, self.num_pis + 1):
            mapping[i] = make_signal(i)
        for node in self._reachable_gates():
            mapped = tuple(
                mapping[s >> 1] ^ (s & 1) for s in self._fanins[node]  # type: ignore[union-attr]
            )
            mapping[node] = new._make_gate(mapped)
        for s, name in zip(self._outputs, self._output_names):
            new.add_po(mapping[s >> 1] ^ (s & 1), name)
        return new

    def compact(self) -> "Network":
        """Dead-gate removal by pure renumbering — the fast :meth:`cleanup`.

        Valid only for networks whose every gate went through the facade
        constructor (``Mig.maj`` / ``Aig.and_``): such gates already
        satisfy the normalization invariants, and because the reachable
        gates are renumbered monotonically (PIs map to themselves, gates
        keep their relative order), fanin sortedness, unit-rule
        distinctness, the ≤1-inverter form and strash uniqueness all
        survive the mapping verbatim.  The result is then byte-identical
        to :meth:`cleanup` — which re-applies the whole normalization
        gate by gate — at a fraction of the cost.  The rewriting passes'
        construction networks are the motivating case; for networks with
        hand-assembled gates, use :meth:`cleanup`.
        """
        new = type(self).like(self)
        fanins = self._fanins
        # mapping[old_node] = uncomplemented new signal of that node
        mapping = [0] * len(fanins)
        for i in range(1, self.num_pis + 1):
            mapping[i] = i << 1
        new_fanins = new._fanins
        strash = new._strash
        for node in self._reachable_gates():
            mapped = tuple(mapping[s >> 1] | (s & 1) for s in fanins[node])
            idx = len(new_fanins)
            new_fanins.append(mapped)
            strash[mapped] = idx
            mapping[node] = idx << 1
        add_po = new.add_po
        for s, name in zip(self._outputs, self._output_names):
            add_po(mapping[s >> 1] | (s & 1), name)
        return new

    def clone(self) -> "Network":
        """Return a deep copy."""
        new = type(self)(name=self.name)
        new._fanins = list(self._fanins)
        new._pi_names = list(self._pi_names)
        new._outputs = list(self._outputs)
        new._output_names = list(self._output_names)
        new._strash = dict(self._strash)
        return new

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self.name!r}, pis={self.num_pis}, "
            f"pos={self.num_pos}, gates={self.num_gates})"
        )

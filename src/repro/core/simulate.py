"""Functional validation helpers for kernel-backed networks.

Provides exhaustive and randomized combinational equivalence checking used
throughout the test-suite and by the optimization passes to assert that
rewriting never changes network functionality.  For networks too wide for
exhaustive simulation, random bit-parallel vectors give a fast refutation
check (a full SAT-based CEC lives in :mod:`repro.sat.cec`).

Works on any :class:`repro.core.kernel.Network` facade (MIG or AIG) —
both simulation and the random draws go through the shared
:mod:`repro.core.simengine` (the historical round-major draw order and
the ``0xC0FFEE`` seed are preserved, so expectations pinned by existing
tests hold).
"""

from __future__ import annotations

import random

from .kernel import Network
from .simengine import random_pattern_round, simulate_network

__all__ = ["equivalent_exhaustive", "equivalent_random", "check_equivalence"]

_EXHAUSTIVE_LIMIT = 14


def equivalent_exhaustive(mig1: Network, mig2: Network) -> bool:
    """Exhaustively compare two networks with identical PI/PO counts."""
    _check_interfaces(mig1, mig2)
    if mig1.num_pis > _EXHAUSTIVE_LIMIT:
        raise ValueError(
            f"exhaustive equivalence limited to {_EXHAUSTIVE_LIMIT} inputs; "
            "use equivalent_random or SAT-based CEC"
        )
    return mig1.simulate() == mig2.simulate()


def equivalent_random(
    mig1: Network,
    mig2: Network,
    num_rounds: int = 16,
    width: int = 64,
    seed: int = 0xC0FFEE,
) -> bool:
    """Compare two networks on random bit-parallel vectors.

    Returns ``False`` on any mismatch (a definite counterexample) and
    ``True`` if all rounds agree (equivalence *not refuted*).
    """
    _check_interfaces(mig1, mig2)
    rng = random.Random(seed)
    for _ in range(num_rounds):
        patterns = random_pattern_round(rng, mig1.num_pis, width)
        if simulate_network(mig1, patterns, width) != simulate_network(
            mig2, patterns, width
        ):
            return False
    return True


def check_equivalence(mig1: Network, mig2: Network, num_rounds: int = 16) -> bool:
    """Equivalence check that picks exhaustive or random automatically."""
    _check_interfaces(mig1, mig2)
    if mig1.num_pis <= _EXHAUSTIVE_LIMIT:
        return equivalent_exhaustive(mig1, mig2)
    return equivalent_random(mig1, mig2, num_rounds=num_rounds)


def _check_interfaces(mig1: Network, mig2: Network) -> None:
    if mig1.num_pis != mig2.num_pis:
        raise ValueError(f"PI counts differ: {mig1.num_pis} vs {mig2.num_pis}")
    if mig1.num_pos != mig2.num_pos:
        raise ValueError(f"PO counts differ: {mig1.num_pos} vs {mig2.num_pos}")

"""Core representations: truth tables, NPN classification, MIGs, and cuts."""

from .truth_table import TruthTable
from .npn import NPNTransform, apply_transform, npn_canonize, enumerate_npn_classes
from .mig import (
    CONST0,
    CONST1,
    Mig,
    make_signal,
    signal_is_complemented,
    signal_node,
    signal_not,
)
from .cuts import enumerate_cuts, cut_cone, mffc_nodes, mffc_size
from .simulate import check_equivalence, equivalent_exhaustive, equivalent_random

__all__ = [
    "TruthTable",
    "NPNTransform",
    "apply_transform",
    "npn_canonize",
    "enumerate_npn_classes",
    "Mig",
    "CONST0",
    "CONST1",
    "make_signal",
    "signal_not",
    "signal_node",
    "signal_is_complemented",
    "enumerate_cuts",
    "cut_cone",
    "mffc_nodes",
    "mffc_size",
    "check_equivalence",
    "equivalent_exhaustive",
    "equivalent_random",
]

"""k-feasible cut enumeration for MIGs (Sec. II-C of the paper).

A cut ``(v, L)`` of a node ``v`` is a set of leaves ``L`` such that every
path from ``v`` to a non-terminal passes through a leaf, and every leaf
lies on such a path.  Paths to the constant node are exempt.  Cuts are
enumerated bottom-up with the saturating union ``⊗k`` of the paper::

    cuts_k(0) = {{}}
    cuts_k(x) = {{x}}                      for primary inputs x
    cuts_k(g) = cuts_k(g1) ⊗k cuts_k(g2) ⊗k cuts_k(g3)

As is standard in cut-based rewriting (and implicit in the paper's use of
cuts as rewriting targets), the trivial cut ``{g}`` is additionally kept
for every gate so that enclosing nodes can treat ``g`` itself as a leaf.

Cuts are represented as sorted tuples of leaf node indices.  A 64-bit
signature provides a quick lower bound on union cardinality, and dominated
cuts (proper supersets of another cut of the same node) are pruned.  The
``cut_limit`` parameter bounds the number of cuts stored per node
(priority cuts, ref. [11] of the paper).
"""

from __future__ import annotations

from .mig import Mig

__all__ = ["enumerate_cuts", "cut_cone", "mffc_nodes", "mffc_size"]


def _signature(leaves: tuple[int, ...]) -> int:
    sig = 0
    for leaf in leaves:
        sig |= 1 << (leaf & 63)
    return sig


def _merge3(
    set1: list[tuple[tuple[int, ...], int]],
    set2: list[tuple[tuple[int, ...], int]],
    set3: list[tuple[tuple[int, ...], int]],
    k: int,
) -> list[tuple[tuple[int, ...], int]]:
    """Saturating union ``⊗k`` over three cut sets, with domination pruning."""
    result: dict[tuple[int, ...], int] = {}
    for leaves1, sig1 in set1:
        for leaves2, sig2 in set2:
            sig12 = sig1 | sig2
            if sig12.bit_count() > k:
                continue
            union12 = set(leaves1)
            union12.update(leaves2)
            if len(union12) > k:
                continue
            for leaves3, sig3 in set3:
                sig = sig12 | sig3
                if sig.bit_count() > k:
                    continue
                union = union12.union(leaves3)
                if len(union) > k:
                    continue
                leaves = tuple(sorted(union))
                result[leaves] = _signature(leaves)
    return _prune_dominated(list(result.items()))


def _prune_dominated(
    cuts: list[tuple[tuple[int, ...], int]],
) -> list[tuple[tuple[int, ...], int]]:
    """Remove cuts that are proper supersets of another cut in the list."""
    cuts.sort(key=lambda item: len(item[0]))
    kept: list[tuple[tuple[int, ...], int]] = []
    for leaves, sig in cuts:
        leaf_set = set(leaves)
        dominated = False
        for other, other_sig in kept:
            if other_sig & ~sig:
                continue
            if len(other) < len(leaves) and leaf_set.issuperset(other):
                dominated = True
                break
        if not dominated:
            kept.append((leaves, sig))
    return kept


def enumerate_cuts(
    mig: Mig,
    k: int = 4,
    cut_limit: int = 25,
    include_trivial: bool = True,
) -> list[list[tuple[int, ...]]]:
    """Enumerate k-feasible cuts of every node of *mig*.

    Returns ``cuts`` with ``cuts[node]`` the list of leaf tuples of that
    node, ordered by increasing leaf count.  The constant node has the
    single empty cut; a PI has its singleton cut.
    """
    if k < 1:
        raise ValueError("cut size k must be at least 1")
    num_nodes = mig.num_nodes
    work: list[list[tuple[tuple[int, ...], int]]] = [[] for _ in range(num_nodes)]
    work[0] = [((), 0)]
    for node in range(1, mig.num_pis + 1):
        leaves = (node,)
        work[node] = [(leaves, _signature(leaves))]
    for node in mig.gates():
        a, b, c = mig.fanins(node)
        merged = _merge3(work[a >> 1], work[b >> 1], work[c >> 1], k)
        if len(merged) > cut_limit:
            merged = merged[:cut_limit]
        if include_trivial:
            trivial = (node,)
            merged.append((trivial, _signature(trivial)))
        work[node] = merged
    return [[leaves for leaves, _ in cuts] for cuts in work]


def cut_cone(mig: Mig, root: int, leaves: tuple[int, ...]) -> list[int]:
    """Return the internal nodes of cut ``(root, leaves)`` in topological order.

    Internal nodes are the gates strictly inside the cut, *including* the
    root itself.  Raises ``ValueError`` when a non-constant terminal is
    reached that is not a leaf (i.e. ``leaves`` is not a valid cut).
    """
    leaf_set = set(leaves)
    visited: set[int] = set()
    order: list[int] = []

    def visit(node: int) -> None:
        if node in leaf_set or node == 0 or node in visited:
            return
        if not mig.is_gate(node):
            raise ValueError(f"node {node} is a terminal outside the cut leaves")
        visited.add(node)
        for s in mig.fanins(node):
            visit(s >> 1)
        order.append(node)

    visit(root)
    return order


def mffc_nodes(mig: Mig, root: int, fanout: list[int] | None = None) -> set[int]:
    """Maximum fanout-free cone of *root*: gates that die if *root* dies.

    A gate belongs to the MFFC if all of its fanout paths lead into the
    cone.  Computed by simulated reference-count dereferencing.
    """
    if fanout is None:
        fanout = mig.fanout_counts()
    refs = list(fanout)
    cone: set[int] = set()

    def deref(node: int) -> None:
        if not mig.is_gate(node):
            return
        cone.add(node)
        for s in mig.fanins(node):
            child = s >> 1
            refs[child] -= 1
            if refs[child] == 0:
                deref(child)

    deref(root)
    return cone


def mffc_size(mig: Mig, root: int, fanout: list[int] | None = None) -> int:
    """Number of gates in the MFFC of *root*."""
    return len(mffc_nodes(mig, root, fanout))

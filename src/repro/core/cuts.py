"""k-feasible cut enumeration for kernel-backed networks (Sec. II-C).

Arity-generic since the kernel refactor: the same enumerator serves the
3-ary MIG and the 2-ary AIG (which previously carried a duplicate in
``repro.aig.cuts``, now a shim over this module).  Everything below
that says "mig" accepts any :class:`repro.core.kernel.Network` facade.

A cut ``(v, L)`` of a node ``v`` is a set of leaves ``L`` such that every
path from ``v`` to a non-terminal passes through a leaf, and every leaf
lies on such a path.  Paths to the constant node are exempt.  Cuts are
enumerated bottom-up with the saturating union ``⊗k`` of the paper::

    cuts_k(0) = {{}}
    cuts_k(x) = {{x}}                      for primary inputs x
    cuts_k(g) = cuts_k(g1) ⊗k ... ⊗k cuts_k(g_arity)

As is standard in cut-based rewriting (and implicit in the paper's use of
cuts as rewriting targets), the trivial cut ``{g}`` is additionally kept
for every gate so that enclosing nodes can treat ``g`` itself as a leaf.

Cuts are represented as sorted tuples of leaf node indices.  A 64-bit
signature provides a quick lower bound on union cardinality, and dominated
cuts (proper supersets of another cut of the same node) are pruned.  The
``cut_limit`` parameter bounds the number of cuts stored per node
(priority cuts, ref. [11] of the paper).

:func:`enumerate_cut_set` is the hot-path entry point used by the
rewriters: it additionally records each cut's *provenance* (which fanin
cuts it was merged from) so :meth:`CutSet.function` can derive cut truth
tables incrementally — expanding and combining the fanin cut functions —
instead of re-simulating the cut cone from scratch, and memoize them per
``(node, leaves)`` across the pass.

All traversals here are explicit-stack iterative so that deep (chain-
shaped) networks never hit Python's recursion limit.
"""

from __future__ import annotations

from bisect import insort

from ..runtime.metrics import PassMetrics
from .kernel import Network
from .truth_table import tt_maj, tt_mask

__all__ = [
    "CutSet",
    "enumerate_cuts",
    "enumerate_cut_set",
    "cut_cone",
    "cut_cone_nodes",
    "SHARED_CONE",
    "mffc_nodes",
    "mffc_size",
]

#: Truth table of the single-variable projection x0 (trivial/PI cuts).
_TT_X0 = 0b10


def _signature(leaves: tuple[int, ...]) -> int:
    sig = 0
    for leaf in leaves:
        sig |= 1 << (leaf & 63)
    return sig


def _merge3(
    set1: list[tuple[tuple[int, ...], int, int]],
    set2: list[tuple[tuple[int, ...], int, int]],
    set3: list[tuple[tuple[int, ...], int, int]],
    k: int,
) -> list[tuple[tuple[int, ...], int, int, tuple]]:
    """Saturating union ``⊗k`` over three cut sets, with domination pruning.

    Inputs are ``(leaves, signature, cone_size)`` triples; the result adds
    the provenance ``(leaves1, leaves2, leaves3)`` that produced each
    union — the raw material for incremental cut functions.  The merged
    cone size is ``1 + size1 + size2 + size3``; it equals the true cone
    gate count only when the fanin cones are disjoint, which the
    FFR-restricted enumeration mode guarantees (see :func:`_enumerate`).
    """
    result: dict[tuple[int, ...], tuple[int, int, tuple]] = {}
    for leaves1, sig1, size1 in set1:
        base1 = set(leaves1)
        for leaves2, sig2, size2 in set2:
            sig12 = sig1 | sig2
            if sig12.bit_count() > k:
                continue
            union12 = base1.union(leaves2)
            if len(union12) > k:
                continue
            size12 = 1 + size1 + size2
            for leaves3, sig3, size3 in set3:
                sig = sig12 | sig3
                if sig.bit_count() > k:
                    continue
                union = union12.union(leaves3)
                if len(union) > k:
                    continue
                leaves = tuple(sorted(union))
                if leaves not in result:
                    # The signature of the union is the OR of the parts.
                    result[leaves] = (
                        sig, size12 + size3, (leaves1, leaves2, leaves3)
                    )
    return _prune_dominated(
        [
            (leaves, sig, size, prov)
            for leaves, (sig, size, prov) in result.items()
        ]
    )


def _merge2(
    set1: list[tuple[tuple[int, ...], int, int]],
    set2: list[tuple[tuple[int, ...], int, int]],
    k: int,
) -> list[tuple[tuple[int, ...], int, int, tuple]]:
    """Two-operand ``⊗k`` — the AIG instantiation of :func:`_merge3`."""
    result: dict[tuple[int, ...], tuple[int, int, tuple]] = {}
    for leaves1, sig1, size1 in set1:
        base1 = set(leaves1)
        for leaves2, sig2, size2 in set2:
            sig = sig1 | sig2
            if sig.bit_count() > k:
                continue
            union = base1.union(leaves2)
            if len(union) > k:
                continue
            leaves = tuple(sorted(union))
            if leaves not in result:
                result[leaves] = (sig, 1 + size1 + size2, (leaves1, leaves2))
    return _prune_dominated(
        [
            (leaves, sig, size, prov)
            for leaves, (sig, size, prov) in result.items()
        ]
    )


def _prune_dominated(
    cuts: list[tuple[tuple[int, ...], int, int, tuple]],
) -> list[tuple[tuple[int, ...], int, int, tuple]]:
    """Remove cuts that are proper supersets of another cut in the list."""
    cuts.sort(key=lambda item: len(item[0]))
    kept: list[tuple[tuple[int, ...], int, int, tuple]] = []
    for entry in cuts:
        leaves, sig = entry[0], entry[1]
        leaf_set = None
        dominated = False
        for other in kept:
            if other[1] & ~sig or len(other[0]) >= len(leaves):
                continue
            if leaf_set is None:
                leaf_set = set(leaves)
            if leaf_set.issuperset(other[0]):
                dominated = True
                break
        if not dominated:
            kept.append(entry)
    return kept


def _enumerate(
    mig: Network,
    k: int,
    cut_limit: int,
    include_trivial: bool,
    metrics: PassMetrics | None,
    ffr_fanout: list[int] | None = None,
) -> tuple[list[list[tuple[int, ...]]], dict, dict]:
    """Shared enumeration core.

    Returns per-node cut lists, cut provenance, and per-cut cone sizes.

    With *ffr_fanout* (a fanout-count list), enumeration is restricted to
    fanout-free cuts: merging never expands through a gate with fanout
    other than 1 — such a gate contributes only its trivial cut, i.e. it
    becomes a leaf.  This is the paper's "partition at FFR boundaries"
    formulation of the F-variants: every enumerated cut is fanout-free by
    construction (so rewriters skip the per-cut cone walk entirely), the
    cubic merge space shrinks at every shared fanin, and — because the
    restricted cones are trees — the exact cone gate count falls out of
    the merge for free (``cone_sizes``).  In unrestricted mode the size
    entries over-count shared gates and ``cone_sizes`` is empty.
    """
    if k < 1:
        raise ValueError("cut size k must be at least 1")
    arity = mig.arity
    if arity not in (2, 3):
        raise ValueError(f"unsupported gate arity {arity}")
    num_nodes = mig.num_nodes
    work: list[list[tuple[tuple[int, ...], int, int]]] = [
        [] for _ in range(num_nodes)
    ]
    work[0] = [((), 0, 0)]
    for node in range(1, mig.num_pis + 1):
        leaves = (node,)
        work[node] = [(leaves, _signature(leaves), 0)]
    provenance: dict[tuple[int, tuple[int, ...]], tuple] = {}
    cone_sizes: dict[tuple[int, tuple[int, ...]], int] = {}
    num_pis = mig.num_pis
    total_cuts = 0
    for node in mig.gates():
        fanins = mig.fanins(node)
        sources = []
        for s in fanins:
            child = s >> 1
            if (
                ffr_fanout is not None
                and child > num_pis
                and ffr_fanout[child] != 1
            ):
                # Shared gate: a leaf, never expanded through.
                trivial = (child,)
                sources.append([(trivial, _signature(trivial), 0)])
            else:
                sources.append(work[child])
        if arity == 3:
            merged = _merge3(sources[0], sources[1], sources[2], k)
        else:
            merged = _merge2(sources[0], sources[1], k)
        if len(merged) > cut_limit:
            merged = merged[:cut_limit]
        entries = [(leaves, sig, size) for leaves, sig, size, _ in merged]
        for leaves, _sig, size, prov in merged:
            provenance[(node, leaves)] = (fanins, prov)
            if ffr_fanout is not None:
                cone_sizes[(node, leaves)] = size
        if include_trivial:
            trivial = (node,)
            # Keep the documented "ordered by increasing leaf count"
            # contract: the trivial 1-leaf cut is inserted in sorted
            # position, not appended after larger cuts.
            insort(
                entries,
                (trivial, _signature(trivial), 0),
                key=lambda e: len(e[0]),
            )
        work[node] = entries
        total_cuts += len(entries)
    if metrics is not None:
        metrics.cuts_enumerated += total_cuts
    return (
        [[leaves for leaves, _, _ in cuts] for cuts in work],
        provenance,
        cone_sizes,
    )


def enumerate_cuts(
    mig: Network,
    k: int = 4,
    cut_limit: int = 25,
    include_trivial: bool = True,
    metrics: PassMetrics | None = None,
) -> list[list[tuple[int, ...]]]:
    """Enumerate k-feasible cuts of every node of *mig* (any arity).

    Returns ``cuts`` with ``cuts[node]`` the list of leaf tuples of that
    node, ordered by increasing leaf count (the trivial cut included in
    order).  The constant node has the single empty cut; a PI has its
    singleton cut.
    """
    cuts, _, _ = _enumerate(mig, k, cut_limit, include_trivial, metrics)
    return cuts


def enumerate_cut_set(
    mig: Network,
    k: int = 4,
    cut_limit: int = 25,
    include_trivial: bool = True,
    metrics: PassMetrics | None = None,
    ffr_fanout: list[int] | None = None,
) -> "CutSet":
    """Enumerate cuts and return a :class:`CutSet` with lazy cut functions.

    With *ffr_fanout* (see :func:`_enumerate`), only fanout-free cuts are
    produced and :meth:`CutSet.cone_size` knows each cut's exact cone
    gate count.
    """
    cuts, provenance, cone_sizes = _enumerate(
        mig, k, cut_limit, include_trivial, metrics, ffr_fanout
    )
    return CutSet(mig, cuts, provenance, metrics, cone_sizes)


# -- expansion tables for incremental cut functions -------------------------

#: (num_dst_vars, src-positions-in-dst) -> per-minterm source projection
_EXPAND_TABLES: dict[tuple[int, tuple[int, ...]], tuple[int, ...]] = {}


def _expand_table(num_vars: int, positions: tuple[int, ...]) -> tuple[int, ...]:
    table = _EXPAND_TABLES.get((num_vars, positions))
    if table is None:
        entries = []
        for m in range(1 << num_vars):
            sm = 0
            for j, p in enumerate(positions):
                if (m >> p) & 1:
                    sm |= 1 << j
            entries.append(sm)
        table = tuple(entries)
        _EXPAND_TABLES[(num_vars, positions)] = table
    return table


#: (tt, num_dst_vars, positions) -> expanded truth table.  Cut functions
#: repeat heavily (a handful of NPN classes per design), so memoizing the
#: result replaces the 2**n scatter loop with one dict probe.  Keys are
#: position patterns, not node ids, so the cache stays small across runs.
_EXPAND_CACHE: dict[tuple[int, int, tuple[int, ...]], int] = {}


def _expand(
    tt: int, src: tuple[int, ...], dst: tuple[int, ...]
) -> int:
    """Re-express *tt* over leaves *src* as a truth table over *dst* ⊇ *src*."""
    if src == dst:
        return tt
    built = []
    j = 0
    src_len = len(src)
    for i, leaf in enumerate(dst):
        if j < src_len and src[j] == leaf:
            built.append(i)
            j += 1
    positions = tuple(built)
    key = (tt, len(dst), positions)
    out = _EXPAND_CACHE.get(key)
    if out is None:
        table = _expand_table(len(dst), positions)
        out = 0
        for m, sm in enumerate(table):
            if (tt >> sm) & 1:
                out |= 1 << m
        _EXPAND_CACHE[key] = out
    return out


class CutSet:
    """Enumerated cuts of a network plus memoized incremental cut functions.

    ``cut_set[node]`` is the list of leaf tuples of *node* (the same shape
    :func:`enumerate_cuts` returns); :meth:`function` yields the local
    function of a cut, computed bottom-up from the fanin cut functions the
    cut was merged from and cached per ``(node, leaves)`` for the lifetime
    of the object — i.e. across one rewriting pass.
    """

    def __init__(
        self,
        mig: Network,
        cuts: list[list[tuple[int, ...]]],
        provenance: dict[tuple[int, tuple[int, ...]], tuple],
        metrics: PassMetrics | None = None,
        cone_sizes: dict[tuple[int, tuple[int, ...]], int] | None = None,
    ) -> None:
        self.mig = mig
        self.cuts = cuts
        self._provenance = provenance
        self._functions: dict[tuple[int, tuple[int, ...]], int] = {}
        self.metrics = metrics
        self._cone_sizes = cone_sizes or {}

    def cone_size(self, node: int, leaves: tuple[int, ...]) -> int | None:
        """Exact cone gate count of a cut, or None.

        Known only for cuts enumerated in FFR-restricted mode (where the
        cone is a tree and the size falls out of the merge).
        """
        return self._cone_sizes.get((node, leaves))

    def __getitem__(self, node: int) -> list[tuple[int, ...]]:
        return self.cuts[node]

    def __len__(self) -> int:
        return len(self.cuts)

    def function(self, root: int, leaves: tuple[int, ...]) -> int:
        """Local function of cut ``(root, leaves)`` over its leaves.

        Derived incrementally: each cut's truth table is the gate
        operation (majority for MIGs, conjunction for AIGs) of its fanin
        cuts' (memoized) truth tables expanded onto the union leaf set —
        no cone re-simulation.  Falls back to the facade's
        ``cut_function`` for cuts enumeration never produced.
        """
        functions = self._functions
        key = (root, leaves)
        cached = functions.get(key)
        if cached is not None:
            if self.metrics is not None:
                self.metrics.cut_function_cache_hits += 1
            return cached
        mig = self.mig
        provenance = self._provenance
        is_maj = mig.arity == 3
        computed = 0
        hits = 0
        pushed: set[tuple[int, tuple[int, ...]]] = set()
        stack = [key]
        while stack:
            top = stack[-1]
            if top in functions:
                stack.pop()
                continue
            node, lv = top
            if lv == (node,):
                functions[top] = _TT_X0
                stack.pop()
                continue
            if node == 0:
                functions[top] = 0
                stack.pop()
                continue
            prov = provenance.get(top)
            if prov is None:
                # Caller-supplied cut outside the enumerated set.
                functions[top] = mig.cut_function(node, lv)
                computed += 1
                stack.pop()
                continue
            fan_signals, fan_leaves = prov
            if is_maj:
                (fa, fb, fc), (l1, l2, l3) = fan_signals, fan_leaves
                child_keys = ((fa >> 1, l1), (fb >> 1, l2), (fc >> 1, l3))
            else:
                (fa, fb), (l1, l2) = fan_signals, fan_leaves
                child_keys = ((fa >> 1, l1), (fb >> 1, l2))
            missing = [ck for ck in child_keys if ck not in functions]
            if top not in pushed:
                pushed.add(top)
                # Non-trivial child tables answered straight from the memo
                # are cross-query reuse (a child's cut was evaluated while
                # rewriting the child itself, earlier in the pass).
                for ck in child_keys:
                    if ck not in missing and ck[1] != (ck[0],) and ck[0] != 0:
                        hits += 1
            if missing:
                stack.extend(missing)
                continue
            mask = tt_mask(len(lv))
            va = _expand(functions[child_keys[0]], l1, lv)
            if fa & 1:
                va ^= mask
            vb = _expand(functions[child_keys[1]], l2, lv)
            if fb & 1:
                vb ^= mask
            if is_maj:
                vc = _expand(functions[child_keys[2]], l3, lv)
                if fc & 1:
                    vc ^= mask
                functions[top] = tt_maj(va, vb, vc) & mask
            else:
                functions[top] = va & vb & mask
            computed += 1
            stack.pop()
        if self.metrics is not None:
            self.metrics.cut_functions_computed += computed
            self.metrics.cut_function_cache_hits += hits
        return functions[key]


#: sentinel returned by :func:`cut_cone_nodes` when an internal node has
#: external fanout (so callers can distinguish it from an invalid cone)
SHARED_CONE = object()


def cut_cone_nodes(
    mig: Network,
    root: int,
    leaves: tuple[int, ...],
    fanout: list[int] | None = None,
):
    """Internal nodes of cut ``(root, leaves)`` as a set — hot-loop variant.

    Unlike :func:`cut_cone` this returns an unordered set, signals an
    invalid cut by returning ``None`` instead of raising, and — when a
    *fanout* reference-count list is given — aborts the walk the moment a
    non-root internal node has fanout other than 1, returning
    :data:`SHARED_CONE`.  The early exit is what makes the F-variants
    cheap: most cuts fail the fanout-free test and never pay for a full
    cone traversal.
    """
    leaf_set = set(leaves)
    first_gate = mig.num_pis + 1
    fanins = mig.fanins
    seen = {root}
    stack = [s >> 1 for s in fanins(root)]
    while stack:
        node = stack.pop()
        if node in seen or node in leaf_set or node == 0:
            continue
        if node < first_gate:  # a PI outside the leaves: not a cut
            return None
        if fanout is not None and fanout[node] != 1:
            return SHARED_CONE
        seen.add(node)
        stack.extend(s >> 1 for s in fanins(node))
    return seen


def cut_cone(mig: Network, root: int, leaves: tuple[int, ...]) -> list[int]:
    """Return the internal nodes of cut ``(root, leaves)`` in topological order.

    Internal nodes are the gates strictly inside the cut, *including* the
    root itself.  Raises ``ValueError`` when a non-constant terminal is
    reached that is not a leaf (i.e. ``leaves`` is not a valid cut).
    """
    leaf_set = set(leaves)
    visited: set[int] = set()
    order: list[int] = []
    # (node, expanded): post-order with an explicit stack.
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if node in leaf_set or node == 0 or node in visited:
            continue
        if not mig.is_gate(node):
            raise ValueError(f"node {node} is a terminal outside the cut leaves")
        visited.add(node)
        stack.append((node, True))
        for s in mig.fanins(node):
            stack.append((s >> 1, False))
    return order


def mffc_nodes(mig: Network, root: int, fanout: list[int] | None = None) -> set[int]:
    """Maximum fanout-free cone of *root*: gates that die if *root* dies.

    A gate belongs to the MFFC if all of its fanout paths lead into the
    cone.  Computed by simulated reference-count dereferencing.
    """
    if fanout is None:
        fanout = mig.fanout_counts()
    refs = list(fanout)
    cone: set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if not mig.is_gate(node):
            continue
        cone.add(node)
        for s in mig.fanins(node):
            child = s >> 1
            refs[child] -= 1
            if refs[child] == 0:
                stack.append(child)
    return cone


def mffc_size(mig: Network, root: int, fanout: list[int] | None = None) -> int:
    """Number of gates in the MFFC of *root*."""
    return len(mffc_nodes(mig, root, fanout))

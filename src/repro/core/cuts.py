"""k-feasible cut enumeration for kernel-backed networks (Sec. II-C).

Arity-generic since the kernel refactor: the same enumerator serves the
3-ary MIG and the 2-ary AIG (which previously carried a duplicate in
``repro.aig.cuts``, now a shim over this module).  Everything below
that says "mig" accepts any :class:`repro.core.kernel.Network` facade.

A cut ``(v, L)`` of a node ``v`` is a set of leaves ``L`` such that every
path from ``v`` to a non-terminal passes through a leaf, and every leaf
lies on such a path.  Paths to the constant node are exempt.  Cuts are
enumerated bottom-up with the saturating union ``⊗k`` of the paper::

    cuts_k(0) = {{}}
    cuts_k(x) = {{x}}                      for primary inputs x
    cuts_k(g) = cuts_k(g1) ⊗k ... ⊗k cuts_k(g_arity)

As is standard in cut-based rewriting (and implicit in the paper's use of
cuts as rewriting targets), the trivial cut ``{g}`` is additionally kept
for every gate so that enclosing nodes can treat ``g`` itself as a leaf.

Cuts are represented as sorted tuples of leaf node indices.  A 64-bit
signature provides a quick lower bound on union cardinality, and dominated
cuts (proper supersets of another cut of the same node) are pruned.  The
``cut_limit`` parameter bounds the number of cuts stored per node
(priority cuts, ref. [11] of the paper).

:func:`enumerate_cut_set` is the hot-path entry point used by the
rewriters: it additionally records each cut's *provenance* (which fanin
cuts it was merged from) so :meth:`CutSet.function` can derive cut truth
tables incrementally — expanding and combining the fanin cut functions —
instead of re-simulating the cut cone from scratch, and memoize them per
``(node, leaves)`` across the pass.

All traversals here are explicit-stack iterative so that deep (chain-
shaped) networks never hit Python's recursion limit.
"""

from __future__ import annotations

import numpy as np

from ..runtime.metrics import PassMetrics
from .kernel import Network
from .simengine import (
    _PATTERN_IDS,
    evaluate_cut_levels,
    evaluate_cut_program,
    expansion_lut,
    expansion_pid,
)
from .truth_table import tt_extend, tt_maj, tt_mask

__all__ = [
    "CutSet",
    "enumerate_cuts",
    "enumerate_cut_set",
    "cut_cone",
    "cut_cone_nodes",
    "SHARED_CONE",
    "mffc_nodes",
    "mffc_size",
]

#: Truth table of the single-variable projection x0 (trivial/PI cuts).
_TT_X0 = 0b10

#: width masks indexed by variable count (cuts have at most 6 leaves —
#: the large-cut pipeline records 5/6-variable programs too)
_MASKS = (0b1, 0b11, 0xF, 0xFF, 0xFFFF, 0xFFFFFFFF, 0xFFFFFFFFFFFFFFFF)


class _CutProgram:
    """Flat cut-function program recorded *during* enumeration.

    Each enumerated cut owns a slot; trivial / PI / constant cuts are
    init slots with known seed tables, every merged gate cut becomes one
    program row: its output slot and mask, plus per fanin position the
    child cut's slot, inversion bit, and expansion pattern id
    (:func:`repro.core.simengine.expansion_pid`; 0 = child already on
    the union leaf set).  Rows carry their **provenance-DAG level**
    (1 + max child level), so the executor sweeps a few wide levels even
    on chain-shaped networks whose *network* depth is in the hundreds.

    Recording rides along the merge loop — the slots, leaf walks and
    dict probes a post-hoc compiler would redo are captured while the
    enumerator already holds them — which is what makes the batch
    pipeline essentially free to set up (docs/PERFORMANCE.md).
    """

    __slots__ = (
        "arity", "keys", "nv", "slot_lev", "init_idx", "init_vals",
        "row_out", "row_lev", "row_mask", "row_child", "row_sign",
        "row_pid",
    )

    def __init__(self, arity: int) -> None:
        self.arity = arity
        self.keys: list[tuple[int, tuple[int, ...]]] = []
        self.nv: list[int] = []
        self.slot_lev: list[int] = []
        self.init_idx: list[int] = []
        self.init_vals: list[int] = []
        self.row_out: list[int] = []
        self.row_lev: list[int] = []
        self.row_mask: list[int] = []
        self.row_child: list[int] = []
        self.row_sign: list[int] = []
        self.row_pid: list[int] = []

    def add_init(
        self, key: tuple[int, tuple[int, ...]], num_vars: int, value: int
    ) -> int:
        slot = len(self.nv)
        self.keys.append(key)
        self.nv.append(num_vars)
        self.slot_lev.append(0)
        self.init_idx.append(slot)
        self.init_vals.append(value)
        return slot

    def evaluate(self) -> np.ndarray:
        """Assemble the flat arrays and run the executor once.

        Only inversion *bits* are recorded per fanin; the per-row width
        masks are broadcast onto them here, so the hot recording loop
        never evaluates a conditional per fanin.
        """
        n = len(self.row_out)
        arity = self.arity
        # Table dtype follows the widest cut: 6-variable tables occupy
        # all 64 bits (uint64); everything narrower keeps the int64 path.
        width = max(self.nv, default=0)
        dtype = np.uint64 if width >= 6 else np.int64
        mask = np.fromiter(self.row_mask, dtype, n)
        sign = np.fromiter(self.row_sign, dtype, arity * n).reshape(n, arity)
        return evaluate_cut_program(
            len(self.nv),
            np.fromiter(self.init_idx, np.int64, len(self.init_idx)),
            np.fromiter(self.init_vals, dtype, len(self.init_vals)),
            np.fromiter(self.row_lev, np.int64, n),
            np.fromiter(self.row_out, np.int64, n),
            mask,
            np.fromiter(self.row_child, np.int64, arity * n).reshape(n, arity),
            sign * mask[:, None],
            np.fromiter(self.row_pid, np.int64, arity * n).reshape(n, arity),
            arity,
            width=width,
        )


def _signature(leaves: tuple[int, ...]) -> int:
    sig = 0
    for leaf in leaves:
        sig |= 1 << (leaf & 63)
    return sig


def _merge3(
    set1: list[tuple[tuple[int, ...], int, int, int]],
    set2: list[tuple[tuple[int, ...], int, int, int]],
    set3: list[tuple[tuple[int, ...], int, int, int]],
    k: int,
) -> list[tuple[tuple[int, ...], int, int, tuple]]:
    """Saturating union ``⊗k`` over three cut sets, with domination pruning.

    Inputs are ``(leaves, signature, cone_size, slot)`` entries; the
    result carries the provenance — the three child *entries* each union
    was merged from — as raw material for incremental cut functions (the
    leaf tuples feed the scalar memo, the slots feed the compiled batch
    program).  The merged cone size is ``1 + size1 + size2 + size3``; it
    equals the true cone gate count only when the fanin cones are
    disjoint, which the FFR-restricted enumeration mode guarantees (see
    :func:`_enumerate`).
    """
    result: dict[tuple[int, ...], tuple[int, int, tuple]] = {}
    for e1 in set1:
        sig1 = e1[1]
        size1_plus1 = 1 + e1[2]
        union1 = set(e1[0]).union
        for e2 in set2:
            sig12 = sig1 | e2[1]
            if sig12.bit_count() > k:
                continue
            union12 = union1(e2[0])
            if len(union12) > k:
                continue
            size12 = size1_plus1 + e2[2]
            union12_union = union12.union
            for e3 in set3:
                sig = sig12 | e3[1]
                if sig.bit_count() > k:
                    continue
                union = union12_union(e3[0])
                if len(union) > k:
                    continue
                leaves = tuple(sorted(union))
                if leaves not in result:
                    # The signature of the union is the OR of the parts.
                    result[leaves] = (sig, size12 + e3[2], (e1, e2, e3))
    return _prune_dominated(
        [
            (leaves, sig, size, prov)
            for leaves, (sig, size, prov) in result.items()
        ]
    )


def _merge2(
    set1: list[tuple[tuple[int, ...], int, int, int]],
    set2: list[tuple[tuple[int, ...], int, int, int]],
    k: int,
) -> list[tuple[tuple[int, ...], int, int, tuple]]:
    """Two-operand ``⊗k`` — the AIG instantiation of :func:`_merge3`."""
    result: dict[tuple[int, ...], tuple[int, int, tuple]] = {}
    for e1 in set1:
        sig1 = e1[1]
        size1_plus1 = 1 + e1[2]
        union1 = set(e1[0]).union
        for e2 in set2:
            sig = sig1 | e2[1]
            if sig.bit_count() > k:
                continue
            union = union1(e2[0])
            if len(union) > k:
                continue
            leaves = tuple(sorted(union))
            if leaves not in result:
                result[leaves] = (sig, size1_plus1 + e2[2], (e1, e2))
    return _prune_dominated(
        [
            (leaves, sig, size, prov)
            for leaves, (sig, size, prov) in result.items()
        ]
    )


def _prune_dominated(
    cuts: list[tuple[tuple[int, ...], int, int, tuple]],
) -> list[tuple[tuple[int, ...], int, int, tuple]]:
    """Remove cuts that are proper supersets of another cut in the list."""
    if len(cuts) < 2:
        return cuts
    cuts.sort(key=lambda item: len(item[0]))
    kept: list[tuple[tuple[int, ...], int, int, tuple]] = []
    for entry in cuts:
        leaves, sig = entry[0], entry[1]
        leaf_set = None
        dominated = False
        for other in kept:
            if other[1] & ~sig or len(other[0]) >= len(leaves):
                continue
            if leaf_set is None:
                leaf_set = set(leaves)
            if leaf_set.issuperset(other[0]):
                dominated = True
                break
        if not dominated:
            kept.append(entry)
    return kept


def _enumerate(
    mig: Network,
    k: int,
    cut_limit: int,
    include_trivial: bool,
    metrics: PassMetrics | None,
    ffr_fanout: list[int] | None = None,
    compile_functions: bool = False,
) -> tuple[list[list[tuple[int, ...]]], dict, dict, "_CutProgram | None"]:
    """Shared enumeration core.

    Returns per-node cut lists, cut provenance, per-cut cone sizes, and
    — with *compile_functions* — the flat :class:`_CutProgram` for
    batched truth-table evaluation, recorded alongside the merge at
    negligible extra cost.

    With *ffr_fanout* (a fanout-count list), enumeration is restricted to
    fanout-free cuts: merging never expands through a gate with fanout
    other than 1 — such a gate contributes only its trivial cut, i.e. it
    becomes a leaf.  This is the paper's "partition at FFR boundaries"
    formulation of the F-variants: every enumerated cut is fanout-free by
    construction (so rewriters skip the per-cut cone walk entirely), the
    cubic merge space shrinks at every shared fanin, and — because the
    restricted cones are trees — the exact cone gate count falls out of
    the merge for free (``cone_sizes``).  In unrestricted mode the size
    entries over-count shared gates and ``cone_sizes`` is empty.
    """
    if k < 1:
        raise ValueError("cut size k must be at least 1")
    arity = mig.arity
    if arity not in (2, 3):
        raise ValueError(f"unsupported gate arity {arity}")
    num_nodes = mig.num_nodes
    program = _CutProgram(arity) if compile_functions else None
    work: list[list[tuple[tuple[int, ...], int, int, int]]] = [
        [] for _ in range(num_nodes)
    ]
    slot = program.add_init((0, ()), 0, 0) if program is not None else 0
    work[0] = [((), 0, 0, slot)]
    for node in range(1, mig.num_pis + 1):
        leaves = (node,)
        slot = (
            program.add_init((node, leaves), 1, _TT_X0)
            if program is not None
            else 0
        )
        work[node] = [(leaves, _signature(leaves), 0, slot)]
    provenance: dict[tuple[int, tuple[int, ...]], tuple] = {}
    cone_sizes: dict[tuple[int, tuple[int, ...]], int] = {}
    #: node -> slot of its trivial singleton cut (compile mode): the
    #: inserted trivial and the FFR shared-leaf source must share one
    #: slot, they are the same (node, leaves) key.
    trivial_slots: dict[int, int] = {}
    #: child -> memoized singleton source list for shared FFR leaves
    ffr_sources: dict[int, list] = {}
    num_pis = mig.num_pis
    total_cuts = 0
    ffr = ffr_fanout is not None
    prov_set = provenance.__setitem__
    cone_set = cone_sizes.__setitem__
    if program is not None:
        # The slot bookkeeping below (gate-cut recording, trivial-cut
        # init slots) is fully inlined with the list append methods
        # bound once: one attribute walk per *pass*, not per cut, keeps
        # the ride-along compile nearly free.
        nslots = len(program.nv)
        slot_lev = program.slot_lev
        p_keys_append = program.keys.append
        p_nv_append = program.nv.append
        p_slot_lev_append = slot_lev.append
        init_idx_append = program.init_idx.append
        init_vals_append = program.init_vals.append
        row_out_append = program.row_out.append
        row_lev_append = program.row_lev.append
        row_mask_append = program.row_mask.append
        row_child_append = program.row_child.append
        row_sign_append = program.row_sign.append
        row_pid_append = program.row_pid.append
        # Known patterns answer from one dict probe; expansion_pid only
        # runs to grow the LUT (a handful of times per process, ever).
        pid_get = _PATTERN_IDS.get
    for node in mig.gates():
        fanins = mig.fanins(node)
        sources = []
        for s in fanins:
            child = s >> 1
            if ffr and child > num_pis and ffr_fanout[child] != 1:
                # Shared gate: a leaf, never expanded through.
                src = ffr_sources.get(child)
                if src is None:
                    trivial = (child,)
                    if program is not None:
                        slot = trivial_slots.get(child)
                        if slot is None:
                            slot = nslots
                            nslots += 1
                            p_keys_append((child, trivial))
                            p_nv_append(1)
                            p_slot_lev_append(0)
                            init_idx_append(slot)
                            init_vals_append(_TT_X0)
                            trivial_slots[child] = slot
                    else:
                        slot = 0
                    src = [(trivial, 1 << (child & 63), 0, slot)]
                    ffr_sources[child] = src
                sources.append(src)
            else:
                sources.append(work[child])
        # Single-entry sources are the overwhelmingly common case under
        # FFR restriction (50–80% of gates on the EPFL suite: every
        # child a PI, a shared gate, or the constant), and their merge
        # is one union — skip the full ⊗k product and its pruning.
        if arity == 3:
            set1, set2, set3 = sources
            if len(set1) == 1 and len(set2) == 1 and len(set3) == 1:
                e1, e2, e3 = set1[0], set2[0], set3[0]
                l1, l2, l3 = e1[0], e2[0], e3[0]
                if len(l1) < 2 and len(l2) < 2 and len(l3) < 2:
                    # Singleton (or constant-empty) leaf tuples: the
                    # fanin invariants make them distinct and ascending,
                    # so the concatenation is the sorted union.
                    leaves = l1 + l2 + l3
                else:
                    leaves = tuple(sorted({*l1, *l2, *l3}))
                if len(leaves) <= k:
                    merged = [(
                        leaves,
                        e1[1] | e2[1] | e3[1],
                        1 + e1[2] + e2[2] + e3[2],
                        (e1, e2, e3),
                    )]
                else:
                    merged = []
            else:
                merged = _merge3(set1, set2, set3, k)
        else:
            set1, set2 = sources
            if len(set1) == 1 and len(set2) == 1:
                e1, e2 = set1[0], set2[0]
                l1, l2 = e1[0], e2[0]
                if len(l1) < 2 and len(l2) < 2:
                    leaves = l1 + l2
                else:
                    leaves = tuple(sorted({*l1, *l2}))
                if len(leaves) <= k:
                    merged = [(
                        leaves,
                        e1[1] | e2[1],
                        1 + e1[2] + e2[2],
                        (e1, e2),
                    )]
                else:
                    merged = []
            else:
                merged = _merge2(set1, set2, k)
        if len(merged) > cut_limit:
            merged = merged[:cut_limit]
        entries = []
        for leaves, sig, size, child_entries in merged:
            if program is not None:
                num_leaves = len(leaves)
                if num_leaves > 6:
                    # The batch program covers cuts up to 6 leaves (the
                    # wide-pattern executor and the dynamic NPN database
                    # do); anything beyond drops it entirely and the
                    # pass stays on the scalar memo.
                    program = None
                    slot = 0
                else:
                    slot = nslots
                    nslots += 1
                    p_keys_append((node, leaves))
                    p_nv_append(num_leaves)
                    mask = _MASKS[num_leaves]
                    lev = 0
                    index = leaves.index
                    for s, entry in zip(fanins, child_entries):
                        child_slot = entry[3]
                        child_lev = slot_lev[child_slot]
                        if child_lev > lev:
                            lev = child_lev
                        row_child_append(child_slot)
                        row_sign_append(s & 1)
                        child_leaves = entry[0]
                        if child_leaves == leaves:
                            row_pid_append(0)
                        else:
                            # Positions of the (sorted) child leaves
                            # within the (sorted) union leaves — the
                            # child is a subset by merge construction,
                            # so every index probe hits.
                            pat = (num_leaves, tuple(map(index, child_leaves)))
                            pid = pid_get(pat)
                            row_pid_append(
                                pid if pid is not None
                                else expansion_pid(*pat)
                            )
                    lev += 1
                    p_slot_lev_append(lev)
                    row_out_append(slot)
                    row_lev_append(lev)
                    row_mask_append(mask)
            else:
                slot = 0
            entries.append((leaves, sig, size, slot))
            # The merge's provenance triple is stored as-is (full child
            # entries, leaves at index 0): rebuilding a leaves-only
            # tuple per cut was measurable, and in batch mode the memo
            # is complete so most provenance is never consulted.
            key = (node, leaves)
            prov_set(key, (fanins, child_entries))
            if ffr:
                cone_set(key, size)
        if include_trivial:
            trivial = (node,)
            if program is not None:
                slot = nslots
                nslots += 1
                p_keys_append((node, trivial))
                p_nv_append(1)
                p_slot_lev_append(0)
                init_idx_append(slot)
                init_vals_append(_TT_X0)
                trivial_slots[node] = slot
            else:
                slot = 0
            # Keep the documented "ordered by increasing leaf count"
            # contract: the trivial 1-leaf cut goes after existing
            # narrower-or-equal cuts, before wider ones (insort_right
            # semantics — hand-rolled, the key'd bisect was measurable).
            lo = 0
            n_entries = len(entries)
            while lo < n_entries and len(entries[lo][0]) <= 1:
                lo += 1
            entries.insert(lo, (trivial, 1 << (node & 63), 0, slot))
        work[node] = entries
        total_cuts += len(entries)
    if metrics is not None:
        metrics.cuts_enumerated += total_cuts
    return work, provenance, cone_sizes, program


def enumerate_cuts(
    mig: Network,
    k: int = 4,
    cut_limit: int = 25,
    include_trivial: bool = True,
    metrics: PassMetrics | None = None,
) -> list[list[tuple[int, ...]]]:
    """Enumerate k-feasible cuts of every node of *mig* (any arity).

    Returns ``cuts`` with ``cuts[node]`` the list of leaf tuples of that
    node, ordered by increasing leaf count (the trivial cut included in
    order).  The constant node has the single empty cut; a PI has its
    singleton cut.
    """
    entries, _, _, _ = _enumerate(mig, k, cut_limit, include_trivial, metrics)
    return [[entry[0] for entry in node_entries] for node_entries in entries]


def enumerate_cut_set(
    mig: Network,
    k: int = 4,
    cut_limit: int = 25,
    include_trivial: bool = True,
    metrics: PassMetrics | None = None,
    ffr_fanout: list[int] | None = None,
    compile_functions: bool = False,
) -> "CutSet":
    """Enumerate cuts and return a :class:`CutSet` with lazy cut functions.

    With *ffr_fanout* (see :func:`_enumerate`), only fanout-free cuts are
    produced and :meth:`CutSet.cone_size` knows each cut's exact cone
    gate count.  With *compile_functions*, the flat batch program is
    recorded during the merge so a later
    :meth:`CutSet.compute_functions` skips the post-hoc compile.
    """
    entries, provenance, cone_sizes, program = _enumerate(
        mig, k, cut_limit, include_trivial, metrics, ffr_fanout,
        compile_functions,
    )
    return CutSet(mig, entries, provenance, metrics, cone_sizes, program)


# -- expansion tables for incremental cut functions -------------------------

#: (num_dst_vars, src-positions-in-dst) -> per-minterm source projection
_EXPAND_TABLES: dict[tuple[int, tuple[int, ...]], tuple[int, ...]] = {}


def _expand_table(num_vars: int, positions: tuple[int, ...]) -> tuple[int, ...]:
    table = _EXPAND_TABLES.get((num_vars, positions))
    if table is None:
        entries = []
        for m in range(1 << num_vars):
            sm = 0
            for j, p in enumerate(positions):
                if (m >> p) & 1:
                    sm |= 1 << j
            entries.append(sm)
        table = tuple(entries)
        _EXPAND_TABLES[(num_vars, positions)] = table
    return table


#: (tt, num_dst_vars, positions) -> expanded truth table.  Cut functions
#: repeat heavily (a handful of NPN classes per design), so memoizing the
#: result replaces the 2**n scatter loop with one dict probe.  Keys are
#: position patterns, not node ids, so the cache stays small across runs.
_EXPAND_CACHE: dict[tuple[int, int, tuple[int, ...]], int] = {}


def _expand(
    tt: int, src: tuple[int, ...], dst: tuple[int, ...]
) -> int:
    """Re-express *tt* over leaves *src* as a truth table over *dst* ⊇ *src*."""
    if src == dst:
        return tt
    built = []
    j = 0
    src_len = len(src)
    for i, leaf in enumerate(dst):
        if j < src_len and src[j] == leaf:
            built.append(i)
            j += 1
    positions = tuple(built)
    key = (tt, len(dst), positions)
    out = _EXPAND_CACHE.get(key)
    if out is None:
        table = _expand_table(len(dst), positions)
        out = 0
        for m, sm in enumerate(table):
            if (tt >> sm) & 1:
                out |= 1 << m
        _EXPAND_CACHE[key] = out
    return out


class CutSet:
    """Enumerated cuts of a network plus memoized incremental cut functions.

    ``cut_set[node]`` is the list of leaf tuples of *node* (the same shape
    :func:`enumerate_cuts` returns); :meth:`function` yields the local
    function of a cut, computed bottom-up from the fanin cut functions the
    cut was merged from and cached per ``(node, leaves)`` for the lifetime
    of the object — i.e. across one rewriting pass.
    """

    def __init__(
        self,
        mig: Network,
        entries: list[list[tuple[tuple[int, ...], int, int, int]]],
        provenance: dict[tuple[int, tuple[int, ...]], tuple],
        metrics: PassMetrics | None = None,
        cone_sizes: dict[tuple[int, tuple[int, ...]], int] | None = None,
        program: "_CutProgram | None" = None,
    ) -> None:
        self.mig = mig
        #: per-node ``(leaves, signature, cone_size, slot)`` entries as
        #: the enumerator produced them — the rewriters iterate these
        #: directly (cone size and program slot ride along, no dict
        #: probes); :attr:`cuts` derives the leaves-only view lazily.
        self.entries = entries
        self._cuts: list[list[tuple[int, ...]]] | None = None
        self._provenance = provenance
        self._functions: dict[tuple[int, tuple[int, ...]], int] = {}
        self.metrics = metrics
        self._cone_sizes = cone_sizes or {}
        self._program = program
        # Batch-evaluation state (compute_functions): flat per-slot truth
        # tables, the slots of non-trivial gate cuts, and per-slot var
        # counts.  None until/unless the batch path ran.
        self._batch_values: np.ndarray | None = None
        self._batch_gate_slots: np.ndarray | None = None
        self._batch_nv: np.ndarray | None = None
        self._slot_tables: tuple[int, list[int]] | None = None

    @property
    def cuts(self) -> list[list[tuple[int, ...]]]:
        """Per-node leaf tuples (the :func:`enumerate_cuts` shape)."""
        c = self._cuts
        if c is None:
            c = self._cuts = [
                [entry[0] for entry in node_entries]
                for node_entries in self.entries
            ]
        return c

    def slot_tables(self, num_vars: int) -> list[int] | None:
        """Per-slot truth tables extended to *num_vars* variables.

        Indexed by entry slot (``entries[node][i][3]``).  Available only
        when the ride-along program ran (``compute_functions`` on a
        compiled cut set); the extension is the vectorized counterpart
        of :func:`repro.core.truth_table.tt_extend`, so the values are
        bit-identical to the scalar path.  With this list in hand the
        rewrite loop answers every cut-function query with one list
        index — no tuple key, no dict probe, no per-cut extension.
        """
        if self._program is None:
            return None
        if self._batch_values is None and self.compute_functions() is None:
            return None
        cached = self._slot_tables
        if cached is not None and cached[0] == num_vars:
            return cached[1]
        # Extending to 6 variables shifts by 32 — only safe unsigned.
        v = (
            self._batch_values.astype(np.uint64)  # type: ignore[union-attr]
            if num_vars >= 6
            else self._batch_values.copy()  # type: ignore[union-attr]
        )
        nv = self._batch_nv
        for k in range(num_vars):
            grow = nv <= k
            if grow.any():
                v[grow] |= v[grow] << (1 << k)
        tables = v.tolist()
        self._slot_tables = (num_vars, tables)
        return tables

    def cone_size(self, node: int, leaves: tuple[int, ...]) -> int | None:
        """Exact cone gate count of a cut, or None.

        Known only for cuts enumerated in FFR-restricted mode (where the
        cone is a tree and the size falls out of the merge).
        """
        return self._cone_sizes.get((node, leaves))

    def __getitem__(self, node: int) -> list[tuple[int, ...]]:
        return self.cuts[node]

    def __len__(self) -> int:
        return len(self.cuts)

    def compute_functions(self) -> int | None:
        """Batch-evaluate every enumerated cut function in one sweep.

        Compiles the cut provenance DAG into per-level steps — gather the
        fanin cut tables, re-express them onto the union leaf set through
        :func:`repro.core.simengine.expansion_lut` tables, complement,
        combine — and runs it through
        :func:`repro.core.simengine.evaluate_cut_levels`, so a whole
        level of cuts costs a handful of numpy ops instead of one Python
        bigint recursion per cut.  The results fill the same per-pass
        memo :meth:`function` consults, **bit-identical to the lazy
        scalar derivation** (same expansion definition, same gate
        semantics), so downstream decisions cannot diverge.

        Returns the number of gate-cut tables computed, or ``None`` when
        the cut set is non-conformant for batching (a cut wider than 4
        variables, or provenance missing) — callers then simply stay on
        the lazy scalar path.
        """
        if self._batch_values is not None:
            return int(self._batch_gate_slots.size)  # type: ignore[union-attr]
        program = self._program
        if program is not None:
            # Fast path: the flat program was recorded during the merge
            # (enumerate_cut_set(compile_functions=True)) — assemble the
            # arrays and run the executor, no second pass over the cuts.
            values = program.evaluate()
            self._functions.update(zip(program.keys, values.tolist()))
            self._batch_values = values
            self._batch_gate_slots = np.fromiter(
                program.row_out, np.int64, len(program.row_out)
            )
            self._batch_nv = np.fromiter(
                program.nv, np.int64, len(program.nv)
            )
            if self.metrics is not None:
                self.metrics.batch_cut_functions += len(program.row_out)
                self.metrics.batch_levels += max(program.row_lev, default=0)
            return len(program.row_out)
        mig = self.mig
        arity = mig.arity
        if arity not in (2, 3):
            return None
        levels = mig.levels()
        provenance = self._provenance
        slots: dict[tuple[int, tuple[int, ...]], int] = {}
        keys: list[tuple[int, tuple[int, ...]]] = []
        nv_list: list[int] = []
        init_idx: list[int] = []
        init_vals: list[int] = []
        gate_slots: list[int] = []
        by_level: dict[int, list[tuple[int, tuple[int, ...], tuple]]] = {}
        for node, node_cuts in enumerate(self.cuts):
            for leaves in node_cuts:
                key = (node, leaves)
                if key in slots:
                    continue
                if len(leaves) > 4:
                    return None
                idx = len(keys)
                slots[key] = idx
                keys.append(key)
                nv_list.append(len(leaves))
                if leaves == (node,):
                    init_idx.append(idx)
                    init_vals.append(_TT_X0)
                elif node == 0:
                    init_idx.append(idx)
                    init_vals.append(0)
                else:
                    prov = provenance.get(key)
                    if prov is None:
                        return None
                    by_level.setdefault(levels[node], []).append(
                        (idx, leaves, prov)
                    )
                    gate_slots.append(idx)
        masks = tuple(tt_mask(v) for v in range(5))
        level_steps = []
        for lev in sorted(by_level):
            entries = by_level[lev]
            out_idx = np.array([e[0] for e in entries], dtype=np.int64)
            out_mask = np.array(
                [masks[len(e[1])] for e in entries], dtype=np.int64
            )
            pos_steps = []
            for p in range(arity):
                child_idx: list[int] = []
                comp: list[int] = []
                groups: dict[tuple[int, tuple[int, ...]], list[int]] = {}
                for i, (idx, lv, prov) in enumerate(entries):
                    fan_signals, fan_entries = prov
                    s = fan_signals[p]
                    cl = fan_entries[p][0]
                    cidx = slots.get((s >> 1, cl))
                    if cidx is None:
                        return None
                    child_idx.append(cidx)
                    comp.append(masks[len(lv)] if s & 1 else 0)
                    if cl != lv:
                        # Positions of the (sorted) child leaves within
                        # the (sorted) union leaves — same merge walk as
                        # the scalar _expand.
                        positions = []
                        j = 0
                        src_len = len(cl)
                        for pos_i, leaf in enumerate(lv):
                            if j < src_len and cl[j] == leaf:
                                positions.append(pos_i)
                                j += 1
                        if j != src_len:
                            return None
                        groups.setdefault((len(lv), tuple(positions)), []).append(i)
                group_list = tuple(
                    (expansion_lut(dl, pos), np.array(sel, dtype=np.int64))
                    for (dl, pos), sel in groups.items()
                )
                pos_steps.append(
                    (
                        np.array(child_idx, dtype=np.int64),
                        np.array(comp, dtype=np.int64),
                        group_list,
                    )
                )
            level_steps.append((out_idx, out_mask, tuple(pos_steps)))
        values = evaluate_cut_levels(
            len(keys),
            np.array(init_idx, dtype=np.int64),
            np.array(init_vals, dtype=np.int64),
            level_steps,
            arity,
        )
        self._functions.update(zip(keys, values.tolist()))
        self._batch_values = values
        self._batch_gate_slots = np.array(gate_slots, dtype=np.int64)
        self._batch_nv = np.array(nv_list, dtype=np.int64)
        if self.metrics is not None:
            self.metrics.batch_cut_functions += len(gate_slots)
            self.metrics.batch_levels += len(level_steps)
        return len(gate_slots)

    def batch_tt4s(self, num_vars: int) -> np.ndarray:
        """Extended (``num_vars``-input) tables of all non-trivial gate cuts.

        Returns the **deduplicated, sorted** tt array — the input of one
        :meth:`repro.database.npn_db.NpnDatabase.lookup_batch` sweep.
        Vectorized over the batch store when :meth:`compute_functions`
        ran; otherwise derives each table through the lazy scalar memo
        (still profitable: the downstream NPN canonization is batched
        either way).
        """
        if self._batch_values is not None:
            sel = self._batch_gate_slots
            v = self._batch_values[sel]
            # Extending to 6 variables shifts by 32 — only safe unsigned.
            v = v.astype(np.uint64) if num_vars >= 6 else v.copy()
            nv = self._batch_nv[sel]
            for k in range(num_vars):
                grow = nv <= k
                if grow.any():
                    v[grow] |= v[grow] << (1 << k)
            return np.unique(v)
        out: set[int] = set()
        function = self.function
        for node in self.mig.gates():
            for leaves in self.cuts[node]:
                if leaves == (node,):
                    continue
                out.add(tt_extend(function(node, leaves), len(leaves), num_vars))
        return np.array(
            sorted(out), dtype=np.uint64 if num_vars >= 6 else np.int64
        )

    def function(self, root: int, leaves: tuple[int, ...]) -> int:
        """Local function of cut ``(root, leaves)`` over its leaves.

        Derived incrementally: each cut's truth table is the gate
        operation (majority for MIGs, conjunction for AIGs) of its fanin
        cuts' (memoized) truth tables expanded onto the union leaf set —
        no cone re-simulation.  Falls back to the facade's
        ``cut_function`` for cuts enumeration never produced.
        """
        functions = self._functions
        key = (root, leaves)
        cached = functions.get(key)
        if cached is not None:
            if self.metrics is not None:
                self.metrics.cut_function_cache_hits += 1
            return cached
        mig = self.mig
        provenance = self._provenance
        is_maj = mig.arity == 3
        computed = 0
        hits = 0
        pushed: set[tuple[int, tuple[int, ...]]] = set()
        stack = [key]
        while stack:
            top = stack[-1]
            if top in functions:
                stack.pop()
                continue
            node, lv = top
            if lv == (node,):
                functions[top] = _TT_X0
                stack.pop()
                continue
            if node == 0:
                functions[top] = 0
                stack.pop()
                continue
            prov = provenance.get(top)
            if prov is None:
                # Caller-supplied cut outside the enumerated set.
                functions[top] = mig.cut_function(node, lv)
                computed += 1
                stack.pop()
                continue
            fan_signals, fan_entries = prov
            if is_maj:
                fa, fb, fc = fan_signals
                l1, l2, l3 = (
                    fan_entries[0][0], fan_entries[1][0], fan_entries[2][0]
                )
                child_keys = ((fa >> 1, l1), (fb >> 1, l2), (fc >> 1, l3))
            else:
                fa, fb = fan_signals
                l1, l2 = fan_entries[0][0], fan_entries[1][0]
                child_keys = ((fa >> 1, l1), (fb >> 1, l2))
            missing = [ck for ck in child_keys if ck not in functions]
            if top not in pushed:
                pushed.add(top)
                # Non-trivial child tables answered straight from the memo
                # are cross-query reuse (a child's cut was evaluated while
                # rewriting the child itself, earlier in the pass).
                for ck in child_keys:
                    if ck not in missing and ck[1] != (ck[0],) and ck[0] != 0:
                        hits += 1
            if missing:
                stack.extend(missing)
                continue
            mask = tt_mask(len(lv))
            va = _expand(functions[child_keys[0]], l1, lv)
            if fa & 1:
                va ^= mask
            vb = _expand(functions[child_keys[1]], l2, lv)
            if fb & 1:
                vb ^= mask
            if is_maj:
                vc = _expand(functions[child_keys[2]], l3, lv)
                if fc & 1:
                    vc ^= mask
                functions[top] = tt_maj(va, vb, vc) & mask
            else:
                functions[top] = va & vb & mask
            computed += 1
            stack.pop()
        if self.metrics is not None:
            self.metrics.cut_functions_computed += computed
            self.metrics.cut_function_cache_hits += hits
        return functions[key]


#: sentinel returned by :func:`cut_cone_nodes` when an internal node has
#: external fanout (so callers can distinguish it from an invalid cone)
SHARED_CONE = object()


def cut_cone_nodes(
    mig: Network,
    root: int,
    leaves: tuple[int, ...],
    fanout: list[int] | None = None,
):
    """Internal nodes of cut ``(root, leaves)`` as a set — hot-loop variant.

    Unlike :func:`cut_cone` this returns an unordered set, signals an
    invalid cut by returning ``None`` instead of raising, and — when a
    *fanout* reference-count list is given — aborts the walk the moment a
    non-root internal node has fanout other than 1, returning
    :data:`SHARED_CONE`.  The early exit is what makes the F-variants
    cheap: most cuts fail the fanout-free test and never pay for a full
    cone traversal.
    """
    leaf_set = set(leaves)
    first_gate = mig.num_pis + 1
    fanins = mig.fanins
    seen = {root}
    stack = [s >> 1 for s in fanins(root)]
    while stack:
        node = stack.pop()
        if node in seen or node in leaf_set or node == 0:
            continue
        if node < first_gate:  # a PI outside the leaves: not a cut
            return None
        if fanout is not None and fanout[node] != 1:
            return SHARED_CONE
        seen.add(node)
        stack.extend(s >> 1 for s in fanins(node))
    return seen


def cut_cone(mig: Network, root: int, leaves: tuple[int, ...]) -> list[int]:
    """Return the internal nodes of cut ``(root, leaves)`` in topological order.

    Internal nodes are the gates strictly inside the cut, *including* the
    root itself.  Raises ``ValueError`` when a non-constant terminal is
    reached that is not a leaf (i.e. ``leaves`` is not a valid cut).
    """
    leaf_set = set(leaves)
    visited: set[int] = set()
    order: list[int] = []
    # (node, expanded): post-order with an explicit stack.
    stack: list[tuple[int, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        if node in leaf_set or node == 0 or node in visited:
            continue
        if not mig.is_gate(node):
            raise ValueError(f"node {node} is a terminal outside the cut leaves")
        visited.add(node)
        stack.append((node, True))
        for s in mig.fanins(node):
            stack.append((s >> 1, False))
    return order


def mffc_nodes(mig: Network, root: int, fanout: list[int] | None = None) -> set[int]:
    """Maximum fanout-free cone of *root*: gates that die if *root* dies.

    A gate belongs to the MFFC if all of its fanout paths lead into the
    cone.  Computed by simulated reference-count dereferencing.
    """
    if fanout is None:
        fanout = mig.fanout_counts()
    refs = list(fanout)
    cone: set[int] = set()
    stack = [root]
    while stack:
        node = stack.pop()
        if not mig.is_gate(node):
            continue
        cone.add(node)
        for s in mig.fanins(node):
            child = s >> 1
            refs[child] -= 1
            if refs[child] == 0:
                stack.append(child)
    return cone


def mffc_size(mig: Network, root: int, fanout: list[int] | None = None) -> int:
    """Number of gates in the MFFC of *root*."""
    return len(mffc_nodes(mig, root, fanout))

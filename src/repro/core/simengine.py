"""Bit-parallel simulation engine for kernel-backed networks.

One engine serves every simulation consumer in the package — exhaustive
truth tables (:meth:`Mig.simulate`), pattern simulation
(``simulate_patterns``), fraig candidate signatures, randomized
equivalence checking, and cut-cone functions — where previously the MIG,
the AIG, ``core/simulate.py`` and ``opt/fraig.py`` each carried their own
big-int loop.

Two backends compute bit-identical results:

* **bigint** — the historical per-node Python loop over arbitrary-width
  integers.  Zero setup cost; fastest for small networks and narrow
  words.
* **numpy** — the network's gates evaluated level by level over a
  ``(num_nodes, columns)`` uint64 matrix (one column = one 64-bit word of
  the simulation vector).  Each level is a handful of vectorized gather /
  bitwise ops over every gate of that level at once, which is where large
  networks and wide vectors win by an order of magnitude.

The packing convention makes the two interchangeable: bit ``k`` of a
Python word is bit ``k % 64`` of column ``k // 64`` (little-endian
words).  ``backend="auto"`` picks by the work product ``num_gates *
columns``.

Word-width semantics match the historical simulators: input words are
masked to *width* bits, complement is ``xor`` with the width mask, and
outputs are returned masked.

This module imports only numpy, the standard library and
:mod:`repro.core.kernel` — enforced by ``tools/check_layers.py``.  In
particular it cannot use :mod:`repro.core.truth_table`; the projection
patterns are replicated locally (same definition, shared tests).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .kernel import Network

__all__ = [
    "simulate_network",
    "simulate_all_nodes",
    "simulate_words",
    "cone_function",
    "expansion_lut",
    "expansion_pid",
    "expansion_lut2d",
    "evaluate_cut_levels",
    "evaluate_cut_program",
    "projection_int",
    "projection_columns",
    "pack_ints",
    "unpack_ints",
    "column_mask",
    "num_columns",
    "random_pattern_round",
    "random_signature_words",
    "SimulationMixin",
]

_ALL_ONES = np.uint64(0xFFFFFFFFFFFFFFFF)

#: below this many gate-words the big-int loop beats numpy's per-level
#: dispatch overhead (measured in benchmarks/bench_hotpath.py)
_NUMPY_MIN_WORK = 4096

_MAX_CONE_VARS = 16


# ---------------------------------------------------------------------------
# packing between Python ints and uint64 column matrices
# ---------------------------------------------------------------------------


def num_columns(width: int) -> int:
    """Number of 64-bit columns needed for *width*-bit words."""
    return max(1, (width + 63) >> 6)


def column_mask(width: int) -> np.ndarray:
    """Per-column mask of the valid bits of a *width*-bit word."""
    mask = np.full(num_columns(width), _ALL_ONES, dtype=np.uint64)
    rem = width & 63
    if rem:
        mask[-1] = np.uint64((1 << rem) - 1)
    return mask


def pack_ints(words: Sequence[int], columns: int) -> np.ndarray:
    """Pack Python ints into a ``(len(words), columns)`` uint64 matrix.

    Bit ``k`` of a word becomes bit ``k % 64`` of column ``k // 64``.
    """
    n = len(words)
    stride = columns * 8
    buf = bytearray(n * stride)
    for i, w in enumerate(words):
        buf[i * stride : (i + 1) * stride] = w.to_bytes(stride, "little")
    return np.frombuffer(bytes(buf), dtype="<u8").reshape(n, columns)


def unpack_ints(matrix: np.ndarray) -> list[int]:
    """Inverse of :func:`pack_ints`: matrix rows back to Python ints."""
    matrix = np.ascontiguousarray(matrix, dtype="<u8")
    raw = matrix.tobytes()
    stride = matrix.shape[1] * 8
    return [
        int.from_bytes(raw[i * stride : (i + 1) * stride], "little")
        for i in range(matrix.shape[0])
    ]


# ---------------------------------------------------------------------------
# projection patterns (variable truth tables)
# ---------------------------------------------------------------------------

_PROJECTION_CACHE: dict[tuple[int, int], int] = {}


def projection_int(num_vars: int, i: int) -> int:
    """Truth table of the projection ``x_i`` over ``2**num_vars`` bits.

    Same definition as ``repro.core.truth_table.tt_var`` (bit ``m`` is bit
    ``i`` of the minterm index ``m``), replicated here because the
    layering forbids this module from importing above the kernel.
    """
    if not 0 <= num_vars <= _MAX_CONE_VARS:
        raise ValueError(
            f"num_vars must be in [0, {_MAX_CONE_VARS}], got {num_vars}"
        )
    if not 0 <= i < num_vars:
        raise ValueError(f"variable index {i} out of range for {num_vars} variables")
    key = (num_vars, i)
    cached = _PROJECTION_CACHE.get(key)
    if cached is None:
        num_bits = 1 << num_vars
        block = ((1 << (1 << i)) - 1) << (1 << i)
        period = 1 << (i + 1)
        pattern = 0
        for shift in range(0, num_bits, period):
            pattern |= block << shift
        cached = pattern & ((1 << num_bits) - 1)
        _PROJECTION_CACHE[key] = cached
    return cached


def projection_columns(num_vars: int) -> np.ndarray:
    """``(num_vars, columns)`` matrix of the projections ``x_0 .. x_{n-1}``.

    Variables below 6 repeat a single 64-bit pattern per column; variable
    ``i >= 6`` alternates all-zero / all-one blocks of ``2**(i-6)``
    columns.
    """
    width = 1 << num_vars
    cols = num_columns(width)
    out = np.zeros((num_vars, cols), dtype=np.uint64)
    col_idx = np.arange(cols, dtype=np.uint64)
    for i in range(num_vars):
        if i < 6:
            word = projection_int(min(num_vars, 6), i) if num_vars < 6 else None
            if word is None:
                # Full-width repetition of the 64-bit base pattern.
                base = projection_int(6, i)
                out[i, :] = np.uint64(base)
            else:
                out[i, 0] = np.uint64(word)
        else:
            out[i] = np.where((col_idx >> np.uint64(i - 6)) & np.uint64(1), _ALL_ONES, np.uint64(0))
    return out


# ---------------------------------------------------------------------------
# the two backends
# ---------------------------------------------------------------------------


def _eval_gates_bigint(net: Network, values: list[int], mask: int) -> None:
    """Evaluate every gate into *values* — the historical big-int loop."""
    arity = net.ARITY
    fanins = net._fanins
    first_gate = net.num_pis + 1
    if arity == 3:
        for node in range(first_gate, len(fanins)):
            a, b, c = fanins[node]  # type: ignore[misc]
            va = values[a >> 1] ^ (mask if a & 1 else 0)
            vb = values[b >> 1] ^ (mask if b & 1 else 0)
            vc = values[c >> 1] ^ (mask if c & 1 else 0)
            values[node] = (va & vb) | (va & vc) | (vb & vc)
    elif arity == 2:
        for node in range(first_gate, len(fanins)):
            a, b = fanins[node]  # type: ignore[misc]
            va = values[a >> 1] ^ (mask if a & 1 else 0)
            vb = values[b >> 1] ^ (mask if b & 1 else 0)
            values[node] = va & vb
    else:
        raise ValueError(f"unsupported gate arity {arity}")


def _eval_gates_numpy(net: Network, values: np.ndarray) -> None:
    """Evaluate every gate into the column matrix, one level at a time.

    *values* uses the **permuted** row layout of
    :class:`~repro.core.kernel.NetworkArrays`: terminal rows in place,
    gate rows re-ordered by level so each level is one contiguous slice
    (``arr.sim_levels``).  All indices are precomputed at array-view
    build time; a level costs a handful of numpy calls regardless of its
    size, with the combine written straight into the level's slice.

    Complements are full-word xors, so rows carry garbage above the
    simulation width; callers mask the rows they hand out.
    """
    arr = net.arrays()
    arity = arr.arity
    if arity not in (2, 3):
        raise ValueError(f"unsupported gate arity {arity}")
    if arity == 3:
        for start, end, g, fan_pos, fan_comp in arr.sim_levels:
            x = values[fan_pos]
            x ^= fan_comp
            a = x[:g]
            b = x[g : 2 * g]
            c = x[2 * g :]
            t = a & b
            a |= b
            a &= c
            np.bitwise_or(a, t, out=values[start:end])
    else:
        for start, end, g, fan_pos, fan_comp in arr.sim_levels:
            x = values[fan_pos]
            x ^= fan_comp
            np.bitwise_and(x[:g], x[g:], out=values[start:end])


def _use_numpy(net: Network, columns: int, backend: str) -> bool:
    if backend == "numpy":
        return True
    if backend == "bigint":
        return False
    if backend != "auto":
        raise ValueError(f"unknown backend {backend!r}")
    return net.num_gates * columns >= _NUMPY_MIN_WORK


def _simulate_matrix(
    net: Network, pi_words: Sequence[int], width: int
) -> tuple[np.ndarray, np.ndarray]:
    """Numpy backend: the full (permuted-layout) value matrix plus mask.

    Terminal rows sit at their node index; gate rows are level-ordered —
    read them through ``arrays().sim_pos`` / ``sim_out_pos``.
    """
    cols = num_columns(width)
    mask = (1 << width) - 1
    values = np.zeros((net.num_nodes, cols), dtype=np.uint64)
    if net.num_pis:
        values[1 : net.num_pis + 1] = pack_ints(
            [w & mask for w in pi_words], cols
        )
    _eval_gates_numpy(net, values)
    return values, column_mask(width)


# ---------------------------------------------------------------------------
# public simulation entry points
# ---------------------------------------------------------------------------


def simulate_network(
    net: Network,
    pi_words: Sequence[int],
    width: int,
    backend: str = "auto",
) -> list[int]:
    """Simulate *net* on one *width*-bit word per PI; one word per output.

    Bit ``k`` of each input word forms the k-th test vector; bit ``k`` of
    each output word is that vector's response.  Both backends return
    identical words (inputs masked to *width*, outputs masked to
    *width*).
    """
    if len(pi_words) != net.num_pis:
        raise ValueError(
            f"expected {net.num_pis} pattern words, got {len(pi_words)}"
        )
    cols = num_columns(width)
    net.sim_words += net.num_gates * cols
    mask = (1 << width) - 1
    if not _use_numpy(net, cols, backend):
        values = [0] * net.num_nodes
        for i, w in enumerate(pi_words):
            values[1 + i] = w & mask
        _eval_gates_bigint(net, values, mask)
        return [values[s >> 1] ^ (mask if s & 1 else 0) for s in net._outputs]
    values, cmask = _simulate_matrix(net, pi_words, width)
    arr = net.arrays()
    out = (values[arr.sim_out_pos] ^ arr.out_comp[:, None]) & cmask
    return unpack_ints(out)


def simulate_all_nodes(
    net: Network,
    pi_words: Sequence[int],
    width: int,
    backend: str = "auto",
) -> list[int]:
    """Like :func:`simulate_network` but returns the value word of EVERY node.

    Entry ``i`` is the (uncomplemented) value of node ``i`` — the
    signature material of SAT sweeping.
    """
    if len(pi_words) != net.num_pis:
        raise ValueError(
            f"expected {net.num_pis} pattern words, got {len(pi_words)}"
        )
    cols = num_columns(width)
    net.sim_words += net.num_gates * cols
    mask = (1 << width) - 1
    if not _use_numpy(net, cols, backend):
        values = [0] * net.num_nodes
        for i, w in enumerate(pi_words):
            values[1 + i] = w & mask
        _eval_gates_bigint(net, values, mask)
        return values
    matrix, cmask = _simulate_matrix(net, pi_words, width)
    matrix &= cmask
    return unpack_ints(matrix[net.arrays().sim_pos])


def simulate_words(net: Network, values: list[int], mask: int) -> list[int]:
    """Drop-in replacement for the historical ``_simulate_words`` loop.

    *values* holds one word per node with the terminal entries already
    filled; gate entries are computed in place and the masked output
    words returned.  Always the big-int backend — this is the
    compatibility surface for callers that pre-fill arbitrary node
    values.
    """
    net.sim_words += net.num_gates * num_columns(max(mask.bit_length(), 1))
    _eval_gates_bigint(net, values, mask)
    return [values[s >> 1] ^ (mask if s & 1 else 0) for s in net._outputs]


def cone_function(net: Network, root: int, leaves: Sequence[int]) -> int:
    """Local function of *root* expressed over the cut *leaves*.

    Leaf ``j`` becomes variable ``x_j`` of the returned truth table.
    Raises ``ValueError`` if the cone of *root* is not covered by the
    leaves (the constant node is always allowed, mirroring the cut
    definition in Sec. II-C of the paper).  Explicit-stack evaluation:
    cut cones can be arbitrarily deep (chain-shaped networks), so no
    recursion here.
    """
    k = len(leaves)
    values: dict[int, int] = {0: 0}
    for j, leaf in enumerate(leaves):
        values[leaf] = projection_int(k, j)
    mask = (1 << (1 << k)) - 1
    fanins = net._fanins
    arity = net.ARITY
    stack = [root]
    while stack:
        node = stack[-1]
        if node in values:
            stack.pop()
            continue
        if not net.is_gate(node):
            raise ValueError(f"terminal node {node} reached but is not a cut leaf")
        fanin = fanins[node]
        missing = [s >> 1 for s in fanin if s >> 1 not in values]  # type: ignore[union-attr]
        if missing:
            stack.extend(missing)
            continue
        if arity == 3:
            a, b, c = fanin  # type: ignore[misc]
            va = values[a >> 1] ^ (mask if a & 1 else 0)
            vb = values[b >> 1] ^ (mask if b & 1 else 0)
            vc = values[c >> 1] ^ (mask if c & 1 else 0)
            values[node] = (va & vb) | (va & vc) | (vb & vc)
        else:
            a, b = fanin  # type: ignore[misc]
            va = values[a >> 1] ^ (mask if a & 1 else 0)
            vb = values[b >> 1] ^ (mask if b & 1 else 0)
            values[node] = va & vb
        stack.pop()
    return values[root]


# ---------------------------------------------------------------------------
# batched cut-function programs (the rewrite pipeline's batch entry point)
# ---------------------------------------------------------------------------

_EXPANSION_LUTS: dict[tuple[int, tuple[int, ...]], np.ndarray] = {}


def expansion_lut(dst_len: int, positions: tuple[int, ...]) -> np.ndarray:
    """Truth-table expansion as one lookup table, vectorized and cached.

    ``expansion_lut(d, p)[tt]`` re-expresses *tt* — a function of
    ``len(p)`` variables — over ``d`` variables, where source variable
    ``j`` becomes destination variable ``p[j]``.  Same definition as the
    scalar ``repro.core.cuts._expand`` (shared tests); replicated here
    because the layering forbids this module from importing above the
    kernel.

    The table covers every possible source function, so applying it to a
    whole batch is a single fancy-index gather.  Source arity is at most
    ``dst_len - 1 <= 3`` in practice (equal arities are the identity and
    never reach a LUT), so tables stay tiny (<= 256 entries).
    """
    key = (dst_len, positions)
    lut = _EXPANSION_LUTS.get(key)
    if lut is None:
        src_len = len(positions)
        # dst_len = 5 still fits: source tables index at most 2**16 rows
        # (src_len <= 4) and 5-variable values stay below 2**32.  Wider
        # destinations (values filling 64 bits) and 5-variable sources
        # (2**32 rows) have no materializable LUT — those patterns live
        # in the wide registry (negative ids from :func:`expansion_pid`).
        if src_len > dst_len or dst_len > 5 or src_len > 4:
            raise ValueError(f"unsupported expansion {positions} -> {dst_len} vars")
        # source minterm feeding each destination minterm m
        m = np.arange(1 << dst_len, dtype=np.int64)
        src_minterm = np.zeros_like(m)
        for j, p in enumerate(positions):
            src_minterm |= ((m >> p) & 1) << j
        tts = np.arange(1 << (1 << src_len), dtype=np.int64)
        bits = (tts[:, None] >> src_minterm[None, :]) & 1
        lut = bits @ np.left_shift(np.int64(1), m)
        _EXPANSION_LUTS[key] = lut
    return lut


# -- expansion pattern registry for flat cut programs -----------------------

#: (dst_len, positions) -> row index in :func:`expansion_lut2d`; row 0 is
#: reserved for the identity (no re-expression needed)
_PATTERN_IDS: dict[tuple[int, tuple[int, ...]], int] = {}

#: stacked expansion tables, one row per registered pattern, every row
#: padded to 2**16 columns so ``lut2d[pids, tts]`` is a single gather.
#: Row 0 is the identity.  Capacity grows geometrically (appending a
#: row must not copy the whole table — registrations happen mid-
#: enumeration); the universe of patterns for 4-variable cuts is ~20
#: rows (~10 MB), registered once per process.
_LUT2D: np.ndarray | None = None
_LUT2D_ROWS = 0

#: wide expansion patterns — those with no materializable LUT row
#: (destination of 6 variables, or a 5-variable source).  Keyed by the
#: *negative* pattern id handed out by :func:`expansion_pid`, so the
#: enumeration hot loop keeps its single ``_PATTERN_IDS`` dict probe;
#: each value is ``(src_minterm, weights)`` for the direct
#: bit-extraction evaluation ``((vals >> src_minterm) & 1) @ weights``.
_WIDE_PATTERNS: dict[int, tuple[np.ndarray, np.ndarray]] = {}


def expansion_pid(dst_len: int, positions: tuple[int, ...]) -> int:
    """Register (or look up) an expansion pattern; returns its LUT2D row.

    ``expansion_lut2d()[pid][tt]`` equals ``expansion_lut(dst_len,
    positions)[tt]`` for every source table *tt*.  Pattern id 0 is the
    identity and is never returned here — callers use 0 directly when a
    child cut already lives on the destination leaf set.

    Patterns beyond LUT reach — 6-variable destinations or 5-variable
    sources — get a **negative** id backed by :data:`_WIDE_PATTERNS`;
    the executor evaluates those by bit extraction instead of a table
    gather.
    """
    global _LUT2D, _LUT2D_ROWS
    key = (dst_len, positions)
    pid = _PATTERN_IDS.get(key)
    if pid is None:
        src_len = len(positions)
        if dst_len > 5 or src_len > 4:
            m = np.arange(1 << dst_len, dtype=np.uint64)
            src_minterm = np.zeros_like(m)
            for j, p in enumerate(positions):
                src_minterm |= ((m >> np.uint64(p)) & np.uint64(1)) << np.uint64(j)
            weights = np.left_shift(np.uint64(1), m)
            pid = -(len(_WIDE_PATTERNS) + 1)
            _WIDE_PATTERNS[pid] = (src_minterm, weights)
            _PATTERN_IDS[key] = pid
            return pid
        if _LUT2D is None:
            _LUT2D = np.empty((8, 1 << 16), dtype=np.int64)
            _LUT2D[0] = np.arange(1 << 16, dtype=np.int64)
            _LUT2D_ROWS = 1
        elif _LUT2D_ROWS == _LUT2D.shape[0]:
            grown = np.empty((2 * _LUT2D.shape[0], 1 << 16), dtype=np.int64)
            grown[:_LUT2D_ROWS] = _LUT2D
            _LUT2D = grown
        lut = expansion_lut(dst_len, positions)
        pid = _LUT2D_ROWS
        row = _LUT2D[pid]
        # Source tables have len(positions) variables, so only the first
        # 2**2**len(positions) columns are ever indexed.
        row[: lut.size] = lut
        row[lut.size :] = 0
        _LUT2D_ROWS = pid + 1
        _PATTERN_IDS[key] = pid
    return pid


def expansion_lut2d() -> np.ndarray:
    """The stacked expansion table behind :func:`expansion_pid` (a view)."""
    global _LUT2D, _LUT2D_ROWS
    if _LUT2D is None:
        _LUT2D = np.empty((8, 1 << 16), dtype=np.int64)
        _LUT2D[0] = np.arange(1 << 16, dtype=np.int64)
        _LUT2D_ROWS = 1
    return _LUT2D[: _LUT2D_ROWS]


def _gather_expand(
    lut2d: np.ndarray, pid: np.ndarray, vals: np.ndarray, dtype
) -> np.ndarray:
    """Wide-program fanin re-expression: LUT rows plus special cases.

    The plain path gathers every fanin through ``lut2d[pid, vals]``; that
    needs every value to be a valid column (< 2**16) — true only when no
    cut exceeds 4 leaves.  Wide programs route per pattern class instead:
    identity (pid 0) copies the value (5/6-variable tables are *not*
    valid columns), positive pids gather (their sources are <= 4
    variables by construction), negative pids evaluate the registered
    wide pattern by bit extraction.
    """
    out = np.empty(pid.shape, dtype=dtype)
    ident = pid == 0
    if ident.any():
        out[ident] = vals[ident]
    reg = pid > 0
    if reg.any():
        out[reg] = lut2d[pid[reg], vals[reg].astype(np.int64)].astype(dtype)
    wide = pid < 0
    if wide.any():
        for wpid in np.unique(pid[wide]).tolist():
            rows = pid == wpid
            src_minterm, weights = _WIDE_PATTERNS[int(wpid)]
            bits = (
                vals[rows].astype(np.uint64)[:, None] >> src_minterm[None, :]
            ) & np.uint64(1)
            out[rows] = (bits @ weights).astype(dtype)
    return out


def evaluate_cut_program(
    num_slots: int,
    init_idx: np.ndarray,
    init_vals: np.ndarray,
    lev: np.ndarray,
    out_idx: np.ndarray,
    out_mask: np.ndarray,
    child_idx: np.ndarray,
    comp_mask: np.ndarray,
    pid: np.ndarray,
    arity: int,
    width: int = 4,
) -> np.ndarray:
    """Run a flat cut-function program; returns the per-slot tables.

    The fast sibling of :func:`evaluate_cut_levels`: instead of one
    python-built step tuple per network level, the whole program arrives
    as flat arrays — one row per gate cut, ``(n, arity)`` child slots /
    complement masks / expansion pattern ids — already levelized by
    *lev*, the cut's depth in the **provenance DAG** (1 + max child
    level).  Provenance depth is bounded by the cut cone depth, not the
    network depth, so deep chain-shaped networks compress into a handful
    of wide sweeps.  Per level, one ``lut2d[pid, values[child]]`` gather
    re-expresses every fanin table onto its cut's leaf set in a single
    fancy index — no per-group scatter loops.

    Results are bit-identical to the scalar ``CutSet.function``
    derivation (same expansion tables, same gate semantics).

    *width* is the widest cut in the program.  Up to 4 the original
    int64 single-gather level loop runs untouched; 5 keeps int64 (those
    tables stay below 2**32) but routes fanins through
    :func:`_gather_expand` because 5-variable values are not valid LUT
    columns; 6 additionally computes in uint64 — those tables occupy the
    full 64 bits.
    """
    if arity not in (2, 3):
        raise ValueError(f"unsupported gate arity {arity}")
    dtype = np.uint64 if width >= 6 else np.int64
    wide = width >= 5
    values = np.zeros(num_slots, dtype=dtype)
    if init_idx.size:
        values[init_idx] = init_vals
    n = out_idx.size
    if not n:
        return values
    order = np.argsort(lev, kind="stable")
    lev = lev[order]
    out_idx = out_idx[order]
    out_mask = out_mask[order]
    child_idx = child_idx[order]
    comp_mask = comp_mask[order]
    pid = pid[order]
    lut2d = expansion_lut2d()
    starts = np.unique(lev, return_index=True)[1]
    bounds = np.append(starts[1:], n)
    for s, e in zip(starts.tolist(), bounds.tolist()):
        if wide:
            v = _gather_expand(
                lut2d, pid[s:e], values[child_idx[s:e]], dtype
            ) ^ comp_mask[s:e]
        else:
            v = lut2d[pid[s:e], values[child_idx[s:e]]] ^ comp_mask[s:e]
        if arity == 3:
            a, b, c = v[:, 0], v[:, 1], v[:, 2]
            res = (a & b) | (a & c) | (b & c)
        else:
            res = v[:, 0] & v[:, 1]
        values[out_idx[s:e]] = res & out_mask[s:e]
    return values


def evaluate_cut_levels(
    num_slots: int,
    init_idx: np.ndarray,
    init_vals: np.ndarray,
    levels: Sequence[tuple],
    arity: int,
) -> np.ndarray:
    """Run a compiled cut-function program; returns the per-slot tables.

    This is the batch counterpart of :func:`cone_function` /
    ``CutSet.function``: instead of deriving one cut truth table at a
    time through Python bigint recursion, the compiler
    (``repro.core.cuts.CutSet.compute_functions``) flattens the cut
    provenance DAG into per-level steps and this executor evaluates a
    whole level of cuts per numpy sweep.

    * ``num_slots`` — total number of cut slots (one int64 table each);
    * ``init_idx`` / ``init_vals`` — slots with known seed tables
      (trivial cuts, PI projections, the constant cut);
    * ``levels`` — one step per network level, each a tuple
      ``(out_idx, out_mask, pos_steps)`` where ``pos_steps`` holds, per
      gate fanin position, ``(child_idx, comp_mask, groups)``: the child
      slot to gather, the per-cut complement mask (0 or the width mask),
      and ``groups`` — ``(lut, sel)`` pairs applying
      :func:`expansion_lut` tables to the sub-batches that need leaf
      re-expression;
    * ``arity`` — 3 combines positions with majority, 2 with AND.

    Every step reads only slots written by earlier levels (or seeds), so
    one pass over *levels* completes the whole DAG.
    """
    if arity not in (2, 3):
        raise ValueError(f"unsupported gate arity {arity}")
    values = np.zeros(num_slots, dtype=np.int64)
    if init_idx.size:
        values[init_idx] = init_vals
    for out_idx, out_mask, pos_steps in levels:
        operands = []
        for child_idx, comp_mask, groups in pos_steps:
            v = values[child_idx]
            for lut, sel in groups:
                v[sel] = lut[v[sel]]
            v ^= comp_mask
            operands.append(v)
        if arity == 3:
            a, b, c = operands
            res = (a & b) | (a & c) | (b & c)
        else:
            a, b = operands
            res = a & b
        res &= out_mask
        values[out_idx] = res
    return values


# ---------------------------------------------------------------------------
# random-vector helpers (the historical draw orders, deduped)
# ---------------------------------------------------------------------------


def random_pattern_round(rng, num_pis: int, width: int) -> list[int]:
    """One round of random input words, **round-major** draw order.

    The draw order of ``equivalent_random`` since the first release (one
    word per PI, drawn per round): keep it so historical seeds reproduce.
    """
    mask = (1 << width) - 1
    return [rng.getrandbits(width) & mask for _ in range(num_pis)]


def random_signature_words(
    rng, num_pis: int, num_words: int, width: int
) -> list[list[int]]:
    """Random signature words per PI, **node-major** draw order.

    The draw order of the fraig pass since the first release (all words
    of PI 1, then all words of PI 2, ...): keep it so historical seeds
    reproduce.
    """
    return [
        [rng.getrandbits(width) for _ in range(num_words)]
        for _ in range(num_pis)
    ]


# ---------------------------------------------------------------------------
# facade mixin
# ---------------------------------------------------------------------------


class SimulationMixin:
    """Simulation methods shared by the kernel facades (Mig, Aig).

    Mixed into classes deriving from :class:`~repro.core.kernel.Network`;
    everything dispatches into the module-level engine so the facades
    carry no simulation code of their own.
    """

    def simulate(self, backend: str = "auto") -> list[int]:
        """Exhaustively simulate; returns one truth table per output.

        Only feasible for small input counts (``num_pis <= 16``).
        """
        if self.num_pis > 16:
            raise ValueError(
                "exhaustive simulation limited to 16 inputs; use simulate_patterns"
            )
        n = self.num_pis
        width = 1 << n
        cols = num_columns(width)
        self.sim_words += self.num_gates * cols
        mask = (1 << width) - 1
        if not _use_numpy(self, cols, backend):
            values = [0] * self.num_nodes
            for i in range(n):
                values[1 + i] = projection_int(n, i)
            _eval_gates_bigint(self, values, mask)
            return [
                values[s >> 1] ^ (mask if s & 1 else 0) for s in self._outputs
            ]
        values = np.zeros((self.num_nodes, cols), dtype=np.uint64)
        if n:
            values[1 : n + 1] = projection_columns(n)
        _eval_gates_numpy(self, values)
        arr = self.arrays()
        out = (values[arr.sim_out_pos] ^ arr.out_comp[:, None]) & column_mask(width)
        return unpack_ints(out)

    def simulate_patterns(
        self, patterns: Sequence[int], width: int, backend: str = "auto"
    ) -> list[int]:
        """Bit-parallel simulation of arbitrary input patterns.

        *patterns* holds one word per PI; bit ``k`` of each word forms the
        k-th test vector.  Returns one word per output.
        """
        return simulate_network(self, patterns, width, backend=backend)

    def _simulate_words(self, values: list[int], mask: int) -> list[int]:
        return simulate_words(self, values, mask)

    def cut_function(self, root: int, leaves: Sequence[int]) -> int:
        """Return the local function of *root* expressed over *leaves*.

        *leaves* are node indices; leaf ``j`` becomes variable ``x_j`` of
        the returned truth table.  Raises ``ValueError`` if the cone of
        *root* is not covered by the leaves.
        """
        return cone_function(self, root, leaves)

"""Truth tables for small Boolean functions.

A truth table over ``n`` variables is stored as a plain Python integer of
``2**n`` bits: bit ``m`` holds the function value on the input assignment
whose binary encoding is ``m`` (variable ``x_i`` corresponds to bit ``i``
of ``m``).  Module-level functions operate on raw integers for speed; the
:class:`TruthTable` wrapper offers an ergonomic, operator-overloaded view
for public API use.

This module is the functional backbone of the reproduction: cut functions,
NPN classification (Sec. II-D of the paper), exact synthesis specs
(Sec. III) and MIG simulation all go through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "TruthTable",
    "tt_mask",
    "tt_const0",
    "tt_const1",
    "tt_var",
    "tt_not",
    "tt_and",
    "tt_or",
    "tt_xor",
    "tt_maj",
    "tt_ite",
    "tt_cofactor0",
    "tt_cofactor1",
    "tt_depends_on",
    "tt_support",
    "tt_support_size",
    "tt_is_const",
    "tt_count_ones",
    "tt_to_hex",
    "tt_from_hex",
    "tt_extend",
    "tt_shrink_to_support",
    "tt_evaluate",
    "tt_flip_input",
    "tt_permute",
    "tt_swap_adjacent",
]

_MAX_VARS = 16


def tt_mask(num_vars: int) -> int:
    """Return the all-ones truth table (constant 1) over *num_vars* variables."""
    if not 0 <= num_vars <= _MAX_VARS:
        raise ValueError(f"num_vars must be in [0, {_MAX_VARS}], got {num_vars}")
    return (1 << (1 << num_vars)) - 1


def tt_const0(num_vars: int) -> int:
    """Return the constant-0 truth table (always ``0``, checked for range)."""
    tt_mask(num_vars)
    return 0


def tt_const1(num_vars: int) -> int:
    """Return the constant-1 truth table over *num_vars* variables."""
    return tt_mask(num_vars)


# Projection patterns: _VAR_PATTERN[i] restricted to 2**n bits is x_i.
# Pattern for x_i repeats 2**i zeros followed by 2**i ones.
def _var_pattern(i: int, num_bits: int) -> int:
    block = ((1 << (1 << i)) - 1) << (1 << i)
    period = 1 << (i + 1)
    pattern = 0
    for shift in range(0, num_bits, period):
        pattern |= block << shift
    return pattern & ((1 << num_bits) - 1)


_VAR_CACHE: dict[tuple[int, int], int] = {}


def tt_var(num_vars: int, i: int) -> int:
    """Return the truth table of the projection ``x_i`` over *num_vars* variables."""
    if not 0 <= i < num_vars:
        raise ValueError(f"variable index {i} out of range for {num_vars} variables")
    key = (num_vars, i)
    cached = _VAR_CACHE.get(key)
    if cached is None:
        cached = _var_pattern(i, 1 << num_vars)
        _VAR_CACHE[key] = cached
    return cached


def tt_not(f: int, num_vars: int) -> int:
    """Return the complement of *f*."""
    return f ^ tt_mask(num_vars)


def tt_and(f: int, g: int) -> int:
    """Return the conjunction of two truth tables."""
    return f & g


def tt_or(f: int, g: int) -> int:
    """Return the disjunction of two truth tables."""
    return f | g


def tt_xor(f: int, g: int) -> int:
    """Return the exclusive-or of two truth tables."""
    return f ^ g


def tt_maj(f: int, g: int, h: int) -> int:
    """Return the bitwise ternary majority ``<fgh>`` of three truth tables.

    This is the MIG node operation (Sec. II-B, Eq. 1 of the paper).
    """
    return (f & g) | (f & h) | (g & h)


def tt_ite(c: int, t: int, e: int, num_vars: int) -> int:
    """Return if-then-else ``c ? t : e`` as a truth table."""
    return (c & t) | (tt_not(c, num_vars) & e)


def tt_cofactor0(f: int, i: int, num_vars: int) -> int:
    """Return the negative cofactor ``f[x_i := 0]`` (still over *num_vars* vars)."""
    var = tt_var(num_vars, i)
    low = f & ~var & tt_mask(num_vars)
    return low | (low << (1 << i))


def tt_cofactor1(f: int, i: int, num_vars: int) -> int:
    """Return the positive cofactor ``f[x_i := 1]`` (still over *num_vars* vars)."""
    var = tt_var(num_vars, i)
    high = f & var
    return high | (high >> (1 << i))


def tt_depends_on(f: int, i: int, num_vars: int) -> bool:
    """Return True if *f* functionally depends on variable ``x_i``."""
    return tt_cofactor0(f, i, num_vars) != tt_cofactor1(f, i, num_vars)


def tt_support(f: int, num_vars: int) -> tuple[int, ...]:
    """Return the indices of variables *f* depends on, ascending."""
    return tuple(i for i in range(num_vars) if tt_depends_on(f, i, num_vars))


def tt_support_size(f: int, num_vars: int) -> int:
    """Return the number of variables *f* depends on."""
    return len(tt_support(f, num_vars))


def tt_is_const(f: int, num_vars: int) -> bool:
    """Return True if *f* is constant 0 or constant 1."""
    return f == 0 or f == tt_mask(num_vars)


def tt_count_ones(f: int) -> int:
    """Return the number of minterms on which *f* is true."""
    return f.bit_count()


def tt_to_hex(f: int, num_vars: int) -> str:
    """Return *f* as a fixed-width hexadecimal string (MSB first)."""
    digits = max(1, (1 << num_vars) // 4)
    return format(f, f"0{digits}x")


def tt_from_hex(text: str, num_vars: int) -> int:
    """Parse a hexadecimal truth-table string produced by :func:`tt_to_hex`."""
    value = int(text, 16)
    if value > tt_mask(num_vars):
        raise ValueError(f"truth table {text!r} does not fit in {num_vars} variables")
    return value


def tt_extend(f: int, from_vars: int, to_vars: int) -> int:
    """Extend *f* from *from_vars* to *to_vars* variables (new vars are don't-care)."""
    if to_vars < from_vars:
        raise ValueError("tt_extend cannot shrink; use tt_shrink_to_support")
    width = 1 << from_vars
    for extra in range(from_vars, to_vars):
        f = f | (f << (1 << extra))
        width <<= 1
    return f & tt_mask(to_vars)


def tt_shrink_to_support(f: int, num_vars: int) -> tuple[int, tuple[int, ...]]:
    """Project *f* onto its support.

    Returns ``(g, support)`` where ``g`` is a truth table over
    ``len(support)`` variables with
    ``g(y_0, ..., y_{k-1}) == f`` after substituting ``y_j = x_{support[j]}``.
    """
    support = tt_support(f, num_vars)
    g = f
    vars_now = num_vars
    # Remove non-support variables from highest index down so positions of
    # lower variables stay valid.
    for i in range(num_vars - 1, -1, -1):
        if i in support:
            continue
        g = _tt_remove_var(g, i, vars_now)
        vars_now -= 1
    return g, support


def _tt_remove_var(f: int, i: int, num_vars: int) -> int:
    """Drop variable ``x_i`` from *f* (which must not depend on it)."""
    out = 0
    width = 1 << i
    src_bit = 0
    dst_bit = 0
    total = 1 << num_vars
    while src_bit < total:
        chunk = (f >> src_bit) & ((1 << width) - 1)
        out |= chunk << dst_bit
        src_bit += 2 * width
        dst_bit += width
    return out


def tt_evaluate(f: int, assignment: int) -> bool:
    """Evaluate *f* on the input assignment encoded as minterm index."""
    return bool((f >> assignment) & 1)


def tt_flip_input(f: int, i: int, num_vars: int) -> int:
    """Return ``f`` with variable ``x_i`` complemented."""
    var = tt_var(num_vars, i)
    width = 1 << i
    high = f & var
    low = f & ~var & tt_mask(num_vars)
    return (high >> width) | (low << width)


def tt_swap_adjacent(f: int, i: int, num_vars: int) -> int:
    """Return ``f`` with variables ``x_i`` and ``x_{i+1}`` exchanged."""
    if not 0 <= i < num_vars - 1:
        raise ValueError(f"cannot swap variables {i} and {i + 1} in {num_vars} variables")
    step = 1 << i
    # Classic bit-trick: move the two mixed quarters of each 4*step block.
    mask_a = 0
    block = ((1 << step) - 1) << step
    period = 4 * step
    total = 1 << num_vars
    for shift in range(0, total, period):
        mask_a |= block << shift
    mask_b = mask_a << step
    stay = ~(mask_a | mask_b) & tt_mask(num_vars)
    return (f & stay) | ((f & mask_a) << step) | ((f & mask_b) >> step)


def tt_permute(f: int, perm: Iterable[int], num_vars: int) -> int:
    """Apply an input permutation to *f*.

    The result ``g`` satisfies
    ``g(x_0, ..., x_{n-1}) = f(x_{perm[0]}, ..., x_{perm[n-1]})``,
    i.e. input ``j`` of ``f`` is driven by variable ``x_{perm[j]}``.
    """
    perm = list(perm)
    if sorted(perm) != list(range(num_vars)):
        raise ValueError(f"{perm} is not a permutation of 0..{num_vars - 1}")
    g = 0
    for m in range(1 << num_vars):
        mp = 0
        for j in range(num_vars):
            if (m >> perm[j]) & 1:
                mp |= 1 << j
        if (f >> mp) & 1:
            g |= 1 << m
    return g


@dataclass(frozen=True)
class TruthTable:
    """An immutable truth table with operator overloading.

    >>> a, b = TruthTable.var(2, 0), TruthTable.var(2, 1)
    >>> (a & b).to_hex()
    '8'
    """

    num_vars: int
    bits: int

    def __post_init__(self) -> None:
        if self.bits < 0 or self.bits > tt_mask(self.num_vars):
            raise ValueError(
                f"bits 0x{self.bits:x} out of range for {self.num_vars} variables"
            )

    # -- constructors ------------------------------------------------------

    @staticmethod
    def const0(num_vars: int) -> "TruthTable":
        """Constant-0 function."""
        return TruthTable(num_vars, 0)

    @staticmethod
    def const1(num_vars: int) -> "TruthTable":
        """Constant-1 function."""
        return TruthTable(num_vars, tt_mask(num_vars))

    @staticmethod
    def var(num_vars: int, i: int) -> "TruthTable":
        """Projection ``x_i``."""
        return TruthTable(num_vars, tt_var(num_vars, i))

    @staticmethod
    def from_hex(text: str, num_vars: int) -> "TruthTable":
        """Parse from hexadecimal."""
        return TruthTable(num_vars, tt_from_hex(text, num_vars))

    @staticmethod
    def from_values(values: Iterable[int | bool]) -> "TruthTable":
        """Build from an iterable of ``2**n`` output values, minterm order."""
        vals = [1 if v else 0 for v in values]
        n = (len(vals)).bit_length() - 1
        if len(vals) != 1 << n:
            raise ValueError(f"length {len(vals)} is not a power of two")
        bits = 0
        for m, v in enumerate(vals):
            bits |= v << m
        return TruthTable(n, bits)

    # -- operators ---------------------------------------------------------

    def _check(self, other: "TruthTable") -> None:
        if self.num_vars != other.num_vars:
            raise ValueError(
                f"mixing truth tables over {self.num_vars} and {other.num_vars} variables"
            )

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.num_vars, self.bits & other.bits)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.num_vars, self.bits | other.bits)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.num_vars, self.bits ^ other.bits)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.num_vars, tt_not(self.bits, self.num_vars))

    def __iter__(self) -> Iterator[bool]:
        for m in range(1 << self.num_vars):
            yield bool((self.bits >> m) & 1)

    # -- queries -----------------------------------------------------------

    @staticmethod
    def maj(a: "TruthTable", b: "TruthTable", c: "TruthTable") -> "TruthTable":
        """Ternary majority ``<abc>``."""
        a._check(b)
        a._check(c)
        return TruthTable(a.num_vars, tt_maj(a.bits, b.bits, c.bits))

    def cofactor(self, i: int, value: int) -> "TruthTable":
        """Cofactor w.r.t. ``x_i := value``."""
        fn = tt_cofactor1 if value else tt_cofactor0
        return TruthTable(self.num_vars, fn(self.bits, i, self.num_vars))

    def depends_on(self, i: int) -> bool:
        """True if the function depends on ``x_i``."""
        return tt_depends_on(self.bits, i, self.num_vars)

    def support(self) -> tuple[int, ...]:
        """Indices of variables in the functional support."""
        return tt_support(self.bits, self.num_vars)

    def is_const(self) -> bool:
        """True for constant 0 / constant 1."""
        return tt_is_const(self.bits, self.num_vars)

    def count_ones(self) -> int:
        """Number of satisfying minterms."""
        return tt_count_ones(self.bits)

    def evaluate(self, assignment: int) -> bool:
        """Evaluate on a minterm index."""
        return tt_evaluate(self.bits, assignment)

    def permute(self, perm: Iterable[int]) -> "TruthTable":
        """Apply an input permutation (see :func:`tt_permute`)."""
        return TruthTable(self.num_vars, tt_permute(self.bits, perm, self.num_vars))

    def flip_input(self, i: int) -> "TruthTable":
        """Complement input ``x_i``."""
        return TruthTable(self.num_vars, tt_flip_input(self.bits, i, self.num_vars))

    def to_hex(self) -> str:
        """Hexadecimal string, MSB first."""
        return tt_to_hex(self.bits, self.num_vars)

    def __str__(self) -> str:
        return f"0x{self.to_hex()}"

"""NPN classification of Boolean functions (Sec. II-D of the paper).

Two functions are NPN-equivalent if one can be obtained from the other by
Negating inputs, Permuting inputs, and/or Negating the output.  As in the
paper, the representative of each class is the function with the smallest
truth table viewed as a ``2**n``-bit binary number.

The central entry point is :func:`npn_canonize` which returns the class
representative together with the :class:`NPNTransform` that rebuilds the
original function *from* the representative — exactly the information the
functional-hashing rewriter needs to instantiate a precomputed minimum MIG
in place of a cut (Sec. IV, Algorithm 1 line 6).
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from typing import NamedTuple, Sequence

import numpy as np

from .truth_table import tt_mask

__all__ = [
    "NPNTransform",
    "apply_transform",
    "invert_transform",
    "compose_transforms",
    "identity_transform",
    "npn_canonize",
    "npn_canonize_batch",
    "npn_representative",
    "enumerate_npn_classes",
    "npn_class_sizes",
    "canonize_cache_info",
    "canonize_cache_clear",
]


class NPNTransform(NamedTuple):
    """An NPN transform ``t`` mapping a function ``r`` to ``t(r)``.

    Semantics (checked by property tests): ``g = apply_transform(r, t, n)``
    satisfies::

        g(x_0, ..., x_{n-1}) = r(y_0, ..., y_{n-1}) ^ output_flip
        with  y_j = x_{perm[j]} ^ ((flips >> j) & 1)

    i.e. input ``j`` of ``r`` is driven by variable ``x_{perm[j]}``,
    complemented when bit ``j`` of ``flips`` is set.
    """

    perm: tuple[int, ...]
    flips: int
    output_flip: bool


def identity_transform(num_vars: int) -> NPNTransform:
    """Return the identity transform over *num_vars* variables."""
    return NPNTransform(tuple(range(num_vars)), 0, False)


@lru_cache(maxsize=8)
def _remap_tables(num_vars: int) -> dict[tuple[tuple[int, ...], int], tuple[int, ...]]:
    """Minterm remap tables for every (perm, flips) pair.

    ``table[m]`` is the source minterm of the base function whose value
    lands on output minterm ``m`` after the transform.  Key order —
    permutation-major, flips-minor, in ``itertools.permutations`` order —
    is the canonization tie-break; every consumer (scalar loop, batch
    argmin) walks it identically.

    Up to 4 variables the build is a trivial pure-Python loop; for 5/6
    (3 840 / 46 080 keys, up to ~17.7M table cells) the cells come from a
    vectorized numpy builder with identical output.
    """
    size = 1 << num_vars
    if num_vars >= 5:
        tables: dict[tuple[tuple[int, ...], int], tuple[int, ...]] = {}
        m = np.arange(size, dtype=np.int64)
        flip_bits = (m[:, None] >> np.arange(num_vars, dtype=np.int64)) & 1
        shifts = np.left_shift(
            np.int64(1), np.arange(num_vars, dtype=np.int64)
        )
        for perm in permutations(range(num_vars)):
            # bits[j, m] = bit perm[j] of output minterm m
            bits = np.stack([(m >> p) & 1 for p in perm])
            # rows[f, m] = sum_j ((bits[j, m] ^ flip_bit_j(f)) << j)
            rows = (
                (flip_bits[:, :, None] ^ bits[None, :, :]) * shifts[None, :, None]
            ).sum(axis=1)
            cells = rows.tolist()
            for flips in range(size):
                tables[(perm, flips)] = tuple(cells[flips])
        return tables
    tables = {}
    for perm in permutations(range(num_vars)):
        for flips in range(size if num_vars else 1):
            table = []
            for m in range(size):
                mp = 0
                for j in range(num_vars):
                    bit = ((m >> perm[j]) & 1) ^ ((flips >> j) & 1)
                    mp |= bit << j
                table.append(mp)
            tables[(perm, flips)] = tuple(table)
    return tables


def apply_transform(f: int, t: NPNTransform, num_vars: int) -> int:
    """Apply NPN transform *t* to truth table *f* (see :class:`NPNTransform`)."""
    table = _remap_tables(num_vars)[(t.perm, t.flips)]
    g = 0
    for m, mp in enumerate(table):
        if (f >> mp) & 1:
            g |= 1 << m
    if t.output_flip:
        g ^= tt_mask(num_vars)
    return g


def invert_transform(t: NPNTransform) -> NPNTransform:
    """Return the inverse transform: ``apply(apply(f, t), invert(t)) == f``."""
    n = len(t.perm)
    inv_perm = [0] * n
    inv_flips = 0
    for j, target in enumerate(t.perm):
        inv_perm[target] = j
    for i in range(n):
        j = inv_perm[i]
        if (t.flips >> j) & 1:
            inv_flips |= 1 << i
    return NPNTransform(tuple(inv_perm), inv_flips, t.output_flip)


def compose_transforms(outer: NPNTransform, inner: NPNTransform) -> NPNTransform:
    """Return the transform equivalent to applying *inner* then *outer*.

    ``apply(f, compose(outer, inner)) == apply(apply(f, inner), outer)``.
    """
    n = len(outer.perm)
    perm = []
    flips = 0
    for j in range(n):
        # Output var of the composite driving input j of the base function:
        # outer feeds inner's input j with x_{outer-chain}.
        k = inner.perm[j]
        perm.append(outer.perm[k])
        bit = ((inner.flips >> j) & 1) ^ ((outer.flips >> k) & 1)
        flips |= bit << j
    return NPNTransform(tuple(perm), flips, outer.output_flip ^ inner.output_flip)


@lru_cache(maxsize=8)
def _inverse_remap_tables(num_vars: int) -> dict[tuple[tuple[int, ...], int], tuple[int, ...]]:
    """Inverse minterm maps: ``inv[src]`` is the output minterm fed by ``src``.

    Lets canonization build a transformed table by iterating only the *set*
    minterms of the source function instead of all ``2**n`` positions.
    """
    inverses: dict[tuple[tuple[int, ...], int], tuple[int, ...]] = {}
    for key, table in _remap_tables(num_vars).items():
        inv = [0] * len(table)
        for m, mp in enumerate(table):
            inv[mp] = m
        inverses[key] = tuple(inv)
    return inverses


@lru_cache(maxsize=1 << 18)
def _canonize_cached(f: int, num_vars: int) -> tuple[int, NPNTransform]:
    inverses = _inverse_remap_tables(num_vars)
    mask = tt_mask(num_vars)
    # Iterate only the set minterms: callers phase-normalize f so that at
    # most half the positions are set (the cheap symmetry pre-filter).
    ones = [src for src in range(1 << num_vars) if (f >> src) & 1]
    best = None
    best_key = None
    for key, inv in inverses.items():
        g = 0
        for src in ones:
            g |= 1 << inv[src]
        for cand, out_flip in ((g, False), (g ^ mask, True)):
            if best is None or cand < best:
                best = cand
                best_key = (key[0], key[1], out_flip)
    assert best is not None and best_key is not None
    forward = NPNTransform(best_key[0], best_key[1], best_key[2])
    # forward maps f -> representative; the caller wants rep -> f.
    return best, invert_transform(forward)


def npn_canonize(f: int, num_vars: int) -> tuple[int, NPNTransform]:
    """Canonize *f* under NPN equivalence.

    Returns ``(rep, t)`` where ``rep`` is the smallest truth table in the
    NPN orbit of *f* and ``t`` rebuilds *f* from it:
    ``apply_transform(rep, t, num_vars) == f``.
    """
    mask = tt_mask(num_vars)
    if f < 0 or f > mask:
        raise ValueError(f"truth table 0x{f:x} out of range for {num_vars} variables")
    # Phase pre-filter: f and its complement share one NPN orbit, so
    # canonize the sparser polarity (ties broken by value).  This halves
    # the memo-table footprint and bounds the set-minterm loop above.
    fc = f ^ mask
    ones_f = f.bit_count()
    ones_fc = fc.bit_count()
    if ones_fc < ones_f or (ones_fc == ones_f and fc < f):
        rep, t = _canonize_cached(fc, num_vars)
        # t rebuilds fc from rep; flipping the output rebuilds f.
        return rep, NPNTransform(t.perm, t.flips, not t.output_flip)
    return _canonize_cached(f, num_vars)


@lru_cache(maxsize=8)
def _batch_tables(num_vars: int):
    """Static arrays for :func:`npn_canonize_batch`.

    ``fwd`` stacks the forward minterm remap tables of every
    ``(perm, flips)`` key as one ``(K, 2**n)`` matrix **in the exact
    dict insertion order of** :func:`_remap_tables` — that order is the
    scalar tie-break, so the batch argmin must walk it identically.
    ``inv_perms``/``inv_flips`` pre-invert every key once (the caller
    wants representative -> f transforms, like the scalar path).
    """
    tables = _remap_tables(num_vars)
    keys = list(tables.keys())
    # 6-var truth tables occupy all 64 bits, so that arity computes in
    # uint64 end to end (left-shifting int64 by 63 is UB); narrower
    # arities keep the original int64 path byte-for-byte.
    dtype = np.uint64 if num_vars >= 6 else np.int64
    fwd = np.array([tables[k] for k in keys], dtype=dtype)
    inv = [
        invert_transform(NPNTransform(perm, flips, False)) for perm, flips in keys
    ]
    inv_perms = tuple(t.perm for t in inv)
    inv_flips = tuple(t.flips for t in inv)
    weights = np.left_shift(
        dtype(1), np.arange(1 << num_vars, dtype=dtype)
    )
    return fwd, inv_perms, inv_flips, weights


#: memo for batch canonizations, the batch-path twin of the
#: ``_canonize_cached`` lru (which cannot be fed externally).  Bounded:
#: for ``num_vars <= 4`` by construction (at most 65 536 keys per
#: arity); for 5/6 by :data:`_BATCH_MEMO_CAP` — once full, fresh wide
#: canonizations stop inserting (they are still computed correctly).
#: Cleared together with the lru by :func:`canonize_cache_clear` — the
#: cold-benchmark protocol clears both, warm multi-pass flows keep both.
_BATCH_MEMO: dict[tuple[int, int], tuple[int, NPNTransform]] = {}

#: insertion cap for 5/6-variable batch memo entries (~tens of MB worst
#: case; the persistent NPN store is the real cross-pass memory there)
_BATCH_MEMO_CAP = 1 << 17


def canonize_cache_clear() -> None:
    """Clear every canonization memo (scalar lru + batch dict).

    The cold-path benchmark protocol calls this between repeats so both
    pipelines pay their full per-pass canonization cost.
    """
    _canonize_cached.cache_clear()
    _BATCH_MEMO.clear()


def npn_canonize_batch(
    fs: Sequence[int] | np.ndarray, num_vars: int, *, chunk: int = 512
) -> list[tuple[int, NPNTransform]]:
    """Vectorized :func:`npn_canonize` over many truth tables at once.

    Returns one ``(rep, transform)`` pair per input, **bit-identical to
    the scalar path** including its tie-break: candidates are laid out
    key-major / polarity-minor exactly as ``_canonize_cached`` iterates
    them, and ``np.argmin`` picks the first occurrence of the minimum —
    the same winner the scalar strict-``<`` loop keeps.

    The scalar phase pre-filter (canonize the sparser polarity, ties by
    value) is replicated element-wise, so the representative *and* the
    returned transform match ``npn_canonize`` exactly, not just up to
    NPN equivalence.  Work is chunked to bound the ``(chunk, K, 2**n)``
    intermediate (~12 MB at the defaults for 4 variables).

    Results are memoized across calls: unboundedly for ``num_vars <= 4``
    (the whole function space fits), capped for 5/6 — repeated passes
    over the same design re-pay only the dict probes, mirroring the
    scalar path's lru behavior.

    Arities 5 and 6 run the same argmin over 3 840 / 46 080 keys with an
    inner key-block loop (a running strict-``<`` minimum, first
    occurrence winning — block order equals key order, so the tie-break
    is still exactly the scalar one) to bound the ``(chunk, K, 2**n)``
    intermediate; 6-variable tables fill all 64 bits and compute in
    uint64 end to end.
    """
    mask = tt_mask(num_vars)
    wide = num_vars >= 5
    dtype = np.uint64 if num_vars >= 6 else np.int64
    F = np.asarray(fs, dtype=dtype)
    if F.ndim != 1:
        raise ValueError("npn_canonize_batch expects a 1-D sequence of truth tables")
    if F.size and (int(F.min()) < 0 or int(F.max()) > mask):
        raise ValueError(f"truth table out of range for {num_vars} variables")
    memoize = num_vars <= 4 or len(_BATCH_MEMO) < _BATCH_MEMO_CAP
    if F.size:
        memo = _BATCH_MEMO
        known = [memo.get((num_vars, int(f))) for f in F]
        missing = [i for i, pair in enumerate(known) if pair is None]
        if not missing:
            return known  # type: ignore[return-value]
        if len(missing) < F.size:
            fresh = npn_canonize_batch(
                F[missing], num_vars, chunk=chunk
            )
            for i, pair in zip(missing, fresh):
                known[i] = pair
            return known  # type: ignore[return-value]
    fc = F ^ dtype(mask)
    ones_f = np.bitwise_count(F.astype(np.uint64)).astype(np.int64)
    ones_fc = np.bitwise_count(fc.astype(np.uint64)).astype(np.int64)
    use_fc = (ones_fc < ones_f) | ((ones_fc == ones_f) & (fc < F))
    norm = np.where(use_fc, fc, F)
    fwd, inv_perms, inv_flips, weights = _batch_tables(num_vars)
    n = F.size
    num_keys = fwd.shape[0]
    size = 1 << num_vars
    if wide:
        # Bound both loops so the bits intermediate stays ~2M cells
        # (~16 MB) whatever the arity (46 080 keys x 64 minterms at
        # n = 6); narrow arities keep the original single key block.
        chunk = max(1, min(chunk, (1 << 13) // size))
        kblock = max(1, (1 << 21) // (chunk * size))
    else:
        kblock = num_keys
    reps = np.empty(n, dtype=dtype)
    key_idx = np.empty(n, dtype=np.int64)
    out_flip = np.empty(n, dtype=np.int64)
    for lo in range(0, n, chunk):
        sub = norm[lo : lo + chunk]
        rows = np.arange(sub.size)
        best = None
        for klo in range(0, num_keys, kblock):
            fsub = fwd[klo : klo + kblock]
            # bits[i, k, m] = value of input i's table at the source
            # minterm that key k routes to output minterm m; packing with
            # the weight vector rebuilds the transformed table g = t_k(f_i).
            bits = (sub[:, None, None] >> fsub[None, :, :]) & dtype(1)
            g = bits @ weights[:size]
            cand = np.empty((sub.size, 2 * fsub.shape[0]), dtype=dtype)
            cand[:, 0::2] = g
            cand[:, 1::2] = g ^ dtype(mask)
            idx = np.argmin(cand, axis=1)
            val = cand[rows, idx]
            gidx = idx + 2 * klo
            if best is None:
                best, best_idx = val, gidx
            else:
                # Strict < keeps the earlier block on ties: combined with
                # argmin's first-occurrence rule inside a block, the
                # winner is exactly the scalar key-order tie-break.
                better = val < best
                best = np.where(better, val, best)
                best_idx = np.where(better, gidx, best_idx)
        reps[lo : lo + chunk] = best
        key_idx[lo : lo + chunk] = best_idx >> 1
        out_flip[lo : lo + chunk] = best_idx & 1
    out: list[tuple[int, NPNTransform]] = []
    for i in range(n):
        k = int(key_idx[i])
        # Forward transform maps (phase-normalized) f -> rep; the caller
        # wants rep -> f.  Pre-filtered inputs flip the output once more,
        # exactly as npn_canonize does.
        flip = bool(out_flip[i]) ^ bool(use_fc[i])
        pair = (int(reps[i]), NPNTransform(inv_perms[k], inv_flips[k], flip))
        if memoize:
            _BATCH_MEMO[(num_vars, int(F[i]))] = pair
        out.append(pair)
    return out


def canonize_cache_info():
    """Hit/miss statistics of the global canonization memo table.

    Passes snapshot this before/after to report per-pass NPN cache rates
    in :class:`repro.runtime.metrics.PassMetrics`.
    """
    return _canonize_cached.cache_info()


def npn_representative(f: int, num_vars: int) -> int:
    """Return only the NPN class representative of *f*."""
    return npn_canonize(f, num_vars)[0]


@lru_cache(maxsize=8)
def enumerate_npn_classes(num_vars: int) -> tuple[int, ...]:
    """Enumerate the representatives of all NPN classes over *num_vars* variables.

    For ``num_vars = 4`` this yields the 222 classes of the paper
    (Sec. II-D).  Feasible up to ``num_vars = 4``; 5 variables would give
    616 126 classes, which the paper also notes is impractical.
    """
    if num_vars > 4:
        raise ValueError("exhaustive NPN enumeration is only supported up to 4 variables")
    tables = _remap_tables(num_vars)
    size = 1 << (1 << num_vars)
    mask = tt_mask(num_vars)
    seen = bytearray(size)
    reps = []
    for f in range(size):
        if seen[f]:
            continue
        reps.append(f)
        for table in tables.values():
            g = 0
            for m, mp in enumerate(table):
                if (f >> mp) & 1:
                    g |= 1 << m
            seen[g] = 1
            seen[g ^ mask] = 1
    return tuple(reps)


def npn_class_sizes(num_vars: int) -> dict[int, int]:
    """Return a map representative → number of functions in its class."""
    if num_vars > 4:
        raise ValueError("exhaustive NPN enumeration is only supported up to 4 variables")
    tables = _remap_tables(num_vars)
    mask = tt_mask(num_vars)
    sizes: dict[int, int] = {}
    for rep in enumerate_npn_classes(num_vars):
        orbit = set()
        for table in tables.values():
            g = 0
            for m, mp in enumerate(table):
                if (rep >> mp) & 1:
                    g |= 1 << m
            orbit.add(g)
            orbit.add(g ^ mask)
        sizes[rep] = len(orbit)
    return sizes

"""NPN classification of Boolean functions (Sec. II-D of the paper).

Two functions are NPN-equivalent if one can be obtained from the other by
Negating inputs, Permuting inputs, and/or Negating the output.  As in the
paper, the representative of each class is the function with the smallest
truth table viewed as a ``2**n``-bit binary number.

The central entry point is :func:`npn_canonize` which returns the class
representative together with the :class:`NPNTransform` that rebuilds the
original function *from* the representative — exactly the information the
functional-hashing rewriter needs to instantiate a precomputed minimum MIG
in place of a cut (Sec. IV, Algorithm 1 line 6).
"""

from __future__ import annotations

from functools import lru_cache
from itertools import permutations
from typing import NamedTuple

from .truth_table import tt_mask

__all__ = [
    "NPNTransform",
    "apply_transform",
    "invert_transform",
    "compose_transforms",
    "identity_transform",
    "npn_canonize",
    "npn_representative",
    "enumerate_npn_classes",
    "npn_class_sizes",
    "canonize_cache_info",
]


class NPNTransform(NamedTuple):
    """An NPN transform ``t`` mapping a function ``r`` to ``t(r)``.

    Semantics (checked by property tests): ``g = apply_transform(r, t, n)``
    satisfies::

        g(x_0, ..., x_{n-1}) = r(y_0, ..., y_{n-1}) ^ output_flip
        with  y_j = x_{perm[j]} ^ ((flips >> j) & 1)

    i.e. input ``j`` of ``r`` is driven by variable ``x_{perm[j]}``,
    complemented when bit ``j`` of ``flips`` is set.
    """

    perm: tuple[int, ...]
    flips: int
    output_flip: bool


def identity_transform(num_vars: int) -> NPNTransform:
    """Return the identity transform over *num_vars* variables."""
    return NPNTransform(tuple(range(num_vars)), 0, False)


@lru_cache(maxsize=8)
def _remap_tables(num_vars: int) -> dict[tuple[tuple[int, ...], int], tuple[int, ...]]:
    """Minterm remap tables for every (perm, flips) pair.

    ``table[m]`` is the source minterm of the base function whose value
    lands on output minterm ``m`` after the transform.
    """
    tables: dict[tuple[tuple[int, ...], int], tuple[int, ...]] = {}
    size = 1 << num_vars
    for perm in permutations(range(num_vars)):
        for flips in range(size if num_vars else 1):
            table = []
            for m in range(size):
                mp = 0
                for j in range(num_vars):
                    bit = ((m >> perm[j]) & 1) ^ ((flips >> j) & 1)
                    mp |= bit << j
                table.append(mp)
            tables[(perm, flips)] = tuple(table)
    return tables


def apply_transform(f: int, t: NPNTransform, num_vars: int) -> int:
    """Apply NPN transform *t* to truth table *f* (see :class:`NPNTransform`)."""
    table = _remap_tables(num_vars)[(t.perm, t.flips)]
    g = 0
    for m, mp in enumerate(table):
        if (f >> mp) & 1:
            g |= 1 << m
    if t.output_flip:
        g ^= tt_mask(num_vars)
    return g


def invert_transform(t: NPNTransform) -> NPNTransform:
    """Return the inverse transform: ``apply(apply(f, t), invert(t)) == f``."""
    n = len(t.perm)
    inv_perm = [0] * n
    inv_flips = 0
    for j, target in enumerate(t.perm):
        inv_perm[target] = j
    for i in range(n):
        j = inv_perm[i]
        if (t.flips >> j) & 1:
            inv_flips |= 1 << i
    return NPNTransform(tuple(inv_perm), inv_flips, t.output_flip)


def compose_transforms(outer: NPNTransform, inner: NPNTransform) -> NPNTransform:
    """Return the transform equivalent to applying *inner* then *outer*.

    ``apply(f, compose(outer, inner)) == apply(apply(f, inner), outer)``.
    """
    n = len(outer.perm)
    perm = []
    flips = 0
    for j in range(n):
        # Output var of the composite driving input j of the base function:
        # outer feeds inner's input j with x_{outer-chain}.
        k = inner.perm[j]
        perm.append(outer.perm[k])
        bit = ((inner.flips >> j) & 1) ^ ((outer.flips >> k) & 1)
        flips |= bit << j
    return NPNTransform(tuple(perm), flips, outer.output_flip ^ inner.output_flip)


@lru_cache(maxsize=8)
def _inverse_remap_tables(num_vars: int) -> dict[tuple[tuple[int, ...], int], tuple[int, ...]]:
    """Inverse minterm maps: ``inv[src]`` is the output minterm fed by ``src``.

    Lets canonization build a transformed table by iterating only the *set*
    minterms of the source function instead of all ``2**n`` positions.
    """
    inverses: dict[tuple[tuple[int, ...], int], tuple[int, ...]] = {}
    for key, table in _remap_tables(num_vars).items():
        inv = [0] * len(table)
        for m, mp in enumerate(table):
            inv[mp] = m
        inverses[key] = tuple(inv)
    return inverses


@lru_cache(maxsize=1 << 18)
def _canonize_cached(f: int, num_vars: int) -> tuple[int, NPNTransform]:
    inverses = _inverse_remap_tables(num_vars)
    mask = tt_mask(num_vars)
    # Iterate only the set minterms: callers phase-normalize f so that at
    # most half the positions are set (the cheap symmetry pre-filter).
    ones = [src for src in range(1 << num_vars) if (f >> src) & 1]
    best = None
    best_key = None
    for key, inv in inverses.items():
        g = 0
        for src in ones:
            g |= 1 << inv[src]
        for cand, out_flip in ((g, False), (g ^ mask, True)):
            if best is None or cand < best:
                best = cand
                best_key = (key[0], key[1], out_flip)
    assert best is not None and best_key is not None
    forward = NPNTransform(best_key[0], best_key[1], best_key[2])
    # forward maps f -> representative; the caller wants rep -> f.
    return best, invert_transform(forward)


def npn_canonize(f: int, num_vars: int) -> tuple[int, NPNTransform]:
    """Canonize *f* under NPN equivalence.

    Returns ``(rep, t)`` where ``rep`` is the smallest truth table in the
    NPN orbit of *f* and ``t`` rebuilds *f* from it:
    ``apply_transform(rep, t, num_vars) == f``.
    """
    mask = tt_mask(num_vars)
    if f < 0 or f > mask:
        raise ValueError(f"truth table 0x{f:x} out of range for {num_vars} variables")
    # Phase pre-filter: f and its complement share one NPN orbit, so
    # canonize the sparser polarity (ties broken by value).  This halves
    # the memo-table footprint and bounds the set-minterm loop above.
    fc = f ^ mask
    ones_f = f.bit_count()
    ones_fc = fc.bit_count()
    if ones_fc < ones_f or (ones_fc == ones_f and fc < f):
        rep, t = _canonize_cached(fc, num_vars)
        # t rebuilds fc from rep; flipping the output rebuilds f.
        return rep, NPNTransform(t.perm, t.flips, not t.output_flip)
    return _canonize_cached(f, num_vars)


def canonize_cache_info():
    """Hit/miss statistics of the global canonization memo table.

    Passes snapshot this before/after to report per-pass NPN cache rates
    in :class:`repro.runtime.metrics.PassMetrics`.
    """
    return _canonize_cached.cache_info()


def npn_representative(f: int, num_vars: int) -> int:
    """Return only the NPN class representative of *f*."""
    return npn_canonize(f, num_vars)[0]


@lru_cache(maxsize=8)
def enumerate_npn_classes(num_vars: int) -> tuple[int, ...]:
    """Enumerate the representatives of all NPN classes over *num_vars* variables.

    For ``num_vars = 4`` this yields the 222 classes of the paper
    (Sec. II-D).  Feasible up to ``num_vars = 4``; 5 variables would give
    616 126 classes, which the paper also notes is impractical.
    """
    if num_vars > 4:
        raise ValueError("exhaustive NPN enumeration is only supported up to 4 variables")
    tables = _remap_tables(num_vars)
    size = 1 << (1 << num_vars)
    mask = tt_mask(num_vars)
    seen = bytearray(size)
    reps = []
    for f in range(size):
        if seen[f]:
            continue
        reps.append(f)
        for table in tables.values():
            g = 0
            for m, mp in enumerate(table):
                if (f >> mp) & 1:
                    g |= 1 << m
            seen[g] = 1
            seen[g ^ mask] = 1
    return tuple(reps)


def npn_class_sizes(num_vars: int) -> dict[int, int]:
    """Return a map representative → number of functions in its class."""
    if num_vars > 4:
        raise ValueError("exhaustive NPN enumeration is only supported up to 4 variables")
    tables = _remap_tables(num_vars)
    mask = tt_mask(num_vars)
    sizes: dict[int, int] = {}
    for rep in enumerate_npn_classes(num_vars):
        orbit = set()
        for table in tables.values():
            g = 0
            for m, mp in enumerate(table):
                if (rep >> mp) & 1:
                    g |= 1 << m
            orbit.add(g)
            orbit.add(g ^ mask)
        sizes[rep] = len(orbit)
    return sizes

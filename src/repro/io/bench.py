"""ISCAS ``.bench`` format support.

The .bench netlist format (used by the ISCAS-85/89 suites and by many
academic tools) describes combinational logic as named gates::

    INPUT(a)
    OUTPUT(f)
    t = AND(a, b)
    f = NOT(t)

Reading maps each gate to majority logic; writing decomposes majority
gates into the AND/OR/NOT vocabulary.  Only combinational constructs are
supported (no DFF), matching the paper's scope.
"""

from __future__ import annotations

import re
from typing import TextIO

from ..core.mig import CONST0, CONST1, Mig, signal_not

__all__ = ["read_bench", "write_bench"]

_LINE_RE = re.compile(r"^\s*(\S+)\s*=\s*([A-Za-z][A-Za-z0-9]*)\s*\(([^)]*)\)\s*$")


def read_bench(fp: TextIO) -> Mig:
    """Read a combinational .bench file into an MIG."""
    inputs: list[str] = []
    outputs: list[str] = []
    gates: dict[str, tuple[str, list[str]]] = {}
    for raw in fp:
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        upper = line.upper()
        if upper.startswith("INPUT(") and line.endswith(")"):
            inputs.append(line[line.index("(") + 1 : -1].strip())
            continue
        if upper.startswith("OUTPUT(") and line.endswith(")"):
            outputs.append(line[line.index("(") + 1 : -1].strip())
            continue
        match = _LINE_RE.match(line)
        if match is None:
            raise ValueError(f"unsupported .bench line: {line!r}")
        target, op, arg_text = match.groups()
        args = [a.strip() for a in arg_text.split(",") if a.strip()]
        gates[target] = (op.upper(), args)

    mig = Mig(name="bench")
    signals: dict[str, int] = {}
    for name in inputs:
        signals[name] = mig.add_pi(name)

    def tree(op_fn, operands: list[int]) -> int:
        acc = operands[0]
        for s in operands[1:]:
            acc = op_fn(acc, s)
        return acc

    def build(name: str) -> int:
        if name in signals:
            return signals[name]
        if name not in gates:
            raise ValueError(f"undriven signal {name!r}")
        op, arg_names = gates[name]
        args = [build(a) for a in arg_names]
        if op == "AND":
            signal = tree(mig.and_, args)
        elif op == "NAND":
            signal = signal_not(tree(mig.and_, args))
        elif op == "OR":
            signal = tree(mig.or_, args)
        elif op == "NOR":
            signal = signal_not(tree(mig.or_, args))
        elif op == "XOR":
            signal = tree(mig.xor, args)
        elif op == "XNOR":
            signal = signal_not(tree(mig.xor, args))
        elif op == "NOT":
            signal = signal_not(args[0])
        elif op in ("BUF", "BUFF"):
            signal = args[0]
        elif op == "MAJ":
            if len(args) != 3:
                raise ValueError("MAJ gate requires exactly three operands")
            signal = mig.maj(*args)
        elif op == "CONST0" or (op == "GND" and not args):
            signal = CONST0
        elif op == "CONST1" or (op == "VDD" and not args):
            signal = CONST1
        else:
            raise ValueError(f"unsupported .bench gate {op!r}")
        signals[name] = signal
        return signal

    for name in outputs:
        mig.add_po(build(name), name)
    return mig


def write_bench(mig: Mig, fp: TextIO) -> None:
    """Write *mig* in .bench format (majority decomposed as AND/OR/NOT)."""
    fp.write(f"# {mig.name}\n")
    for name in mig.pi_names:
        fp.write(f"INPUT({name})\n")
    for name in mig.output_names:
        fp.write(f"OUTPUT({name})\n")

    def base_name(node: int) -> str:
        if node == 0:
            return "const0"
        if mig.is_pi(node):
            return mig.pi_names[node - 1]
        return f"n{node}"

    names: dict[int, str] = {}  # signal -> emitted name
    counter = [0]

    uses_const = any(
        (s >> 1) == 0 for g in mig.gates() for s in mig.fanins(g)
    ) or any((s >> 1) == 0 for s in mig.outputs)
    if uses_const:
        fp.write("const0 = CONST0()\n")

    def emit(signal: int) -> str:
        if signal in names:
            return names[signal]
        node = signal >> 1
        if signal & 1:
            positive = emit(signal ^ 1)
            inv = f"{base_name(node)}_bar"
            fp.write(f"{inv} = NOT({positive})\n")
            names[signal] = inv
            return inv
        if not mig.is_gate(node):
            names[signal] = base_name(node)
            return names[signal]
        a, b, c = mig.fanins(node)
        na, nb, nc = emit(a), emit(b), emit(c)
        name = base_name(node)
        counter[0] += 1
        fp.write(f"{name}_ab = AND({na}, {nb})\n")
        fp.write(f"{name}_ac = AND({na}, {nc})\n")
        fp.write(f"{name}_bc = AND({nb}, {nc})\n")
        fp.write(f"{name} = OR({name}_ab, {name}_ac, {name}_bc)\n")
        names[signal] = name
        return name

    for name, s in zip(mig.output_names, mig.outputs):
        source = emit(s)
        if source != name:
            fp.write(f"{name} = BUFF({source})\n")

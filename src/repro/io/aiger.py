"""AIGER format support (ASCII ``aag`` and binary ``aig``), combinational.

AIGER is the standard exchange format for And-Inverter Graphs (and the
format the real EPFL benchmark suite ships in).  Literal conventions match
this package exactly: literal ``2*v`` is variable ``v``, ``2*v+1`` its
complement, ``0``/``1`` the constants.  Only combinational networks are
supported (no latches), which covers the paper's entire scope.
"""

from __future__ import annotations

from typing import BinaryIO, TextIO

from ..aig.aig import Aig

__all__ = ["write_aag", "read_aag", "write_aig_binary", "read_aig_binary"]


def write_aag(aig: Aig, fp: TextIO) -> None:
    """Write the ASCII AIGER format."""
    num_ands = aig.num_gates
    max_var = aig.num_pis + num_ands
    fp.write(f"aag {max_var} {aig.num_pis} 0 {aig.num_pos} {num_ands}\n")
    for i in range(1, aig.num_pis + 1):
        fp.write(f"{2 * i}\n")
    for s in aig.outputs:
        fp.write(f"{s}\n")
    for node in aig.gates():
        a, b = aig.fanins(node)
        rhs0, rhs1 = (a, b) if a >= b else (b, a)
        fp.write(f"{2 * node} {rhs0} {rhs1}\n")
    for i, name in enumerate(aig.pi_names):
        fp.write(f"i{i} {name}\n")
    for i, name in enumerate(aig.output_names):
        fp.write(f"o{i} {name}\n")


def read_aag(fp: TextIO) -> Aig:
    """Read the ASCII AIGER format (combinational only)."""
    header = fp.readline().split()
    if len(header) != 6 or header[0] != "aag":
        raise ValueError(f"not an ASCII AIGER header: {header}")
    max_var, num_in, num_latch, num_out, num_and = map(int, header[1:])
    if num_latch:
        raise ValueError("latches are not supported (combinational only)")
    input_lits = [int(fp.readline()) for _ in range(num_in)]
    output_lits = [int(fp.readline()) for _ in range(num_out)]
    and_rows = []
    for _ in range(num_and):
        lhs, rhs0, rhs1 = map(int, fp.readline().split())
        and_rows.append((lhs, rhs0, rhs1))
    names = _read_symbols(fp, num_in, num_out)
    return _assemble(max_var, input_lits, output_lits, and_rows, names)


def write_aig_binary(aig: Aig, fp: BinaryIO) -> None:
    """Write the binary AIGER format."""
    num_ands = aig.num_gates
    max_var = aig.num_pis + num_ands
    fp.write(f"aig {max_var} {aig.num_pis} 0 {aig.num_pos} {num_ands}\n".encode())
    for s in aig.outputs:
        fp.write(f"{s}\n".encode())
    for node in aig.gates():
        a, b = aig.fanins(node)
        rhs0, rhs1 = (a, b) if a >= b else (b, a)
        lhs = 2 * node
        if rhs0 >= lhs:
            raise ValueError("binary AIGER requires topological order")
        _write_delta(fp, lhs - rhs0)
        _write_delta(fp, rhs0 - rhs1)
    symbols = []
    for i, name in enumerate(aig.pi_names):
        symbols.append(f"i{i} {name}\n")
    for i, name in enumerate(aig.output_names):
        symbols.append(f"o{i} {name}\n")
    fp.write("".join(symbols).encode())


def read_aig_binary(fp: BinaryIO) -> Aig:
    """Read the binary AIGER format (combinational only)."""
    header = fp.readline().split()
    if len(header) != 6 or header[0] != b"aig":
        raise ValueError(f"not a binary AIGER header: {header!r}")
    max_var, num_in, num_latch, num_out, num_and = map(int, header[1:])
    if num_latch:
        raise ValueError("latches are not supported (combinational only)")
    input_lits = [2 * (i + 1) for i in range(num_in)]
    output_lits = [int(fp.readline()) for _ in range(num_out)]
    and_rows = []
    for i in range(num_and):
        lhs = 2 * (num_in + 1 + i)
        delta0 = _read_delta(fp)
        delta1 = _read_delta(fp)
        rhs0 = lhs - delta0
        rhs1 = rhs0 - delta1
        and_rows.append((lhs, rhs0, rhs1))
    text = fp.read().decode(errors="replace")
    names = _parse_symbol_text(text, num_in, num_out)
    return _assemble(max_var, input_lits, output_lits, and_rows, names)


def _write_delta(fp: BinaryIO, delta: int) -> None:
    while delta >= 0x80:
        fp.write(bytes([(delta & 0x7F) | 0x80]))
        delta >>= 7
    fp.write(bytes([delta]))


def _read_delta(fp: BinaryIO) -> int:
    value = 0
    shift = 0
    while True:
        byte = fp.read(1)
        if not byte:
            raise ValueError("truncated binary AIGER and-section")
        b = byte[0]
        value |= (b & 0x7F) << shift
        if not b & 0x80:
            return value
        shift += 7


def _read_symbols(fp: TextIO, num_in: int, num_out: int) -> dict[str, str]:
    return _parse_symbol_text(fp.read(), num_in, num_out)


def _parse_symbol_text(text: str, num_in: int, num_out: int) -> dict[str, str]:
    names: dict[str, str] = {}
    for line in text.splitlines():
        if not line or line.startswith("c"):
            break
        if line[0] in "io" and " " in line:
            key, name = line.split(" ", 1)
            names[key] = name
    return names


def _assemble(
    max_var: int,
    input_lits: list[int],
    output_lits: list[int],
    and_rows: list[tuple[int, int, int]],
    names: dict[str, str],
) -> Aig:
    num_in = len(input_lits)
    aig = Aig(name="aiger")
    # literal in file -> signal in the AIG
    lit_map: dict[int, int] = {0: 0, 1: 1}
    for i, lit in enumerate(input_lits):
        if lit != 2 * (i + 1):
            raise ValueError("non-canonical input literal ordering")
        signal = aig.add_pi(names.get(f"i{i}", f"x{i}"))
        lit_map[lit] = signal
        lit_map[lit ^ 1] = signal ^ 1
    # AND rows may be in any order in aag; process by dependency.
    pending = dict((lhs, (rhs0, rhs1)) for lhs, rhs0, rhs1 in and_rows)

    def resolve(lit: int) -> int:
        if lit in lit_map:
            return lit_map[lit]
        base = lit & ~1
        if base not in pending:
            raise ValueError(f"literal {lit} is undriven")
        rhs0, rhs1 = pending[base]
        signal = aig.and_(resolve(rhs0), resolve(rhs1))
        lit_map[base] = signal
        lit_map[base ^ 1] = signal ^ 1
        return lit_map[lit]

    for lhs in sorted(pending):
        resolve(lhs)
    for i, lit in enumerate(output_lits):
        aig.add_po(resolve(lit), names.get(f"o{i}", f"y{i}"))
    return aig

"""File formats: structural Verilog, BLIF, and AIGER."""

from .verilog import write_verilog
from .blif import read_blif, write_blif
from .aiger import read_aag, read_aig_binary, write_aag, write_aig_binary
from .bench import read_bench, write_bench

__all__ = [
    "write_verilog",
    "read_blif",
    "write_blif",
    "read_aag",
    "write_aag",
    "read_aig_binary",
    "write_aig_binary",
    "read_bench",
    "write_bench",
]

"""BLIF reading and writing for MIGs.

The Berkeley Logic Interchange Format is the lingua franca of academic
logic-synthesis tools (ABC, SIS, mockturtle).  Writing emits one
``.names`` cover per majority gate; reading accepts arbitrary
combinational single-output covers and converts each to majority gates
through the heuristic synthesizer (covers with up to 6 inputs).
"""

from __future__ import annotations

from typing import TextIO

from ..core.mig import CONST0, CONST1, Mig, signal_not
from ..core.truth_table import tt_mask
from ..exact.heuristic import heuristic_mig

__all__ = ["write_blif", "read_blif"]


def write_blif(mig: Mig, fp: TextIO, model_name: str | None = None) -> None:
    """Write *mig* in BLIF format (one ``.names`` per majority gate)."""
    model = model_name if model_name is not None else (mig.name or "mig")
    fp.write(f".model {model}\n")
    fp.write(".inputs " + " ".join(mig.pi_names) + "\n")
    fp.write(".outputs " + " ".join(mig.output_names) + "\n")

    def node_name(node: int) -> str:
        if node == 0:
            return "const0"
        if mig.is_pi(node):
            return mig.pi_names[node - 1]
        return f"n{node}"

    uses_const = any(
        (s >> 1) == 0 for g in mig.gates() for s in mig.fanins(g)
    ) or any((s >> 1) == 0 for s in mig.outputs)
    if uses_const:
        fp.write(".names const0\n")  # empty cover = constant 0

    for g in mig.gates():
        fanins = mig.fanins(g)
        names = [node_name(s >> 1) for s in fanins]
        fp.write(f".names {names[0]} {names[1]} {names[2]} n{g}\n")
        # Majority with per-input polarity baked into the cover rows.
        pols = [0 if (s & 1) else 1 for s in fanins]  # value making input "true"
        for pair in ((0, 1), (0, 2), (1, 2)):
            row = []
            for i in range(3):
                row.append(str(pols[i]) if i in pair else "-")
            fp.write("".join(row) + " 1\n")

    for name, s in zip(mig.output_names, mig.outputs):
        src = node_name(s >> 1)
        if s & 1:
            fp.write(f".names {src} {name}\n0 1\n")
        else:
            fp.write(f".names {src} {name}\n1 1\n")
    fp.write(".end\n")


def read_blif(fp: TextIO) -> Mig:
    """Read a combinational BLIF model into an MIG.

    Supports ``.names`` covers with up to 6 inputs (converted to majority
    logic via the heuristic synthesizer), in any topological order.
    """
    inputs: list[str] = []
    outputs: list[str] = []
    model = "blif"
    covers: dict[str, tuple[list[str], list[tuple[str, str]]]] = {}
    current: tuple[list[str], list[tuple[str, str]]] | None = None

    def tokens_of(line: str) -> list[str]:
        return line.split()

    # Join continuation lines.
    text = fp.read().replace("\\\n", " ")
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tok = tokens_of(line)
        if tok[0] == ".model":
            model = tok[1] if len(tok) > 1 else model
        elif tok[0] == ".inputs":
            inputs.extend(tok[1:])
        elif tok[0] == ".outputs":
            outputs.extend(tok[1:])
        elif tok[0] == ".names":
            target = tok[-1]
            current = (tok[1:-1], [])
            covers[target] = current
        elif tok[0] in (".end", ".exdc"):
            current = None
        elif tok[0].startswith("."):
            raise ValueError(f"unsupported BLIF construct: {tok[0]}")
        else:
            if current is None:
                raise ValueError(f"cover row outside .names: {line!r}")
            if len(tok) == 1:
                current[1].append(("", tok[0]))
            else:
                current[1].append((tok[0], tok[1]))

    mig = Mig(name=model)
    signals: dict[str, int] = {}
    for name in inputs:
        signals[name] = mig.add_pi(name)

    def build(name: str) -> int:
        if name in signals:
            return signals[name]
        if name not in covers:
            raise ValueError(f"undriven signal {name!r}")
        fanin_names, rows = covers[name]
        fanins = [build(n) for n in fanin_names]
        signals[name] = _cover_to_signal(mig, fanins, rows, len(fanin_names))
        return signals[name]

    for name in outputs:
        mig.add_po(build(name), name)
    return mig


def _cover_to_signal(mig: Mig, fanins: list[int], rows: list[tuple[str, str]], n: int) -> int:
    """Convert a SOP cover to an MIG signal over already-built fanins."""
    if n == 0:
        # Constant: empty cover is 0; any "1" row makes it 1.
        return CONST1 if any(out == "1" for _, out in rows) else CONST0
    if n > 6:
        raise ValueError(f"cover with {n} inputs exceeds the supported maximum of 6")
    on_rows = [pattern for pattern, out in rows if out == "1"]
    off_rows = [pattern for pattern, out in rows if out == "0"]
    if on_rows and off_rows:
        raise ValueError("BLIF cover mixes on-set and off-set rows")
    patterns = on_rows or off_rows
    tt = 0
    for m in range(1 << n):
        for pattern in patterns:
            if all(
                ch == "-" or int(ch) == ((m >> i) & 1)
                for i, ch in enumerate(pattern)
            ):
                tt |= 1 << m
                break
    if off_rows:
        tt ^= tt_mask(n)
    sub = heuristic_mig(tt, n)
    # Inline `sub` into `mig`, substituting fanins for its PIs.
    mapping: dict[int, int] = {0: 0}
    for i in range(n):
        mapping[1 + i] = fanins[i]
    for node in sub.gates():
        a, b, c = sub.fanins(node)
        mapping[node] = mig.maj(
            mapping[a >> 1] ^ (a & 1),
            mapping[b >> 1] ^ (b & 1),
            mapping[c >> 1] ^ (c & 1),
        )
    out = sub.outputs[0]
    signal = mapping[out >> 1] ^ (out & 1)
    return signal

"""Structural Verilog export of MIGs.

Writes a flat gate-level netlist using ``assign`` statements with the
majority expressed as the standard AND/OR sum-of-pairs form, so the output
is accepted by any synthesis or simulation tool.  This mirrors how MIG
tools (CirKit / mockturtle) export networks for interoperability.
"""

from __future__ import annotations

import re
from typing import TextIO

from ..core.mig import Mig

__all__ = ["write_verilog"]


def _escape(name: str) -> str:
    """Make a signal name Verilog-safe."""
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
        return name
    return "\\" + name + " "


def write_verilog(mig: Mig, fp: TextIO, module_name: str | None = None) -> None:
    """Write *mig* as a structural Verilog module."""
    module = module_name if module_name is not None else (mig.name or "mig")
    pi_names = [_escape(n) for n in mig.pi_names]
    po_names = [_escape(n) for n in mig.output_names]
    ports = ", ".join(pi_names + po_names)
    fp.write(f"module {module}({ports});\n")
    if pi_names:
        fp.write("  input " + ", ".join(pi_names) + ";\n")
    if po_names:
        fp.write("  output " + ", ".join(po_names) + ";\n")

    def ref(signal: int) -> str:
        node = signal >> 1
        if node == 0:
            base = "1'b0"
        elif mig.is_pi(node):
            base = pi_names[node - 1]
        else:
            base = f"n{node}"
        if signal & 1:
            return f"(~{base})" if base != "1'b0" else "1'b1"
        return base

    gates = list(mig.gates())
    if gates:
        fp.write("  wire " + ", ".join(f"n{g}" for g in gates) + ";\n")
    for g in gates:
        a, b, c = (ref(s) for s in mig.fanins(g))
        fp.write(f"  assign n{g} = ({a} & {b}) | ({a} & {c}) | ({b} & {c});\n")
    for name, s in zip(po_names, mig.outputs):
        fp.write(f"  assign {name} = {ref(s)};\n")
    fp.write("endmodule\n")

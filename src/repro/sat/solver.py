"""A CDCL SAT solver in pure Python.

This is the decision-procedure substrate of the reproduction: the paper
solves its exact-synthesis formulation (Sec. III) with the SMT solver Z3;
since the formulation is finite-domain, we bit-blast it to CNF
(:mod:`repro.exact.encoding`) and solve it here.

The solver implements the standard modern architecture:

* two-watched-literal unit propagation with *blocking literals* (each
  watcher caches one other literal of its clause; when the cached
  literal is already true the clause is skipped without dereferencing
  it — most watcher visits on industrial-style instances end here),
* first-UIP conflict analysis with recursive clause minimization,
* VSIDS variable activities with phase saving,
* Luby-sequence restarts,
* activity-based learned-clause database reduction,
* solving under assumptions, and
* conflict budgets for anytime use (returns ``None`` when exhausted).

Search statistics are exposed as plain counters: ``conflicts``,
``decisions``, ``propagations``, ``restarts`` and ``learned`` (total
clauses ever learned), consumed by
:class:`repro.exact.synthesis.SynthesisResult` and
``benchmarks/bench_exact.py``.

Variables are positive integers; literals follow the DIMACS convention
(``v`` positive literal, ``-v`` negative literal).
"""

from __future__ import annotations

import heapq
import time
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:
    import threading

from ..runtime.faults import fault_active

__all__ = ["Solver", "SAT", "UNSAT", "UNKNOWN"]

#: conflicts between deadline polls — keeps clock reads off the hot path
_DEADLINE_CHECK_INTERVAL = 64

SAT = True
UNSAT = False
UNKNOWN = None

_UNDEF = 0
_TRUE = 1
_FALSE = -1


def _luby(i: int) -> int:
    """The i-th element (0-based) of the Luby restart sequence 1,1,2,1,1,2,4,..."""
    size, seq = 1, 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) >> 1
        seq -= 1
        i %= size
    return 1 << seq


class Solver:
    """A CDCL SAT solver instance.

    >>> s = Solver()
    >>> a, b = s.new_var(), s.new_var()
    >>> s.add_clause([a, b]); s.add_clause([-a, b]); s.add_clause([a, -b])
    >>> s.solve()
    True
    >>> s.model_value(a), s.model_value(b)
    (True, True)
    """

    def __init__(self) -> None:
        self.num_vars = 0
        # Literal index: positive literal v -> 2v, negative -> 2v+1.
        # Each watcher is a (blocker, clause) pair: the blocker is some
        # other literal of the clause; when it is already true the
        # watcher is skipped without touching the clause at all.
        self._watches: list[list[tuple[int, list[int]]]] = [[], []]
        # Binary clauses get their own watch lists: the blocker *is* the
        # whole rest of the clause, so a visit never searches for a new
        # watch, never moves, and the list is never rebuilt.  The
        # pairwise at-most-one constraints of the exact-synthesis
        # encoding make these the majority of all clauses.
        self._bin_watches: list[list[tuple[int, list[int]]]] = [[], []]
        self._assigns: list[int] = [0]
        self._level: list[int] = [0]
        self._reason: list[list[int] | None] = [None]
        self._activity: list[float] = [0.0]
        self._phase: list[bool] = [False]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._clauses: list[list[int]] = []
        self._learnts: list[list[int]] = []
        self._cla_activity: dict[int, float] = {}
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._cla_inc = 1.0
        self._ok = True
        self._order_heap: list[tuple[float, int]] = []
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        #: total learned clauses over the solver's lifetime (reduce_db
        #: removals do not decrement; this counts analysis products)
        self.learned = 0
        self.model: list[int] = []
        self._assumption_levels: list[int] = []

    # ------------------------------------------------------------------
    # problem construction
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable and return its (positive) index."""
        self.num_vars += 1
        self._watches.append([])
        self._watches.append([])
        self._bin_watches.append([])
        self._bin_watches.append([])
        self._assigns.append(_UNDEF)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        return self.num_vars

    def new_vars(self, count: int) -> list[int]:
        """Allocate *count* fresh variables."""
        return [self.new_var() for _ in range(count)]

    def add_clause(self, lits: Iterable[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT."""
        if not self._ok:
            return False
        if self._trail_lim:
            # A previous solve may have returned while assumptions were
            # still on the trail; clause addition must happen at root.
            self._cancel_until(0)
        seen: set[int] = set()
        clause: list[int] = []
        for lit in lits:
            var = abs(lit)
            if var == 0 or var > self.num_vars:
                raise ValueError(f"literal {lit} uses an unallocated variable")
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            value = self._lit_value(lit)
            if value == _TRUE and self._level[var] == 0:
                return True  # already satisfied at root
            if value == _FALSE and self._level[var] == 0:
                continue  # root-false literal: drop
            seen.add(lit)
            clause.append(lit)
        if not clause:
            self._ok = False
            return False
        if len(clause) == 1:
            if not self._enqueue(clause[0], None):
                self._ok = False
                return False
            self._ok = self.propagate() is None
            return self._ok
        self._attach(clause)
        self._clauses.append(clause)
        return True

    # ------------------------------------------------------------------
    # assignment bookkeeping
    # ------------------------------------------------------------------

    def _lit_value(self, lit: int) -> int:
        value = self._assigns[abs(lit)]
        return value if lit > 0 else -value

    def _lit_index(self, lit: int) -> int:
        return (lit << 1) if lit > 0 else ((-lit << 1) | 1)

    def _attach(self, clause: list[int]) -> None:
        # The co-watched literal doubles as the blocking literal.
        watches = self._bin_watches if len(clause) == 2 else self._watches
        watches[self._lit_index(-clause[0])].append((clause[1], clause))
        watches[self._lit_index(-clause[1])].append((clause[0], clause))

    def _enqueue(self, lit: int, reason: list[int] | None) -> bool:
        value = self._lit_value(lit)
        if value == _FALSE:
            return False
        if value == _TRUE:
            return True
        var = abs(lit)
        self._assigns[var] = _TRUE if lit > 0 else _FALSE
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        heap = self._order_heap
        for i in range(len(self._trail) - 1, bound - 1, -1):
            var = abs(self._trail[i])
            self._assigns[var] = _UNDEF
            self._reason[var] = None
            heapq.heappush(heap, (-self._activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # propagation
    # ------------------------------------------------------------------

    def propagate(self) -> list[int] | None:
        """Unit propagation; returns the conflicting clause or None.

        This is the solver's inner loop (≥ 80 % of solve time on the
        exact-synthesis workload), hence the deliberate style: every
        attribute is hoisted into a local, literal values are computed
        inline instead of via ``_lit_value``, and the blocking literal
        lets most watcher visits finish without touching the clause.
        """
        watches = self._watches
        bin_watches = self._bin_watches
        assigns = self._assigns
        level = self._level
        reason = self._reason
        phase = self._phase
        trail = self._trail
        trail_lim = self._trail_lim
        qhead = self._qhead
        propagations = 0
        conflict: list[int] | None = None
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            propagations += 1
            idx = (lit << 1) if lit > 0 else ((-lit << 1) | 1)
            # Binary clauses first: the blocker is the entire rest of the
            # clause, so each visit is one value lookup and a branch.
            for watcher in bin_watches[idx]:
                other = watcher[0]
                ov = assigns[other] if other > 0 else -assigns[-other]
                if ov == 1:  # _TRUE
                    continue
                clause = watcher[1]
                if ov == -1:  # _FALSE: both literals false
                    conflict = clause
                    break
                # Unit: imply the co-literal.  Conflict analysis expects
                # the implied literal at reason[0], so normalize.
                if clause[0] != other:
                    clause[0] = other
                    clause[1] = -lit
                var = other if other > 0 else -other
                assigns[var] = 1 if other > 0 else -1
                level[var] = len(trail_lim)
                reason[var] = clause
                phase[var] = other > 0
                trail.append(other)
            if conflict is not None:
                break
            watch_list = watches[idx]
            # Compact the list in place: `keep` is the write cursor, so
            # surviving watchers shift down and no scratch list is built.
            i = 0
            keep = 0
            n = len(watch_list)
            while i < n:
                watcher = watch_list[i]
                i += 1
                blocker = watcher[0]
                bv = assigns[blocker] if blocker > 0 else -assigns[-blocker]
                if bv == 1:  # _TRUE: clause satisfied, skip untouched
                    watch_list[keep] = watcher
                    keep += 1
                    continue
                clause = watcher[1]
                # Ensure the falsified literal is at position 1.
                if clause[0] == -lit:
                    clause[0] = clause[1]
                    clause[1] = -lit
                first = clause[0]
                if first == blocker:
                    v0 = bv
                else:
                    v0 = assigns[first] if first > 0 else -assigns[-first]
                    if v0 == 1:
                        # Refresh the blocker to the satisfied literal.
                        watch_list[keep] = (first, clause)
                        keep += 1
                        continue
                # Look for a new literal to watch.
                found = False
                for j in range(2, len(clause)):
                    lj = clause[j]
                    if (assigns[lj] if lj > 0 else -assigns[-lj]) != -1:
                        clause[1] = lj
                        clause[j] = -lit
                        widx = ((-lj) << 1) if lj < 0 else ((lj << 1) | 1)
                        watches[widx].append((first, clause))
                        found = True
                        break
                if found:
                    continue
                watch_list[keep] = (first, clause)
                keep += 1
                # Clause is unit or conflicting.
                if v0 == -1:  # _FALSE
                    conflict = clause
                    while i < n:  # keep the unvisited tail
                        watch_list[keep] = watch_list[i]
                        keep += 1
                        i += 1
                    break
                # Inline _enqueue for the (always-unassigned) unit case.
                var = first if first > 0 else -first
                assigns[var] = 1 if first > 0 else -1
                level[var] = len(trail_lim)
                reason[var] = clause
                phase[var] = first > 0
                trail.append(first)
            if keep != n:
                del watch_list[keep:]
            if conflict is not None:
                break
        self._qhead = qhead
        self.propagations += propagations
        return conflict

    # ------------------------------------------------------------------
    # conflict analysis
    # ------------------------------------------------------------------

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        learnt: list[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = 0
        index = len(self._trail) - 1
        reason: list[int] | None = conflict
        level = self._decision_level()
        first = True

        while True:
            assert reason is not None
            self._bump_clause(reason)
            start = 0 if first else 1
            for q in reason[start:] if not first else reason:
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= level:
                        counter += 1
                    else:
                        learnt.append(q)
            first = False
            # Find the next literal on the trail to resolve on.
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[var]
        learnt[0] = -lit

        # Clause minimization: drop literals implied by the rest.
        abstract_levels = 0
        for q in learnt[1:]:
            abstract_levels |= 1 << (self._level[abs(q)] & 31)
        minimized = [learnt[0]]
        for q in learnt[1:]:
            if self._reason[abs(q)] is None or not self._lit_redundant(
                q, seen, abstract_levels
            ):
                minimized.append(q)
        learnt = minimized

        # Compute backtrack level.
        if len(learnt) == 1:
            back_level = 0
        else:
            max_i = 1
            for i in range(2, len(learnt)):
                if self._level[abs(learnt[i])] > self._level[abs(learnt[max_i])]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            back_level = self._level[abs(learnt[1])]
        return learnt, back_level

    def _lit_redundant(self, lit: int, seen: list[bool], abstract_levels: int) -> bool:
        stack = [lit]
        cleared: list[int] = []
        while stack:
            q = stack.pop()
            reason = self._reason[abs(q)]
            if reason is None:
                for var in cleared:
                    seen[var] = False
                return False
            for p in reason[1:]:
                var = abs(p)
                if seen[var] or self._level[var] == 0:
                    continue
                if (
                    self._reason[var] is not None
                    and (1 << (self._level[var] & 31)) & abstract_levels
                ):
                    seen[var] = True
                    cleared.append(var)
                    stack.append(p)
                else:
                    for v in cleared:
                        seen[v] = False
                    return False
        return True

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        if self._assigns[var] == _UNDEF:
            # Lazy decrease-key: push a fresh entry; stale ones are skipped.
            heapq.heappush(self._order_heap, (-self._activity[var], var))

    def _bump_clause(self, clause: list[int]) -> None:
        key = id(clause)
        if key in self._cla_activity:
            self._cla_activity[key] += self._cla_inc
            if self._cla_activity[key] > 1e20:
                for k in self._cla_activity:
                    self._cla_activity[k] *= 1e-20
                self._cla_inc *= 1e-20

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def _pick_branch_var(self) -> int:

        heap = self._order_heap
        while heap:
            _, var = heapq.heappop(heap)
            if self._assigns[var] == _UNDEF:
                return var
        for var in range(1, self.num_vars + 1):
            if self._assigns[var] == _UNDEF:
                return var
        return 0

    def _rebuild_heap(self) -> None:

        self._order_heap = [
            (-self._activity[v], v)
            for v in range(1, self.num_vars + 1)
            if self._assigns[v] == _UNDEF
        ]
        heapq.heapify(self._order_heap)

    def _reduce_db(self) -> None:
        acts = self._cla_activity
        learnts = sorted(self._learnts, key=lambda c: acts.get(id(c), 0.0))
        keep_from = len(learnts) // 2
        removed = set()
        for clause in learnts[:keep_from]:
            if len(clause) > 2 and not self._is_reason(clause):
                removed.add(id(clause))
        if not removed:
            return
        self._learnts = [c for c in self._learnts if id(c) not in removed]
        for idx in range(len(self._watches)):
            self._watches[idx] = [
                w for w in self._watches[idx] if id(w[1]) not in removed
            ]
        for key in removed:
            self._cla_activity.pop(key, None)

    def _is_reason(self, clause: list[int]) -> bool:
        lit = clause[0]
        return self._reason[abs(lit)] is clause

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: int | None = None,
        deadline: float | None = None,
        cancel: "threading.Event | None" = None,
    ) -> bool | None:
        """Solve the formula.

        Returns ``True`` (SAT, model available), ``False`` (UNSAT), or
        ``None`` when *conflict_budget* conflicts were spent — or the
        wall-clock *deadline* (a ``time.monotonic()`` instant) passed —
        without an answer.

        *cancel* is the portfolio's cooperative stop signal: it is
        polled exactly where the deadline is (entry, each restart, and
        every ``_DEADLINE_CHECK_INTERVAL`` conflicts), so a set event
        costs one attribute lookup per poll and stops the search with
        ``UNKNOWN`` without perturbing any solver state.
        """
        if fault_active("solver.timeout"):
            return UNKNOWN
        if not self._ok:
            return UNSAT
        if cancel is not None and cancel.is_set():
            return UNKNOWN
        if deadline is not None and time.monotonic() >= deadline:
            return UNKNOWN
        self._cancel_until(0)
        if self.propagate() is not None:
            self._ok = False
            return UNSAT
        self._rebuild_heap()
        budget = conflict_budget
        restart_count = 0
        max_learnts = 4000.0

        while True:
            limit = 100 * _luby(restart_count)
            if restart_count:
                self.restarts += 1
            restart_count += 1
            conflicts_here = 0
            self._cancel_until(0)
            if cancel is not None and cancel.is_set():
                return UNKNOWN
            if deadline is not None and time.monotonic() >= deadline:
                return UNKNOWN
            # Re-apply assumptions after each restart.
            status = self._apply_assumptions(assumptions)
            if status is not None:
                self._cancel_until(0)
                return status
            while True:
                conflict = self.propagate()
                if conflict is not None:
                    self.conflicts += 1
                    conflicts_here += 1
                    if budget is not None:
                        budget -= 1
                        if budget <= 0:
                            self._cancel_until(0)
                            return UNKNOWN
                    if (
                        (deadline is not None or cancel is not None)
                        and self.conflicts % _DEADLINE_CHECK_INTERVAL == 0
                    ):
                        if cancel is not None and cancel.is_set():
                            self._cancel_until(0)
                            return UNKNOWN
                        if deadline is not None and time.monotonic() >= deadline:
                            self._cancel_until(0)
                            return UNKNOWN
                    if self._decision_level() <= len(self._assumption_levels):
                        # Conflict under assumptions only (or at root).
                        if self._decision_level() == 0:
                            self._ok = False
                        self._cancel_until(0)
                        return UNSAT
                    learnt, back_level = self._analyze(conflict)
                    self.learned += 1
                    back_level = max(back_level, len(self._assumption_levels))
                    self._cancel_until(back_level)
                    if len(learnt) == 1:
                        self._cancel_until(0)
                        if not self._enqueue(learnt[0], None):
                            self._ok = False
                            return UNSAT
                        status = self._apply_assumptions(assumptions)
                        if status is not None:
                            self._cancel_until(0)
                            return status
                    else:
                        self._attach(learnt)
                        self._learnts.append(learnt)
                        self._cla_activity[id(learnt)] = self._cla_inc
                        self._enqueue(learnt[0], learnt)
                    self._var_inc *= self._var_decay
                    self._cla_inc *= 1.001
                    if len(self._learnts) > max_learnts:
                        self._reduce_db()
                        max_learnts *= 1.1
                    continue
                if conflicts_here >= limit:
                    break  # restart
                var = self._pick_branch_var()
                if var == 0:
                    self.model = [0] + [
                        1 if self._assigns[v] == _TRUE else 0
                        for v in range(1, self.num_vars + 1)
                    ]
                    self._cancel_until(0)
                    return SAT
                self.decisions += 1
                self._trail_lim.append(len(self._trail))
                lit = var if self._phase[var] else -var
                heapq.heappush(self._order_heap, (-self._activity[var], var))
                self._enqueue(lit, None)

    def _apply_assumptions(self, assumptions: Sequence[int]) -> bool | None:
        """Push assumptions as pseudo-decisions; returns UNSAT on clash."""
        self._assumption_levels = []
        for lit in assumptions:
            conflict = self.propagate()
            if conflict is not None:
                return UNSAT
            value = self._lit_value(lit)
            if value == _TRUE:
                continue
            if value == _FALSE:
                return UNSAT
            self._trail_lim.append(len(self._trail))
            self._assumption_levels.append(len(self._trail_lim))
            self._enqueue(lit, None)
        return None

    # ------------------------------------------------------------------
    # model access
    # ------------------------------------------------------------------

    def model_value(self, lit: int) -> bool:
        """Value of *lit* in the last model (only valid after SAT)."""
        if not self.model:
            raise RuntimeError("no model available; call solve() first and check SAT")
        value = bool(self.model[abs(lit)])
        return value if lit > 0 else not value

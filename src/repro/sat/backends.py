"""Pluggable SAT solver backends (ROADMAP item 3, docs/ROBUSTNESS.md).

The in-tree CDCL solver (:mod:`repro.sat.solver`) is the trustworthy
default, but deep UNSAT proofs — size-4+ exact synthesis, CEC miters —
are exactly where industrial solvers (kissat, CaDiCaL) are orders of
magnitude stronger.  This module defines the seam between the two
worlds:

* :class:`InternalBackend` wraps the pure-python :class:`Solver`
  (assumptions, conflict budgets, deadlines, cooperative cancellation);
* :class:`DimacsSubprocessBackend` runs any DIMACS-speaking binary as a
  supervised subprocess: the CNF is written with
  :func:`repro.sat.dimacs.write_dimacs`, the child runs under a
  wall-clock deadline with the batch supervisor's kill discipline
  (SIGTERM → grace → SIGKILL, process-group wide) so no solver process
  ever outlives its job, ``s SATISFIABLE`` / ``v`` lines are parsed and
  exit codes 10/20 mapped, and anything else — crash, garbage output,
  a model that does not satisfy the clauses — degrades to UNKNOWN for
  that lane instead of failing the run.

Discovery is environment-driven: ``$REPRO_SAT_SOLVERS`` names the
binaries (comma/colon separated commands, arguments allowed); when it
is unset, ``kissat`` and ``cadical`` are probed on ``$PATH``.  With no
binary present :func:`discover_backends` returns an empty list and the
portfolio (:mod:`repro.sat.portfolio`) degrades to internal-only.

Every external SAT answer is validated against the clause list with
:func:`validate_model` before anyone trusts it — a lying solver can
never change a verdict, only waste its own lane.
"""

from __future__ import annotations

import os
import shlex
import shutil
import signal
import subprocess
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Protocol, Sequence

from ..runtime.faults import fault_active
from .solver import Solver

__all__ = [
    "BackendResult",
    "SolverBackend",
    "InternalBackend",
    "DimacsSubprocessBackend",
    "discover_backends",
    "validate_model",
    "terminate_process",
    "SOLVERS_ENV_VAR",
    "DEFAULT_SOLVER_NAMES",
]

#: environment variable naming external solver commands
SOLVERS_ENV_VAR = "REPRO_SAT_SOLVERS"

#: binaries probed on $PATH when the env var is unset
DEFAULT_SOLVER_NAMES = ("kissat", "cadical")

#: how often a lane polls its child / cancel event (seconds)
_LANE_POLL_INTERVAL = 0.01

#: conventional SAT-competition exit codes
_EXIT_SAT = 10
_EXIT_UNSAT = 20


@dataclass
class BackendResult:
    """Outcome of one backend lane.

    ``answer`` mirrors the internal solver's convention: ``True`` (SAT),
    ``False`` (UNSAT), ``None`` (no usable answer from this lane).
    ``outcome`` is the lane's fate for observability: ``"sat"``,
    ``"unsat"``, ``"unknown"`` (budget/cancel), ``"timeout"`` (deadline,
    child killed), ``"crash"`` (died / unparsable), or ``"garbled"``
    (claimed SAT with a model that fails validation).  ``model`` uses the
    internal solver's shape — ``model[var]`` is 1/0, index 0 unused —
    and is only set for a *validated* SAT answer.
    """

    backend: str
    answer: bool | None
    outcome: str
    model: list[int] | None = None
    detail: str | None = None
    #: internal-lane search statistics (zero for subprocess lanes)
    conflicts: int = 0
    propagations: int = 0
    decisions: int = 0
    restarts: int = 0
    learned: int = 0
    seconds: float = 0.0


class SolverBackend(Protocol):
    """What the portfolio requires of a lane."""

    name: str

    def solve(
        self,
        num_vars: int,
        clauses: Sequence[Sequence[int]],
        assumptions: Sequence[int] = (),
        conflict_budget: int | None = None,
        deadline: float | None = None,
        cancel: threading.Event | None = None,
    ) -> BackendResult:
        """Solve the CNF; must honor *deadline* and *cancel* and must
        never leak a child process past its return."""
        ...


def validate_model(
    num_vars: int,
    clauses: Sequence[Sequence[int]],
    model: Sequence[int],
    assumptions: Sequence[int] = (),
) -> bool:
    """True when *model* (``model[var]`` truthy = var true) satisfies
    every clause and every assumption.

    This is the trust boundary for external SAT answers: O(total
    literals), so validating even a CEC-miter model is microseconds
    next to the solve it confirms.
    """
    if len(model) < num_vars + 1:
        return False

    def lit_true(lit: int) -> bool:
        value = bool(model[abs(lit)])
        return value if lit > 0 else not value

    for lit in assumptions:
        if abs(lit) > num_vars or not lit_true(lit):
            return False
    for clause in clauses:
        for lit in clause:
            if abs(lit) <= num_vars and lit_true(lit):
                break
        else:
            return False
    return True


def terminate_process(proc: subprocess.Popen, grace: float) -> None:
    """The supervisor's kill discipline for one child: TERM, grace, KILL.

    Signals the whole process group when the child leads one (lanes
    spawn with ``start_new_session=True``), so a solver that forks
    helpers cannot leak them; falls back to signalling the child alone.
    Always reaps the child before returning — the caller can assert via
    ``/proc`` that nothing survived the race.
    """
    if proc.poll() is not None:
        return
    _signal_group(proc, signal.SIGTERM)
    deadline = time.monotonic() + max(0.0, grace)
    while proc.poll() is None and time.monotonic() < deadline:
        time.sleep(_LANE_POLL_INTERVAL)
    if proc.poll() is None:
        _signal_group(proc, signal.SIGKILL)
    try:
        proc.wait(timeout=10.0)
    except subprocess.TimeoutExpired:  # pragma: no cover - kernel refusal
        pass


def _signal_group(proc: subprocess.Popen, sig: int) -> None:
    try:
        os.killpg(os.getpgid(proc.pid), sig)
    except (ProcessLookupError, PermissionError, OSError):
        try:
            proc.send_signal(sig)
        except (ProcessLookupError, OSError):
            pass


class InternalBackend:
    """The pure-python CDCL solver as a portfolio lane.

    Wraps either a live incremental :class:`Solver` (the portfolio hands
    in the builder's solver so learned clauses persist across CEGAR
    iterations) or, when *solver* is ``None``, a fresh solver loaded
    from the clause list per call.
    """

    def __init__(self, solver: Solver | None = None, name: str = "internal") -> None:
        self.name = name
        self._solver = solver

    def solve(
        self,
        num_vars: int,
        clauses: Sequence[Sequence[int]],
        assumptions: Sequence[int] = (),
        conflict_budget: int | None = None,
        deadline: float | None = None,
        cancel: threading.Event | None = None,
    ) -> BackendResult:
        start = time.perf_counter()
        solver = self._solver
        if solver is None:
            solver = Solver()
            solver.new_vars(num_vars)
            for clause in clauses:
                solver.add_clause(clause)
        before = {
            key: getattr(solver, key)
            for key in ("conflicts", "propagations", "decisions", "restarts", "learned")
        }
        answer = solver.solve(
            assumptions=assumptions,
            conflict_budget=conflict_budget,
            deadline=deadline,
            cancel=cancel,
        )
        stats = {
            key: getattr(solver, key) - before[key] for key in before
        }
        if answer is True:
            outcome = "sat"
            model = list(solver.model)
        else:
            model = None
            if answer is False:
                outcome = "unsat"
            elif cancel is not None and cancel.is_set():
                outcome = "unknown"
            elif deadline is not None and time.monotonic() >= deadline:
                outcome = "timeout"
            else:
                outcome = "unknown"
        return BackendResult(
            backend=self.name,
            answer=answer,
            outcome=outcome,
            model=model,
            seconds=time.perf_counter() - start,
            **stats,
        )


class DimacsSubprocessBackend:
    """An external DIMACS solver raced as a supervised subprocess.

    *command* is the argv prefix (the CNF path is appended).  The lane:

    1. writes the CNF (assumptions become unit clauses — sound for a
       one-shot verdict) to a private temp file;
    2. spawns the child in its own session/process group;
    3. polls it against the wall-clock *deadline* and the race's
       *cancel* event; an overdue or cancelled child gets the
       supervisor's SIGTERM → *grace* → SIGKILL ladder, group-wide;
    4. maps exit codes (10 SAT / 20 UNSAT) and parses the
       ``s``/``v`` output lines;
    5. reports ``crash`` for any other exit, ``garbled`` when a claimed
       model fails :func:`validate_model` — both are just UNKNOWN lanes
       to the portfolio, never run failures.

    The ``sat.backend.crash`` and ``sat.backend.garble`` fault points
    let chaos tests kill or corrupt this lane mid-race.
    """

    def __init__(
        self,
        command: Sequence[str] | str,
        name: str | None = None,
        grace: float = 1.0,
    ) -> None:
        if isinstance(command, str):
            command = shlex.split(command)
        if not command:
            raise ValueError("external solver command must not be empty")
        self.command = list(command)
        self.name = name or os.path.basename(self.command[0])
        self.grace = grace

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DimacsSubprocessBackend({self.name!r}, {self.command!r})"

    def available(self) -> bool:
        """True when the command's executable resolves."""
        exe = self.command[0]
        if os.path.sep in exe:
            return os.path.isfile(exe) and os.access(exe, os.X_OK)
        return shutil.which(exe) is not None

    def solve(
        self,
        num_vars: int,
        clauses: Sequence[Sequence[int]],
        assumptions: Sequence[int] = (),
        conflict_budget: int | None = None,  # noqa: ARG002 - protocol parity
        deadline: float | None = None,
        cancel: threading.Event | None = None,
    ) -> BackendResult:
        start = time.perf_counter()

        def done(answer, outcome, model=None, detail=None):
            return BackendResult(
                backend=self.name,
                answer=answer,
                outcome=outcome,
                model=model,
                detail=detail,
                seconds=time.perf_counter() - start,
            )

        if fault_active("sat.backend.crash"):
            # Chaos hook: the lane dies before producing anything, as if
            # the binary segfaulted on startup.
            return done(None, "crash", detail="injected sat.backend.crash")

        from .dimacs import write_dimacs

        cnf_fd, cnf_path = tempfile.mkstemp(suffix=".cnf", prefix="repro-sat-")
        proc: subprocess.Popen | None = None
        try:
            with os.fdopen(cnf_fd, "w", encoding="ascii") as fp:
                all_clauses = list(clauses) + [[lit] for lit in assumptions]
                write_dimacs(num_vars, all_clauses, fp)
            try:
                proc = subprocess.Popen(
                    [*self.command, cnf_path],
                    stdout=subprocess.PIPE,
                    stderr=subprocess.DEVNULL,
                    stdin=subprocess.DEVNULL,
                    text=True,
                    start_new_session=True,
                )
            except OSError as exc:
                return done(None, "crash", detail=f"spawn failed: {exc}")

            timed_out = cancelled = False
            while True:
                if proc.poll() is not None:
                    break
                if cancel is not None and cancel.is_set():
                    cancelled = True
                    break
                if deadline is not None and time.monotonic() >= deadline:
                    timed_out = True
                    break
                time.sleep(_LANE_POLL_INTERVAL)

            if timed_out or cancelled:
                terminate_process(proc, self.grace)
                # Drain the pipe after the kill so the child can never
                # block on a full pipe between TERM and KILL.
                self._drain(proc)
                return done(None, "timeout" if timed_out else "unknown")

            output = self._drain(proc)
            returncode = proc.wait()
            return self._interpret(
                done, returncode, output, num_vars, clauses, assumptions
            )
        finally:
            if proc is not None and proc.poll() is None:  # pragma: no cover
                terminate_process(proc, self.grace)
            try:
                os.unlink(cnf_path)
            except OSError:
                pass

    @staticmethod
    def _drain(proc: subprocess.Popen) -> str:
        if proc.stdout is None:
            return ""
        try:
            return proc.stdout.read() or ""
        except (OSError, ValueError):
            return ""
        finally:
            try:
                proc.stdout.close()
            except (OSError, ValueError):
                pass

    def _interpret(
        self,
        done,
        returncode: int,
        output: str,
        num_vars: int,
        clauses: Sequence[Sequence[int]],
        assumptions: Sequence[int],
    ) -> BackendResult:
        status_line = None
        model_lits: list[int] = []
        for line in output.splitlines():
            line = line.strip()
            if line.startswith("s "):
                status_line = line[2:].strip().upper()
            elif line.startswith("v ") or line == "v":
                for token in line[1:].split():
                    try:
                        lit = int(token)
                    except ValueError:
                        return done(
                            None, "garbled", detail=f"bad v-line token {token!r}"
                        )
                    if lit != 0:
                        model_lits.append(lit)

        claims_sat = status_line == "SATISFIABLE" or returncode == _EXIT_SAT
        claims_unsat = status_line == "UNSATISFIABLE" or returncode == _EXIT_UNSAT
        if status_line is not None and returncode in (_EXIT_SAT, _EXIT_UNSAT):
            # When both channels speak they must agree.
            if claims_sat and claims_unsat:
                return done(
                    None, "garbled",
                    detail=f"status {status_line!r} vs exit code {returncode}",
                )

        if claims_unsat:
            return done(False, "unsat")
        if claims_sat:
            model = [0] * (num_vars + 1)
            for lit in model_lits:
                var = abs(lit)
                if var > num_vars:
                    continue  # some solvers report helper variables
                model[var] = 1 if lit > 0 else 0
            if fault_active("sat.backend.garble"):
                # Chaos hook: a lying lane — flip every value so the
                # claimed model cannot satisfy a non-trivial formula.
                model = [0] + [1 - value for value in model[1:]]
            if not validate_model(num_vars, clauses, model, assumptions):
                return done(
                    None, "garbled", detail="claimed model fails validation"
                )
            return done(True, "sat", model=model)
        if returncode == 0 and status_line == "UNKNOWN":
            return done(None, "unknown", detail="solver reported unknown")
        return done(
            None, "crash",
            detail=f"exit code {returncode} with no recognizable verdict",
        )


def discover_backends(environ=None, grace: float = 1.0) -> list[DimacsSubprocessBackend]:
    """External lanes available on this machine, in deterministic order.

    ``$REPRO_SAT_SOLVERS`` overrides discovery: comma- or colon-with-
    path-shape-awareness is deliberately avoided — entries are split on
    commas (a path may contain colons on exotic setups but never commas
    here), each entry is a shell-style command.  An entry whose
    executable does not resolve is skipped, never an error: missing
    solvers are the *expected* state on CI and user machines, and the
    portfolio must degrade, not fail.
    """
    environ = os.environ if environ is None else environ
    spec = environ.get(SOLVERS_ENV_VAR)
    backends: list[DimacsSubprocessBackend] = []
    seen: set[str] = set()
    if spec is not None:
        entries = [entry.strip() for entry in spec.split(",") if entry.strip()]
    else:
        entries = list(DEFAULT_SOLVER_NAMES)
    for entry in entries:
        try:
            backend = DimacsSubprocessBackend(entry, grace=grace)
        except ValueError:
            continue
        if not backend.available():
            continue
        if backend.name in seen:
            backend.name = f"{backend.name}-{len(backends)}"
        seen.add(backend.name)
        backends.append(backend)
    return backends

"""Race complementary SAT backends; first validated answer wins.

``sat_revsynth``'s ``solver_racer`` shape adapted to this repo's
robustness rules (see docs/ROBUSTNESS.md "The solver portfolio"):

* the **internal lane** is the caller's live incremental
  :class:`~repro.sat.solver.Solver` — it runs on the calling thread so
  the CDCL state is never shared across threads, and it polls a cancel
  event at its existing deadline-check interval (every 64 conflicts), so
  an external win stops it within microseconds of work;
* each **external lane** is a :class:`~repro.sat.backends.
  DimacsSubprocessBackend` on its own thread; losing lanes are killed
  through the supervisor's SIGTERM → grace → SIGKILL ladder, and every
  lane thread is joined before :meth:`PortfolioSolver.solve` returns —
  no solver process outlives the race;
* every external SAT model is **validated against the clause list**
  before it may win; a crashed, hanging, or lying lane degrades to
  UNKNOWN for that lane only and can never change the verdict;
* with **no external backend discovered** the race collapses to a plain
  ``solver.solve(...)`` call on the calling thread — no threads, no
  clause mirroring cost beyond an append per clause, and byte-identical
  results to the internal solver alone;
* a shared :class:`~repro.runtime.budget.Budget` clamps every lane's
  deadline, so a portfolio race can never exceed the flow's wall-clock
  budget even if a subprocess ignores SIGTERM (SIGKILL lands within the
  backend's grace window).

Per-lane fates are accumulated in :attr:`PortfolioSolver.events`
(``"<backend>:<outcome>"`` counters) and surfaced through
``SynthesisResult.backend_events`` / ``PassMetrics.sat_backend_events``.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Sequence

from .backends import (
    BackendResult,
    DimacsSubprocessBackend,
    InternalBackend,
    discover_backends,
)
from .solver import Solver

if TYPE_CHECKING:
    from ..runtime.budget import Budget

__all__ = ["PortfolioSolver", "resolve_backend", "BACKEND_MODES"]

#: the CLI vocabulary for --sat-backend
BACKEND_MODES = ("auto", "internal", "portfolio")

#: join cap for lane threads after the race is decided; generous —
#: lanes bound themselves via the kill ladder long before this
_JOIN_TIMEOUT = 30.0


class PortfolioSolver:
    """Races the internal CDCL solver against external DIMACS solvers.

    Construct once and attach to a :class:`~repro.sat.cnf.CnfBuilder`
    (``CnfBuilder(portfolio=...)``); every ``builder.solve`` then runs a
    race over the builder's mirrored clause list.  *external* defaults
    to environment discovery (:func:`~repro.sat.backends.
    discover_backends`); *budget* clamps every lane's deadline.
    """

    def __init__(
        self,
        external: Sequence[DimacsSubprocessBackend] | None = None,
        budget: "Budget | None" = None,
        grace: float = 1.0,
    ) -> None:
        self.external = (
            list(external) if external is not None else discover_backends(grace=grace)
        )
        self.budget = budget
        self.grace = grace
        #: "<backend>:<outcome>" -> count, accumulated across races;
        #: drain with :meth:`take_events`
        self.events: dict[str, int] = {}
        #: races run (0 external lanes still counts: the degraded path)
        self.races = 0

    @property
    def has_external(self) -> bool:
        """True when at least one external lane is configured."""
        return bool(self.external)

    def lane_names(self) -> list[str]:
        """The lanes a race would run, internal first."""
        return ["internal", *(backend.name for backend in self.external)]

    # -- observability -----------------------------------------------------

    def _record(self, backend: str, outcome: str) -> None:
        key = f"{backend}:{outcome}"
        self.events[key] = self.events.get(key, 0) + 1

    def take_events(self) -> dict[str, int]:
        """Return and clear the accumulated per-lane event counters."""
        events = dict(self.events)
        self.events.clear()
        return events

    # -- solving -----------------------------------------------------------

    def solve(
        self,
        solver: Solver,
        clauses: Sequence[Sequence[int]],
        assumptions: Sequence[int] = (),
        conflict_budget: int | None = None,
        deadline: float | None = None,
    ) -> bool | None:
        """Race all lanes on (*clauses* + *assumptions*); returns the
        internal solver's three-valued convention.

        *solver* is the caller's incremental solver: it runs the internal
        lane (learned clauses and activities persist across calls, which
        is what makes CEGAR refinement cheap), and a winning external SAT
        model is installed into ``solver.model`` so ``model_value`` /
        ``CnfBuilder.value`` work identically whichever lane won.
        """
        deadline = self._clamped_deadline(deadline)
        self.races += 1
        if not self.external:
            # Degraded mode: no race, no threads — the internal solver
            # alone, byte-identical to calling it directly.
            answer = solver.solve(
                assumptions=assumptions,
                conflict_budget=conflict_budget,
                deadline=deadline,
            )
            self._record("internal", _internal_outcome(answer))
            return answer

        cancel = threading.Event()
        lock = threading.Lock()
        winner: dict = {}
        lane_results: dict[str, BackendResult] = {}
        num_vars = solver.num_vars

        def lane(backend) -> None:
            result = backend.solve(
                num_vars,
                clauses,
                assumptions=assumptions,
                conflict_budget=conflict_budget,
                deadline=deadline,
                cancel=cancel,
            )
            with lock:
                lane_results[backend.name] = result
                if result.answer is not None and "result" not in winner:
                    winner["result"] = result
                    cancel.set()

        threads = [
            threading.Thread(
                target=lane, args=(backend,), name=f"sat-lane-{backend.name}",
                daemon=True,
            )
            for backend in self.external
        ]
        for thread in threads:
            thread.start()

        # The internal lane runs here, on the calling thread: the CDCL
        # state stays single-threaded, and the cancel event is its poll.
        internal = InternalBackend(solver)
        internal_result = internal.solve(
            num_vars,
            clauses,
            assumptions=assumptions,
            conflict_budget=conflict_budget,
            deadline=deadline,
            cancel=cancel,
        )
        with lock:
            lane_results["internal"] = internal_result
            if internal_result.answer is not None and "result" not in winner:
                winner["result"] = internal_result
                cancel.set()

        if "result" not in winner:
            # Internal gave up (budget) but external lanes may still be
            # working toward the deadline: wait for them.
            for thread in threads:
                thread.join(timeout=_JOIN_TIMEOUT)
        cancel.set()
        for thread in threads:
            thread.join(timeout=_JOIN_TIMEOUT)

        result = winner.get("result")
        for name, lane_result in sorted(lane_results.items()):
            if result is not None and lane_result is result:
                self._record(name, f"win-{lane_result.outcome}")
            else:
                self._record(name, lane_result.outcome)

        if result is None:
            return None
        if result.answer is True and result.backend != "internal":
            # Install the validated external model so extraction paths
            # (model_value, CnfBuilder.value) behave as if the internal
            # solver had produced it.
            assert result.model is not None
            solver.model = list(result.model)
        return result.answer

    def _clamped_deadline(self, deadline: float | None) -> float | None:
        if self.budget is None or self.budget.deadline is None:
            return deadline
        if deadline is None:
            return self.budget.deadline
        return min(deadline, self.budget.deadline)


def _internal_outcome(answer: bool | None) -> str:
    if answer is True:
        return "win-sat"
    if answer is False:
        return "win-unsat"
    return "unknown"


def resolve_backend(
    mode: str = "auto",
    budget: "Budget | None" = None,
    grace: float = 1.0,
) -> PortfolioSolver | None:
    """Map a ``--sat-backend`` mode to a portfolio (or None = internal).

    * ``"internal"`` — always ``None``: the classic in-process path.
    * ``"portfolio"`` — always a :class:`PortfolioSolver`; with no
      binary discovered it degrades to internal-only (identical
      verdicts, models, and solver statistics).
    * ``"auto"`` — a portfolio only when an external binary was
      discovered, else ``None`` so the default path does not even pay
      for clause mirroring.
    """
    if mode not in BACKEND_MODES:
        raise ValueError(
            f"unknown sat backend mode {mode!r}; expected one of {BACKEND_MODES}"
        )
    if mode == "internal":
        return None
    portfolio = PortfolioSolver(budget=budget, grace=grace)
    if mode == "auto" and not portfolio.has_external:
        return None
    return portfolio

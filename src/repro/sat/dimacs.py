"""DIMACS CNF reading and writing.

Lets the exact-synthesis encoder dump instances for external solvers and
lets the test-suite replay reference instances.
"""

from __future__ import annotations

from typing import Iterable, TextIO

from .solver import Solver

__all__ = ["write_dimacs", "parse_dimacs", "load_into_solver"]


def write_dimacs(num_vars: int, clauses: Iterable[Iterable[int]], fp: TextIO) -> None:
    """Write a CNF in DIMACS format to an open text file."""
    clause_list = [list(c) for c in clauses]
    fp.write(f"p cnf {num_vars} {len(clause_list)}\n")
    for clause in clause_list:
        fp.write(" ".join(str(lit) for lit in clause) + " 0\n")


def parse_dimacs(fp: TextIO) -> tuple[int, list[list[int]]]:
    """Parse a DIMACS CNF file; returns ``(num_vars, clauses)``.

    Strict by design — external solver I/O depends on this parser, so a
    clause count that disagrees with the ``p cnf`` header or a literal
    outside the declared variable range is a :class:`ValueError`, never
    a silently mangled formula.
    """
    num_vars = 0
    declared_clauses: int | None = None
    clauses: list[list[int]] = []
    current: list[int] = []
    for line in fp:
        line = line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ValueError(f"malformed problem line: {line!r}")
            num_vars = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        for token in line.split():
            lit = int(token)
            if lit == 0:
                clauses.append(current)
                current = []
            else:
                if abs(lit) > num_vars:
                    raise ValueError(
                        f"literal {lit} exceeds the declared "
                        f"{num_vars}-variable range"
                    )
                current.append(lit)
    if current:
        clauses.append(current)
    if declared_clauses is not None and declared_clauses != len(clauses):
        raise ValueError(
            f"header declares {declared_clauses} clauses but file has {len(clauses)}"
        )
    return num_vars, clauses


def load_into_solver(fp: TextIO) -> Solver:
    """Parse a DIMACS file directly into a fresh solver."""
    num_vars, clauses = parse_dimacs(fp)
    solver = Solver()
    solver.new_vars(num_vars)
    for clause in clauses:
        solver.add_clause(clause)
    return solver

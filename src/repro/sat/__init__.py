"""SAT substrate: CDCL solver, CNF helpers, DIMACS I/O, and CEC."""

from .solver import SAT, UNKNOWN, UNSAT, Solver
from .cnf import CnfBuilder
from .dimacs import load_into_solver, parse_dimacs, write_dimacs
from .cec import CecResult, check_equivalence_sat

__all__ = [
    "Solver",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "CnfBuilder",
    "write_dimacs",
    "parse_dimacs",
    "load_into_solver",
    "CecResult",
    "check_equivalence_sat",
]

"""SAT substrate: CDCL solver, CNF helpers, DIMACS I/O, CEC, and the
pluggable backend portfolio (external kissat/CaDiCaL racing)."""

from .solver import SAT, UNKNOWN, UNSAT, Solver
from .cnf import CnfBuilder
from .dimacs import load_into_solver, parse_dimacs, write_dimacs
from .cec import CecResult, check_equivalence_sat
from .backends import (
    BackendResult,
    DimacsSubprocessBackend,
    InternalBackend,
    SolverBackend,
    discover_backends,
    validate_model,
)
from .portfolio import BACKEND_MODES, PortfolioSolver, resolve_backend

__all__ = [
    "Solver",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "CnfBuilder",
    "write_dimacs",
    "parse_dimacs",
    "load_into_solver",
    "CecResult",
    "check_equivalence_sat",
    "BackendResult",
    "SolverBackend",
    "InternalBackend",
    "DimacsSubprocessBackend",
    "discover_backends",
    "validate_model",
    "PortfolioSolver",
    "resolve_backend",
    "BACKEND_MODES",
]

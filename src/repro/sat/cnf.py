"""CNF construction helpers on top of :class:`repro.sat.solver.Solver`.

Provides the gate-consistency (Tseitin) constraints and cardinality
encodings used by the exact-synthesis encoder (:mod:`repro.exact.encoding`)
and by SAT-based combinational equivalence checking.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .solver import Solver

__all__ = ["CnfBuilder"]


class CnfBuilder:
    """A thin constraint-building layer over a SAT solver.

    All methods take and return DIMACS-style literals (``±var``).
    """

    def __init__(self, solver: Solver | None = None) -> None:
        self.solver = solver if solver is not None else Solver()

    # -- basics ------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable."""
        return self.solver.new_var()

    def new_vars(self, count: int) -> list[int]:
        """Allocate *count* fresh variables."""
        return self.solver.new_vars(count)

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause."""
        self.solver.add_clause(lits)

    def add_unit(self, lit: int) -> None:
        """Force *lit* to be true."""
        self.solver.add_clause([lit])

    # -- cardinality ---------------------------------------------------------

    def at_least_one(self, lits: Sequence[int]) -> None:
        """At least one of *lits* is true."""
        self.solver.add_clause(lits)

    def at_most_one(self, lits: Sequence[int]) -> None:
        """At most one of *lits* is true (pairwise encoding)."""
        for i in range(len(lits)):
            for j in range(i + 1, len(lits)):
                self.solver.add_clause([-lits[i], -lits[j]])

    def exactly_one(self, lits: Sequence[int]) -> None:
        """Exactly one of *lits* is true."""
        self.at_least_one(lits)
        self.at_most_one(lits)

    # -- gate consistency ------------------------------------------------------

    def iff(self, a: int, b: int) -> None:
        """Constrain ``a <-> b``."""
        self.solver.add_clause([-a, b])
        self.solver.add_clause([a, -b])

    def implies(self, a: int, b: int) -> None:
        """Constrain ``a -> b``."""
        self.solver.add_clause([-a, b])

    def implies_clause(self, a: int, lits: Sequence[int]) -> None:
        """Constrain ``a -> (l1 | l2 | ...)``."""
        self.solver.add_clause([-a, *lits])

    def xor_gate(self, out: int, a: int, b: int) -> None:
        """Constrain ``out <-> a ^ b``."""
        self.solver.add_clause([-out, a, b])
        self.solver.add_clause([-out, -a, -b])
        self.solver.add_clause([out, -a, b])
        self.solver.add_clause([out, a, -b])

    def and_gate(self, out: int, ins: Sequence[int]) -> None:
        """Constrain ``out <-> AND(ins)``."""
        for lit in ins:
            self.solver.add_clause([-out, lit])
        self.solver.add_clause([out, *(-lit for lit in ins)])

    def or_gate(self, out: int, ins: Sequence[int]) -> None:
        """Constrain ``out <-> OR(ins)``."""
        for lit in ins:
            self.solver.add_clause([out, -lit])
        self.solver.add_clause([-out, *ins])

    def maj_gate(self, out: int, a: int, b: int, c: int) -> None:
        """Constrain ``out <-> <abc>`` — Eq. (4) of the paper in CNF.

        Any two true inputs force the output true; any two false inputs
        force it false.
        """
        self.solver.add_clause([-a, -b, out])
        self.solver.add_clause([-a, -c, out])
        self.solver.add_clause([-b, -c, out])
        self.solver.add_clause([a, b, -out])
        self.solver.add_clause([a, c, -out])
        self.solver.add_clause([b, c, -out])

    def mux_gate(self, out: int, sel: int, when_true: int, when_false: int) -> None:
        """Constrain ``out <-> (sel ? when_true : when_false)``."""
        self.solver.add_clause([-sel, -when_true, out])
        self.solver.add_clause([-sel, when_true, -out])
        self.solver.add_clause([sel, -when_false, out])
        self.solver.add_clause([sel, when_false, -out])

    # -- solving ---------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: int | None = None,
        deadline: float | None = None,
    ) -> bool | None:
        """Solve the accumulated formula."""
        return self.solver.solve(
            assumptions=assumptions,
            conflict_budget=conflict_budget,
            deadline=deadline,
        )

    def value(self, lit: int) -> bool:
        """Model value of a literal after a SAT answer."""
        return self.solver.model_value(lit)

"""CNF construction helpers on top of :class:`repro.sat.solver.Solver`.

Provides the gate-consistency (Tseitin) constraints and cardinality
encodings used by the exact-synthesis encoder (:mod:`repro.exact.encoding`)
and by SAT-based combinational equivalence checking.

When a :class:`~repro.sat.portfolio.PortfolioSolver` is attached, every
clause is also mirrored into :attr:`CnfBuilder.clauses` so external
DIMACS lanes can see the full formula (including CEGAR refinement
clauses added between solve calls), and :meth:`CnfBuilder.solve` races
the portfolio instead of calling the internal solver directly.  Without
a portfolio nothing is mirrored and the builder behaves exactly as
before.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from .solver import Solver

if TYPE_CHECKING:
    from ..runtime.budget import Budget
    from .portfolio import PortfolioSolver

__all__ = ["CnfBuilder"]


class CnfBuilder:
    """A thin constraint-building layer over a SAT solver.

    All methods take and return DIMACS-style literals (``±var``).
    *portfolio* routes solve calls through a backend race; *budget*
    clamps every solve's wall-clock deadline to the shared flow budget
    so no lane — not even a subprocess that shrugs off SIGTERM — can
    outlive it.
    """

    def __init__(
        self,
        solver: Solver | None = None,
        portfolio: "PortfolioSolver | None" = None,
        budget: "Budget | None" = None,
    ) -> None:
        self.solver = solver if solver is not None else Solver()
        self.portfolio = portfolio
        self.budget = budget
        #: mirrored clause list for external lanes (only when racing)
        self.clauses: list[list[int]] = []

    # -- basics ------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable."""
        return self.solver.new_var()

    def new_vars(self, count: int) -> list[int]:
        """Allocate *count* fresh variables."""
        return self.solver.new_vars(count)

    def add_clause(self, lits: Iterable[int]) -> None:
        """Add a clause."""
        if self.portfolio is not None:
            clause = list(lits)
            self.clauses.append(clause)
            self.solver.add_clause(clause)
        else:
            self.solver.add_clause(lits)

    def add_unit(self, lit: int) -> None:
        """Force *lit* to be true."""
        self.add_clause([lit])

    # -- cardinality ---------------------------------------------------------

    def at_least_one(self, lits: Sequence[int]) -> None:
        """At least one of *lits* is true."""
        self.add_clause(lits)

    def at_most_one(self, lits: Sequence[int]) -> None:
        """At most one of *lits* is true (pairwise encoding)."""
        for i in range(len(lits)):
            for j in range(i + 1, len(lits)):
                self.add_clause([-lits[i], -lits[j]])

    def exactly_one(self, lits: Sequence[int]) -> None:
        """Exactly one of *lits* is true."""
        self.at_least_one(lits)
        self.at_most_one(lits)

    # -- gate consistency ------------------------------------------------------

    def iff(self, a: int, b: int) -> None:
        """Constrain ``a <-> b``."""
        self.add_clause([-a, b])
        self.add_clause([a, -b])

    def implies(self, a: int, b: int) -> None:
        """Constrain ``a -> b``."""
        self.add_clause([-a, b])

    def implies_clause(self, a: int, lits: Sequence[int]) -> None:
        """Constrain ``a -> (l1 | l2 | ...)``."""
        self.add_clause([-a, *lits])

    def xor_gate(self, out: int, a: int, b: int) -> None:
        """Constrain ``out <-> a ^ b``."""
        self.add_clause([-out, a, b])
        self.add_clause([-out, -a, -b])
        self.add_clause([out, -a, b])
        self.add_clause([out, a, -b])

    def and_gate(self, out: int, ins: Sequence[int]) -> None:
        """Constrain ``out <-> AND(ins)``."""
        for lit in ins:
            self.add_clause([-out, lit])
        self.add_clause([out, *(-lit for lit in ins)])

    def or_gate(self, out: int, ins: Sequence[int]) -> None:
        """Constrain ``out <-> OR(ins)``."""
        for lit in ins:
            self.add_clause([out, -lit])
        self.add_clause([-out, *ins])

    def maj_gate(self, out: int, a: int, b: int, c: int) -> None:
        """Constrain ``out <-> <abc>`` — Eq. (4) of the paper in CNF.

        Any two true inputs force the output true; any two false inputs
        force it false.
        """
        self.add_clause([-a, -b, out])
        self.add_clause([-a, -c, out])
        self.add_clause([-b, -c, out])
        self.add_clause([a, b, -out])
        self.add_clause([a, c, -out])
        self.add_clause([b, c, -out])

    def mux_gate(self, out: int, sel: int, when_true: int, when_false: int) -> None:
        """Constrain ``out <-> (sel ? when_true : when_false)``."""
        self.add_clause([-sel, -when_true, out])
        self.add_clause([-sel, when_true, -out])
        self.add_clause([sel, -when_false, out])
        self.add_clause([sel, when_false, -out])

    # -- solving ---------------------------------------------------------------

    def solve(
        self,
        assumptions: Sequence[int] = (),
        conflict_budget: int | None = None,
        deadline: float | None = None,
    ) -> bool | None:
        """Solve the accumulated formula.

        With a portfolio attached this races all configured backends and
        the answer may come from any validated lane; without one it is a
        plain internal-solver call.  Either way the builder's *budget*
        deadline (when set) caps the wall clock.
        """
        if self.budget is not None and self.budget.deadline is not None:
            deadline = (
                self.budget.deadline
                if deadline is None
                else min(deadline, self.budget.deadline)
            )
        if self.portfolio is not None:
            return self.portfolio.solve(
                self.solver,
                self.clauses,
                assumptions=assumptions,
                conflict_budget=conflict_budget,
                deadline=deadline,
            )
        return self.solver.solve(
            assumptions=assumptions,
            conflict_budget=conflict_budget,
            deadline=deadline,
        )

    def value(self, lit: int) -> bool:
        """Model value of a literal after a SAT answer."""
        return self.solver.model_value(lit)

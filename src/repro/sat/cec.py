"""SAT-based combinational equivalence checking (CEC) for MIGs.

Builds a miter between two networks — XOR of corresponding outputs, ORed
together — Tseitin-encodes it and asks the CDCL solver for a satisfying
(distinguishing) input.  UNSAT proves equivalence; a model is a concrete
counterexample.  Complements the simulation-based checks of
:mod:`repro.core.simulate` for networks too wide to simulate exhaustively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.mig import Mig
from .cnf import CnfBuilder
from .portfolio import resolve_backend

if TYPE_CHECKING:
    from ..runtime.budget import Budget
    from .portfolio import PortfolioSolver

__all__ = ["CecResult", "check_equivalence_sat"]


@dataclass(frozen=True)
class CecResult:
    """Outcome of a SAT CEC run."""

    equivalent: bool | None  # None = budget exhausted
    counterexample: dict[str, bool] | None
    conflicts: int
    #: per-lane portfolio fates ("<backend>:<outcome>" -> count); empty
    #: on the pure-internal path
    backend_events: dict[str, int] = field(default_factory=dict)


def _encode_mig(builder: CnfBuilder, mig: Mig, pi_vars: list[int]) -> list[int]:
    """Tseitin-encode *mig* over shared PI variables; returns output literals."""
    const_false = builder.new_var()
    builder.add_unit(-const_false)
    node_lits: list[int] = [const_false]
    node_lits.extend(pi_vars)
    for node in mig.gates():
        a, b, c = mig.fanins(node)
        la = node_lits[a >> 1] * (-1 if a & 1 else 1)
        lb = node_lits[b >> 1] * (-1 if b & 1 else 1)
        lc = node_lits[c >> 1] * (-1 if c & 1 else 1)
        out = builder.new_var()
        builder.maj_gate(out, la, lb, lc)
        node_lits.append(out)
    return [node_lits[s >> 1] * (-1 if s & 1 else 1) for s in mig.outputs]


def check_equivalence_sat(
    mig1: Mig,
    mig2: Mig,
    conflict_budget: int | None = None,
    budget: "Budget | None" = None,
    sat_backend: "str | PortfolioSolver | None" = "internal",
) -> CecResult:
    """Prove or refute equivalence of two MIGs with identical interfaces.

    A shared :class:`repro.runtime.budget.Budget` bounds the solve by its
    wall-clock deadline and (when *conflict_budget* is not given) by its
    remaining conflicts; the conflicts spent are charged back to it.

    *sat_backend* selects the solving path: a ``--sat-backend`` mode
    string (``"auto"``/``"internal"``/``"portfolio"``), an already-built
    :class:`~repro.sat.portfolio.PortfolioSolver` (shared across calls
    so its event counters accumulate), or ``None`` for internal.
    """
    if mig1.num_pis != mig2.num_pis or mig1.num_pos != mig2.num_pos:
        raise ValueError("CEC requires matching PI/PO counts")
    deadline = None
    if budget is not None:
        deadline = budget.deadline
        if conflict_budget is None:
            conflict_budget = budget.call_conflict_budget()
    portfolio = (
        resolve_backend(sat_backend, budget=budget)
        if isinstance(sat_backend, str)
        else sat_backend
    )
    builder = CnfBuilder(portfolio=portfolio, budget=budget)
    pi_vars = builder.new_vars(mig1.num_pis)
    outs1 = _encode_mig(builder, mig1, pi_vars)
    outs2 = _encode_mig(builder, mig2, pi_vars)
    diff_lits = []
    for o1, o2 in zip(outs1, outs2):
        d = builder.new_var()
        builder.xor_gate(d, o1, o2)
        diff_lits.append(d)
    builder.at_least_one(diff_lits)
    answer = builder.solve(conflict_budget=conflict_budget, deadline=deadline)
    conflicts = builder.solver.conflicts
    if budget is not None:
        budget.charge_conflicts(conflicts)
    events = portfolio.take_events() if portfolio is not None else {}
    if answer is None:
        return CecResult(None, None, conflicts, events)
    if answer is False:
        return CecResult(True, None, conflicts, events)
    cex = {
        name: builder.value(var)
        for name, var in zip(mig1.pi_names, pi_vars)
    }
    return CecResult(False, cex, conflicts, events)

"""Exact MIG synthesis driver (Sec. III of the paper).

Finds a minimum-size MIG for a Boolean function by solving the decision
problem "is there an MIG with k majority gates computing f?" for
``k = 0, 1, 2, ...`` until the first satisfiable instance, as described in
the paper.  The ``k = 0`` cases (constants and literals) are checked
explicitly; larger ``k`` uses the CNF encoding of
:mod:`repro.exact.encoding`.

Because the substrate is a pure-Python CDCL solver rather than Z3, every
``(f, k)`` instance runs under an optional conflict budget.  When the
budget runs out the driver degrades gracefully: if a heuristic upper
bound is available it is returned flagged ``proven=False``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.mig import Mig, make_signal, signal_not
from ..core.truth_table import tt_mask, tt_var
from ..runtime.budget import Budget
from .encoding import encode_exact_mig

__all__ = ["SynthesisResult", "ExactSynthesizer", "synthesize_exact"]


@dataclass
class SynthesisResult:
    """Outcome of an exact synthesis run.

    ``proven`` is True when *size* is the provably minimum number of
    majority gates (all smaller sizes refuted).  Otherwise the result is
    the best known upper bound.
    """

    spec: int
    num_vars: int
    mig: Mig | None
    size: int | None
    proven: bool
    runtime: float
    conflicts: int
    #: per-k outcome: "sat", "unsat", or "unknown" (budget exhausted)
    k_outcomes: dict[int, str] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        """True when some MIG (optimal or upper bound) was produced."""
        return self.mig is not None


def _trivial_mig(spec: int, num_vars: int) -> Mig | None:
    """Return a 0-gate MIG if *spec* is a constant or (complemented) literal."""
    mig = Mig(num_vars)
    mask = tt_mask(num_vars)
    if spec == 0:
        mig.add_po(0, "f")
        return mig
    if spec == mask:
        mig.add_po(1, "f")
        return mig
    for i in range(num_vars):
        var = tt_var(num_vars, i)
        if spec == var:
            mig.add_po(make_signal(1 + i), "f")
            return mig
        if spec == var ^ mask:
            mig.add_po(signal_not(make_signal(1 + i)), "f")
            return mig
    return None


class ExactSynthesizer:
    """Reusable exact synthesis engine with budgets and verification."""

    def __init__(
        self,
        conflict_budget: int | None = None,
        max_gates: int = 12,
        verify: bool = True,
        use_cegar: bool = True,
        budget: Budget | None = None,
    ) -> None:
        self.conflict_budget = conflict_budget
        self.max_gates = max_gates
        self.verify = verify
        self.use_cegar = use_cegar
        #: shared runtime budget; checked between sizes, charged per call
        self.budget = budget

    def synthesize(
        self,
        spec: int,
        num_vars: int,
        upper_bound: Mig | None = None,
    ) -> SynthesisResult:
        """Synthesize a minimum MIG for *spec*.

        *upper_bound*, when given, must be a single-output MIG computing
        *spec*; the search then stops at ``size(upper_bound) - 1`` and can
        prove the upper bound optimal, or fall back to it on budget
        exhaustion.
        """
        start = time.perf_counter()
        total_conflicts = 0
        k_outcomes: dict[int, str] = {}

        limit = self.max_gates
        if upper_bound is not None:
            if upper_bound.num_pis != num_vars or upper_bound.num_pos != 1:
                raise ValueError("upper_bound must be a single-output MIG over num_vars PIs")
            if self.verify and upper_bound.simulate()[0] != spec:
                raise ValueError("upper_bound MIG does not compute the specification")
            limit = min(limit, upper_bound.num_gates - 1)

        trivial = _trivial_mig(spec, num_vars)
        if trivial is not None:
            return SynthesisResult(
                spec, num_vars, trivial, 0, True, time.perf_counter() - start, 0,
                {0: "sat"},
            )
        k_outcomes[0] = "unsat"

        budget = self.budget
        for k in range(1, limit + 1):
            if budget is not None and budget.expired():
                # Shared budget spent before this size: degrade to the
                # upper bound (if any) exactly like a per-call timeout.
                k_outcomes[k] = "unknown"
                return SynthesisResult(
                    spec,
                    num_vars,
                    upper_bound,
                    upper_bound.num_gates if upper_bound is not None else None,
                    False,
                    time.perf_counter() - start,
                    total_conflicts,
                    k_outcomes,
                )
            call_budget = self.conflict_budget
            deadline = None
            if budget is not None:
                call_budget = budget.call_conflict_budget(call_budget)
                deadline = budget.deadline
            encoding = encode_exact_mig(spec, num_vars, k)
            if self.use_cegar:
                answer = encoding.solve_cegar(
                    conflict_budget=call_budget, deadline=deadline
                )
            else:
                answer = encoding.solve(conflict_budget=call_budget, deadline=deadline)
            call_conflicts = encoding.builder.solver.conflicts
            total_conflicts += call_conflicts
            if budget is not None:
                budget.charge_conflicts(call_conflicts)
            if answer is True:
                k_outcomes[k] = "sat"
                mig = encoding.extract_mig()
                if self.verify and mig.simulate()[0] != spec:
                    raise RuntimeError(
                        f"extracted MIG does not match spec 0x{spec:x} at k={k}"
                    )
                return SynthesisResult(
                    spec, num_vars, mig, k, True,
                    time.perf_counter() - start, total_conflicts, k_outcomes,
                )
            if answer is False:
                k_outcomes[k] = "unsat"
                continue
            # Budget exhausted: fall back to the upper bound if present.
            k_outcomes[k] = "unknown"
            return SynthesisResult(
                spec,
                num_vars,
                upper_bound,
                upper_bound.num_gates if upper_bound is not None else None,
                False,
                time.perf_counter() - start,
                total_conflicts,
                k_outcomes,
            )

        if upper_bound is not None:
            # Every size below the upper bound was refuted: it is optimal.
            return SynthesisResult(
                spec, num_vars, upper_bound, upper_bound.num_gates, True,
                time.perf_counter() - start, total_conflicts, k_outcomes,
            )
        return SynthesisResult(
            spec, num_vars, None, None, False,
            time.perf_counter() - start, total_conflicts, k_outcomes,
        )


def synthesize_exact(
    spec: int,
    num_vars: int,
    conflict_budget: int | None = None,
    max_gates: int = 12,
    budget: Budget | None = None,
) -> SynthesisResult:
    """Convenience wrapper: synthesize a minimum MIG for *spec*."""
    return ExactSynthesizer(
        conflict_budget=conflict_budget, max_gates=max_gates, budget=budget
    ).synthesize(spec, num_vars)

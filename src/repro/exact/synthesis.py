"""Exact MIG synthesis driver (Sec. III of the paper).

Finds a minimum-size MIG for a Boolean function by solving the decision
problem "is there an MIG with k majority gates computing f?" for
``k = 0, 1, 2, ...`` until the first satisfiable instance, as described in
the paper.  The ``k = 0`` cases (constants and literals) are checked
explicitly; larger ``k`` uses the CNF encoding of
:mod:`repro.exact.encoding`.

Because the substrate is a pure-Python CDCL solver rather than Z3, every
``(f, k)`` instance runs under an optional conflict budget.  When the
budget runs out the driver degrades gracefully: if a heuristic upper
bound is available it is returned flagged ``proven=False``.

Three refinements keep the size loop cheap:

* functions covered by the exhaustive small-MIG witness table
  (:func:`repro.exact.bounds.optimal_small_migs`) are answered directly —
  the witness is rebuilt and returned proven without any SAT call,
  recorded as ``"table"`` in ``k_outcomes``;
* otherwise the loop starts at
  :func:`repro.exact.bounds.mig_size_lower_bound` instead of ``k = 1``;
  sizes below the bound are recorded as ``"skipped"`` in ``k_outcomes``
  without any SAT call, and
* the CEGAR counterexample rows that refuted size ``k`` seed the size
  ``k + 1`` encoding (``carry_rows``), which is sound because row
  constraints only restrict the model further — a refutation over a row
  subset is a refutation for the full specification.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core.mig import Mig, make_signal, signal_not
from ..core.truth_table import tt_mask, tt_var
from ..runtime.budget import Budget
from .bounds import mig_size_lower_bound, optimal_mig_from_table
from .encoding import encode_exact_mig

__all__ = ["SynthesisResult", "ExactSynthesizer", "synthesize_exact"]


@dataclass
class SynthesisResult:
    """Outcome of an exact synthesis run.

    ``proven`` is True when *size* is the provably minimum number of
    majority gates (all smaller sizes refuted).  Otherwise the result is
    the best known upper bound.
    """

    spec: int
    num_vars: int
    mig: Mig | None
    size: int | None
    proven: bool
    runtime: float
    conflicts: int
    #: per-k outcome: "sat", "unsat", "skipped" (below the lower bound,
    #: no SAT call issued), "table" (answered from the exhaustive
    #: small-MIG witness table) or "unknown" (budget exhausted)
    k_outcomes: dict[int, str] = field(default_factory=dict)
    #: solver counters summed over every size tried (schema shared with
    #: PassMetrics ``sat_*`` keys and ``benchmarks/bench_exact.py``)
    propagations: int = 0
    decisions: int = 0
    restarts: int = 0
    learned: int = 0
    #: per-lane portfolio fates ("<backend>:<outcome>" -> count) summed
    #: over every solve call; empty on the pure-internal path
    backend_events: dict[str, int] = field(default_factory=dict)

    @property
    def succeeded(self) -> bool:
        """True when some MIG (optimal or upper bound) was produced."""
        return self.mig is not None


def _trivial_mig(spec: int, num_vars: int) -> Mig | None:
    """Return a 0-gate MIG if *spec* is a constant or (complemented) literal."""
    mig = Mig(num_vars)
    mask = tt_mask(num_vars)
    if spec == 0:
        mig.add_po(0, "f")
        return mig
    if spec == mask:
        mig.add_po(1, "f")
        return mig
    for i in range(num_vars):
        var = tt_var(num_vars, i)
        if spec == var:
            mig.add_po(make_signal(1 + i), "f")
            return mig
        if spec == var ^ mask:
            mig.add_po(signal_not(make_signal(1 + i)), "f")
            return mig
    return None


class ExactSynthesizer:
    """Reusable exact synthesis engine with budgets and verification."""

    def __init__(
        self,
        conflict_budget: int | None = None,
        max_gates: int = 12,
        verify: bool = True,
        use_cegar: bool = True,
        budget: Budget | None = None,
        carry_rows: bool = True,
        use_lower_bound: bool = True,
        sat_backend: str = "internal",
        portfolio=None,
    ) -> None:
        self.conflict_budget = conflict_budget
        self.max_gates = max_gates
        self.verify = verify
        self.use_cegar = use_cegar
        #: shared runtime budget; checked between sizes, charged per call
        self.budget = budget
        #: seed each size's CEGAR loop with the rows that refuted k - 1
        self.carry_rows = carry_rows
        #: start the size loop at mig_size_lower_bound instead of k = 1
        self.use_lower_bound = use_lower_bound
        #: backend race shared across every (f, k) instance — pass a
        #: PortfolioSolver to share lanes/counters, or let the mode
        #: string build one (resolve_backend); "internal"/None keeps the
        #: classic path with zero mirroring overhead
        if portfolio is None and sat_backend != "internal":
            from ..sat.portfolio import resolve_backend

            portfolio = resolve_backend(sat_backend, budget=budget)
        self.portfolio = portfolio

    def synthesize(
        self,
        spec: int,
        num_vars: int,
        upper_bound: Mig | None = None,
    ) -> SynthesisResult:
        """Synthesize a minimum MIG for *spec*.

        *upper_bound*, when given, must be a single-output MIG computing
        *spec*; the search then stops at ``size(upper_bound) - 1`` and can
        prove the upper bound optimal, or fall back to it on budget
        exhaustion.
        """
        start = time.perf_counter()
        total_conflicts = 0
        counters = {"propagations": 0, "decisions": 0, "restarts": 0, "learned": 0}
        k_outcomes: dict[int, str] = {}
        backend_events: dict[str, int] = {}

        def result(mig, size, proven):
            if self.portfolio is not None:
                for key, count in self.portfolio.take_events().items():
                    backend_events[key] = backend_events.get(key, 0) + count
            return SynthesisResult(
                spec, num_vars, mig, size, proven,
                time.perf_counter() - start, total_conflicts, k_outcomes,
                **counters,
                backend_events=backend_events,
            )

        limit = self.max_gates
        if upper_bound is not None:
            if upper_bound.num_pis != num_vars or upper_bound.num_pos != 1:
                raise ValueError("upper_bound must be a single-output MIG over num_vars PIs")
            if self.verify and upper_bound.simulate()[0] != spec:
                raise ValueError("upper_bound MIG does not compute the specification")
            limit = min(limit, upper_bound.num_gates - 1)

        trivial = _trivial_mig(spec, num_vars)
        if trivial is not None:
            k_outcomes[0] = "sat"
            return result(trivial, 0, True)
        k_outcomes[0] = "unsat"

        start_k = 1
        if self.use_lower_bound:
            table_mig = optimal_mig_from_table(spec, num_vars)
            if table_mig is not None:
                # Exhaustive enumeration already proves minimality: no
                # SAT call needed at all.
                size = table_mig.num_gates
                for k in range(1, size):
                    k_outcomes[k] = "skipped"
                k_outcomes[size] = "table"
                if self.verify and table_mig.simulate()[0] != spec:
                    raise RuntimeError(
                        f"witness table MIG does not match spec 0x{spec:x}"
                    )
                if size <= limit:
                    return result(table_mig, size, True)
                if upper_bound is not None:
                    # Proven optimal exactly when the bound meets the
                    # table size (it can never be below the minimum).
                    proven = size == upper_bound.num_gates
                    return result(upper_bound, upper_bound.num_gates, proven)
                return result(None, None, False)  # minimum beyond max_gates
            start_k = max(1, mig_size_lower_bound(spec, num_vars))
            for k in range(1, min(start_k, limit + 1)):
                k_outcomes[k] = "skipped"

        budget = self.budget
        carried_rows: list[int] | None = None
        for k in range(start_k, limit + 1):
            if budget is not None and budget.expired():
                # Shared budget spent before this size: degrade to the
                # upper bound (if any) exactly like a per-call timeout.
                k_outcomes[k] = "unknown"
                return result(
                    upper_bound,
                    upper_bound.num_gates if upper_bound is not None else None,
                    False,
                )
            call_budget = self.conflict_budget
            deadline = None
            if budget is not None:
                call_budget = budget.call_conflict_budget(call_budget)
                deadline = budget.deadline
            encoding = encode_exact_mig(
                spec, num_vars, k, portfolio=self.portfolio, budget=budget
            )
            if self.use_cegar:
                answer = encoding.solve_cegar(
                    conflict_budget=call_budget,
                    deadline=deadline,
                    seed_rows=carried_rows if self.carry_rows else None,
                )
            else:
                answer = encoding.solve(conflict_budget=call_budget, deadline=deadline)
            solver = encoding.builder.solver
            call_conflicts = solver.conflicts
            total_conflicts += call_conflicts
            for name in counters:
                counters[name] += getattr(solver, name)
            if budget is not None:
                budget.charge_conflicts(call_conflicts)
            if answer is True:
                k_outcomes[k] = "sat"
                mig = encoding.extract_mig()
                if self.verify and mig.simulate()[0] != spec:
                    raise RuntimeError(
                        f"extracted MIG does not match spec 0x{spec:x} at k={k}"
                    )
                return result(mig, k, True)
            if answer is False:
                k_outcomes[k] = "unsat"
                # The rows that refuted size k remain valid counter-
                # examples for size k + 1: carry them forward.
                carried_rows = encoding.rows
                continue
            # Budget exhausted: fall back to the upper bound if present.
            k_outcomes[k] = "unknown"
            return result(
                upper_bound,
                upper_bound.num_gates if upper_bound is not None else None,
                False,
            )

        if upper_bound is not None:
            # Every size below the upper bound was refuted: it is optimal.
            return result(upper_bound, upper_bound.num_gates, True)
        return result(None, None, False)


def synthesize_exact(
    spec: int,
    num_vars: int,
    conflict_budget: int | None = None,
    max_gates: int = 12,
    budget: Budget | None = None,
    sat_backend: str = "internal",
) -> SynthesisResult:
    """Convenience wrapper: synthesize a minimum MIG for *spec*."""
    return ExactSynthesizer(
        conflict_budget=conflict_budget,
        max_gates=max_gates,
        budget=budget,
        sat_backend=sat_backend,
    ).synthesize(spec, num_vars)

"""Exact and heuristic synthesis of minimum MIGs (Sec. III of the paper)."""

from .encoding import ExactMigEncoding, encode_exact_mig
from .synthesis import ExactSynthesizer, SynthesisResult, synthesize_exact
from .heuristic import heuristic_mig, single_gate_functions
from .trees import TreeSynthesizer
from .complexity import (
    cached_length_table,
    compute_depth_by_class,
    compute_length_table,
    depth_distribution,
    length_distribution,
    tree_depth_feasible,
)
from .bounds import theorem2_bound, shannon_upper_bound_mig

__all__ = [
    "ExactMigEncoding",
    "encode_exact_mig",
    "ExactSynthesizer",
    "SynthesisResult",
    "synthesize_exact",
    "heuristic_mig",
    "single_gate_functions",
    "TreeSynthesizer",
    "cached_length_table",
    "compute_length_table",
    "length_distribution",
    "depth_distribution",
    "compute_depth_by_class",
    "tree_depth_feasible",
    "theorem2_bound",
    "shannon_upper_bound_mig",
]

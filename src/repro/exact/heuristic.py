"""Heuristic (upper-bound) MIG synthesis for small functions.

Exact synthesis needs good upper bounds: they cap the ``k`` loop and serve
as fall-backs when the SAT budget runs out (DESIGN.md §6).  This module
builds a correct — not necessarily minimum — MIG for any function of up to
6 variables using:

* direct constructions for constants, literals and single-gate functions
  (all majority gates over literals and constants are precomputed per n),
* XOR decomposition ``f = x_i ^ g`` when the cofactors are complements,
* Shannon expansion ``f = <x_i f1 0> | <x_i' f0 0>`` — the construction
  behind the paper's Theorem 2 upper bound — on the best splitting
  variable, with memoization and structural hashing providing sharing.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.mig import CONST0, CONST1, Mig, make_signal, signal_not
from ..core.truth_table import (
    tt_cofactor0,
    tt_cofactor1,
    tt_maj,
    tt_mask,
    tt_not,
    tt_support,
    tt_var,
)

__all__ = ["heuristic_mig", "single_gate_functions"]


@lru_cache(maxsize=8)
def single_gate_functions(num_vars: int) -> dict[int, tuple[int, int, int]]:
    """All functions computable by one majority gate over literals/constants.

    Returns a map truth table → operand triple, where operands are encoded
    as MIG signals (``0``/``1`` constants, ``2*(1+i)+pol`` for inputs).
    Covers AND/OR-like and MAJ-like functions — the 1-gate NPN classes of
    Table I.
    """
    literals = [CONST0, CONST1]
    values = {CONST0: 0, CONST1: tt_mask(num_vars)}
    for i in range(num_vars):
        pos = make_signal(1 + i)
        literals.append(pos)
        literals.append(signal_not(pos))
        values[pos] = tt_var(num_vars, i)
        values[signal_not(pos)] = tt_not(tt_var(num_vars, i), num_vars)
    table: dict[int, tuple[int, int, int]] = {}
    n = len(literals)
    for ia in range(n):
        for ib in range(ia + 1, n):
            if literals[ib] >> 1 == literals[ia] >> 1:
                continue
            for ic in range(ib + 1, n):
                if literals[ic] >> 1 in (literals[ia] >> 1, literals[ib] >> 1):
                    continue
                tt = tt_maj(values[literals[ia]], values[literals[ib]], values[literals[ic]])
                table.setdefault(tt, (literals[ia], literals[ib], literals[ic]))
    return table


def heuristic_mig(spec: int, num_vars: int) -> Mig:
    """Build a single-output MIG computing *spec* (an upper bound on size)."""
    if spec < 0 or spec > tt_mask(num_vars):
        raise ValueError(f"spec 0x{spec:x} out of range for {num_vars} variables")
    mig = Mig(num_vars)
    mask = tt_mask(num_vars)
    one_gate = single_gate_functions(num_vars)
    # memo: truth table -> signal in `mig`.
    memo: dict[int, int] = {0: CONST0, mask: CONST1}
    for i in range(num_vars):
        var = tt_var(num_vars, i)
        memo[var] = make_signal(1 + i)
        memo[var ^ mask] = signal_not(make_signal(1 + i))

    def build(tt: int) -> int:
        cached = memo.get(tt)
        if cached is not None:
            return cached
        inverse = memo.get(tt ^ mask)
        if inverse is not None:
            return signal_not(inverse)
        signal = _build_uncached(tt)
        memo[tt] = signal
        return signal

    def _build_uncached(tt: int) -> int:
        gate = one_gate.get(tt)
        if gate is not None:
            return mig.maj(*gate)
        gate = one_gate.get(tt ^ mask)
        if gate is not None:
            return signal_not(mig.maj(*gate))
        # Choose the splitting variable whose cofactors look cheapest.
        support = tt_support(tt, num_vars)
        best = None
        for i in support:
            f0 = tt_cofactor0(tt, i, num_vars)
            f1 = tt_cofactor1(tt, i, num_vars)
            if f1 == f0 ^ mask:
                score = -1  # XOR decomposition: strictly preferred
            else:
                known0 = f0 in memo or (f0 ^ mask) in memo or f0 in one_gate
                known1 = f1 in memo or (f1 ^ mask) in memo or f1 in one_gate
                score = (
                    len(tt_support(f0, num_vars))
                    + len(tt_support(f1, num_vars))
                    - 2 * (known0 + known1)
                )
            if best is None or score < best[0]:
                best = (score, i, f0, f1)
        assert best is not None
        _, i, f0, f1 = best
        x = make_signal(1 + i)
        if f1 == f0 ^ mask:
            return mig.xor(x, build(f0))
        # Shannon: f = (x & f1) | (!x & f0), three majority gates plus cones.
        return mig.ite(x, build(f1), build(f0))

    mig.add_po(build(spec), "f")
    return mig.cleanup()
